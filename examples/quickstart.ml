(* Quickstart: the paper's running example (Figures 3-5) end to end.

   Builds the six-node network of Section 4 with real document
   databases, lets the library compute every node's compound routing
   index, and runs the worked query — "documents about databases and
   languages, stop after 50" — showing the estimates, the route and the
   message bill.

   Run with: dune exec examples/quickstart.exe *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let () = print_endline "== Routing Indices quickstart: the paper's running example =="

(* Four topics of interest, as in Figure 3. *)
let universe = Topic.paper_example

(* Build each node's document database.  Counts match Figure 4:
   A: 300 docs (30 db, 80 net, 10 lang), B: 100 (20 db, 10 th, 30 lang),
   C: 1000 (300 net, 50 lang), D: 200 (100 db, 100 th, 150 lang),
   I: 50 (25 db, 15 th, 50 lang), J: 50 (15 db, 25 th, 25 lang). *)
let node_specs =
  (* (name, total, db, net, th, lang) *)
  [|
    ("A", 300, 30, 80, 0, 10);
    ("B", 100, 20, 0, 10, 30);
    ("C", 1000, 0, 300, 0, 50);
    ("D", 200, 100, 0, 100, 150);
    ("I", 50, 25, 0, 15, 50);
    ("J", 50, 15, 0, 25, 25);
  |]

let build_database spec =
  let _, total, db, net, th, lang = spec in
  let index = Local_index.create universe in
  let next_id = ref 0 in
  let add_doc topics =
    Local_index.add index (Document.make ~id:!next_id ~topics ());
    incr next_id
  in
  (* Multi-topic documents overlap "databases" with "languages" so the
     conjunctive query has real answers. *)
  let db_lang = min db lang in
  for _ = 1 to db_lang do
    add_doc [ 0; 3 ]
  done;
  for _ = 1 to db - db_lang do
    add_doc [ 0 ]
  done;
  for _ = 1 to lang - db_lang do
    add_doc [ 3 ]
  done;
  for _ = 1 to net do
    add_doc [ 1 ]
  done;
  for _ = 1 to th do
    add_doc [ 2 ]
  done;
  (* Topic-less filler up to the advertised total. *)
  while Local_index.size index < total do
    add_doc []
  done;
  index

let indices = Array.map build_database node_specs

let name v =
  let n, _, _, _, _, _ = node_specs.(v) in
  n

(* The overlay: A-B, A-C, A-D, D-I, D-J. *)
let graph = Graph.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (3, 4); (3, 5) ]

let network =
  Network.create ~graph
    ~content:(Network.content_of_local_indices indices)
    ~scheme:Scheme.Cri_kind ()

let () =
  Printf.printf "\nCompound RI at node A (one row per neighbor):\n";
  let ri = Network.ri network 0 in
  List.iter
    (fun peer ->
      match Scheme.row ri ~peer with
      | Some (Scheme.Vector s) ->
          Printf.printf "  via %s: %4.0f documents  (db=%.0f net=%.0f th=%.0f lang=%.0f)\n"
            (name peer) s.Summary.total (Summary.get s 0) (Summary.get s 1)
            (Summary.get s 2) (Summary.get s 3)
      | _ -> ())
    (Scheme.peers ri)

let query = Workload.query ~topics:[ 0; 3 ] ~stop:50

let () =
  Printf.printf "\nQuery: %s\n" (Format.asprintf "%a" (Workload.pp universe) query);
  Printf.printf "Goodness estimates at A (paper: B=6, C=0, D=75):\n";
  let ri = Network.ri network 0 in
  List.iter
    (fun (peer, g) -> Printf.printf "  %s: %.1f\n" (name peer) g)
    (Scheme.rank ri ~query:(Network.project_query network query.Workload.topics)
       ~exclude:[])

let () =
  Printf.printf "\nRoute (traced message by message):\n";
  let outcome =
    Query.run network ~origin:0 ~query ~forwarding:Query.Ri_guided
      ~on_event:(fun event ->
        match event with
        | Query.Forwarded { sender; receiver } ->
            Printf.printf "  %s -> %s  (forward)\n" (name sender) (name receiver)
        | Query.Returned { sender; receiver } ->
            Printf.printf "  %s -> %s  (return)\n" (name sender) (name receiver)
        | Query.Results { at; count } ->
            Printf.printf "  %s reports %d matching documents\n" (name at) count
        | Query.Timed_out _ | Query.Gave_up _ | Query.Reconciled _ ->
            (* Fault-injection events; this walkthrough runs fault-free. *)
            ())
  in
  Printf.printf "\nRouted query:   found %d documents, %d forwards, %d returns, %d result msgs\n"
    outcome.Query.found outcome.Query.counters.Message.query_forwards
    outcome.Query.counters.Message.query_returns
    outcome.Query.counters.Message.result_messages;
  let flood = Query.flood network ~origin:0 ~query () in
  Printf.printf "Flooded query:  found %d documents, %d forwards (every link pays)\n"
    flood.Query.found flood.Query.counters.Message.query_forwards;
  Printf.printf
    "\nThe routing index reached the stop condition with %d query messages; \
     flooding used %d.\n"
    (Query.messages outcome)
    (Query.messages flood)
