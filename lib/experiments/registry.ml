type experiment = {
  id : string;
  title : string;
  run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t;
}

let all =
  [
    { id = Fig13_schemes.id; title = Fig13_schemes.title; run = Fig13_schemes.run };
    { id = Fig14_results.id; title = Fig14_results.title; run = Fig14_results.run };
    {
      id = Fig15_compression.id;
      title = Fig15_compression.title;
      run = Fig15_compression.run;
    };
    { id = Fig16_cycles.id; title = Fig16_cycles.title; run = Fig16_cycles.run };
    { id = Fig17_topology.id; title = Fig17_topology.title; run = Fig17_topology.run };
    { id = Fig18_updates.id; title = Fig18_updates.title; run = Fig18_updates.run };
    {
      id = Fig19_update_cycles.id;
      title = Fig19_update_cycles.title;
      run = Fig19_update_cycles.run;
    };
    {
      id = Fig20_crossover.id;
      title = Fig20_crossover.title;
      run = Fig20_crossover.run;
    };
    { id = Flooding.id; title = Flooding.title; run = Flooding.run };
  ]

let extensions =
  [
    { id = Abl_hybrid.id; title = Abl_hybrid.title; run = Abl_hybrid.run };
    { id = Abl_horizon.id; title = Abl_horizon.title; run = Abl_horizon.run };
    { id = Abl_decay.id; title = Abl_decay.title; run = Abl_decay.run };
    { id = Abl_errors.id; title = Abl_errors.title; run = Abl_errors.run };
    { id = Abl_parallel.id; title = Abl_parallel.title; run = Abl_parallel.run };
    { id = Abl_batch.id; title = Abl_batch.title; run = Abl_batch.run };
    { id = Abl_storage.id; title = Abl_storage.title; run = Abl_storage.run };
    { id = Fig_faults.id; title = Fig_faults.title; run = Fig_faults.run };
    {
      id = Fig_recovery.id;
      title = Fig_recovery.title;
      run = Fig_recovery.run;
    };
  ]

let scale =
  [ { id = Fig_scale.id; title = Fig_scale.title; run = Fig_scale.run } ]

let everything = all @ extensions @ scale

let find id = List.find_opt (fun e -> e.id = id) everything

let ids = List.map (fun e -> e.id) all

let extension_ids = List.map (fun e -> e.id) extensions
