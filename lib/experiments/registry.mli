(** Catalogue of the paper's experiments. *)

type experiment = {
  id : string;  (** short handle, e.g. ["fig13"] *)
  title : string;
  run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t;
}

val all : experiment list
(** Figures 13-20 plus the flooding comparison, in paper order. *)

val extensions : experiment list
(** Ablations of extensions the paper sketches but does not evaluate:
    the hybrid CRI-HRI (Section 6.2), the HRI horizon and ERI decay as
    design variables, undercount/mixed/Gaussian error models (Section
    8.2's omitted runs), parallel forwarding (Section 3.1), and update
    batching (Section 4.3). *)

val scale : experiment list
(** The simulator-scale sweep ({!Fig_scale}) — not run by [risim all]
    (it measures the harness, not the paper, and the 100k sweep takes
    minutes); reachable through {!find} and the [risim scale]
    subcommand. *)

val everything : experiment list
(** [all @ extensions @ scale]. *)

val find : string -> experiment option
(** Looks in {!everything}. *)

val ids : string list
(** Ids of {!all} (the paper's figures only). *)

val extension_ids : string list
