(* Offline observability dashboard.

   Aggregates whatever artifacts a run produced — BENCH_results.json,
   Decision JSONL, a Prometheus metrics dump, a regression-gate outcome
   — into tables, rendered as Markdown or a self-contained HTML page.
   Each [of_*] ingester is independent: the report shows the sections it
   was given inputs for and nothing else. *)

open Ri_util

type table = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let cell_f fmt v = Printf.sprintf fmt v

(* ------------------------------------------------------------------ *)
(* Decision JSONL -> per-scheme routing-quality table.                  *)

type walk_acc = {
  mutable scheme : string;
  mutable decisions : int;
  mutable scored : int;
  mutable regret : int;
  mutable rank : int;
  mutable agree : int;
  mutable stale : int;
  mutable follows : int;
  mutable backtracks : int;
  mutable timeouts : int;
}

let of_decisions text =
  let walks : (int * int, walk_acc) Hashtbl.t = Hashtbl.create 64 in
  let walk key =
    match Hashtbl.find_opt walks key with
    | Some w -> w
    | None ->
        let w =
          {
            scheme = "unknown";
            decisions = 0;
            scored = 0;
            regret = 0;
            rank = 0;
            agree = 0;
            stale = 0;
            follows = 0;
            backtracks = 0;
            timeouts = 0;
          }
        in
        Hashtbl.add walks key w;
        w
  in
  let int_field name j =
    match Option.bind (Json.member name j) Json.to_int with
    | Some i -> i
    | None -> 0
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Json.parse line with
           | Error _ -> ()
           | Ok j -> (
               let w = walk (int_field "unit" j, int_field "trial" j) in
               match Option.bind (Json.member "kind" j) Json.to_string with
               | Some "decide" ->
                   w.decisions <- w.decisions + 1;
                   (if w.scheme = "unknown" then
                      match
                        Option.bind (Json.member "scheme" j) Json.to_string
                      with
                      | Some s -> w.scheme <- s
                      | None -> ());
                   w.stale <- w.stale + int_field "stale_demoted" j;
                   (match Json.member "candidates" j with
                   | Some (Json.Arr (_ :: _)) ->
                       w.scored <- w.scored + 1;
                       w.regret <- w.regret + int_field "regret" j;
                       let r = int_field "oracle_rank" j in
                       w.rank <- w.rank + r;
                       if r = 0 then w.agree <- w.agree + 1
                   | _ -> ())
               | Some "follow" -> w.follows <- w.follows + 1
               | Some "backtrack" -> w.backtracks <- w.backtracks + 1
               | Some "timeout" -> w.timeouts <- w.timeouts + 1
               | _ -> ()));
  if Hashtbl.length walks = 0 then None
  else begin
    (* Fold walks into per-scheme aggregates. *)
    let schemes : (string, int ref * walk_acc) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ w ->
        let n, acc =
          match Hashtbl.find_opt schemes w.scheme with
          | Some e -> e
          | None ->
              let e =
                ( ref 0,
                  {
                    scheme = w.scheme;
                    decisions = 0;
                    scored = 0;
                    regret = 0;
                    rank = 0;
                    agree = 0;
                    stale = 0;
                    follows = 0;
                    backtracks = 0;
                    timeouts = 0;
                  } )
              in
              Hashtbl.add schemes w.scheme e;
              e
        in
        incr n;
        acc.decisions <- acc.decisions + w.decisions;
        acc.scored <- acc.scored + w.scored;
        acc.regret <- acc.regret + w.regret;
        acc.rank <- acc.rank + w.rank;
        acc.agree <- acc.agree + w.agree;
        acc.stale <- acc.stale + w.stale;
        acc.follows <- acc.follows + w.follows;
        acc.backtracks <- acc.backtracks + w.backtracks;
        acc.timeouts <- acc.timeouts + w.timeouts)
      walks;
    let rows =
      Hashtbl.fold (fun s e acc -> (s, e) :: acc) schemes []
      |> List.sort compare
      |> List.map (fun (scheme, (walks, a)) ->
             let per_scored x =
               if a.scored = 0 then 0.
               else float_of_int x /. float_of_int a.scored
             in
             [
               scheme;
               string_of_int !walks;
               string_of_int a.decisions;
               string_of_int a.follows;
               string_of_int a.backtracks;
               (if a.follows = 0 then "0"
                else
                  cell_f "%.2f"
                    (float_of_int a.backtracks /. float_of_int a.follows));
               string_of_int a.timeouts;
               string_of_int a.stale;
               cell_f "%.2f" (per_scored a.rank);
               cell_f "%.0f%%" (100. *. per_scored a.agree);
               cell_f "%.2f" (per_scored a.regret);
             ])
    in
    Some
      {
        title = "Routing decisions vs oracle";
        header =
          [
            "scheme";
            "walks";
            "decisions";
            "follows";
            "backtracks";
            "bt/follow";
            "timeouts";
            "stale demoted";
            "mean oracle rank";
            "agreement";
            "mean regret";
          ];
        rows;
        notes =
          [
            "Oracle = ground-truth results reachable through each \
             candidate (deciding node removed, dead nodes impassable); \
             agreement = decisions whose first candidate was the oracle \
             best.";
          ];
      }
  end

(* ------------------------------------------------------------------ *)
(* Prometheus text dump -> flat value table.                            *)

let of_metrics text =
  let rows =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.rindex_opt line ' ' with
             | None -> None
             | Some i ->
                 Some
                   [
                     String.sub line 0 i;
                     String.sub line (i + 1) (String.length line - i - 1);
                   ])
  in
  if rows = [] then None
  else
    Some
      {
        title = "Metrics";
        header = [ "metric"; "value" ];
        rows;
        notes = [];
      }

(* ------------------------------------------------------------------ *)
(* BENCH_results.json -> timing tables.                                 *)

let num_rows json name fmt =
  match Json.member name json with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match Json.to_float v with
          | Some f -> Some [ k; cell_f fmt f ]
          | None -> None)
        kvs
  | _ -> []

let of_bench_config json =
  match Json.member "config" json with
  | Some (Json.Obj kvs) ->
      let rows = List.map (fun (k, v) -> [ k; Json.render v ]) kvs in
      Some
        {
          title = "Bench config";
          header = [ "key"; "value" ];
          rows;
          notes = [];
        }
  | _ -> None

let of_bench json =
  let tables = ref [] in
  let add t = tables := t :: !tables in
  let micro = num_rows json "micro_ns_per_run" "%.1f" in
  if micro <> [] then
    add
      {
        title = "Microbenchmarks";
        header = [ "micro"; "ns/run" ];
        rows = List.sort compare micro;
        notes = [];
      };
  let figures = num_rows json "figures_wall_clock_s" "%.3f" in
  if figures <> [] then
    add
      {
        title = "Figure wall clock";
        header = [ "figure"; "seconds" ];
        rows = figures;
        notes = [];
      };
  (match Json.member "phase_seconds" json with
  | Some (Json.Obj kvs) ->
      let rows =
        List.filter_map
          (fun (k, v) ->
            match
              ( Option.bind (Json.member "samples" v) Json.to_int,
                Option.bind (Json.member "total_s" v) Json.to_float )
            with
            | Some n, Some s ->
                Some [ k; string_of_int n; cell_f "%.3f" s ]
            | _ -> None)
          kvs
      in
      if rows <> [] then
        add
          {
            title = "Phase timings";
            header = [ "phase"; "samples"; "total s" ];
            rows;
            notes = [];
          }
  | _ -> ());
  let notes =
    match Json.member "meta" json with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Str s -> Some (Printf.sprintf "%s: %s" k s)
            | Json.Num _ -> (
                match Json.to_float v with
                | Some f -> Some (Printf.sprintf "%s: %g" k f)
                | None -> None)
            | _ -> None)
          kvs
    | _ -> []
  in
  (match of_bench_config json with
  | Some t -> add t
  | None -> ());
  match List.rev !tables with
  | [] -> []
  | first :: rest -> { first with notes = first.notes @ notes } :: rest

(* ------------------------------------------------------------------ *)
(* risim traffic JSON -> knee chart, decomposition bars, hotspots.      *)

(* Unlike the other ingesters, the traffic reader is strict: its input
   is a machine-written artifact with a fixed schema, so a malformed
   row is a pipeline bug and deserves a precise error, not a silently
   thinner table. *)

let bar width frac =
  let n = int_of_float (frac *. float_of_int width +. 0.5) in
  String.make (max 0 (min width n)) '#'

(* A stacked bar of the latency split: one char column per share slot,
   'q' = queue-wait, 's' = service, 'l' = link. *)
let stacked_bar width ~queue ~service ~link =
  let total = queue +. service +. link in
  if total <= 0. then ""
  else begin
    let w = float_of_int width in
    let nq = int_of_float (queue /. total *. w +. 0.5) in
    let ns = int_of_float (service /. total *. w +. 0.5) in
    let nl = max 0 (width - nq - ns) in
    String.make (min width nq) 'q'
    ^ String.make (max 0 (min (width - nq) ns)) 's'
    ^ String.make nl 'l'
  end

let of_traffic json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let points =
    match Json.member "points" json with
    | Some (Json.Arr ps) -> Ok ps
    | Some _ -> err "\"points\" is not an array"
    | None -> err "missing \"points\" array (not a risim traffic JSON?)"
  in
  let* points = points in
  let float_field i name j =
    match Option.bind (Json.member name j) Json.to_float with
    | Some f -> Ok f
    | None -> err "points[%d]: missing or non-numeric %S" i name
  in
  let bool_field i name j =
    match Json.member name j with
    | Some (Json.Bool b) -> Ok b
    | _ -> err "points[%d]: missing or non-boolean %S" i name
  in
  let rec parse_points i = function
    | [] -> Ok []
    | p :: tl ->
        let* qps = float_field i "qps" p in
        let* offered = float_field i "offered_per_s" p in
        let* completed = float_field i "completed" p in
        let* p50 = float_field i "p50_ms" p in
        let* p95 = float_field i "p95_ms" p in
        let* p99 = float_field i "p99_ms" p in
        let* queue = float_field i "queue_ms" p in
        let* service = float_field i "service_ms" p in
        let* link = float_field i "link_ms" p in
        let* share = float_field i "queue_share" p in
        let* saturated = bool_field i "saturated" p in
        let* hotspots =
          match Json.member "q_hotspots" p with
          | Some (Json.Arr hs) ->
              let rec go k = function
                | [] -> Ok []
                | h :: tl ->
                    let f name =
                      match Option.bind (Json.member name h) Json.to_float with
                      | Some v -> Ok v
                      | None ->
                          err "points[%d].q_hotspots[%d]: missing or \
                               non-numeric %S" i k name
                    in
                    let* node = f "node" in
                    let* wait = f "queue_wait_ns" in
                    let* busy = f "busy_ns" in
                    let* util = f "utilization" in
                    let* peak = f "peak_depth" in
                    let* critical = f "critical_hops" in
                    let* rest = go (k + 1) tl in
                    Ok ((node, wait, busy, util, peak, critical) :: rest)
              in
              go 0 hs
          | Some _ -> err "points[%d]: \"q_hotspots\" is not an array" i
          | None -> err "points[%d]: missing \"q_hotspots\" array" i
        in
        let* rest = parse_points (i + 1) tl in
        Ok
          ((qps, offered, completed, (p50, p95, p99), (queue, service, link),
            share, saturated, hotspots)
          :: rest)
  in
  let* rows = parse_points 0 points in
  let knee =
    match Json.member "knee_qps" json with
    | Some j -> Json.to_float j
    | None -> None
  in
  let max_p50 =
    List.fold_left
      (fun m (_, _, _, (p50, _, _), _, _, _, _) -> Float.max m p50)
      0. rows
  in
  let knee_table =
    {
      title = "Traffic sweep: latency vs offered QPS";
      header =
        [ "qps"; "offered/s"; "done"; "p50 ms"; "p95 ms"; "p99 ms"; "p50";
          "saturated" ];
      rows =
        List.map
          (fun (qps, offered, completed, (p50, p95, p99), _, _, sat, _) ->
            [
              cell_f "%g" qps;
              cell_f "%.1f" offered;
              cell_f "%.0f" completed;
              cell_f "%.3f" p50;
              cell_f "%.3f" p95;
              cell_f "%.3f" p99;
              (if max_p50 > 0. then bar 30 (p50 /. max_p50) else "");
              (if sat then "yes" else "no");
            ])
          rows;
      notes =
        [
          (match knee with
          | Some q -> Printf.sprintf "Saturation knee: ~%g QPS offered." q
          | None -> "Saturation knee: not reached within the sweep.");
        ];
    }
  in
  let decomp_table =
    {
      title = "Latency decomposition (per completed query)";
      header =
        [ "qps"; "queue ms"; "service ms"; "link ms"; "queue share";
          "q=queue s=service l=link" ];
      rows =
        List.map
          (fun (qps, _, _, _, (queue, service, link), share, _, _) ->
            [
              cell_f "%g" qps;
              cell_f "%.3f" queue;
              cell_f "%.3f" service;
              cell_f "%.3f" link;
              cell_f "%.0f%%" (100. *. share);
              stacked_bar 40 ~queue ~service ~link;
            ])
          rows;
      notes =
        [
          "Queue + service + link sums exactly to end-to-end latency \
           (integer nanoseconds); past the knee the queue share must \
           dominate.";
        ];
    }
  in
  let hotspot_rows =
    List.concat_map
      (fun (qps, _, _, _, _, _, _, hotspots) ->
        List.mapi
          (fun rank (node, wait, busy, util, peak, critical) ->
            [
              cell_f "%g" qps;
              string_of_int (rank + 1);
              cell_f "%.0f" node;
              cell_f "%.3f" (wait /. 1e6);
              cell_f "%.3f" (busy /. 1e6);
              cell_f "%.1f%%" (100. *. util);
              cell_f "%.0f" peak;
              cell_f "%.0f" critical;
            ])
          hotspots)
      rows
  in
  let tables =
    [ knee_table; decomp_table ]
    @
    if hotspot_rows = [] then []
    else
      [
        {
          title = "Hotspot nodes (top-K by accumulated queue wait)";
          header =
            [ "qps"; "rank"; "node"; "wait ms"; "busy ms"; "util"; "peak";
              "critical" ];
          rows = hotspot_rows;
          notes =
            [
              "Critical = completed queries whose largest single \
               queue-wait hop was at this node.";
            ];
        };
      ]
  in
  Ok tables

(* Timeline JSONL -> per-(unit,trial) bin table.  Strict for the same
   reason as [of_traffic]: each line is machine-written. *)
let of_timeline text =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let* rows =
    let rec go = function
      | [] -> Ok []
      | (ln, line) :: tl ->
          let* j =
            match Json.parse line with
            | Ok j -> Ok j
            | Error e -> err "line %d: %s" ln e
          in
          let f name =
            match Option.bind (Json.member name j) Json.to_int with
            | Some v -> Ok v
            | None -> err "line %d: missing or non-integer %S" ln name
          in
          let* unit = f "unit" in
          let* trial = f "trial" in
          let* bin = f "bin" in
          let* start_ns = f "start_ns" in
          let* arrivals = f "arrivals" in
          let* completions = f "completions" in
          let* depth_sum = f "depth_sum" in
          let* samples = f "samples" in
          let* peak = f "depth_peak" in
          let* rest = go tl in
          Ok
            ([
               string_of_int unit;
               string_of_int trial;
               string_of_int bin;
               cell_f "%.2f" (float_of_int start_ns /. 1e6);
               string_of_int arrivals;
               string_of_int completions;
               (if samples = 0 then "0.00"
                else
                  cell_f "%.2f"
                    (float_of_int depth_sum /. float_of_int samples));
               string_of_int peak;
             ]
            :: rest)
    in
    go lines
  in
  if rows = [] then err "no timeline records"
  else
    Ok
      {
        title = "Traffic timeline (logical-time bins)";
        header =
          [ "unit"; "trial"; "bin"; "start ms"; "arrivals"; "completions";
            "mean depth"; "peak depth" ];
        rows;
        notes =
          [
            "Depth is the engine-wide waiting backlog (in-service \
             messages excluded) sampled at each arrival/completion in \
             the bin; times are logical.";
          ];
      }

(* ------------------------------------------------------------------ *)
(* Regression gate -> table.                                            *)

let of_regression (o : Regress.outcome) =
  let row suffix (v : Regress.verdict) =
    [
      v.name ^ suffix;
      cell_f "%.1f" v.baseline_ns;
      cell_f "%.1f" v.current_ns;
      cell_f "%+.1f%%" ((v.ratio -. 1.) *. 100.);
      (if v.regressed then "REGRESSED" else "ok");
    ]
  in
  {
    title = "Regression gate";
    header = [ "micro"; "baseline ns"; "current ns"; "delta"; "verdict" ];
    rows =
      List.map (row "") o.verdicts
      @ List.map (fun n -> [ n; "-"; "-"; "-"; "missing" ]) o.missing
      @ List.map (row " (p99)") o.p99_verdicts;
    notes =
      Printf.sprintf "Threshold: +%.0f%% per microbenchmark." o.threshold
      :: (match o.p99_note with Some n -> [ n ] | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)

let render_markdown ~title tables =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s\n" title;
  List.iter
    (fun t ->
      Printf.bprintf buf "\n## %s\n\n" t.title;
      Printf.bprintf buf "| %s |\n" (String.concat " | " t.header);
      Printf.bprintf buf "|%s\n"
        (String.concat "" (List.map (fun _ -> " --- |") t.header));
      List.iter
        (fun row -> Printf.bprintf buf "| %s |\n" (String.concat " | " row))
        t.rows;
      List.iter (fun n -> Printf.bprintf buf "\n%s\n" n) t.notes)
    tables;
  if tables = [] then
    Buffer.add_string buf "\nNo inputs given — nothing to report.\n";
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html ~title tables =
  let buf = Buffer.create 8192 in
  Printf.bprintf buf
    "<!DOCTYPE html>\n\
     <html><head><meta charset=\"utf-8\"><title>%s</title>\n\
     <style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse;margin:1em \
     0}th,td{border:1px solid #999;padding:0.3em 0.7em;text-align:left}th{background:#eee}\n\
     td.num{text-align:right}caption{font-weight:bold;text-align:left;padding:0.3em \
     0}.note{color:#555;font-size:0.9em}</style></head><body>\n\
     <h1>%s</h1>\n"
    (html_escape title) (html_escape title);
  List.iter
    (fun t ->
      Printf.bprintf buf "<h2>%s</h2>\n<table>\n<tr>" (html_escape t.title);
      List.iter
        (fun h -> Printf.bprintf buf "<th>%s</th>" (html_escape h))
        t.header;
      Buffer.add_string buf "</tr>\n";
      List.iter
        (fun row ->
          Buffer.add_string buf "<tr>";
          List.iter
            (fun c -> Printf.bprintf buf "<td>%s</td>" (html_escape c))
            row;
          Buffer.add_string buf "</tr>\n")
        t.rows;
      Buffer.add_string buf "</table>\n";
      List.iter
        (fun n ->
          Printf.bprintf buf "<p class=\"note\">%s</p>\n" (html_escape n))
        t.notes)
    tables;
  if tables = [] then
    Buffer.add_string buf "<p>No inputs given — nothing to report.</p>\n";
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
