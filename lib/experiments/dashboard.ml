(* Offline observability dashboard.

   Aggregates whatever artifacts a run produced — BENCH_results.json,
   Decision JSONL, a Prometheus metrics dump, a regression-gate outcome
   — into tables, rendered as Markdown or a self-contained HTML page.
   Each [of_*] ingester is independent: the report shows the sections it
   was given inputs for and nothing else. *)

open Ri_util

type table = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let cell_f fmt v = Printf.sprintf fmt v

(* ------------------------------------------------------------------ *)
(* Decision JSONL -> per-scheme routing-quality table.                  *)

type walk_acc = {
  mutable scheme : string;
  mutable decisions : int;
  mutable scored : int;
  mutable regret : int;
  mutable rank : int;
  mutable agree : int;
  mutable stale : int;
  mutable follows : int;
  mutable backtracks : int;
  mutable timeouts : int;
}

let of_decisions text =
  let walks : (int * int, walk_acc) Hashtbl.t = Hashtbl.create 64 in
  let walk key =
    match Hashtbl.find_opt walks key with
    | Some w -> w
    | None ->
        let w =
          {
            scheme = "unknown";
            decisions = 0;
            scored = 0;
            regret = 0;
            rank = 0;
            agree = 0;
            stale = 0;
            follows = 0;
            backtracks = 0;
            timeouts = 0;
          }
        in
        Hashtbl.add walks key w;
        w
  in
  let int_field name j =
    match Option.bind (Json.member name j) Json.to_int with
    | Some i -> i
    | None -> 0
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Json.parse line with
           | Error _ -> ()
           | Ok j -> (
               let w = walk (int_field "unit" j, int_field "trial" j) in
               match Option.bind (Json.member "kind" j) Json.to_string with
               | Some "decide" ->
                   w.decisions <- w.decisions + 1;
                   (if w.scheme = "unknown" then
                      match
                        Option.bind (Json.member "scheme" j) Json.to_string
                      with
                      | Some s -> w.scheme <- s
                      | None -> ());
                   w.stale <- w.stale + int_field "stale_demoted" j;
                   (match Json.member "candidates" j with
                   | Some (Json.Arr (_ :: _)) ->
                       w.scored <- w.scored + 1;
                       w.regret <- w.regret + int_field "regret" j;
                       let r = int_field "oracle_rank" j in
                       w.rank <- w.rank + r;
                       if r = 0 then w.agree <- w.agree + 1
                   | _ -> ())
               | Some "follow" -> w.follows <- w.follows + 1
               | Some "backtrack" -> w.backtracks <- w.backtracks + 1
               | Some "timeout" -> w.timeouts <- w.timeouts + 1
               | _ -> ()));
  if Hashtbl.length walks = 0 then None
  else begin
    (* Fold walks into per-scheme aggregates. *)
    let schemes : (string, int ref * walk_acc) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ w ->
        let n, acc =
          match Hashtbl.find_opt schemes w.scheme with
          | Some e -> e
          | None ->
              let e =
                ( ref 0,
                  {
                    scheme = w.scheme;
                    decisions = 0;
                    scored = 0;
                    regret = 0;
                    rank = 0;
                    agree = 0;
                    stale = 0;
                    follows = 0;
                    backtracks = 0;
                    timeouts = 0;
                  } )
              in
              Hashtbl.add schemes w.scheme e;
              e
        in
        incr n;
        acc.decisions <- acc.decisions + w.decisions;
        acc.scored <- acc.scored + w.scored;
        acc.regret <- acc.regret + w.regret;
        acc.rank <- acc.rank + w.rank;
        acc.agree <- acc.agree + w.agree;
        acc.stale <- acc.stale + w.stale;
        acc.follows <- acc.follows + w.follows;
        acc.backtracks <- acc.backtracks + w.backtracks;
        acc.timeouts <- acc.timeouts + w.timeouts)
      walks;
    let rows =
      Hashtbl.fold (fun s e acc -> (s, e) :: acc) schemes []
      |> List.sort compare
      |> List.map (fun (scheme, (walks, a)) ->
             let per_scored x =
               if a.scored = 0 then 0.
               else float_of_int x /. float_of_int a.scored
             in
             [
               scheme;
               string_of_int !walks;
               string_of_int a.decisions;
               string_of_int a.follows;
               string_of_int a.backtracks;
               (if a.follows = 0 then "0"
                else
                  cell_f "%.2f"
                    (float_of_int a.backtracks /. float_of_int a.follows));
               string_of_int a.timeouts;
               string_of_int a.stale;
               cell_f "%.2f" (per_scored a.rank);
               cell_f "%.0f%%" (100. *. per_scored a.agree);
               cell_f "%.2f" (per_scored a.regret);
             ])
    in
    Some
      {
        title = "Routing decisions vs oracle";
        header =
          [
            "scheme";
            "walks";
            "decisions";
            "follows";
            "backtracks";
            "bt/follow";
            "timeouts";
            "stale demoted";
            "mean oracle rank";
            "agreement";
            "mean regret";
          ];
        rows;
        notes =
          [
            "Oracle = ground-truth results reachable through each \
             candidate (deciding node removed, dead nodes impassable); \
             agreement = decisions whose first candidate was the oracle \
             best.";
          ];
      }
  end

(* ------------------------------------------------------------------ *)
(* Prometheus text dump -> flat value table.                            *)

let of_metrics text =
  let rows =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.rindex_opt line ' ' with
             | None -> None
             | Some i ->
                 Some
                   [
                     String.sub line 0 i;
                     String.sub line (i + 1) (String.length line - i - 1);
                   ])
  in
  if rows = [] then None
  else
    Some
      {
        title = "Metrics";
        header = [ "metric"; "value" ];
        rows;
        notes = [];
      }

(* ------------------------------------------------------------------ *)
(* BENCH_results.json -> timing tables.                                 *)

let num_rows json name fmt =
  match Json.member name json with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match Json.to_float v with
          | Some f -> Some [ k; cell_f fmt f ]
          | None -> None)
        kvs
  | _ -> []

let of_bench_config json =
  match Json.member "config" json with
  | Some (Json.Obj kvs) ->
      let rows = List.map (fun (k, v) -> [ k; Json.render v ]) kvs in
      Some
        {
          title = "Bench config";
          header = [ "key"; "value" ];
          rows;
          notes = [];
        }
  | _ -> None

let of_bench json =
  let tables = ref [] in
  let add t = tables := t :: !tables in
  let micro = num_rows json "micro_ns_per_run" "%.1f" in
  if micro <> [] then
    add
      {
        title = "Microbenchmarks";
        header = [ "micro"; "ns/run" ];
        rows = List.sort compare micro;
        notes = [];
      };
  let figures = num_rows json "figures_wall_clock_s" "%.3f" in
  if figures <> [] then
    add
      {
        title = "Figure wall clock";
        header = [ "figure"; "seconds" ];
        rows = figures;
        notes = [];
      };
  (match Json.member "phase_seconds" json with
  | Some (Json.Obj kvs) ->
      let rows =
        List.filter_map
          (fun (k, v) ->
            match
              ( Option.bind (Json.member "samples" v) Json.to_int,
                Option.bind (Json.member "total_s" v) Json.to_float )
            with
            | Some n, Some s ->
                Some [ k; string_of_int n; cell_f "%.3f" s ]
            | _ -> None)
          kvs
      in
      if rows <> [] then
        add
          {
            title = "Phase timings";
            header = [ "phase"; "samples"; "total s" ];
            rows;
            notes = [];
          }
  | _ -> ());
  let notes =
    match Json.member "meta" json with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Str s -> Some (Printf.sprintf "%s: %s" k s)
            | Json.Num _ -> (
                match Json.to_float v with
                | Some f -> Some (Printf.sprintf "%s: %g" k f)
                | None -> None)
            | _ -> None)
          kvs
    | _ -> []
  in
  (match of_bench_config json with
  | Some t -> add t
  | None -> ());
  match List.rev !tables with
  | [] -> []
  | first :: rest -> { first with notes = first.notes @ notes } :: rest

(* ------------------------------------------------------------------ *)
(* Regression gate -> table.                                            *)

let of_regression (o : Regress.outcome) =
  let row suffix (v : Regress.verdict) =
    [
      v.name ^ suffix;
      cell_f "%.1f" v.baseline_ns;
      cell_f "%.1f" v.current_ns;
      cell_f "%+.1f%%" ((v.ratio -. 1.) *. 100.);
      (if v.regressed then "REGRESSED" else "ok");
    ]
  in
  {
    title = "Regression gate";
    header = [ "micro"; "baseline ns"; "current ns"; "delta"; "verdict" ];
    rows =
      List.map (row "") o.verdicts
      @ List.map (fun n -> [ n; "-"; "-"; "-"; "missing" ]) o.missing
      @ List.map (row " (p99)") o.p99_verdicts;
    notes =
      Printf.sprintf "Threshold: +%.0f%% per microbenchmark." o.threshold
      :: (match o.p99_note with Some n -> [ n ] | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)

let render_markdown ~title tables =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s\n" title;
  List.iter
    (fun t ->
      Printf.bprintf buf "\n## %s\n\n" t.title;
      Printf.bprintf buf "| %s |\n" (String.concat " | " t.header);
      Printf.bprintf buf "|%s\n"
        (String.concat "" (List.map (fun _ -> " --- |") t.header));
      List.iter
        (fun row -> Printf.bprintf buf "| %s |\n" (String.concat " | " row))
        t.rows;
      List.iter (fun n -> Printf.bprintf buf "\n%s\n" n) t.notes)
    tables;
  if tables = [] then
    Buffer.add_string buf "\nNo inputs given — nothing to report.\n";
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html ~title tables =
  let buf = Buffer.create 8192 in
  Printf.bprintf buf
    "<!DOCTYPE html>\n\
     <html><head><meta charset=\"utf-8\"><title>%s</title>\n\
     <style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse;margin:1em \
     0}th,td{border:1px solid #999;padding:0.3em 0.7em;text-align:left}th{background:#eee}\n\
     td.num{text-align:right}caption{font-weight:bold;text-align:left;padding:0.3em \
     0}.note{color:#555;font-size:0.9em}</style></head><body>\n\
     <h1>%s</h1>\n"
    (html_escape title) (html_escape title);
  List.iter
    (fun t ->
      Printf.bprintf buf "<h2>%s</h2>\n<table>\n<tr>" (html_escape t.title);
      List.iter
        (fun h -> Printf.bprintf buf "<th>%s</th>" (html_escape h))
        t.header;
      Buffer.add_string buf "</tr>\n";
      List.iter
        (fun row ->
          Buffer.add_string buf "<tr>";
          List.iter
            (fun c -> Printf.bprintf buf "<td>%s</td>" (html_escape c))
            row;
          Buffer.add_string buf "</tr>\n")
        t.rows;
      Buffer.add_string buf "</table>\n";
      List.iter
        (fun n ->
          Printf.bprintf buf "<p class=\"note\">%s</p>\n" (html_escape n))
        t.notes)
    tables;
  if tables = [] then
    Buffer.add_string buf "<p>No inputs given — nothing to report.</p>\n";
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
