(** Deterministic chaos checker for the partition & recovery plane.

    Each {e schedule} is a bounded, seeded fault scenario: build a
    small converged tree network, then replay a fixed number of steps
    drawn from the schedule's private PRNG — crash-stops, recoveries,
    partition heals, content moves (announced by corrective waves) and
    probe queries.  After the last step the harness forces full
    quiescence (heal + recover everyone + anti-entropy to a repair-free
    round) and checks the plane's invariants:

    - {b fixpoint}: every RI row equals the row of a fault-free twin
      network that saw the exact same content moves — crash-recovery
      plus anti-entropy must reconverge to the unique fixpoint, not
      merely to something plausible (requires [min_update = 0] and a
      zero distance floor, which the chaos config pins);
    - {b no-cross-cut}: while a partition is active, no query forward
      crosses the severed cut;
    - {b no-resurrection}: a row for a certified-dead peer never
      reappears while the peer stays dead (no wave may launder a
      corpse's stale aggregate back into a repaired index);
    - {b recall}: the post-quiescence query finds at least as many
      results as the fault-free twin (with equal rows and a quiesced
      plan it must find exactly as many).

    Every violation is replayable from its [(seed, schedule)] pair —
    the harness re-derives the whole scenario from those two integers. *)

open Ri_util
open Ri_content
open Ri_core
open Ri_p2p
open Ri_sim

type violation = {
  v_seed : int;
  v_schedule : int;
  v_step : int;  (** step index, or [-1] for the final quiescence checks *)
  v_invariant : string;
  v_detail : string;
}

type outcome = {
  c_schedules : int;
  c_steps : int;  (** steps executed across all schedules *)
  c_queries : int;  (** probe + final queries run *)
  c_violations : violation list;
}

(* The schedule stream is decoupled from the trial stream the network
   build consumes — mirroring [Fault]'s plan stream — so the scenario
   script never perturbs topology, placement or RI construction. *)
let schedule_rng ~seed ~schedule =
  Prng.create ((seed * 0x1000003) lxor (schedule * 0x9e3779b1) lxor 0xc4a05)

let fractions = [| 0.1; 0.2; 0.3; 0.5 |]

(* Exact-fixpoint settings: a tree overlay (unique update paths), no
   significance floor of either kind (every change re-propagates, so
   the fault-free twin's rows are the exact aggregates), and the scheme
   cycling per schedule so all three index kinds face the chaos. *)
let config_for ~nodes ~seed schedule =
  let base = Config.scaled Config.base ~num_nodes:nodes in
  let search =
    match schedule mod 3 with
    | 0 -> Config.Ri Config.cri
    | 1 -> Config.Ri (Config.hri base)
    | _ -> Config.Ri (Config.eri base)
  in
  {
    base with
    Config.topology = Config.Tree;
    search;
    min_update = 0.;
    update_distance_floor = 0.;
    seed;
  }

let spec_for rng =
  {
    Fault.none with
    Fault.partition = fractions.(Prng.int rng (Array.length fractions));
    heal_after = None;
    retries = 2;
    backoff = 0;
  }

(* Deterministic rejection sampling; [-1] when nothing qualifies. *)
let pick rng n ok =
  let tries = ref 0 and found = ref (-1) in
  while !found < 0 && !tries < 64 * n do
    let v = Prng.int rng n in
    incr tries;
    if ok v then found := v
  done;
  !found

(* A content move applied identically to both worlds: [delta] matching
   documents leave [donor] for [recipient], shifting each query topic
   of both placements' summaries.  The announcement waves differ — the
   chaos network's run through the plan — but the world does not. *)
let apply_move (p : Placement.t) ~topics v delta =
  let s = p.Placement.summaries.(v) in
  let by_topic = Array.copy s.Summary.by_topic in
  List.iter
    (fun t -> by_topic.(t) <- Float.max 0. (by_topic.(t) +. delta))
    topics;
  let s' =
    Summary.make ~total:(Float.max 0. (s.Summary.total +. delta)) ~by_topic
  in
  p.Placement.summaries.(v) <- s';
  p.Placement.matches.(v) <-
    max 0 (p.Placement.matches.(v) + int_of_float delta);
  s'

let ae_round_cap = 64

let run_schedule ~nodes ~steps ~seed ~sabotage schedule =
  let rng = schedule_rng ~seed ~schedule in
  let cfg = config_for ~nodes ~seed schedule in
  let spec = spec_for rng in
  let trial = schedule in
  (* Two builds of the same trial: [faulty] lives through the schedule,
     [clean] sees only the content moves.  [mutable_placement] gives
     each its own placement arrays (and bypasses the setup cache, so
     the twins never share mutable state). *)
  let faulty = Trial.build ~purpose:Trial.For_update ~mutable_placement:true cfg ~trial in
  let clean = Trial.build ~purpose:Trial.For_update ~mutable_placement:true cfg ~trial in
  let n = Network.size faulty.Trial.network in
  let plan =
    Fault.make spec ~neighbors:(Network.neighbors faulty.Trial.network)
      ~seed:cfg.Config.seed ~trial ~nodes:n ~protect:[]
  in
  let counters = Message.create () in
  let clean_counters = Message.create () in
  let topics = faulty.Trial.query.Workload.topics in
  let images = Hashtbl.create 8 in
  let violations = ref [] in
  let queries = ref 0 in
  let steps_run = ref 0 in
  let violate ~step invariant detail =
    violations :=
      {
        v_seed = seed;
        v_schedule = schedule;
        v_step = step;
        v_invariant = invariant;
        v_detail = detail;
      }
      :: !violations
  in
  let live v = not (Fault.is_dead plan v) in
  let recover_node v =
    let rejoin =
      match Hashtbl.find_opt images v with
      | Some bytes when v land 1 = 1 -> Churn.Stale_state bytes
      | _ -> Churn.Amnesiac
    in
    Churn.recover faulty.Trial.network v ~rejoin ~plan ~counters
  in
  let probe_query ~step =
    let origin = pick rng n live in
    if origin >= 0 then begin
      incr queries;
      let qrng = Prng.create (Prng.int rng 0x3FFFFFFF) in
      (* A sender cannot see the cut, so it may well *attempt* a
         cross-cut forward — the invariant is that every such attempt
         times out (the message is lost in the cut) rather than being
         delivered: cross-cut attempts and cross-cut timeouts must
         balance exactly. *)
      let cross_forwards = ref 0 and cross_timeouts = ref 0 in
      let check = function
        | Query.Forwarded { sender; receiver } ->
            if not (Fault.same_side plan sender receiver) then
              incr cross_forwards
        | Query.Timed_out { sender; receiver; _ } ->
            if not (Fault.same_side plan sender receiver) then
              incr cross_timeouts
        | _ -> ()
      in
      ignore
        (Query.run ~on_event:check ~plan ~rng:qrng faulty.Trial.network
           ~origin ~query:faulty.Trial.query ~forwarding:Query.Ri_guided);
      if !cross_forwards <> !cross_timeouts then
        violate ~step "no-cross-cut"
          (Printf.sprintf
             "%d cross-cut forwards but only %d timed out — %d delivered \
              across an active cut"
             !cross_forwards !cross_timeouts
             (!cross_forwards - !cross_timeouts))
    end
  in
  (* Certified corpses must stay deleted while they stay dead: a wave
     or repair that rewrites the row has laundered stale state. *)
  let check_no_resurrection ~step =
    for u = 0 to n - 1 do
      if live u then
        List.iter
          (fun d ->
            if
              Fault.is_dead plan d
              && Scheme.row (Network.ri faulty.Trial.network u) ~peer:d
                 <> None
            then
              violate ~step "no-resurrection"
                (Printf.sprintf "node %d regrew a row for certified-dead %d"
                   u d))
          (Fault.known_dead_of plan u)
    done
  in
  for step = 0 to steps - 1 do
    incr steps_run;
    (match Prng.int rng 8 with
    | 0 | 1 ->
        (* Crash a live node; persist odd victims' rows first so their
           later rejoin replays a genuinely stale image. *)
        let v = pick rng n live in
        if v >= 0 then begin
          if v land 1 = 1 then
            Hashtbl.replace images v
              (Churn.persist_rows faulty.Trial.network v);
          Churn.crash_stop faulty.Trial.network v ~plan
        end
    | 2 ->
        let v = pick rng n (fun v -> Fault.is_dead plan v) in
        if v >= 0 then recover_node v
    | 3 -> Fault.heal_partition plan
    | 4 | 5 | 6 ->
        let donor =
          pick rng n (fun v ->
              live v && faulty.Trial.placement.Placement.matches.(v) > 0)
        in
        let recipient =
          if donor < 0 then -1 else pick rng n (fun v -> live v && v <> donor)
        in
        if donor >= 0 && recipient >= 0 then begin
          let take =
            min
              faulty.Trial.placement.Placement.matches.(donor)
              (1 + Prng.int rng 3)
          in
          let d = float_of_int take in
          let fd = apply_move faulty.Trial.placement ~topics donor (-.d) in
          let fr = apply_move faulty.Trial.placement ~topics recipient d in
          let cd = apply_move clean.Trial.placement ~topics donor (-.d) in
          let cr = apply_move clean.Trial.placement ~topics recipient d in
          Update.local_change ~plan faulty.Trial.network ~origin:donor
            ~summary:fd ~counters;
          Update.local_change ~plan faulty.Trial.network ~origin:recipient
            ~summary:fr ~counters;
          Update.local_change clean.Trial.network ~origin:donor ~summary:cd
            ~counters:clean_counters;
          Update.local_change clean.Trial.network ~origin:recipient
            ~summary:cr ~counters:clean_counters
        end
    | _ -> probe_query ~step);
    check_no_resurrection ~step
  done;
  (* Quiescence: heal, bring everyone back, silence the weather, and
     let anti-entropy run dry. *)
  Fault.heal_partition plan;
  Fault.quiesce plan;
  for v = 0 to n - 1 do
    if Fault.is_dead plan v then recover_node v
  done;
  let rounds = ref 0 and last = ref 1 in
  while !last > 0 && !rounds < ae_round_cap do
    last := Update.anti_entropy ~plan faulty.Trial.network ~counters;
    incr rounds
  done;
  if !last > 0 then
    violate ~step:(-1) "fixpoint"
      (Printf.sprintf "anti-entropy still repairing after %d rounds"
         ae_round_cap);
  (* The self-test hook: break one row after the repairs finished, so a
     healthy harness proves it would catch a broken reconciler. *)
  if sabotage then begin
    let u = pick rng n (fun v -> Network.degree faulty.Trial.network v > 0) in
    if u >= 0 then
      match Scheme.peers (Network.ri faulty.Trial.network u) with
      | peer :: _ -> Scheme.remove_row (Network.ri faulty.Trial.network u) ~peer
      | [] -> ()
  end;
  (* Fixpoint: every row of the survivor equals the fault-free twin's,
     peer set included. *)
  for u = 0 to n - 1 do
    let fri = Network.ri faulty.Trial.network u in
    let cri = Network.ri clean.Trial.network u in
    let fp = List.sort compare (Scheme.peers fri) in
    let cp = List.sort compare (Scheme.peers cri) in
    if fp <> cp then
      violate ~step:(-1) "fixpoint"
        (Printf.sprintf "node %d: peer set {%s} != fault-free {%s}" u
           (String.concat "," (List.map string_of_int fp))
           (String.concat "," (List.map string_of_int cp)))
    else
      List.iter
        (fun peer ->
          match (Scheme.row fri ~peer, Scheme.row cri ~peer) with
          | Some f, Some c ->
              let d = Scheme.payload_rel_diff c f in
              if not (d <= 1e-9) then
                violate ~step:(-1) "fixpoint"
                  (Printf.sprintf
                     "node %d row for %d diverges from the fault-free \
                      fixpoint (rel diff %g)"
                     u peer d)
          | _ -> ())
        fp
  done;
  (* Recall: identical rows + a quiesced, all-alive plan must route the
     final query identically to the twin. *)
  let qseed = Prng.int rng 0x3FFFFFFF in
  let origin = Prng.int rng n in
  incr queries;
  let f_found =
    (Query.run ~plan ~rng:(Prng.create qseed) faulty.Trial.network ~origin
       ~query:faulty.Trial.query ~forwarding:Query.Ri_guided)
      .Query.found
  in
  let c_found =
    (Query.run ~rng:(Prng.create qseed) clean.Trial.network ~origin
       ~query:clean.Trial.query ~forwarding:Query.Ri_guided)
      .Query.found
  in
  if f_found < c_found then
    violate ~step:(-1) "recall"
      (Printf.sprintf "found %d results where the fault-free twin found %d"
         f_found c_found);
  (!steps_run, !queries, List.rev !violations)

let run ?(sabotage = false) ?only ~nodes ~schedules ~steps ~seed () =
  if nodes < 2 then invalid_arg "Chaos.run: nodes must be at least 2";
  if schedules < 1 then invalid_arg "Chaos.run: schedules must be positive";
  if steps < 0 then invalid_arg "Chaos.run: steps must be non-negative";
  let ids =
    match only with
    | Some s ->
        if s < 0 then invalid_arg "Chaos.run: schedule ids are non-negative";
        [ s ]
    | None -> List.init schedules (fun i -> i)
  in
  let total_steps = ref 0 and total_queries = ref 0 in
  let violations =
    List.concat_map
      (fun schedule ->
        let s, q, vs = run_schedule ~nodes ~steps ~seed ~sabotage schedule in
        total_steps := !total_steps + s;
        total_queries := !total_queries + q;
        vs)
      ids
  in
  {
    c_schedules = List.length ids;
    c_steps = !total_steps;
    c_queries = !total_queries;
    c_violations = violations;
  }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json o =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schedules\":%d,\"steps\":%d,\"queries\":%d,\"violations\":["
       o.c_schedules o.c_steps o.c_queries);
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"seed\":%d,\"schedule\":%d,\"step\":%d,\"invariant\":\"%s\",\
            \"detail\":\"%s\"}"
           v.v_seed v.v_schedule v.v_step (json_escape v.v_invariant)
           (json_escape v.v_detail)))
    o.c_violations;
  Buffer.add_string b "]}";
  Buffer.contents b
