(* Benchmark regression gate.

   Compares the [micro_ns_per_run] section of a fresh BENCH_results.json
   against a committed baseline.  Only the microbenchmarks are gated:
   they run under Bechamel's OLS fit and are stable to a few percent,
   whereas the figure wall-clock numbers swing with machine load and
   would make any useful threshold either deaf or flaky. *)

open Ri_util

type verdict = {
  name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;  (* current / baseline *)
  regressed : bool;
}

type outcome = {
  verdicts : verdict list;  (* baseline name order (sorted) *)
  missing : string list;  (* in the baseline but absent from results *)
  threshold : float;  (* percent slowdown tolerated *)
}

let default_threshold = 15.

let micro_map label json =
  match Json.member "micro_ns_per_run" json with
  | Some (Json.Obj kvs) ->
      let entries =
        List.filter_map
          (fun (k, v) ->
            match Json.to_float v with Some f -> Some (k, f) | None -> None)
          kvs
      in
      Ok (List.sort compare entries)
  | Some _ -> Error (label ^ ": micro_ns_per_run is not an object")
  | None -> Error (label ^ ": no micro_ns_per_run section (RI_MICRO=0 run?)")

let compare_values ~threshold ~baseline ~results =
  match (micro_map "baseline" baseline, micro_map "results" results) with
  | Error e, _ | _, Error e -> Error e
  | Ok base, Ok cur ->
      let verdicts, missing =
        List.fold_left
          (fun (vs, miss) (name, baseline_ns) ->
            match List.assoc_opt name cur with
            | None -> (vs, name :: miss)
            | Some current_ns ->
                let ratio =
                  if baseline_ns > 0. then current_ns /. baseline_ns else 1.
                in
                let regressed =
                  baseline_ns > 0.
                  && current_ns > baseline_ns *. (1. +. (threshold /. 100.))
                in
                ({ name; baseline_ns; current_ns; ratio; regressed } :: vs, miss))
          ([], []) base
      in
      (* Names only in the results are new benchmarks with nothing to
         compare against; they are simply not gated. *)
      Ok
        {
          verdicts = List.rev verdicts;
          missing = List.rev missing;
          threshold;
        }

let compare ?(threshold = default_threshold) ~baseline ~results () =
  match (Json.parse baseline, Json.parse results) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("results: " ^ e)
  | Ok b, Ok r -> compare_values ~threshold ~baseline:b ~results:r

let any_regressed o = List.exists (fun v -> v.regressed) o.verdicts

let render o =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "bench regression gate: %d micros, threshold +%.0f%%\n"
    (List.length o.verdicts) o.threshold;
  List.iter
    (fun v ->
      Printf.bprintf buf "  %-28s %10.1f ns -> %10.1f ns  %+6.1f%%%s\n" v.name
        v.baseline_ns v.current_ns
        ((v.ratio -. 1.) *. 100.)
        (if v.regressed then "  REGRESSED" else ""))
    o.verdicts;
  List.iter
    (fun name -> Printf.bprintf buf "  %-28s missing from results\n" name)
    o.missing;
  (if any_regressed o then
     Printf.bprintf buf "FAIL: regression over +%.0f%% detected\n" o.threshold
   else Printf.bprintf buf "OK: no micro regressed more than +%.0f%%\n"
          o.threshold);
  Buffer.contents buf
