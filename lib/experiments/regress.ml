(* Benchmark regression gate.

   Compares the [micro_ns_per_run] section of a fresh BENCH_results.json
   against a committed baseline.  Only the microbenchmarks are gated:
   they run under Bechamel's OLS fit and are stable to a few percent,
   whereas the figure wall-clock numbers swing with machine load and
   would make any useful threshold either deaf or flaky. *)

open Ri_util

type verdict = {
  name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;  (* current / baseline *)
  regressed : bool;
}

type outcome = {
  verdicts : verdict list;  (* baseline name order (sorted) *)
  missing : string list;  (* in the baseline but absent from results *)
  threshold : float;  (* percent slowdown tolerated *)
  p99_verdicts : verdict list;  (* tail gate rows; empty unless it ran *)
  p99_note : string option;  (* why the tail gate was skipped *)
}

let default_threshold = 15.

let micro_map label json =
  match Json.member "micro_ns_per_run" json with
  | Some (Json.Obj kvs) ->
      let entries =
        List.filter_map
          (fun (k, v) ->
            match Json.to_float v with Some f -> Some (k, f) | None -> None)
          kvs
      in
      Ok (List.sort compare entries)
  | Some _ -> Error (label ^ ": micro_ns_per_run is not an object")
  | None -> Error (label ^ ": no micro_ns_per_run section (RI_MICRO=0 run?)")

(* The p99 section written by the bench's tail-latency pass: each micro
   maps to an object carrying p50/p95/p99 in ns.  [None] when the file
   predates the pass (old baselines) — the tail gate then skips with a
   note rather than failing, so committed baselines age gracefully. *)
let quantile_map json =
  match Json.member "micro_quantiles_ns" json with
  | Some (Json.Obj kvs) ->
      Some
        (List.sort compare
           (List.filter_map
              (fun (k, v) ->
                match Option.bind (Json.member "p99" v) Json.to_float with
                | Some f -> Some (k, f)
                | None -> None)
              kvs))
  | _ -> None

(* Names only in the results are new benchmarks with nothing to compare
   against; they are simply not gated. *)
let judge ~threshold base cur =
  let verdicts, missing =
    List.fold_left
      (fun (vs, miss) (name, baseline_ns) ->
        match List.assoc_opt name cur with
        | None -> (vs, name :: miss)
        | Some current_ns ->
            let ratio =
              if baseline_ns > 0. then current_ns /. baseline_ns else 1.
            in
            let regressed =
              baseline_ns > 0.
              && current_ns > baseline_ns *. (1. +. (threshold /. 100.))
            in
            ({ name; baseline_ns; current_ns; ratio; regressed } :: vs, miss))
      ([], []) base
  in
  (List.rev verdicts, List.rev missing)

let compare_values ~gate_p99 ~threshold ~baseline ~results =
  match (micro_map "baseline" baseline, micro_map "results" results) with
  | Error e, _ | _, Error e -> Error e
  | Ok base, Ok cur ->
      let verdicts, missing = judge ~threshold base cur in
      let p99_verdicts, p99_note =
        if not gate_p99 then ([], None)
        else
          match (quantile_map baseline, quantile_map results) with
          | None, _ ->
              ([], Some "p99 gate skipped: baseline has no micro_quantiles_ns")
          | _, None ->
              ([], Some "p99 gate skipped: results have no micro_quantiles_ns")
          | Some b, Some c ->
              let vs, _miss = judge ~threshold b c in
              (vs, None)
      in
      Ok { verdicts; missing; threshold; p99_verdicts; p99_note }

let compare ?(threshold = default_threshold) ?(gate_p99 = false) ~baseline
    ~results () =
  match (Json.parse baseline, Json.parse results) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("results: " ^ e)
  | Ok b, Ok r -> compare_values ~gate_p99 ~threshold ~baseline:b ~results:r

let any_regressed o =
  List.exists (fun v -> v.regressed) o.verdicts
  || List.exists (fun v -> v.regressed) o.p99_verdicts

let render o =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "bench regression gate: %d micros, threshold +%.0f%%\n"
    (List.length o.verdicts) o.threshold;
  let row v =
    Printf.bprintf buf "  %-28s %10.1f ns -> %10.1f ns  %+6.1f%%%s\n" v.name
      v.baseline_ns v.current_ns
      ((v.ratio -. 1.) *. 100.)
      (if v.regressed then "  REGRESSED" else "")
  in
  List.iter row o.verdicts;
  List.iter
    (fun name -> Printf.bprintf buf "  %-28s missing from results\n" name)
    o.missing;
  (match o.p99_note with
  | Some note -> Printf.bprintf buf "%s\n" note
  | None -> ());
  if o.p99_verdicts <> [] then begin
    Printf.bprintf buf "p99 tail gate (RI_BENCH_P99): %d micros\n"
      (List.length o.p99_verdicts);
    List.iter row o.p99_verdicts
  end;
  (if any_regressed o then
     Printf.bprintf buf "FAIL: regression over +%.0f%% detected\n" o.threshold
   else Printf.bprintf buf "OK: no micro regressed more than +%.0f%%\n"
          o.threshold);
  Buffer.contents buf
