(* Annotated hop-tree replay of recorded routing decisions.

   Renders one query walk per (unit, trial) group: each decision point
   with its full candidate vector (estimated goodness next to oracle
   ground truth, staleness and update-wave lineage per row), the
   follow/backtrack/timeout skeleton as an indented tree, and a summary
   of the walk's rank regret against the oracle. *)

open Ri_obs

type summary = {
  decisions : int;
  follows : int;
  backtracks : int;
  timeouts : int;
  stale_demoted : int;
  mean_regret : float;  (* over decisions with candidates *)
  mean_oracle_rank : float;
  oracle_agreement : float;  (* fraction of decisions ranking truth first *)
}

let summarize records =
  let decisions = ref 0
  and follows = ref 0
  and backtracks = ref 0
  and timeouts = ref 0
  and stale_demoted = ref 0
  and scored = ref 0
  and regret_sum = ref 0
  and rank_sum = ref 0
  and agree = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Decision.Decide d ->
          incr decisions;
          stale_demoted := !stale_demoted + d.stale_demoted;
          if d.candidates <> [] then begin
            incr scored;
            regret_sum := !regret_sum + d.regret;
            rank_sum := !rank_sum + d.oracle_rank;
            if d.oracle_rank = 0 then incr agree
          end
      | Decision.Follow _ -> incr follows
      | Decision.Backtrack _ -> incr backtracks
      | Decision.Timeout _ -> incr timeouts
      | Decision.Stop _ -> ())
    records;
  let per_scored x =
    if !scored = 0 then 0. else float_of_int x /. float_of_int !scored
  in
  {
    decisions = !decisions;
    follows = !follows;
    backtracks = !backtracks;
    timeouts = !timeouts;
    stale_demoted = !stale_demoted;
    mean_regret = per_scored !regret_sum;
    mean_oracle_rank = per_scored !rank_sum;
    oracle_agreement = per_scored !agree;
  }

let bprint_walk buf ((u, t), records) =
  Printf.bprintf buf "== unit %d trial %d ==\n" u t;
  let depth = ref 0 in
  let pad () = Buffer.add_string buf (String.make (2 * !depth) ' ') in
  List.iter
    (fun r ->
      match r with
      | Decision.Decide d ->
          pad ();
          Printf.bprintf buf "decide @%d%s [%s]: " d.node
            (if d.from >= 0 then Printf.sprintf " (from %d)" d.from
             else " (origin)")
            d.scheme;
          if d.candidates = [] then Buffer.add_string buf "no candidates\n"
          else begin
            Printf.bprintf buf
              "%d candidates, oracle best %d at rank %d, regret %d%s\n"
              (List.length d.candidates)
              d.oracle_best d.oracle_rank d.regret
              (if d.stale_demoted > 0 then
                 Printf.sprintf ", %d stale demoted" d.stale_demoted
               else "");
            List.iteri
              (fun i c ->
                pad ();
                Printf.bprintf buf "  %s%-6d goodness=%-10.3f truth=%-6d wave=%d%s%s\n"
                  (if i = 0 then "> " else "  ")
                  c.Decision.peer c.goodness c.truth c.wave
                  (if c.stale then "  STALE" else "")
                  (if c.peer = d.oracle_best && i > 0 then "  <- oracle best"
                   else ""))
              d.candidates
          end
      | Decision.Follow f ->
          pad ();
          Printf.bprintf buf "follow %d -> %d (choice #%d)\n" f.node f.target
            f.rank;
          incr depth
      | Decision.Backtrack b ->
          pad ();
          Printf.bprintf buf "backtrack %d -> %d\n" b.node b.target;
          if !depth > 0 then decr depth
      | Decision.Timeout t' ->
          pad ();
          Printf.bprintf buf "timeout %d -> %d (attempt %d)\n" t'.node
            t'.target t'.attempt
      | Decision.Stop s ->
          depth := 0;
          Printf.bprintf buf
            "stop: %s — found=%d forwards=%d returns=%d visited=%d\n" s.reason
            s.found s.forwards s.returns s.visited)
    records;
  let s = summarize records in
  Printf.bprintf buf
    "summary: %d decisions, %d follows, %d backtracks, %d timeouts, mean \
     regret %.2f, mean oracle rank %.2f, oracle agreement %.0f%%\n"
    s.decisions s.follows s.backtracks s.timeouts s.mean_regret
    s.mean_oracle_rank
    (100. *. s.oracle_agreement)

let render groups =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf '\n';
      bprint_walk buf g)
    groups;
  if groups = [] then
    Buffer.add_string buf
      "no decision records (was the query run with provenance on?)\n";
  Buffer.contents buf
