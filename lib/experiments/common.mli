(** Shared helpers for the per-figure experiment modules. *)

val query_messages :
  ?pool:Ri_util.Pool.t ->
  Ri_sim.Config.t ->
  spec:Ri_sim.Runner.spec ->
  Ri_util.Stats.summary
(** Mean query-processing messages over trials, run to the confidence
    target.  Trials execute on [pool] (default the global [RI_JOBS]
    pool). *)

val update_messages :
  ?pool:Ri_util.Pool.t ->
  Ri_sim.Config.t ->
  spec:Ri_sim.Runner.spec ->
  Ri_util.Stats.summary
(** Mean messages for one propagated batch of updates. *)

val ri_searches : Ri_sim.Config.t -> (string * Ri_sim.Config.search) list
(** [CRI; HRI; ERI] with the config's parameters. *)

val all_searches : Ri_sim.Config.t -> (string * Ri_sim.Config.search) list
(** [CRI; HRI; ERI; No-RI]. *)
