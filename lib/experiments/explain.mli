(** Annotated hop-tree replay of {!Ri_obs.Decision} records.

    One walk per [(unit, trial)] group: decision points print their full
    candidate vector — the RI's goodness estimate next to the oracle's
    ground-truth reachable-result count, with staleness and update-wave
    lineage per row — and follow/backtrack/timeout records shape the
    indented tree.  The per-walk summary quantifies how often the index
    agreed with the oracle. *)

type summary = {
  decisions : int;
  follows : int;
  backtracks : int;
  timeouts : int;
  stale_demoted : int;
  mean_regret : float;
      (** mean count regret (oracle-best truth minus chosen truth), over
          decisions with at least one candidate *)
  mean_oracle_rank : float;
      (** mean position of the true-best candidate in forwarding order *)
  oracle_agreement : float;
      (** fraction of decisions whose first candidate was the oracle
          best (rank regret 0) *)
}

val summarize : Ri_obs.Decision.record list -> summary

val bprint_walk :
  Buffer.t -> (int * int) * Ri_obs.Decision.record list -> unit
(** Render one walk (header, tree, summary) into the buffer. *)

val render : ((int * int) * Ri_obs.Decision.record list) list -> string
(** Render every walk — feed it {!Ri_obs.Decision.records}. *)
