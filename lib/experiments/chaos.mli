(** Deterministic chaos checker for the partition & recovery plane.

    Replays bounded, seeded fault schedules — crash-stops, recoveries,
    partition heals, content moves, probe queries — against a small
    tree network, forces quiescence (heal + recover + anti-entropy to a
    repair-free round), and checks the recovery plane's invariants:
    exact reconvergence to the fault-free twin's fixpoint, no query
    forward across an active cut, no resurrection of a certified-dead
    peer's row, and no post-quiescence recall loss.  Every violation is
    replayable from its [(seed, schedule)] pair alone. *)

type violation = {
  v_seed : int;
  v_schedule : int;
  v_step : int;  (** step index, or [-1] for the final quiescence checks *)
  v_invariant : string;
      (** ["fixpoint"], ["no-cross-cut"], ["no-resurrection"] or
          ["recall"] *)
  v_detail : string;
}

type outcome = {
  c_schedules : int;
  c_steps : int;  (** steps executed across all schedules *)
  c_queries : int;  (** probe + final queries run *)
  c_violations : violation list;
}

val run :
  ?sabotage:bool ->
  ?only:int ->
  nodes:int ->
  schedules:int ->
  steps:int ->
  seed:int ->
  unit ->
  outcome
(** Run schedules [0 .. schedules-1] ([only] replays a single schedule
    id instead, e.g. from a reported violation).  [sabotage] (default
    [false]) deliberately deletes one reconciled row after the repairs
    finish, proving the fixpoint invariant would catch a broken
    reconciler.  Deterministic: the whole scenario — partition shape,
    victims, moves, probe origins — re-derives from [(seed, schedule)].
    @raise Invalid_argument on non-positive sizes. *)

val to_json : outcome -> string
(** One-line JSON object (schedules, steps, queries, violations with
    their replay coordinates) for the CI artifact. *)
