(** Recovery plane — beyond the paper.

    The fault sweep ({!Fig_faults}) measures steady-state degradation;
    this sweep measures the full damage → dip → heal → reconverge
    cycle.  At each partition fraction F, a connected cut severs F of
    the nodes from the rest, 5% of the nodes crash-stop (odd-numbered
    victims keeping a stale persisted row image, even ones losing
    everything), updates are lossy, and 75% of the query results drift
    under those faults.  The {e dip} query measures recall against the
    damaged network; then the cut heals, the weather quiesces, every
    victim rejoins ({!Ri_p2p.Churn.recover}) and digest-driven
    anti-entropy ({!Ri_p2p.Update.anti_entropy}) runs to a repair-free
    round; the {e restored} query measures what the repair machinery
    got back.  Both recalls are against the same fault-free baseline. *)

open Ri_sim
open Ri_p2p

let id = "recovery"

let title = "Recovery plane: recall dip and reconvergence vs partition size"

let paper_claim =
  "Beyond the paper (robustness): a partition plus crash-stop churn dips \
   recall roughly in proportion to the severed fraction; after healing, \
   crash-recovery plus anti-entropy restores recall to ~1.0 for every RI \
   scheme within a bounded number of repair rounds."

let fractions = [ 0.1; 0.3; 0.5 ]

let spec_at ~budget fraction =
  {
    Fault.update_loss = 0.1;
    update_delay = 0.05;
    delay_waves = 2;
    crash = 0.05;
    link_flap = 0.;
    drift = 0.75;
    partition = fraction;
    (* [Trial.run_recovery] heals explicitly at the start of its
       recovery phase; a wave-count trigger would race the drift. *)
    heal_after = None;
    stale_after = Some 1;
    retries = 2;
    backoff = 1;
    query_budget = budget;
  }

let recovery_cells (cfg : Config.t) ~spec =
  (* The adaptive trial rule follows restored recall (the acceptance
     metric); dip recall and the anti-entropy round count ride along in
     per-trial slots (distinct indices, so parallel trials never
     race). *)
  let dips = Array.make spec.Runner.max_trials Float.nan in
  let rounds = Array.make spec.Runner.max_trials Float.nan in
  let s =
    Runner.run spec (fun ~trial ->
        let m = Trial.run_recovery cfg ~trial in
        dips.(trial) <- m.Trial.r_dip_recall;
        rounds.(trial) <- float_of_int m.Trial.r_ae_rounds;
        m.Trial.r_restored_recall)
  in
  let mean a =
    let xs =
      Array.to_list a |> List.filter (fun x -> not (Float.is_nan x))
    in
    List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))
  in
  ( Report.cell_mean s,
    Report.cell_number ~decimals:2 (mean dips),
    Report.cell_number ~decimals:1 (mean rounds) )

let run ~base ~spec =
  let budget = Some (2 * base.Config.num_nodes) in
  let rows =
    List.concat_map
      (fun (name, search) ->
        let cells =
          List.map
            (fun f ->
              let fault = spec_at ~budget f in
              let cfg =
                { (Config.with_search base search) with Config.fault }
              in
              recovery_cells cfg ~spec)
            fractions
        in
        [
          Report.cell_text name
          :: Report.cell_text "restored recall"
          :: List.map (fun (a, _, _) -> a) cells;
          Report.cell_text ""
          :: Report.cell_text "dip recall"
          :: List.map (fun (_, b, _) -> b) cells;
          Report.cell_text ""
          :: Report.cell_text "AE rounds"
          :: List.map (fun (_, _, c) -> c) cells;
        ])
      (Common.ri_searches base)
  in
  Report.make ~id ~title ~paper_claim
    ~header:
      ("Search" :: "Metric"
      :: List.map (fun f -> Printf.sprintf "cut %.0f%%" (100. *. f)) fractions)
    ~rows
