(** Fault plane — beyond the paper.

    The paper's evaluation assumes a cooperative network; this sweep
    measures how each search mechanism degrades when it is not one.
    At each fault level L, update messages are lost with probability L
    (and delayed with L/2), L/4 of the nodes crash-stop without a
    goodbye, live links flap with L/20, and 75% of the query results
    are relocated beforehand by corrective waves subject to those same
    faults — so routing indices genuinely go stale.  Every RI scheme
    runs twice: once degrading gracefully (rows with detected update
    gaps fall back to No-RI random ranking) and once trusting stale
    rows.  Recall is the fraction of the fault-free result count still
    found; messages-per-result includes the lazy anti-entropy repairs
    the query triggers. *)

open Ri_sim
open Ri_p2p

let id = "faults"

let title = "Fault plane: recall and traffic vs update-loss rate"

let paper_claim =
  "Beyond the paper (robustness): recall degrades monotonically with the \
   fault rate for every mechanism; RI schemes that demote stale rows to \
   random ranking pay fewer messages per result than schemes trusting \
   garbage counts once loss reaches ~10%."

let levels = [ 0.0; 0.05; 0.1; 0.2; 0.4 ]

(* One knob drives the whole environment so the sweep stays
   one-dimensional; the ratios keep each fault class noticeable without
   letting one dominate.  The kill stream is shared across levels (same
   seed and trial), so a level's dead set is a superset of every lower
   level's — recall degradation is paired per-trial, not noise. *)
let spec_at ~fallback ~budget level =
  {
    Fault.update_loss = level;
    update_delay = level /. 2.;
    delay_waves = 2;
    crash = level /. 4.;
    link_flap = level /. 20.;
    drift = 0.75;
    partition = 0.;
    heal_after = None;
    (* Threshold 1: a single missed update is forgiven — the stored
       value is usually still serviceable and the next clean delivery
       heals the gap — but a row whose peer stayed silent twice is
       demoted.  That targets rows toward crash-stopped nodes (which
       re-mark on every wave that probes them, and advertise a subtree
       nothing can reach) and, as loss grows, the double-drop rows
       whose share rises with the square of the loss rate. *)
    stale_after = (if fallback then Some 1 else None);
    retries = 2;
    backoff = 1;
    query_budget = budget;
  }

let walk_budget (base : Config.t) = Some (2 * base.Config.num_nodes)

let faulty_cells (cfg : Config.t) ~spec =
  (* One Runner sweep drives both metrics: the adaptive rule follows
     messages-per-result, recall is stashed per trial (distinct slots,
     so parallel trials never race) and averaged over whatever trials
     the rule decided to run. *)
  let recalls = Array.make spec.Runner.max_trials Float.nan in
  let s =
    Runner.run spec (fun ~trial ->
        let m = Trial.run_query_faulty cfg ~trial in
        recalls.(trial) <- m.Trial.f_recall;
        m.Trial.f_messages_per_result)
  in
  let rs =
    Array.to_list recalls |> List.filter (fun x -> not (Float.is_nan x))
  in
  let recall =
    List.fold_left ( +. ) 0. rs /. float_of_int (max 1 (List.length rs))
  in
  (Report.cell_mean s, Report.cell_number ~decimals:2 recall)

let run ~base ~spec =
  let groups =
    List.concat_map
      (fun (name, search) ->
        [
          (name ^ " fallback", search, true, walk_budget base);
          (name ^ " trust-stale", search, false, walk_budget base);
        ])
      (Common.ri_searches base)
    @ [
        ("No-RI", Config.No_ri, true, walk_budget base);
        (* Flooding pays every link regardless; capping it would only
           truncate the reference curve. *)
        ("Flooding", Config.Flooding { ttl = None }, true, None);
      ]
  in
  let rows =
    List.concat_map
      (fun (name, search, fallback, budget) ->
        let cells =
          List.map
            (fun level ->
              let fault = spec_at ~fallback ~budget level in
              let cfg = { (Config.with_search base search) with Config.fault } in
              faulty_cells cfg ~spec)
            levels
        in
        [
          Report.cell_text name
          :: Report.cell_text "msg/result"
          :: List.map fst cells;
          Report.cell_text "" :: Report.cell_text "recall" :: List.map snd cells;
        ])
      groups
  in
  Report.make ~id ~title ~paper_claim
    ~header:
      ("Search" :: "Metric"
      :: List.map (fun l -> Printf.sprintf "loss %.0f%%" (100. *. l)) levels)
    ~rows
