(** Fault-plane sweep (beyond the paper): recall and
    messages-per-result vs update-loss rate for CRI / HRI / ERI (with
    and without stale-row fallback), No-RI and flooding, under message
    loss, delay, crash-stop churn, link flaps and content drift.

    See the implementation's header comment for the environment's
    construction. *)

val id : string
(** Registry handle ("faults"). *)

val title : string

val paper_claim : string
(** The beyond-paper robustness finding this experiment checks. *)

val run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t
(** Execute the sweep against the given base configuration, each data
    point run to the spec's confidence target. *)
