(** Open-loop traffic sweep — latency quantiles vs offered QPS.

    Not a figure of the paper, which evaluates one synchronous query at
    a time: this is the ROADMAP's heavy-traffic plane.  Queries arrive
    at Poisson times over Zipf-popular topics against a converged
    network and execute {e in flight} on the discrete-event engine —
    per-node mailboxes, service rates, link latency — optionally
    interleaved with update waves.  Each swept QPS point reports
    p50/p95/p99 latency, goodput, queue depths and makespan; the first
    point whose median latency exceeds twice the no-load walk time
    marks the saturation knee.

    The traffic observatory rides along: every completed query's
    end-to-end latency decomposes exactly into queue-wait + service +
    link-transit (with the critical hop — the largest single queue
    wait — attributed to its node), the engine's per-node counters are
    ranked into a top-K hotspot table, and an optional fixed-bin
    logical-time timeline of arrivals/completions/backlog exports as
    byte-identical JSONL through {!Ri_obs.Observatory}. *)

open Ri_util
open Ri_content
open Ri_p2p
open Ri_obs
open Ri_sim

let id = "traffic"

let title = "Open-loop traffic: latency quantiles vs offered QPS"

let paper_claim =
  "Not in the paper (single synchronous queries only).  Below the \
   saturation knee, latency should sit near the no-load walk time; \
   past it, mailbox queues grow and the drain outruns the arrival \
   window, so goodput plateaus while p99 explodes — and the latency \
   decomposition must attribute the growth to queue-wait, not service \
   or link time."

type opts = {
  o_qps : float list;  (** offered arrival rates to sweep, each > 0 *)
  o_duration : float;  (** open-loop arrival window, seconds *)
  o_service_rate : float;  (** per-node service capacity, messages/sec *)
  o_link_latency : float;  (** per-hop propagation delay, milliseconds *)
  o_update_rate : float;  (** interleaved update waves per second, >= 0 *)
  o_zipf : float;  (** topic-popularity skew exponent *)
  o_shift_every : int;  (** rotate the hot set every N draws; 0 = never *)
  o_trials : int;
  o_snapshot : string option;
      (** load the converged network from this snapshot (trial 0 only)
          instead of building it *)
  o_hotspots : int;  (** top-K hotspot nodes reported per point, >= 0 *)
  o_timeline_bins : int;
      (** bins in the per-trial logical-time timeline (used only while
          {!Ri_obs.Observatory} records), >= 1 *)
}

let default_opts =
  {
    o_qps = [ 50.; 200.; 1000.; 5000. ];
    o_duration = 2.;
    o_service_rate = 20_000.;
    o_link_latency = 0.2;
    o_update_rate = 0.;
    o_zipf = 1.;
    o_shift_every = 0;
    o_trials = 3;
    o_snapshot = None;
    o_hotspots = 5;
    o_timeline_bins = 50;
  }

(* Per-(qps, trial) simulation result; sketches merge across trials in
   trial order (byte-identical whatever the pool width — merging is
   order-independent), and the observatory accumulators merge
   element-wise the same way. *)
type trial_result = {
  r_arrivals : int;
  r_completed : int;
  r_satisfied : int;
  r_found : int;
  r_messages : int;  (** query messages (forwards + returns + results) *)
  r_update_messages : int;
  r_update_wire_bytes : int;
  r_queue_peak : int;
  r_queue_mean : float;
  r_makespan_s : float;  (** arrival window plus any drain overhang *)
  r_makespan_ns : int;  (** the same, in engine nanoseconds *)
  r_sketch : Sketch.t;  (** per-query latency, milliseconds *)
  r_decomp : Observatory.decomp;  (** exact latency decomposition *)
  r_nodes : Observatory.node_acc;  (** per-node hotspot attribution *)
}

type point = {
  q_qps : float;
  q_offered : float;  (** measured arrival rate, queries/sec *)
  q_arrivals : int;
  q_completed : int;
  q_satisfied : int;
  q_goodput : float;  (** satisfied queries per second of makespan *)
  q_p50_ms : float;
  q_p95_ms : float;
  q_p99_ms : float;
  q_mean_ms : float;
  q_messages_per_query : float;
  q_update_messages : int;
  q_queue_peak : int;
  q_queue_mean : float;
  q_makespan_s : float;
  q_saturated : bool;
      (** median latency exceeded twice the no-load walk time — mailbox
          queueing dominates the walk itself *)
  q_queue_ms : float;  (** mean per-query queue-wait, milliseconds *)
  q_service_ms : float;  (** mean per-query service time, milliseconds *)
  q_link_ms : float;  (** mean per-query link transit, milliseconds *)
  q_queue_share : float;
      (** fraction of end-to-end time spent queueing — the measured
          form of [q_saturated] *)
  q_hotspots : Observatory.hotspot list;
      (** top-K nodes by accumulated queue-wait, merged across trials
          (node ids align across trials of the same generator params) *)
}

(* Observability wiring: the latency distribution and injection totals
   land in the global registries next to the per-query cost sketches. *)
let s_latency =
  Sketch.series ~help:"Open-loop query latency (milliseconds, quantile sketch)."
    "ri_traffic_latency_ms"

let m_arrivals =
  Metrics.counter ~help:"Open-loop queries injected." "ri_traffic_arrivals_total"

let m_traffic_waves =
  Metrics.counter ~help:"Open-loop update waves injected."
    "ri_traffic_waves_total"

let m_queue_ns =
  Metrics.counter
    ~help:"Completed-query latency attributed to mailbox queue wait (ns)."
    "ri_traffic_queue_wait_ns_total"

let m_service_ns =
  Metrics.counter
    ~help:"Completed-query latency attributed to service time (ns)."
    "ri_traffic_service_ns_total"

let m_link_ns =
  Metrics.counter
    ~help:"Completed-query latency attributed to link transit (ns)."
    "ri_traffic_link_ns_total"

let g_hotspot_peak =
  Metrics.gauge
    ~help:"Largest single-mailbox backlog seen by the latest sweep point."
    "ri_traffic_hotspot_peak_depth"

(* Per-node gauges for the latest point's top-K only: the node label
   keeps cardinality at K, not network size. *)
let publish_hotspot_metrics hotspots =
  List.iter
    (fun (h : Observatory.hotspot) ->
      let labels = [ ("node", string_of_int h.Observatory.h_node) ] in
      Metrics.set
        (Metrics.gauge
           ~help:"Queue-wait ns accumulated at a top-K hotspot node."
           ~labels "ri_traffic_node_queue_wait_ns")
        (float_of_int h.Observatory.h_wait_ns);
      Metrics.set
        (Metrics.gauge ~help:"Utilization of a top-K hotspot node." ~labels
           "ri_traffic_node_utilization")
        h.Observatory.h_utilization)
    hotspots

let forwarding_of (cfg : Config.t) =
  match cfg.Config.search with
  | Config.Ri _ -> Query.Ri_guided
  | Config.No_ri -> Query.Random_walk
  | Config.Flooding _ ->
      invalid_arg "Traffic: flooding has no sequential walk to schedule"

let validate_opts opts =
  let check what ?min ?max v =
    match Env.check_float ?min ?max ~what v with
    | Ok v -> v
    | Error msg -> invalid_arg ("Traffic: " ^ msg)
  in
  if opts.o_qps = [] then invalid_arg "Traffic: empty QPS list";
  List.iter (fun q -> ignore (check "qps" ~min:1e-9 q)) opts.o_qps;
  ignore (check "duration" ~min:1e-9 opts.o_duration);
  ignore (check "service-rate" ~min:1e-9 opts.o_service_rate);
  ignore (check "link-latency" ~min:0. opts.o_link_latency);
  ignore (check "update-rate" ~min:0. opts.o_update_rate);
  ignore (check "zipf" ~min:0. opts.o_zipf);
  if opts.o_trials < 1 then invalid_arg "Traffic: trials must be >= 1";
  if opts.o_hotspots < 0 then invalid_arg "Traffic: hotspots must be >= 0";
  if opts.o_timeline_bins < 1 then
    invalid_arg "Traffic: timeline-bins must be >= 1";
  if opts.o_snapshot <> None && opts.o_trials <> 1 then
    invalid_arg "Traffic: --snapshot fixes the setup, use --trials 1"

let query_hook sink =
  if not (Trace.is_live sink) then None
  else
    Some
      (function
      | Query.Forwarded { sender; receiver } ->
          Trace.emit sink ~cat:"traffic" "forward"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Returned { sender; receiver } ->
          Trace.emit sink ~cat:"traffic" "backtrack"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Results { at; count } ->
          Trace.emit sink ~cat:"traffic" "results"
            [ ("at", Trace.Int at); ("count", Trace.Int count) ]
      | Query.Timed_out _ | Query.Gave_up _ | Query.Reconciled _ ->
          (* Fault-free machines never emit these. *)
          ())

let update_hook sink =
  if not (Trace.is_live sink) then None
  else
    Some
      (function
      | Update.Delivered { sender; receiver; significant; forwarded } ->
          Trace.emit sink ~cat:"traffic" "update_hop"
            [
              ("sender", Trace.Int sender);
              ("receiver", Trace.Int receiver);
              ("significant", Trace.Bool significant);
              ("forwarded", Trace.Bool forwarded);
            ]
      | Update.Dropped _ | Update.Delayed _ | Update.Round _
      | Update.Repaired _ ->
          ())

(* One (qps, trial) simulation: build (or load) the converged setup,
   pre-draw the Poisson arrival schedule from trial-keyed substreams,
   run every query as a Step machine whose messages ride the engine's
   mailboxes, and optionally inject update waves as in-flight message
   streams sharing the same mailboxes.  Single-threaded on one engine:
   the event order is fully determined by (seed, trial, seq). *)
let simulate (cfg : Config.t) ~opts ~qps ~trial =
  Trace.with_trial ~trial (fun sink ->
  Observatory.with_trial ~trial (fun osink ->
      let setup =
        match opts.o_snapshot with
        | Some path -> Snapshot.load path cfg ~trial
        | None -> Trial.build ~purpose:Trial.For_update cfg ~trial
      in
      let net = setup.Trial.network in
      let n = Network.size net in
      let forwarding = forwarding_of cfg in
      let service_ns = Engine.of_seconds (1. /. opts.o_service_rate) in
      let link_ns = Engine.of_seconds (opts.o_link_latency /. 1000.) in
      let eng = Engine.create ~service_ns ~link_ns ~nodes:n () in
      (* Independent substreams per concern, split in a fixed order, so
         e.g. adding update traffic never shifts the query stream. *)
      let arrival_rng = Prng.split setup.Trial.rng in
      let topic_rng = Prng.split setup.Trial.rng in
      let origin_rng = Prng.split setup.Trial.rng in
      let per_query = Prng.split setup.Trial.rng in
      let update_rng = Prng.split setup.Trial.rng in
      let zipf =
        Workload.Zipf.create ~exponent:opts.o_zipf
          ~shift_every:opts.o_shift_every setup.Trial.universe
      in
      let qhook = query_hook sink in
      let uhook = update_hook sink in
      let horizon_ns = Engine.of_seconds opts.o_duration in
      let sketch = Sketch.create () in
      let decomp = Observatory.decomp_zero () in
      let acc = Observatory.acc_create n in
      (* Timeline: one fixed-bin ring per trial, flushed into the keyed
         log after the engine drains.  When recording is off the sink
         is dead and this stays None — the only per-event cost is the
         option branch below. *)
      let timeline =
        if Observatory.is_live osink then
          Some
            (Observatory.Timeline.create ~bins:opts.o_timeline_bins
               ~width_ns:(max 1 (horizon_ns / opts.o_timeline_bins)))
        else None
      in
      let arrivals = ref 0 in
      let completed = ref 0 in
      let satisfied = ref 0 in
      let found = ref 0 in
      let messages = ref 0 in
      let last_done = ref 0 in
      (* Open loop: the arrival schedule is drawn up front and never
         reacts to completions — overload shows up as queue growth and
         drain overhang, not as a slackening arrival rate. *)
      let t = ref 0. in
      let more = ref true in
      while !more do
        t := !t +. Workload.poisson_next arrival_rng ~rate:qps;
        let at = Engine.of_seconds !t in
        if at >= horizon_ns then more := false
        else begin
          incr arrivals;
          let origin = Prng.int origin_rng n in
          let query =
            Workload.Zipf.query zipf topic_rng ~stop:cfg.Config.stop_condition
          in
          let qrng = Prng.split per_query in
          (* Timeline arrival sample: a separate recorder event at the
             arrival instant, scheduled just before the injection so it
             observes the backlog the query itself is about to see.  It
             reads engine state and writes only the timeline, so the
             simulation is bit-identical with recording on or off. *)
          (match timeline with
          | Some tl ->
              Engine.schedule eng ~at (fun () ->
                  Observatory.Timeline.arrival tl ~at
                    ~depth:(Engine.backlog eng))
          | None -> ());
          Engine.inject eng ~at ~dst:origin (fun () ->
              (* The entry delivery itself queued at the origin's
                 mailbox; its wait opens the decomposition. *)
              let entry_wait = Engine.last_wait_ns eng in
              let q_wait = ref entry_wait in
              let deliveries = ref 1 in
              let crit_wait = ref entry_wait in
              let crit_node = ref origin in
              let st, first =
                Query.Step.start ~rng:qrng ?on_event:qhook net ~origin ~query
                  ~forwarding
              in
              let rec dispatch = function
                | None ->
                    let o = Query.Step.finish st in
                    incr completed;
                    if o.Query.satisfied then incr satisfied;
                    found := !found + o.Query.found;
                    messages := !messages + Query.messages o;
                    if Engine.now eng > !last_done then
                      last_done := Engine.now eng;
                    let total_ns = Engine.now eng - at in
                    (* Exact by construction: the chain paid one
                       service slot per delivery, one link crossing per
                       send (the entry inject has none), and the
                       accumulated waits — nothing else.  Tests pin
                       [Observatory.decomp_exact]. *)
                    Observatory.decomp_add decomp ~total_ns
                      ~queue_ns:!q_wait
                      ~service_ns:(!deliveries * service_ns)
                      ~link_ns:((!deliveries - 1) * link_ns);
                    acc.Observatory.a_critical.(!crit_node) <-
                      acc.Observatory.a_critical.(!crit_node) + 1;
                    (match timeline with
                    | Some tl ->
                        Observatory.Timeline.completion tl
                          ~at:(Engine.now eng) ~depth:(Engine.backlog eng)
                    | None -> ());
                    let ms = 1000. *. Engine.to_seconds total_ns in
                    Sketch.add sketch ms;
                    Sketch.observe s_latency ms;
                    if Trace.is_live sink then
                      Trace.emit sink ~cat:"traffic" "complete"
                        [
                          ("origin", Trace.Int origin);
                          ("found", Trace.Int o.Query.found);
                          ("latency_ns", Trace.Int (Engine.now eng - at));
                        ]
                | Some (s : Query.Step.send) ->
                    Engine.send eng ~dst:s.Query.Step.dst (fun () ->
                        let w = Engine.last_wait_ns eng in
                        q_wait := !q_wait + w;
                        incr deliveries;
                        if w > !crit_wait then begin
                          crit_wait := w;
                          crit_node := s.Query.Step.dst
                        end;
                        dispatch (Query.Step.deliver st s))
              in
              dispatch first)
        end
      done;
      (* Interleaved update waves: Poisson wave starts at Zipf-popular
         topics, delivered through the same mailboxes via the wave's
         own delivery logic ({!Ri_p2p.Update.deliver_one}); transport —
         link check, budget, message and wire-byte accounting — is
         charged here at send time, as the synchronous wave does. *)
      let ucounters = Message.create () in
      let waves = ref 0 in
      if opts.o_update_rate > 0. && Network.has_ri net then begin
        let budget =
          let degrees = ref 0 in
          for v = 0 to n - 1 do
            degrees := !degrees + Network.degree net v
          done;
          20 * (n + !degrees)
        in
        let topic_totals = Array.make cfg.Config.topics 0. in
        for v = 0 to n - 1 do
          let s = Network.raw_local_summary net v in
          for tp = 0 to cfg.Config.topics - 1 do
            topic_totals.(tp) <- topic_totals.(tp) +. Summary.get s tp
          done
        done;
        let uzipf =
          Workload.Zipf.create ~exponent:opts.o_zipf
            ~shift_every:opts.o_shift_every setup.Trial.universe
        in
        let start_wave origin topic =
          let batch =
            Float.max 1.
              (Float.round (cfg.Config.update_fraction *. topic_totals.(topic)))
          in
          let base = Network.raw_local_summary net origin in
          let by_topic = Array.copy base.Summary.by_topic in
          by_topic.(topic) <- by_topic.(topic) +. batch;
          let summary =
            Summary.make ~total:(base.Summary.total +. batch) ~by_topic
          in
          let reached = Bytes.make n '\000' in
          Bytes.set reached origin '\001';
          let wave_id = Network.fresh_wave net in
          let sent = ref 0 in
          let rec send_seed (seed : Update.wave_seed) =
            if
              Network.has_link net seed.Update.sender seed.Update.receiver
              && !sent < budget
            then begin
              incr sent;
              ucounters.Message.update_messages <-
                ucounters.Message.update_messages + 1;
              let bytes = Update.wire_cost seed in
              ucounters.Message.update_wire_bytes <-
                ucounters.Message.update_wire_bytes + bytes;
              Engine.send eng ~dst:seed.Update.receiver (fun () ->
                  Update.deliver_one ?on_event:uhook net ~reached ~wave_id
                    ~forward:send_seed seed)
            end
          in
          List.iter send_seed
            (Update.seeds_for_change net ~at:origin ~except:[]
               ~mutate:(fun () -> Network.set_local_summary net origin summary))
        in
        let t = ref 0. in
        let more = ref true in
        while !more do
          t := !t +. Workload.poisson_next update_rng ~rate:opts.o_update_rate;
          let at = Engine.of_seconds !t in
          if at >= horizon_ns then more := false
          else begin
            incr waves;
            let origin = Prng.int update_rng n in
            let topic = Workload.Zipf.draw uzipf update_rng in
            Engine.inject eng ~at ~dst:origin (fun () ->
                start_wave origin topic)
          end
        done
      end;
      Engine.run eng;
      (* Harvest the engine's per-node attribution into the mergeable
         accumulator (critical-hop counts were folded in during the
         run). *)
      for v = 0 to n - 1 do
        let s = Engine.node_stat eng v in
        acc.Observatory.a_arrivals.(v) <- s.Engine.s_arrivals;
        acc.Observatory.a_completions.(v) <- s.Engine.s_completions;
        acc.Observatory.a_busy_ns.(v) <- s.Engine.s_busy_ns;
        acc.Observatory.a_wait_ns.(v) <- s.Engine.s_wait_ns;
        acc.Observatory.a_peak.(v) <- s.Engine.s_peak
      done;
      (match timeline with
      | Some tl -> Observatory.Timeline.flush tl osink
      | None -> ());
      if Metrics.enabled () then begin
        Metrics.add m_arrivals !arrivals;
        Metrics.add m_traffic_waves !waves;
        Metrics.add m_queue_ns decomp.Observatory.d_queue_ns;
        Metrics.add m_service_ns decomp.Observatory.d_service_ns;
        Metrics.add m_link_ns decomp.Observatory.d_link_ns
      end;
      let makespan_ns = max horizon_ns !last_done in
      {
        r_arrivals = !arrivals;
        r_completed = !completed;
        r_satisfied = !satisfied;
        r_found = !found;
        r_messages = !messages;
        r_update_messages = ucounters.Message.update_messages;
        r_update_wire_bytes = ucounters.Message.update_wire_bytes;
        r_queue_peak = Engine.queue_peak eng;
        r_queue_mean = Engine.queue_mean eng;
        r_makespan_s =
          Float.max opts.o_duration (Engine.to_seconds !last_done);
        r_makespan_ns = makespan_ns;
        r_sketch = sketch;
        r_decomp = decomp;
        r_nodes = acc;
      }))

let ms_of_ns ns = 1000. *. Engine.to_seconds ns

let aggregate ~opts ~qps (rs : trial_result array) =
  let sk = Sketch.create () in
  Array.iter (fun r -> Sketch.merge_into ~dst:sk r.r_sketch) rs;
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rs in
  let sumf f = Array.fold_left (fun acc r -> acc +. f r) 0. rs in
  let trials = float_of_int (Array.length rs) in
  let arrivals = sum (fun r -> r.r_arrivals) in
  let completed = sum (fun r -> r.r_completed) in
  let satisfied = sum (fun r -> r.r_satisfied) in
  let makespan = sumf (fun r -> r.r_makespan_s) /. trials in
  let messages_per_query =
    float_of_int (sum (fun r -> r.r_messages)) /. float_of_int (max 1 completed)
  in
  (* Merge the observatory accumulators in trial order: decomposition
     sums are integers, node stats merge element-wise, so the result
     is the same whatever the pool width. *)
  let decomp = Observatory.decomp_zero () in
  Array.iter (fun r -> Observatory.decomp_merge ~into:decomp r.r_decomp) rs;
  let nodes = Observatory.acc_create rs.(0).r_nodes.Observatory.nodes in
  Array.iter (fun r -> Observatory.acc_merge ~into:nodes r.r_nodes) rs;
  let makespan_ns_total = sum (fun r -> r.r_makespan_ns) in
  let hotspots =
    Observatory.hotspots nodes ~makespan_ns:makespan_ns_total
      ~k:opts.o_hotspots
  in
  let per_query ns =
    if completed = 0 then 0. else ms_of_ns ns /. float_of_int completed
  in
  (* No-load reference: a walk of this length with empty mailboxes pays
     one service slot plus one link delay per message.  (Result-pointer
     messages never transit the engine, so this slightly overestimates;
     the factor-2 threshold below absorbs that.)  Saturation = queueing
     delay dominating the walk itself — a criterion independent of the
     arrival-window length, unlike drain overhang, which any short
     window shows even at trivial load. *)
  let no_load_ms =
    messages_per_query
    *. ((1000. /. opts.o_service_rate) +. opts.o_link_latency)
  in
  let p50 = Sketch.quantile sk 0.5 in
  {
    q_qps = qps;
    q_offered = float_of_int arrivals /. (trials *. opts.o_duration);
    q_arrivals = arrivals;
    q_completed = completed;
    q_satisfied = satisfied;
    q_goodput =
      sumf
        (fun r -> float_of_int r.r_satisfied /. Float.max 1e-9 r.r_makespan_s)
      /. trials;
    q_p50_ms = p50;
    q_p95_ms = Sketch.quantile sk 0.95;
    q_p99_ms = Sketch.quantile sk 0.99;
    q_mean_ms =
      (if Sketch.count sk = 0 then 0.
       else Sketch.sum sk /. float_of_int (Sketch.count sk));
    q_messages_per_query = messages_per_query;
    q_update_messages = sum (fun r -> r.r_update_messages);
    q_queue_peak = Array.fold_left (fun m r -> max m r.r_queue_peak) 0 rs;
    q_queue_mean = sumf (fun r -> r.r_queue_mean) /. trials;
    q_makespan_s = makespan;
    q_saturated = no_load_ms > 0. && p50 > 2. *. no_load_ms;
    q_queue_ms = per_query decomp.Observatory.d_queue_ns;
    q_service_ms = per_query decomp.Observatory.d_service_ns;
    q_link_ms = per_query decomp.Observatory.d_link_ns;
    q_queue_share = Observatory.decomp_queue_share decomp;
    q_hotspots = hotspots;
  }

let measure ?(opts = default_opts) (cfg : Config.t) ~qps =
  validate_opts opts;
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Traffic.measure: " ^ msg));
  (* One observability unit per data point, bumped on the submitting
     domain (the Runner's rule), so trial keys never depend on the pool
     width and traces stay byte-identical at any --jobs. *)
  Trace.next_unit ();
  Decision.next_unit ();
  Span.next_unit ();
  Observatory.next_unit ();
  Serve.Progress.begin_run
    ~label:(Printf.sprintf "traffic qps=%g" qps)
    ~total:opts.o_trials ();
  let rs =
    Pool.map_chunked ~chunk:1 (Pool.global ()) ~n:opts.o_trials (fun i ->
        simulate cfg ~opts ~qps ~trial:i)
  in
  Serve.Progress.set_trials opts.o_trials;
  let p = aggregate ~opts ~qps rs in
  if Metrics.enabled () then begin
    Metrics.set g_hotspot_peak (float_of_int p.q_queue_peak);
    publish_hotspot_metrics p.q_hotspots
  end;
  p

let knee_of points =
  List.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None -> if p.q_saturated then Some p.q_qps else None)
    None points

let hotspots_json hotspots =
  "["
  ^ String.concat ", " (List.map Observatory.hotspot_json hotspots)
  ^ "]"

let json_of ~opts points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"config\": ";
  Buffer.add_string buf
    (Printf.sprintf
       "{\"duration_s\": %g, \"service_rate\": %g, \"link_latency_ms\": %g, \
        \"update_rate\": %g, \"zipf\": %g, \"trials\": %d, \"hotspots\": %d, \
        \"timeline_bins\": %d}"
       opts.o_duration opts.o_service_rate opts.o_link_latency
       opts.o_update_rate opts.o_zipf opts.o_trials opts.o_hotspots
       opts.o_timeline_bins);
  Buffer.add_string buf ",\n  \"points\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"qps\": %g, \"offered_per_s\": %.2f, \"arrivals\": %d, \
            \"completed\": %d, \"satisfied\": %d, \"goodput_per_s\": %.2f, \
            \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, \
            \"mean_ms\": %.4f, \"messages_per_query\": %.2f, \
            \"update_messages\": %d, \"queue_peak\": %d, \"queue_mean\": \
            %.3f, \"makespan_s\": %.3f, \"saturated\": %b, \"queue_ms\": \
            %.4f, \"service_ms\": %.4f, \"link_ms\": %.4f, \"queue_share\": \
            %.4f, \"q_hotspots\": %s}"
           p.q_qps p.q_offered p.q_arrivals p.q_completed p.q_satisfied
           p.q_goodput p.q_p50_ms p.q_p95_ms p.q_p99_ms p.q_mean_ms
           p.q_messages_per_query p.q_update_messages p.q_queue_peak
           p.q_queue_mean p.q_makespan_s p.q_saturated p.q_queue_ms
           p.q_service_ms p.q_link_ms p.q_queue_share
           (hotspots_json p.q_hotspots)))
    points;
  Buffer.add_string buf "\n  ],\n  \"knee_qps\": ";
  (match knee_of points with
  | None -> Buffer.add_string buf "null"
  | Some q -> Buffer.add_string buf (Printf.sprintf "%g" q));
  Buffer.add_string buf "\n}";
  Buffer.contents buf

let sweep ?(opts = default_opts) cfg () =
  Serve.Traffic.clear ();
  let _, rev_points =
    List.fold_left
      (fun (done_, acc) qps ->
        let p = measure ~opts cfg ~qps in
        let acc = p :: acc in
        (* Publish the sweep-so-far after every point: a curl of
           /traffic mid-sweep sees a complete, valid JSON document with
           every finished point, its decomposition and hotspots. *)
        Serve.Traffic.publish (json_of ~opts (List.rev acc));
        (done_ + 1, acc))
      (0, []) opts.o_qps
  in
  List.rev rev_points

let report_of points =
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_number ~decimals:0 p.q_qps;
          Report.cell_number ~decimals:1 p.q_offered;
          Report.cell_number ~decimals:0 (float_of_int p.q_completed);
          Report.cell_number ~decimals:1 p.q_goodput;
          Report.cell_number ~decimals:3 p.q_p50_ms;
          Report.cell_number ~decimals:3 p.q_p95_ms;
          Report.cell_number ~decimals:3 p.q_p99_ms;
          Report.cell_number ~decimals:3 p.q_queue_ms;
          Report.cell_number ~decimals:3 p.q_service_ms;
          Report.cell_number ~decimals:3 p.q_link_ms;
          Report.cell_number ~decimals:0 (100. *. p.q_queue_share);
          Report.cell_number ~decimals:1 p.q_messages_per_query;
          Report.cell_number ~decimals:0 (float_of_int p.q_queue_peak);
          Report.cell_number ~decimals:2 p.q_queue_mean;
          Report.cell_number ~decimals:2 p.q_makespan_s;
          Report.cell_text (if p.q_saturated then "yes" else "no");
        ])
      points
  in
  Report.make ~id ~title ~paper_claim
    ~header:
      [
        "QPS";
        "Offered/s";
        "Done";
        "Goodput/s";
        "p50 ms";
        "p95 ms";
        "p99 ms";
        "Q-wait ms";
        "Service ms";
        "Link ms";
        "Q-wait %";
        "Msgs/query";
        "Q peak";
        "Q mean";
        "Makespan s";
        "Saturated";
      ]
    ~rows

(* The hotspot table: every swept point's top-K nodes by accumulated
   queue wait, the congestion ranking Holme's indexed-network result
   predicts for hub nodes. *)
let hotspots_report_of points =
  let rows =
    List.concat_map
      (fun p ->
        List.mapi
          (fun rank (h : Observatory.hotspot) ->
            [
              Report.cell_number ~decimals:0 p.q_qps;
              Report.cell_number ~decimals:0 (float_of_int (rank + 1));
              Report.cell_number ~decimals:0
                (float_of_int h.Observatory.h_node);
              Report.cell_number ~decimals:3
                (ms_of_ns h.Observatory.h_wait_ns);
              Report.cell_number ~decimals:3
                (ms_of_ns h.Observatory.h_busy_ns);
              Report.cell_number ~decimals:3 (100. *. h.Observatory.h_utilization);
              Report.cell_number ~decimals:0
                (float_of_int h.Observatory.h_peak);
              Report.cell_number ~decimals:0
                (float_of_int h.Observatory.h_arrivals);
              Report.cell_number ~decimals:0
                (float_of_int h.Observatory.h_critical);
            ])
          p.q_hotspots)
      points
  in
  Report.make ~id:"traffic-hotspots"
    ~title:"Per-node hotspots: top-K by accumulated queue wait"
    ~paper_claim:
      "Hub congestion, not path length, should dominate indexed-routing \
       latency past the knee: the top nodes' queue-wait grows with load \
       while service stays flat, and most completed queries name one of \
       them as their critical hop."
    ~header:
      [
        "QPS";
        "Rank";
        "Node";
        "Wait ms";
        "Busy ms";
        "Util %";
        "Peak";
        "Arrivals";
        "Critical";
      ]
    ~rows
