open Ri_sim

let query_messages ?pool cfg ~spec =
  Runner.run ?pool spec (fun ~trial ->
      float_of_int (Trial.run_query cfg ~trial).Trial.messages)

let update_messages ?pool cfg ~spec =
  Runner.run ?pool spec (fun ~trial ->
      float_of_int (Trial.run_update cfg ~trial).Trial.update_messages)

let ri_searches cfg =
  [
    ("CRI", Config.Ri Config.cri);
    ("HRI", Config.Ri (Config.hri cfg));
    ("ERI", Config.Ri (Config.eri cfg));
  ]

let all_searches cfg = ri_searches cfg @ [ ("No-RI", Config.No_ri) ]
