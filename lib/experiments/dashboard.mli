(** Offline observability dashboard: aggregate run artifacts —
    [BENCH_results.json], Decision JSONL, a Prometheus metrics dump, a
    regression-gate outcome — into tables rendered as Markdown or a
    self-contained HTML page.

    Each ingester is independent and total: it returns [None] (or [[]])
    on input it cannot use rather than failing, so the report simply
    shows the sections it was given valid inputs for. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val of_decisions : string -> table option
(** Aggregate Decision JSONL text (see {!Ri_obs.Decision.render_jsonl})
    into a per-scheme routing-quality table: decision/follow/backtrack
    counts, timeout and stale-demotion totals, mean oracle rank,
    oracle-agreement rate and mean count regret.  [None] when the text
    holds no parseable records. *)

val of_metrics : string -> table option
(** A flat metric/value table from Prometheus text exposition (comment
    lines skipped).  [None] on empty input. *)

val of_traffic : Ri_util.Json.t -> (table list, string) result
(** Tables from a parsed [risim traffic --json] document: the knee
    chart (p50 text bars per swept QPS), the latency-decomposition
    stacked bars (queue / service / link per completed query) and the
    per-point hotspot table.  Unlike the other ingesters this one is
    strict — the input is a machine-written artifact, so a missing or
    mistyped field is reported as [Error] naming the point (and
    hotspot) index rather than silently dropped. *)

val of_timeline : string -> (table, string) result
(** A per-(unit, trial) bin table from timeline JSONL (see
    {!Ri_obs.Observatory.render_jsonl}); strict like {!of_traffic},
    with errors naming the offending line. *)

val of_bench : Ri_util.Json.t -> table list
(** Tables from a parsed BENCH_results.json: microbenchmark ns/run,
    figure wall-clock seconds, phase timings and the run config, with
    any [meta] entries (git commit, timestamp, host) as notes. *)

val of_bench_config : Ri_util.Json.t -> table option

val of_regression : Regress.outcome -> table

val render_markdown : title:string -> table list -> string

val render_html : title:string -> table list -> string
(** Self-contained page, no external assets. *)
