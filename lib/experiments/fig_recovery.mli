(** Recovery-plane sweep (beyond the paper): recall dip under a
    network partition plus crash-stop churn, and recall restoration
    after heal + crash-recovery + anti-entropy, for CRI / HRI / ERI at
    partition fractions 10 / 30 / 50%.

    See the implementation's header comment for the cycle's
    construction. *)

val id : string
(** Registry handle ("recovery"). *)

val title : string

val paper_claim : string
(** The beyond-paper robustness finding this experiment checks. *)

val run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t
(** Execute the sweep against the given base configuration, each data
    point run to the spec's confidence target. *)
