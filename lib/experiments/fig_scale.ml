(** Scale sweep — throughput and memory as the network grows.

    Not a figure of the paper: the paper simulates 60000 nodes but only
    reports message counts.  This experiment exercises the flat
    structure-of-arrays RI store, the delta update encoding, the
    sharded builders and the snapshot plane at up to a million nodes,
    reporting build seconds (pool vs one core), queries/sec,
    update-waves/sec, wire bytes per wave, resident RI bytes per node,
    peak heap, process RSS, and snapshot save/load times — the numbers
    that decide whether the simulator itself scales. *)

open Ri_util
open Ri_core
open Ri_p2p
open Ri_sim

let id = "scale"

let title = "Throughput and memory at network scale"

let paper_claim =
  "Not in the paper: throughput of this simulator's flat RI store.  \
   Queries/sec should degrade sub-linearly (visits are bounded by the \
   stop condition) and RI bytes per node should stay near-constant as \
   N grows."

let default_sizes = [ 2_000; 10_000; 50_000; 100_000 ]

(* The million-node plane: reached with [risim scale --big].  The
   100k overlap point ties the two sweeps together. *)
let big_sizes = [ 100_000; 250_000; 500_000; 1_000_000 ]

type opts = {
  o_compress : int option;
      (** quantize RI cells to this many bits and report the
          accuracy/size tradeoff against the exact store *)
  o_snapshot : string option;
      (** directory for snapshot save/load round-trip timing *)
  o_par_compare : bool;
      (** additionally time a cache-cold build on the pool and on one
          core, for the parallel-speedup column *)
}

let default_opts =
  { o_compress = None; o_snapshot = None; o_par_compare = false }

type compress_point = {
  c_bits : int;
  c_rel_err_bound : float;  (** worst-case per-cell decode error *)
  c_bytes_per_node : float;  (** quantized store *)
  c_exact_bytes_per_node : float;  (** same network, exact store *)
  c_found_quant : int;  (** results found across the probe queries *)
  c_found_exact : int;
}

type point = {
  p_nodes : int;
  p_build_s : float;  (** rooted + converged construction, RIs included *)
  p_build_par_s : float option;  (** cache-cold build, process pool *)
  p_build_seq_s : float option;  (** cache-cold build, one core *)
  p_queries_per_s : float;
  p_query_minor_words : float;  (** minor words allocated per query *)
  p_waves_per_s : float;
  p_wave_minor_words : float;  (** minor words allocated per wave *)
  p_wire_bytes_per_wave : float;  (** delta-encoded bytes, {!Ri_p2p.Update} *)
  p_ri_bytes_per_node : float;  (** flat-store resident bytes, whole network *)
  p_top_heap_mb : float;  (** [Gc.quick_stat].top_heap_words so far *)
  p_rss_mb : float option;  (** process resident set ({!Ri_util.Rss}) *)
  p_snap_save_ms : float option;
  p_snap_load_ms : float option;
  p_compress : compress_point option;
}

let now = Unix.gettimeofday

(* Time [n] repetitions of [f], returning (ops/sec, minor words/op).
   The Gc counter costs nothing and the loop allocates nothing of its
   own, so the words are the operation's. *)
let rate n f =
  let w0 = Gc.minor_words () in
  let t0 = now () in
  for i = 0 to n - 1 do
    f i
  done;
  let dt = now () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let n' = float_of_int n in
  ((if dt > 0. then n' /. dt else 0.), dw /. n')

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let with_jobs jobs f =
  let prev = Pool.jobs (Pool.global ()) in
  Pool.set_global_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_global_jobs prev) f

(* Cache-cold build timing: the setup cache would otherwise hand back
   the template built moments earlier and time a copy instead. *)
let cold_build cfg =
  let prev = Setup_cache.enabled () in
  Setup_cache.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Setup_cache.set_enabled prev)
    (fun () ->
      snd (timed (fun () -> ignore (Trial.build ~purpose:Trial.For_update cfg ~trial:0))))

let ri_bytes_per_node net =
  let n = Network.size net in
  if not (Network.has_ri net) || n = 0 then 0.
  else begin
    let bytes = ref 0 in
    for v = 0 to n - 1 do
      bytes := !bytes + Scheme.storage_bytes (Network.ri net v)
    done;
    float_of_int !bytes /. float_of_int n
  end

(* Peer-row store footprint only: quantization packs the rows; the
   node's local summary stays exact in both regimes and would otherwise
   flatten the ratio at tree degrees. *)
let store_bytes_per_node net =
  let n = Network.size net in
  if not (Network.has_ri net) || n = 0 then 0.
  else begin
    let bytes = ref 0 in
    for v = 0 to n - 1 do
      bytes := !bytes + Rowstore.capacity_bytes (Scheme.rowstore (Network.ri net v))
    done;
    float_of_int !bytes /. float_of_int n
  end

(* Quantized vs exact: same overlay, same content, same query streams;
   the difference in found results is the routing cost of the log-
   bucketed cells — the resident-store analogue of the paper's
   Figure 15 accuracy/size tradeoff. *)
let measure_compress ~cfg ~queries bits =
  let cfg_q = { cfg with Config.quant_bits = Some bits } in
  (match Config.validate cfg_q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fig_scale.measure: " ^ msg));
  let setup_x = Trial.build cfg ~trial:0 in
  let setup_q = Trial.build cfg_q ~trial:0 in
  let found run_cfg setup =
    let acc = ref 0 in
    for _ = 1 to queries do
      acc := !acc + (Trial.run_query_on run_cfg setup).Trial.found
    done;
    !acc
  in
  {
    c_bits = bits;
    c_rel_err_bound =
      (match Config.quant cfg_q with
      | Some q -> Rowstore.quant_rel_error_bound q
      | None -> 0.);
    c_bytes_per_node = store_bytes_per_node setup_q.Trial.network;
    c_exact_bytes_per_node = store_bytes_per_node setup_x.Trial.network;
    c_found_quant = found cfg_q setup_q;
    c_found_exact = found cfg setup_x;
  }

let measure_snapshot ~cfg ~dir setup =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path =
    Filename.concat dir (Printf.sprintf "scale_%d.risnap" cfg.Config.num_nodes)
  in
  let (), save_s =
    timed (fun () -> Snapshot.save path cfg ~trial:0 ~rooted:false setup)
  in
  let _loaded, load_s = timed (fun () -> Snapshot.load path cfg ~trial:0) in
  (save_s *. 1000., load_s *. 1000.)

let measure ?(opts = default_opts) ~base ~spec n =
  let cfg = Config.scaled base ~num_nodes:n in
  if Fault.active cfg.Config.fault then
    invalid_arg "Fig_scale.measure: the fault plane must be inert";
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fig_scale.measure: " ^ msg));
  let queries = max 1 spec.Runner.max_trials in
  let waves = max 1 spec.Runner.min_trials in
  (* This sweep bypasses Runner, so it reports its own progress: one
     "trial" per timed operation at this size. *)
  Ri_obs.Serve.Progress.begin_run
    ~label:(Printf.sprintf "scale n=%d" n)
    ~total:(queries + waves) ();
  let t0 = now () in
  let setup_q = Trial.build cfg ~trial:0 in
  let setup_u = Trial.build ~purpose:Trial.For_update cfg ~trial:0 in
  let build_s = now () -. t0 in
  let snap =
    Option.map
      (fun dir -> measure_snapshot ~cfg ~dir setup_u)
      opts.o_snapshot
  in
  let qps, q_words =
    rate queries (fun i ->
        Ri_obs.Serve.Progress.set_trials i;
        ignore (Trial.run_query_on cfg setup_q))
  in
  let wire = ref 0 in
  let wps, w_words =
    rate waves (fun i ->
        Ri_obs.Serve.Progress.set_trials (queries + i);
        let m = Trial.run_update_on cfg setup_u in
        wire := !wire + m.Trial.update_wire_bytes)
  in
  let compress =
    Option.map (measure_compress ~cfg ~queries) opts.o_compress
  in
  let build_par_s, build_seq_s =
    if opts.o_par_compare then
      (Some (cold_build cfg), Some (with_jobs 1 (fun () -> cold_build cfg)))
    else (None, None)
  in
  {
    p_nodes = n;
    p_build_s = build_s;
    p_build_par_s = build_par_s;
    p_build_seq_s = build_seq_s;
    p_queries_per_s = qps;
    p_query_minor_words = q_words;
    p_waves_per_s = wps;
    p_wave_minor_words = w_words;
    p_wire_bytes_per_wave = float_of_int !wire /. float_of_int waves;
    p_ri_bytes_per_node = ri_bytes_per_node setup_u.Trial.network;
    p_top_heap_mb =
      float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. 8. /. 1e6;
    p_rss_mb = Rss.resident_mb ();
    p_snap_save_ms = Option.map fst snap;
    p_snap_load_ms = Option.map snd snap;
    p_compress = compress;
  }

let sweep ?sizes ?opts ~base ~spec () =
  let sizes =
    match sizes with
    | Some s -> s
    | None -> (
        match List.filter (fun s -> s <= base.Config.num_nodes) default_sizes with
        | [] -> [ base.Config.num_nodes ]
        | s -> s)
  in
  List.map (measure ?opts ~base ~spec) sizes

let opt_cell ~decimals = function
  | None -> Report.cell_text "-"
  | Some v -> Report.cell_number ~decimals v

let report_of points =
  let with_snap =
    List.exists (fun p -> p.p_snap_save_ms <> None) points
  in
  let with_par = List.exists (fun p -> p.p_build_seq_s <> None) points in
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_number ~decimals:0 (float_of_int p.p_nodes);
          Report.cell_number ~decimals:2 p.p_build_s;
        ]
        @ (if with_par then
             [
               opt_cell ~decimals:2 p.p_build_par_s;
               opt_cell ~decimals:2 p.p_build_seq_s;
             ]
           else [])
        @ [
            Report.cell_number ~decimals:1 p.p_queries_per_s;
            Report.cell_number ~decimals:1 p.p_waves_per_s;
            Report.cell_number ~decimals:0 p.p_wire_bytes_per_wave;
            Report.cell_number ~decimals:0 p.p_ri_bytes_per_node;
            Report.cell_number ~decimals:1 p.p_top_heap_mb;
            opt_cell ~decimals:1 p.p_rss_mb;
          ]
        @
        if with_snap then
          [
            opt_cell ~decimals:0 p.p_snap_save_ms;
            opt_cell ~decimals:0 p.p_snap_load_ms;
          ]
        else [])
      points
  in
  let header =
    [ "Nodes"; "Build s" ]
    @ (if with_par then [ "Pool s"; "1-core s" ] else [])
    @ [ "Queries/s"; "Waves/s"; "Wire B/wave"; "RI B/node"; "Heap MB"; "RSS MB" ]
    @ if with_snap then [ "Save ms"; "Load ms" ] else []
  in
  Report.make ~id ~title ~paper_claim ~header ~rows

let compress_report_of points =
  let rows =
    List.filter_map
      (fun p ->
        Option.map
          (fun c ->
            [
              Report.cell_number ~decimals:0 (float_of_int p.p_nodes);
              Report.cell_number ~decimals:0 (float_of_int c.c_bits);
              Report.cell_number ~decimals:3 c.c_rel_err_bound;
              Report.cell_number ~decimals:0 c.c_bytes_per_node;
              Report.cell_number ~decimals:0 c.c_exact_bytes_per_node;
              Report.cell_number ~decimals:0 (float_of_int c.c_found_quant);
              Report.cell_number ~decimals:0 (float_of_int c.c_found_exact);
              Report.cell_number ~decimals:3
                (if c.c_found_exact = 0 then 1.
                 else float_of_int c.c_found_quant /. float_of_int c.c_found_exact);
            ])
          p.p_compress)
      points
  in
  Report.make ~id:"scale-compress"
    ~title:"Compressed rowstore: size vs routing accuracy"
    ~paper_claim:
      "Section 6 argues summarized (compressed) indices trade a bounded \
       accuracy loss for much smaller tables; here applied to the \
       resident store (Figure 15 analogue)."
    ~header:
      [
        "Nodes";
        "Bits";
        "Max rel err";
        "B/node";
        "Exact B/node";
        "Found";
        "Found exact";
        "Accuracy";
      ]
    ~rows

let json_opt = function None -> "null" | Some v -> Printf.sprintf "%.3f" v

let json_of points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"nodes\": %d, \"build_s\": %.3f, \"build_par_s\": %s, \
            \"build_seq_s\": %s, \"queries_per_s\": %.1f, \
            \"query_minor_words\": %.1f, \"waves_per_s\": %.2f, \
            \"wave_minor_words\": %.1f, \"wire_bytes_per_wave\": %.1f, \
            \"ri_bytes_per_node\": %.1f, \"top_heap_mb\": %.1f, \
            \"rss_mb\": %s, \"snap_save_ms\": %s, \"snap_load_ms\": %s%s}"
           p.p_nodes p.p_build_s
           (json_opt p.p_build_par_s)
           (json_opt p.p_build_seq_s)
           p.p_queries_per_s p.p_query_minor_words p.p_waves_per_s
           p.p_wave_minor_words p.p_wire_bytes_per_wave p.p_ri_bytes_per_node
           p.p_top_heap_mb
           (json_opt p.p_rss_mb)
           (json_opt p.p_snap_save_ms)
           (json_opt p.p_snap_load_ms)
           (match p.p_compress with
           | None -> ""
           | Some c ->
               Printf.sprintf
                 ", \"compress\": {\"bits\": %d, \"rel_err_bound\": %.5f, \
                  \"bytes_per_node\": %.1f, \"exact_bytes_per_node\": %.1f, \
                  \"found_quant\": %d, \"found_exact\": %d}"
                 c.c_bits c.c_rel_err_bound c.c_bytes_per_node
                 c.c_exact_bytes_per_node c.c_found_quant c.c_found_exact)))
    points;
  Buffer.add_string buf "\n  ]";
  Buffer.contents buf

let run ~base ~spec = report_of (sweep ~base ~spec ())
