(** Scale sweep — throughput and memory as the network grows.

    Not a figure of the paper: the paper simulates 60000 nodes but only
    reports message counts.  This experiment exercises the flat
    structure-of-arrays RI store and the delta update encoding at up to
    100k nodes on one core, reporting queries/sec, update-waves/sec,
    wire bytes per wave, resident RI bytes per node, and the peak major
    heap — the numbers that decide whether the simulator itself scales. *)

open Ri_core
open Ri_p2p
open Ri_sim

let id = "scale"

let title = "Throughput and memory at network scale"

let paper_claim =
  "Not in the paper: throughput of this simulator's flat RI store.  \
   Queries/sec should degrade sub-linearly (visits are bounded by the \
   stop condition) and RI bytes per node should stay near-constant as \
   N grows."

let default_sizes = [ 2_000; 10_000; 50_000; 100_000 ]

type point = {
  p_nodes : int;
  p_build_s : float;  (** rooted + converged construction, RIs included *)
  p_queries_per_s : float;
  p_query_minor_words : float;  (** minor words allocated per query *)
  p_waves_per_s : float;
  p_wave_minor_words : float;  (** minor words allocated per wave *)
  p_wire_bytes_per_wave : float;  (** delta-encoded bytes, {!Ri_p2p.Update} *)
  p_ri_bytes_per_node : float;  (** flat-store resident bytes, whole network *)
  p_top_heap_mb : float;  (** [Gc.quick_stat].top_heap_words so far *)
}

let now = Unix.gettimeofday

(* Time [n] repetitions of [f], returning (ops/sec, minor words/op).
   The Gc counter costs nothing and the loop allocates nothing of its
   own, so the words are the operation's. *)
let rate n f =
  let w0 = Gc.minor_words () in
  let t0 = now () in
  for i = 0 to n - 1 do
    f i
  done;
  let dt = now () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let n' = float_of_int n in
  ((if dt > 0. then n' /. dt else 0.), dw /. n')

let ri_bytes_per_node net =
  let n = Network.size net in
  if not (Network.has_ri net) || n = 0 then 0.
  else begin
    let bytes = ref 0 in
    for v = 0 to n - 1 do
      bytes := !bytes + Scheme.storage_bytes (Network.ri net v)
    done;
    float_of_int !bytes /. float_of_int n
  end

let measure ~base ~spec n =
  let cfg = Config.scaled base ~num_nodes:n in
  if Fault.active cfg.Config.fault then
    invalid_arg "Fig_scale.measure: the fault plane must be inert";
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fig_scale.measure: " ^ msg));
  let queries = max 1 spec.Runner.max_trials in
  let waves = max 1 spec.Runner.min_trials in
  let t0 = now () in
  let setup_q = Trial.build cfg ~trial:0 in
  let setup_u = Trial.build ~purpose:Trial.For_update cfg ~trial:0 in
  let build_s = now () -. t0 in
  let qps, q_words =
    rate queries (fun _ -> ignore (Trial.run_query_on cfg setup_q))
  in
  let wire = ref 0 in
  let wps, w_words =
    rate waves (fun _ ->
        let m = Trial.run_update_on cfg setup_u in
        wire := !wire + m.Trial.update_wire_bytes)
  in
  {
    p_nodes = n;
    p_build_s = build_s;
    p_queries_per_s = qps;
    p_query_minor_words = q_words;
    p_waves_per_s = wps;
    p_wave_minor_words = w_words;
    p_wire_bytes_per_wave = float_of_int !wire /. float_of_int waves;
    p_ri_bytes_per_node = ri_bytes_per_node setup_u.Trial.network;
    p_top_heap_mb =
      float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. 8. /. 1e6;
  }

let sweep ?sizes ~base ~spec () =
  let sizes =
    match sizes with
    | Some s -> s
    | None -> (
        match List.filter (fun s -> s <= base.Config.num_nodes) default_sizes with
        | [] -> [ base.Config.num_nodes ]
        | s -> s)
  in
  List.map (measure ~base ~spec) sizes

let report_of points =
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_number ~decimals:0 (float_of_int p.p_nodes);
          Report.cell_number ~decimals:2 p.p_build_s;
          Report.cell_number ~decimals:1 p.p_queries_per_s;
          Report.cell_number ~decimals:1 p.p_waves_per_s;
          Report.cell_number ~decimals:0 p.p_wire_bytes_per_wave;
          Report.cell_number ~decimals:0 p.p_ri_bytes_per_node;
          Report.cell_number ~decimals:1 p.p_top_heap_mb;
        ])
      points
  in
  Report.make ~id ~title ~paper_claim
    ~header:
      [
        "Nodes";
        "Build s";
        "Queries/s";
        "Waves/s";
        "Wire B/wave";
        "RI B/node";
        "Heap MB";
      ]
    ~rows

let json_of points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"nodes\": %d, \"build_s\": %.3f, \"queries_per_s\": \
            %.1f, \"query_minor_words\": %.1f, \"waves_per_s\": %.2f, \
            \"wave_minor_words\": %.1f, \"wire_bytes_per_wave\": %.1f, \
            \"ri_bytes_per_node\": %.1f, \"top_heap_mb\": %.1f}"
           p.p_nodes p.p_build_s p.p_queries_per_s p.p_query_minor_words
           p.p_waves_per_s p.p_wave_minor_words p.p_wire_bytes_per_wave
           p.p_ri_bytes_per_node p.p_top_heap_mb))
    points;
  Buffer.add_string buf "\n  ]";
  Buffer.contents buf

let run ~base ~spec = report_of (sweep ~base ~spec ())
