(** Scale sweep — throughput and memory as the network grows.

    Not a paper figure: measures the simulator itself.  For each network
    size it builds the rooted (query) and converged (update) networks
    once, then times repeated queries and update waves on them,
    reporting throughput, allocation, delta-encoded wire bytes, the flat
    RI store's resident footprint, peak heap and process RSS — plus,
    on request, cache-cold build times at pool vs single-core width
    (the intra-trial parallelism speedup), snapshot save/load times,
    and the quantized-rowstore accuracy/size tradeoff. *)

val id : string

val title : string

val paper_claim : string

val default_sizes : int list
(** [2000; 10000; 50000; 100000]. *)

val big_sizes : int list
(** [100_000; 250_000; 500_000; 1_000_000] — the [--big] plane; the
    100k overlap point ties the two sweeps together. *)

type opts = {
  o_compress : int option;
      (** quantize RI cells to this many bits and report the
          accuracy/size tradeoff against the exact store *)
  o_snapshot : string option;
      (** directory for snapshot save/load round-trip timing *)
  o_par_compare : bool;
      (** additionally time a cache-cold converged build on the process
          pool and on one core *)
}

val default_opts : opts
(** Everything off — the legacy sweep. *)

type compress_point = {
  c_bits : int;
  c_rel_err_bound : float;  (** worst-case per-cell decode error *)
  c_bytes_per_node : float;  (** quantized peer-row store (local row excluded) *)
  c_exact_bytes_per_node : float;  (** same network, exact peer-row store *)
  c_found_quant : int;  (** results found across the probe queries *)
  c_found_exact : int;
}

type point = {
  p_nodes : int;
  p_build_s : float;  (** rooted + converged construction, RIs included *)
  p_build_par_s : float option;  (** cache-cold build, process pool *)
  p_build_seq_s : float option;  (** cache-cold build, one core *)
  p_queries_per_s : float;
  p_query_minor_words : float;  (** minor words allocated per query *)
  p_waves_per_s : float;
  p_wave_minor_words : float;  (** minor words allocated per wave *)
  p_wire_bytes_per_wave : float;  (** delta-encoded bytes, {!Ri_p2p.Update} *)
  p_ri_bytes_per_node : float;  (** flat-store resident bytes, whole network *)
  p_top_heap_mb : float;
      (** [Gc.quick_stat].top_heap_words at the end of this size's
          measurement — process-wide and monotone, so later sizes
          include earlier ones' peak *)
  p_rss_mb : float option;  (** process resident set ({!Ri_util.Rss}) *)
  p_snap_save_ms : float option;
  p_snap_load_ms : float option;
  p_compress : compress_point option;
}

val measure :
  ?opts:opts ->
  base:Ri_sim.Config.t ->
  spec:Ri_sim.Runner.spec ->
  int ->
  point
(** One size: [spec.max_trials] timed queries and [spec.min_trials]
    timed update waves on freshly built networks of that many nodes.
    @raise Invalid_argument if the config is invalid or its fault plane
    is active (faults would perturb the throughput numbers). *)

val sweep :
  ?sizes:int list ->
  ?opts:opts ->
  base:Ri_sim.Config.t ->
  spec:Ri_sim.Runner.spec ->
  unit ->
  point list
(** [sizes] defaults to {!default_sizes} capped at [base.num_nodes]
    (or just [base.num_nodes] when even the smallest default exceeds
    it). *)

val report_of : point list -> Report.t
(** The main table; pool/1-core and snapshot columns appear only when
    some point carries them. *)

val compress_report_of : point list -> Report.t
(** The accuracy/size table for points measured with [o_compress];
    empty-bodied when none were. *)

val json_of : point list -> string
(** The points as a JSON array, for [BENCH_results.json]; optional
    measurements serialize as [null] (or a nested ["compress"]
    object). *)

val run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t
(** Registry entry point: {!sweep} with default sizes, rendered. *)
