(** Scale sweep — throughput and memory as the network grows.

    Not a paper figure: measures the simulator itself.  For each network
    size it builds the rooted (query) and converged (update) networks
    once, then times repeated queries and update waves on them,
    reporting throughput, allocation, delta-encoded wire bytes, the flat
    RI store's resident footprint, and the process's peak heap. *)

val id : string

val title : string

val paper_claim : string

val default_sizes : int list
(** [2000; 10000; 50000; 100000]. *)

type point = {
  p_nodes : int;
  p_build_s : float;  (** rooted + converged construction, RIs included *)
  p_queries_per_s : float;
  p_query_minor_words : float;  (** minor words allocated per query *)
  p_waves_per_s : float;
  p_wave_minor_words : float;  (** minor words allocated per wave *)
  p_wire_bytes_per_wave : float;  (** delta-encoded bytes, {!Ri_p2p.Update} *)
  p_ri_bytes_per_node : float;  (** flat-store resident bytes, whole network *)
  p_top_heap_mb : float;
      (** [Gc.quick_stat].top_heap_words at the end of this size's
          measurement — process-wide and monotone, so later sizes
          include earlier ones' peak *)
}

val measure : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> int -> point
(** One size: [spec.max_trials] timed queries and [spec.min_trials]
    timed update waves on freshly built networks of that many nodes.
    @raise Invalid_argument if the config is invalid or its fault plane
    is active (faults would perturb the throughput numbers). *)

val sweep :
  ?sizes:int list ->
  base:Ri_sim.Config.t ->
  spec:Ri_sim.Runner.spec ->
  unit ->
  point list
(** [sizes] defaults to {!default_sizes} capped at [base.num_nodes]
    (or just [base.num_nodes] when even the smallest default exceeds
    it). *)

val report_of : point list -> Report.t

val json_of : point list -> string
(** The points as a JSON array, for [BENCH_results.json]. *)

val run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t
(** Registry entry point: {!sweep} with default sizes, rendered. *)
