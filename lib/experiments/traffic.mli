(** Open-loop traffic sweep — latency quantiles vs offered QPS.

    Queries arrive at Poisson times over Zipf-popular topics against a
    converged network and execute {e in flight} on the discrete-event
    engine ({!Ri_sim.Engine}): per-node mailboxes with a configurable
    service rate, a constant per-hop link latency, thousands of query
    state machines ({!Ri_p2p.Query.Step}) interleaved — optionally with
    update waves riding the same mailboxes.  Each swept QPS point
    reports p50/p95/p99 latency, goodput, queue depths and makespan;
    the first point whose median latency exceeds twice the no-load walk
    time (one service slot plus one link delay per message) marks the
    saturation knee.

    The traffic observatory rides along ({!Ri_obs.Observatory}): every
    completed query's latency decomposes exactly into queue-wait +
    service + link-transit with critical-hop attribution, per-node
    engine counters rank into a top-K hotspot table per point, and an
    optional logical-time timeline exports as byte-identical JSONL.

    Deterministic at any pool width: each (qps, trial) pair runs a
    single-threaded engine seeded from trial-keyed substreams, trials
    are dealt [~chunk:1] in trial order, and sketch / decomposition /
    node-accumulator merging is order-independent. *)

val id : string
val title : string
val paper_claim : string

type opts = {
  o_qps : float list;  (** offered arrival rates to sweep, each > 0 *)
  o_duration : float;  (** open-loop arrival window, seconds *)
  o_service_rate : float;  (** per-node service capacity, messages/sec *)
  o_link_latency : float;  (** per-hop propagation delay, milliseconds *)
  o_update_rate : float;  (** interleaved update waves per second, >= 0 *)
  o_zipf : float;  (** topic-popularity skew exponent *)
  o_shift_every : int;  (** rotate the hot set every N draws; 0 = never *)
  o_trials : int;
  o_snapshot : string option;
      (** load the converged network from this snapshot (trial 0 only)
          instead of building it *)
  o_hotspots : int;  (** top-K hotspot nodes reported per point, >= 0 *)
  o_timeline_bins : int;
      (** bins in the per-trial logical-time timeline (used only while
          {!Ri_obs.Observatory} records), >= 1 *)
}

val default_opts : opts

(** One swept QPS point, aggregated across trials. *)
type point = {
  q_qps : float;
  q_offered : float;  (** measured arrival rate, queries/sec *)
  q_arrivals : int;
  q_completed : int;
  q_satisfied : int;
  q_goodput : float;  (** satisfied queries per second of makespan *)
  q_p50_ms : float;
  q_p95_ms : float;
  q_p99_ms : float;
  q_mean_ms : float;
  q_messages_per_query : float;
  q_update_messages : int;
  q_queue_peak : int;
  q_queue_mean : float;
  q_makespan_s : float;
  q_saturated : bool;
      (** median latency exceeded twice the no-load walk time — mailbox
          queueing dominates the walk itself *)
  q_queue_ms : float;  (** mean per-query queue-wait, milliseconds *)
  q_service_ms : float;  (** mean per-query service time, milliseconds *)
  q_link_ms : float;  (** mean per-query link transit, milliseconds *)
  q_queue_share : float;
      (** fraction of end-to-end time spent queueing — the measured
          form of [q_saturated] *)
  q_hotspots : Ri_obs.Observatory.hotspot list;
      (** top-K nodes by accumulated queue-wait, merged across trials
          (node ids align across trials of the same generator params) *)
}

(** Per-(qps, trial) raw result, exposed for the determinism tests. *)
type trial_result = {
  r_arrivals : int;
  r_completed : int;
  r_satisfied : int;
  r_found : int;
  r_messages : int;
  r_update_messages : int;
  r_update_wire_bytes : int;
  r_queue_peak : int;
  r_queue_mean : float;
  r_makespan_s : float;
  r_makespan_ns : int;  (** arrival window plus drain overhang, ns *)
  r_sketch : Ri_obs.Sketch.t;  (** per-query latency, milliseconds *)
  r_decomp : Ri_obs.Observatory.decomp;
      (** exact latency decomposition: queue + service + link sums to
          end-to-end over the completed queries *)
  r_nodes : Ri_obs.Observatory.node_acc;  (** per-node attribution *)
}

val simulate :
  Ri_sim.Config.t -> opts:opts -> qps:float -> trial:int -> trial_result
(** One (qps, trial) simulation on a fresh engine.  Bit-identical for a
    given (config, opts, qps, trial) whatever else runs concurrently —
    with timeline recording on or off (the recorder only reads engine
    state).
    @raise Invalid_argument on a flooding config (a flood has no
    sequential walk to schedule). *)

val measure : ?opts:opts -> Ri_sim.Config.t -> qps:float -> point
(** Run [opts.o_trials] trials of one QPS point across the global pool
    and aggregate.  Bumps the observability unit once, on the
    submitting domain, so traces and timelines stay byte-identical at
    any [--jobs].
    @raise Invalid_argument on invalid [opts] or config. *)

val sweep : ?opts:opts -> Ri_sim.Config.t -> unit -> point list
(** [measure] for every rate in [opts.o_qps], in order, publishing the
    sweep-so-far to {!Ri_obs.Serve.Traffic} after each point. *)

val knee_of : point list -> float option
(** Offered rate of the first saturated point, if any. *)

val report_of : point list -> Report.t

val hotspots_report_of : point list -> Report.t
(** Top-K hotspot nodes per swept point: queue-wait, busy time,
    utilization, peak depth and critical-hop counts. *)

val json_of : opts:opts -> point list -> string
