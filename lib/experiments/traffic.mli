(** Open-loop traffic sweep — latency quantiles vs offered QPS.

    Queries arrive at Poisson times over Zipf-popular topics against a
    converged network and execute {e in flight} on the discrete-event
    engine ({!Ri_sim.Engine}): per-node mailboxes with a configurable
    service rate, a constant per-hop link latency, thousands of query
    state machines ({!Ri_p2p.Query.Step}) interleaved — optionally with
    update waves riding the same mailboxes.  Each swept QPS point
    reports p50/p95/p99 latency, goodput, queue depths and makespan;
    the first point whose median latency exceeds twice the no-load walk
    time (one service slot plus one link delay per message) marks the
    saturation knee.

    Deterministic at any pool width: each (qps, trial) pair runs a
    single-threaded engine seeded from trial-keyed substreams, trials
    are dealt [~chunk:1] in trial order, and sketch merging is
    order-independent. *)

val id : string
val title : string
val paper_claim : string

type opts = {
  o_qps : float list;  (** offered arrival rates to sweep, each > 0 *)
  o_duration : float;  (** open-loop arrival window, seconds *)
  o_service_rate : float;  (** per-node service capacity, messages/sec *)
  o_link_latency : float;  (** per-hop propagation delay, milliseconds *)
  o_update_rate : float;  (** interleaved update waves per second, >= 0 *)
  o_zipf : float;  (** topic-popularity skew exponent *)
  o_shift_every : int;  (** rotate the hot set every N draws; 0 = never *)
  o_trials : int;
  o_snapshot : string option;
      (** load the converged network from this snapshot (trial 0 only)
          instead of building it *)
}

val default_opts : opts

(** One swept QPS point, aggregated across trials. *)
type point = {
  q_qps : float;
  q_offered : float;  (** measured arrival rate, queries/sec *)
  q_arrivals : int;
  q_completed : int;
  q_satisfied : int;
  q_goodput : float;  (** satisfied queries per second of makespan *)
  q_p50_ms : float;
  q_p95_ms : float;
  q_p99_ms : float;
  q_mean_ms : float;
  q_messages_per_query : float;
  q_update_messages : int;
  q_queue_peak : int;
  q_queue_mean : float;
  q_makespan_s : float;
  q_saturated : bool;
      (** median latency exceeded twice the no-load walk time — mailbox
          queueing dominates the walk itself *)
}

(** Per-(qps, trial) raw result, exposed for the determinism tests. *)
type trial_result = {
  r_arrivals : int;
  r_completed : int;
  r_satisfied : int;
  r_found : int;
  r_messages : int;
  r_update_messages : int;
  r_update_wire_bytes : int;
  r_queue_peak : int;
  r_queue_mean : float;
  r_makespan_s : float;
  r_sketch : Ri_obs.Sketch.t;  (** per-query latency, milliseconds *)
}

val simulate :
  Ri_sim.Config.t -> opts:opts -> qps:float -> trial:int -> trial_result
(** One (qps, trial) simulation on a fresh engine.  Bit-identical for a
    given (config, opts, qps, trial) whatever else runs concurrently.
    @raise Invalid_argument on a flooding config (a flood has no
    sequential walk to schedule). *)

val measure : ?opts:opts -> Ri_sim.Config.t -> qps:float -> point
(** Run [opts.o_trials] trials of one QPS point across the global pool
    and aggregate.  Bumps the observability unit once, on the
    submitting domain, so traces stay byte-identical at any [--jobs].
    @raise Invalid_argument on invalid [opts] or config. *)

val sweep : ?opts:opts -> Ri_sim.Config.t -> unit -> point list
(** [measure] for every rate in [opts.o_qps], in order. *)

val knee_of : point list -> float option
(** Offered rate of the first saturated point, if any. *)

val report_of : point list -> Report.t
val json_of : opts:opts -> point list -> string
