(** Benchmark regression gate: compare a fresh [BENCH_results.json]
    against a committed baseline and flag microbenchmarks that slowed
    past a threshold.

    Only the [micro_ns_per_run] section is gated — Bechamel's OLS fits
    are stable to a few percent, while figure wall-clock times swing
    with machine load.  Microbenchmarks present only in the results
    (newly added) are ignored; ones present only in the baseline are
    reported as missing but do not fail the gate. *)

type verdict = {
  name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;  (** current / baseline *)
  regressed : bool;  (** current exceeds baseline by over the threshold *)
}

type outcome = {
  verdicts : verdict list;  (** in sorted baseline name order *)
  missing : string list;  (** in the baseline, absent from the results *)
  threshold : float;  (** percent slowdown tolerated *)
  p99_verdicts : verdict list;
      (** tail-latency rows from [micro_quantiles_ns] p99 values; empty
          unless the gate ran ([gate_p99] and both files carry the
          section) *)
  p99_note : string option;
      (** set when [gate_p99] was requested but a side lacks
          [micro_quantiles_ns] (e.g. a baseline predating the
          tail-latency pass) — the gate skips instead of failing *)
}

val default_threshold : float
(** 15 (percent) — [bench/regress] overrides it from
    [RI_BENCH_THRESHOLD]. *)

val compare :
  ?threshold:float ->
  ?gate_p99:bool ->
  baseline:string ->
  results:string ->
  unit ->
  (outcome, string) result
(** Parse two BENCH json documents (raw file contents) and compare their
    micro sections.  [Error] on malformed JSON or a document without a
    [micro_ns_per_run] object (e.g. an [RI_MICRO=0] smoke run).  With
    [gate_p99] (bench/regress sets it from [RI_BENCH_P99=1]) the p99
    values of [micro_quantiles_ns] are additionally gated at the same
    threshold — a micro whose mean holds but whose tail blew up fails
    the run. *)

val compare_values :
  gate_p99:bool ->
  threshold:float ->
  baseline:Ri_util.Json.t ->
  results:Ri_util.Json.t ->
  (outcome, string) result
(** {!compare} on already-parsed documents. *)

val any_regressed : outcome -> bool

val render : outcome -> string
(** Human-readable per-micro table with a final OK/FAIL line. *)
