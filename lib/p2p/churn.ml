open Ri_core

let connect net u v ~counters =
  Network.add_link net u v;
  if Network.has_ri net then begin
    (* Initial exchange: each side aggregates its RI (the other side has
       no row yet, so no exclusion applies) and sends it across. *)
    let to_v = Network.export_to net u ~peer:v in
    let to_u = Network.export_to net v ~peer:u in
    counters.Message.update_messages <- counters.Message.update_messages + 2;
    (* Both endpoints now reach more documents; tell everyone else,
       pairing each outgoing aggregate with its pre-connection value so
       receivers judge exactly the connection's effect. *)
    let seeds_u =
      Update.seeds_for_change net ~at:u ~except:[ v ] ~mutate:(fun () ->
          Scheme.set_row (Network.ri net u) ~peer:v to_u)
    in
    let seeds_v =
      Update.seeds_for_change net ~at:v ~except:[ u ] ~mutate:(fun () ->
          Scheme.set_row (Network.ri net v) ~peer:u to_v)
    in
    Update.wave net ~seeds:(seeds_u @ seeds_v) ~already_reached:[ u; v ]
      ~counters
  end

type connect_result = Connected | Rejected_cycle

let reachable net src dst =
  let n = Network.size net in
  let seen = Array.make n false in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while not (!found || Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if v = dst then found := true
        else if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      (Network.neighbors net u)
  done;
  !found

let connect_avoiding_cycles net u v ~counters =
  (* One probe message to test connectivity (in a deployment this is a
     path-discovery exchange; we charge the minimum). *)
  counters.Message.update_messages <- counters.Message.update_messages + 1;
  if reachable net u v then Rejected_cycle
  else begin
    connect net u v ~counters;
    Connected
  end

let drop_side net a b ~counters =
  if Network.has_ri net then begin
    let seeds =
      Update.seeds_for_change net ~at:a ~except:[ b ] ~mutate:(fun () ->
          Scheme.remove_row (Network.ri net a) ~peer:b)
    in
    Update.wave net ~seeds ~already_reached:[ a ] ~counters
  end

let disconnect_link net u v ~counters =
  drop_side net u v ~counters;
  drop_side net v u ~counters;
  Network.remove_link net u v

let disconnect_node net v ~counters =
  let former = Array.to_list (Network.neighbors net v) in
  (* Sever every link before any announcement: the leaving node takes
     no part in the protocol, and on a cyclic overlay a still-attached
     leaver would relay the very waves announcing its departure,
     re-creating the rows its ex-neighbors just removed. *)
  List.iter (fun u -> Network.remove_link net u v) former;
  (* The former neighbors detect the loss, clean up and spread the news,
     without any participation of the leaving node. *)
  List.iter
    (fun u ->
      if Network.has_ri net then begin
        let seeds =
          Update.seeds_for_change net ~at:u ~except:[] ~mutate:(fun () ->
              Scheme.remove_row (Network.ri net u) ~peer:v)
        in
        Update.wave net ~seeds ~already_reached:[ u ] ~counters
      end)
    former;
  (* The departed node itself starts over: when it later rejoins, it
     must look like "a newly connected node [that] sends a summary of
     its local index" (Section 5.1), not one advertising a network it
     can no longer reach.  Local cleanup costs no messages. *)
  if Network.has_ri net then begin
    let ri = Network.ri net v in
    List.iter (fun peer -> Scheme.remove_row ri ~peer) (Scheme.peers ri)
  end;
  former

let crash_stop net v ~plan =
  if v < 0 || v >= Network.size net then
    invalid_arg "Churn.crash_stop: node out of range";
  Fault.kill plan v

let detect_crash net u ~dead ~plan =
  if Fault.learn_dead plan ~at:u ~dead then begin
    (if Network.has_ri net then
       let ri = Network.ri net u in
       match Scheme.row ri ~peer:dead with
       | Some _ ->
           Scheme.remove_row ri ~peer:dead;
           Fault.note_repair plan
       | None -> ());
    Fault.set_dirty plan u;
    true
  end
  else false

let reconcile net u v ~plan ~counters =
  (* Death certificates ride along for free: each side applies the
     other's presumed-dead list, removing any row it still holds for a
     newly learned corpse, and becomes dirty in turn so the news keeps
     spreading lazily. *)
  let gossip src dst =
    List.iter
      (fun corpse ->
        if corpse <> dst && Fault.learn_dead plan ~at:dst ~dead:corpse then begin
          (if Network.has_ri net then
             let ri = Network.ri net dst in
             match Scheme.row ri ~peer:corpse with
             | Some _ ->
                 Scheme.remove_row ri ~peer:corpse;
                 Fault.note_repair plan
             | None -> ());
          Fault.set_dirty plan dst
        end)
      (Fault.known_dead_of plan src)
  in
  gossip u v;
  gossip v u;
  if Network.has_ri net then begin
    (* Full-state exchange across the link, like the initial handshake
       of {!connect}: two update messages, both rows rewritten from the
       current exports, any recorded gaps healed.  No onward wave — the
       repair stays lazy; each further link reconciles on its own first
       contact. *)
    counters.Message.update_messages <- counters.Message.update_messages + 2;
    let to_v = Network.export_to net u ~peer:v in
    let to_u = Network.export_to net v ~peer:u in
    Scheme.set_row (Network.ri net v) ~peer:u to_v;
    Scheme.set_row (Network.ri net u) ~peer:v to_u;
    (* The exchanged aggregates are only as good as their inputs: a gap
       heals only when the counterpart's export was built from gap-free
       rows, exactly as for a wave delivery.  Both taints are judged
       against the pre-exchange state the exports were computed from. *)
    let u_trustworthy = not (Fault.tainted plan ~at:u ~toward:v) in
    let v_trustworthy = not (Fault.tainted plan ~at:v ~toward:u) in
    if v_trustworthy then Fault.clear_missed plan ~at:u ~peer:v;
    if u_trustworthy then Fault.clear_missed plan ~at:v ~peer:u;
    Fault.note_repair plan
  end
