open Ri_core

let connect net u v ~counters =
  Network.add_link net u v;
  if Network.has_ri net then begin
    (* Initial exchange: each side aggregates its RI (the other side has
       no row yet, so no exclusion applies) and sends it across. *)
    let to_v = Network.export_to net u ~peer:v in
    let to_u = Network.export_to net v ~peer:u in
    counters.Message.update_messages <- counters.Message.update_messages + 2;
    (* Both endpoints now reach more documents; tell everyone else,
       pairing each outgoing aggregate with its pre-connection value so
       receivers judge exactly the connection's effect. *)
    let seeds_u =
      Update.seeds_for_change net ~at:u ~except:[ v ] ~mutate:(fun () ->
          Scheme.set_row (Network.ri net u) ~peer:v to_u)
    in
    let seeds_v =
      Update.seeds_for_change net ~at:v ~except:[ u ] ~mutate:(fun () ->
          Scheme.set_row (Network.ri net v) ~peer:u to_v)
    in
    Update.wave net ~seeds:(seeds_u @ seeds_v) ~already_reached:[ u; v ]
      ~counters
  end

type connect_result = Connected | Rejected_cycle

let reachable net src dst =
  let n = Network.size net in
  let seen = Array.make n false in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while not (!found || Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if v = dst then found := true
        else if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      (Network.neighbors net u)
  done;
  !found

let connect_avoiding_cycles net u v ~counters =
  (* One probe message to test connectivity (in a deployment this is a
     path-discovery exchange; we charge the minimum). *)
  counters.Message.update_messages <- counters.Message.update_messages + 1;
  if reachable net u v then Rejected_cycle
  else begin
    connect net u v ~counters;
    Connected
  end

let drop_side net a b ~counters =
  if Network.has_ri net then begin
    let seeds =
      Update.seeds_for_change net ~at:a ~except:[ b ] ~mutate:(fun () ->
          Scheme.remove_row (Network.ri net a) ~peer:b)
    in
    Update.wave net ~seeds ~already_reached:[ a ] ~counters
  end

let disconnect_link net u v ~counters =
  drop_side net u v ~counters;
  drop_side net v u ~counters;
  Network.remove_link net u v

let disconnect_node net v ~counters =
  let former = Array.to_list (Network.neighbors net v) in
  (* Sever every link before any announcement: the leaving node takes
     no part in the protocol, and on a cyclic overlay a still-attached
     leaver would relay the very waves announcing its departure,
     re-creating the rows its ex-neighbors just removed. *)
  List.iter (fun u -> Network.remove_link net u v) former;
  (* The former neighbors detect the loss, clean up and spread the news,
     without any participation of the leaving node. *)
  List.iter
    (fun u ->
      if Network.has_ri net then begin
        let seeds =
          Update.seeds_for_change net ~at:u ~except:[] ~mutate:(fun () ->
              Scheme.remove_row (Network.ri net u) ~peer:v)
        in
        Update.wave net ~seeds ~already_reached:[ u ] ~counters
      end)
    former;
  (* The departed node itself starts over: when it later rejoins, it
     must look like "a newly connected node [that] sends a summary of
     its local index" (Section 5.1), not one advertising a network it
     can no longer reach.  Local cleanup costs no messages. *)
  if Network.has_ri net then begin
    let ri = Network.ri net v in
    List.iter (fun peer -> Scheme.remove_row ri ~peer) (Scheme.peers ri)
  end;
  former

(* Crash-recovery row persistence: a compact binary image of one node's
   RI rows, in the style of [Ri_sim.Snapshot]'s row sections (this
   library cannot depend on [ri_sim], so the codec lives here).  Floats
   are stored as their IEEE bit patterns, little-endian, and rows in the
   store's live iteration order, so persist -> restore round-trips
   bit-identically — the determinism contract extends to rejoin. *)

type rejoin = Amnesiac | Stale_state of Bytes.t

let rows_magic = "RIROWS01"

let add_f64 buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

let add_i32 buf x = Buffer.add_int32_le buf (Int32.of_int x)

let add_summary buf (s : Ri_content.Summary.t) =
  add_f64 buf s.Ri_content.Summary.total;
  add_i32 buf (Array.length s.Ri_content.Summary.by_topic);
  Array.iter (add_f64 buf) s.Ri_content.Summary.by_topic

let add_payload buf = function
  | Scheme.Vector s ->
      add_i32 buf 0;
      add_summary buf s
  | Scheme.Hop_vector hops ->
      add_i32 buf 1;
      add_i32 buf (Array.length hops);
      Array.iter (add_summary buf) hops

let persist_rows net v =
  if v < 0 || v >= Network.size net then
    invalid_arg "Churn.persist_rows: node out of range";
  if not (Network.has_ri net) then
    invalid_arg "Churn.persist_rows: network has no routing indices";
  let ri = Network.ri net v in
  let peers = Scheme.peers ri in
  let buf = Buffer.create 256 in
  Buffer.add_string buf rows_magic;
  add_i32 buf (List.length peers);
  List.iter
    (fun peer ->
      match Scheme.row ri ~peer with
      | Some payload ->
          add_i32 buf peer;
          add_payload buf payload
      | None -> assert false)
    peers;
  Buffer.to_bytes buf

let corrupt what = invalid_arg ("Churn.recover: corrupt stale state: " ^ what)

let read_i32 bytes pos =
  if !pos + 4 > Bytes.length bytes then corrupt "truncated int";
  let x = Int32.to_int (Bytes.get_int32_le bytes !pos) in
  pos := !pos + 4;
  x

let read_f64 bytes pos =
  if !pos + 8 > Bytes.length bytes then corrupt "truncated float";
  let x = Int64.float_of_bits (Bytes.get_int64_le bytes !pos) in
  pos := !pos + 8;
  x

let read_summary bytes pos =
  let total = read_f64 bytes pos in
  let topics = read_i32 bytes pos in
  if topics < 0 || topics > 1 lsl 20 then corrupt "bad topic width";
  let by_topic = Array.init topics (fun _ -> read_f64 bytes pos) in
  Ri_content.Summary.make ~total ~by_topic

let read_payload bytes pos =
  match read_i32 bytes pos with
  | 0 -> Scheme.Vector (read_summary bytes pos)
  | 1 ->
      let hops = read_i32 bytes pos in
      if hops < 0 || hops > 1 lsl 10 then corrupt "bad hop count";
      Scheme.Hop_vector (Array.init hops (fun _ -> read_summary bytes pos))
  | _ -> corrupt "unknown payload tag"

let restore_rows net v bytes =
  let magic_len = String.length rows_magic in
  if
    Bytes.length bytes < magic_len
    || not (String.equal (Bytes.sub_string bytes 0 magic_len) rows_magic)
  then corrupt "bad magic";
  let pos = ref magic_len in
  let count = read_i32 bytes pos in
  if count < 0 then corrupt "negative row count";
  let ri = Network.ri net v in
  for _ = 1 to count do
    let peer = read_i32 bytes pos in
    let payload = read_payload bytes pos in
    (* A peer the node is no longer linked to gets no row: rows drive
       the exports, and a stale row toward a vanished link would
       re-advertise an unreachable subtree. *)
    if peer >= 0 && peer < Network.size net && Network.has_link net v peer
    then Scheme.set_row ri ~peer payload
  done

let crash_stop net v ~plan =
  if v < 0 || v >= Network.size net then
    invalid_arg "Churn.crash_stop: node out of range";
  Fault.kill plan v

let detect_crash net u ~dead ~plan =
  if Fault.learn_dead plan ~at:u ~dead then begin
    (if Network.has_ri net then
       let ri = Network.ri net u in
       match Scheme.row ri ~peer:dead with
       | Some _ ->
           Scheme.remove_row ri ~peer:dead;
           Fault.note_repair plan
       | None -> ());
    (* The row is gone; a gap recorded toward the corpse would taint
       [u]'s exports forever (nothing can ever heal it), poisoning
       every downstream trust judgement. *)
    Fault.clear_missed plan ~at:u ~peer:dead;
    Fault.set_dirty plan u;
    true
  end
  else false

let reconcile net u v ~plan ~counters =
  (* Death certificates ride along for free: each side applies the
     other's presumed-dead list, removing any row it still holds for a
     newly learned corpse, and becomes dirty in turn so the news keeps
     spreading lazily. *)
  let gossip src dst =
    List.iter
      (fun corpse ->
        if corpse <> dst && Fault.learn_dead plan ~at:dst ~dead:corpse then begin
          (if Network.has_ri net then
             let ri = Network.ri net dst in
             match Scheme.row ri ~peer:corpse with
             | Some _ ->
                 Scheme.remove_row ri ~peer:corpse;
                 Fault.note_repair plan
             | None -> ());
          Fault.clear_missed plan ~at:dst ~peer:corpse;
          Fault.set_dirty plan dst
        end)
      (Fault.known_dead_of plan src)
  in
  gossip u v;
  gossip v u;
  if Network.has_ri net then begin
    (* Full-state exchange across the link, like the initial handshake
       of {!connect}: two update messages, both rows rewritten from the
       current exports, any recorded gaps healed.  No onward wave — the
       repair stays lazy; each further link reconciles on its own first
       contact. *)
    counters.Message.update_messages <- counters.Message.update_messages + 2;
    let to_v = Network.export_to net u ~peer:v in
    let to_u = Network.export_to net v ~peer:u in
    Scheme.set_row (Network.ri net v) ~peer:u to_v;
    Scheme.set_row (Network.ri net u) ~peer:v to_u;
    (* The exchanged aggregates are only as good as their inputs: a gap
       heals only when the counterpart's export was built from gap-free
       rows, exactly as for a wave delivery.  Both taints are judged
       against the pre-exchange state the exports were computed from. *)
    let u_trustworthy = not (Fault.tainted plan ~at:u ~toward:v) in
    let v_trustworthy = not (Fault.tainted plan ~at:v ~toward:u) in
    if v_trustworthy then Fault.clear_missed plan ~at:u ~peer:v;
    if u_trustworthy then Fault.clear_missed plan ~at:v ~peer:u;
    Fault.note_repair plan
  end

let recover ?on_event net v ~rejoin ~plan ~counters =
  if v < 0 || v >= Network.size net then
    invalid_arg "Churn.recover: node out of range";
  if not (Fault.is_dead plan v) then
    invalid_arg "Churn.recover: node is not crash-stopped";
  (* Revival first: it revokes every death certificate naming [v], so
     the re-announcement below cannot be undone by certificate gossip. *)
  Fault.revive plan v;
  (if Network.has_ri net then
     let ri = Network.ri net v in
     match rejoin with
     | Amnesiac ->
         (* The crash lost the RI.  The node starts from its local index
            only, and knows it: every live link opens a recorded gap, so
            ranking demotes the missing knowledge and anti-entropy (or
            the next clean wave) refills the rows. *)
         List.iter (fun peer -> Scheme.remove_row ri ~peer) (Scheme.peers ri);
         Array.iter
           (fun u ->
             if not (Fault.is_dead plan u) then
               Fault.note_missed plan ~at:v ~peer:u)
           (Network.neighbors net v)
     | Stale_state bytes ->
         (* Replay the persisted image.  The rows are whatever was true
            at persist time — possibly badly stale; the dirty mark and
            the re-announcement below start the repair. *)
         List.iter (fun peer -> Scheme.remove_row ri ~peer) (Scheme.peers ri);
         restore_rows net v bytes);
  Fault.set_dirty plan v;
  (* Re-announce: "a newly connected node sends a summary of its local
     index" (Section 5.1) — here a full propagation from the rejoined
     node, subject to the plan's faults like any other wave.  Dead or
     cross-cut neighbors miss it and stay for anti-entropy. *)
  Update.propagate ?on_event ~plan net ~origin:v ~counters
