(** Query processing (Sections 3.1 and 5.2).

    A query enters at an origin node, which answers from its local
    database and, while the stop condition is unmet, forwards the query
    {e sequentially} to its neighbors in the order given by its routing
    index (or in random order for the No-RI baseline).  A node that
    cannot forward any further returns the query to the neighbor it came
    from, which tries its next-best neighbor — a depth-first traversal
    driven by per-node rankings.

    Cycle handling during query processing follows Appendix A:
    with [Detect_recover] "nodes keep track of the queries ... If a
    query reaches a node for a second time (due to a cycle) the message
    is not forwarded any further"; with [No_op] a revisited node
    processes the query again — it finds only "document results that
    were already found in a previous iteration" (results are counted
    once) and forwards to neighbors it has not yet tried, which is where
    the ignore policy's extra traffic comes from (Figure 16). *)

type forwarding =
  | Ri_guided  (** rank neighbors by the local routing index *)
  | Random_walk  (** the paper's No-RI baseline: random neighbor order *)

type outcome = {
  found : int;  (** ground-truth results located (counted once) *)
  satisfied : bool;  (** stop condition reached *)
  nodes_visited : int;  (** distinct nodes that processed the query *)
  counters : Message.counters;
}

(** One observable step of a query's life, emitted in order through
    {!run}'s [on_event] callback — the message-level trace behind the
    counters. *)
type event =
  | Forwarded of { sender : int; receiver : int }
  | Returned of { sender : int; receiver : int }
      (** the query bounced back: subtree exhausted or revisit detected *)
  | Results of { at : int; count : int }
      (** a result-pointer message to the query's client *)
  | Timed_out of { sender : int; receiver : int; attempt : int }
      (** fault injection: the forward got no acknowledgment (dead
          neighbor or link flap); [attempt] counts from 0 *)
  | Gave_up of { sender : int; receiver : int }
      (** every retry timed out; the sender presumes the neighbor dead *)
  | Reconciled of { a : int; b : int }
      (** lazy anti-entropy ran across this link before the hop *)

val messages : outcome -> int
(** Total query-processing messages: forwards + returns + results. *)

val run :
  ?rng:Ri_util.Prng.t ->
  ?on_event:(event -> unit) ->
  ?decide:Ri_obs.Decision.sink ->
  ?plan:Fault.t ->
  Network.t ->
  origin:int ->
  query:Ri_content.Workload.query ->
  forwarding:forwarding ->
  outcome
(** Execute one query.  [rng] (required semantics only for
    [Random_walk]; defaults to the network's generator) supplies the
    random neighbor ordering.  [on_event] observes every message as it
    is sent, in order.

    [decide] (default {!Ri_obs.Decision.null}) receives per-hop
    provenance: one [Decide] per decision point with the candidate
    goodness vector, per-row staleness and update-wave lineage, and the
    counterfactual oracle-best candidate (ground-truth reachability with
    the deciding node removed); [Follow]/[Backtrack]/[Timeout] for the
    walk skeleton; one final [Stop].  On a dead sink every capture site
    — including the per-candidate oracle BFS — is a single branch.
    [run_parallel] and [flood] take no sink: neither makes per-neighbor
    routing decisions worth explaining.

    [plan] runs the query in the fault environment: forwards to
    crash-stopped neighbors (and, with probability [link_flap], to live
    ones) time out and are retried up to [retries] times with
    deterministic exponential backoff; a neighbor that never answers is
    presumed dead — its row is dropped ({!Churn.detect_crash}) and the
    walk moves on.  First contact across a link after fault knowledge
    accrued triggers {!Churn.reconcile}.  With [stale_after] set,
    [Ri_guided] ranks rows with detectable update gaps {e after} all
    fresh rows, in random order — graceful degradation to No-RI ranking
    instead of trusting garbage counts.  [query_budget] caps total
    forwards.  Omitting [plan] is bit-for-bit the fault-free query.
    @raise Invalid_argument for [Ri_guided] on a No-RI network, an
    out-of-range origin, or a crash-stopped origin. *)

(** The fault-free query as a message-driven state machine, for the
    discrete-event engine ({!Ri_sim.Engine} drives one of these per
    in-flight query).

    The sequential walk keeps exactly one message in flight — the
    forward it just sent, or the return bouncing it back — so
    {!deliver}ing that message yields at most one successor [send].
    Draining the machine inline is the zero-latency schedule and
    reproduces {!run} (without a fault plan) bit-for-bit: same events
    in the same order, same counters, same outcome.  An engine instead
    routes each [send] through its receiver's mailbox and the link
    latency model; because fault-free queries never write network
    state, interleaving thousands of machines leaves each one's
    behavior — and its random stream, when given a private [rng] —
    untouched. *)
module Step : sig
  type t
  (** One in-flight query: visited set, frame stack, counters. *)

  type kind = Forward | Return

  type send = { src : int; dst : int; kind : kind }
  (** A message in flight.  [dst] is where it must be delivered;
      servicing it there produces the successor. *)

  val start :
    ?rng:Ri_util.Prng.t ->
    ?on_event:(event -> unit) ->
    ?decide:Ri_obs.Decision.sink ->
    Network.t ->
    origin:int ->
    query:Ri_content.Workload.query ->
    forwarding:forwarding ->
    t * send option
  (** Process the query at its origin and emit the first hop ([None]
      when the origin alone satisfies the stop condition).  Interleaved
      machines sharing a PRNG would entangle their shuffle draws: give
      each concurrent [Random_walk] query a private [rng].
      @raise Invalid_argument as {!run}. *)

  val deliver : t -> send -> send option
  (** Service a delivered message at [send.dst]: process the visit (or
      bounce a detected revisit), then emit the walk's next message.
      [None] means the query just completed. *)

  val outcome : t -> outcome
  (** The outcome so far; final once {!deliver} returned [None]. *)

  val finish : t -> outcome
  (** Emit the final [Stop] decision record and publish the outcome's
      metrics (query counters and cost sketches), exactly as {!run}
      does on completion.  Call once, after the machine has drained. *)
end

type parallel_outcome = {
  p_found : int;
  p_satisfied : bool;
  p_nodes_visited : int;
  p_rounds : int;
      (** forwarding rounds until the stop condition was met (or the
          frontier died) — the response-time proxy of Section 3.1 *)
  p_counters : Message.counters;
}

val run_parallel :
  ?on_event:(event -> unit) ->
  Network.t ->
  origin:int ->
  query:Ri_content.Workload.query ->
  branch:int ->
  parallel_outcome
(** Parallel forwarding (Section 3.1): instead of trying neighbors one
    at a time, every node holding the query forwards it to its [branch]
    best neighbors {e simultaneously}; the wave stops expanding at the
    end of the round in which the stop condition is reached.  "A
    parallel approach yields better response time, but generates higher
    traffic and may waste resources" — the [p_rounds] / message
    trade-off this returns.  [branch >= degree] degenerates into an
    RI-ordered flood; [branch = 1] follows only the best path (without
    the sequential algorithm's backtracking).
    @raise Invalid_argument on a No-RI network, a non-positive [branch]
    or an out-of-range origin. *)

val flood :
  ?on_event:(event -> unit) ->
  ?plan:Fault.t ->
  Network.t ->
  origin:int ->
  query:Ri_content.Workload.query ->
  ?ttl:int ->
  unit ->
  outcome
(** Gnutella-style flooding: every node forwards the query to all its
    other neighbors; duplicate deliveries are dropped but still cost a
    message; the stop condition is ignored ("Gnutella-like systems find
    all results in the section of the network they explore").  [ttl]
    bounds the flood radius (Gnutella shipped with 7); omitted means
    unlimited.  Under a [plan], copies sent to crash-stopped nodes are
    swallowed silently (flooding never retries) and the plan's
    [query_budget], if any, caps the flood's forwards.
    @raise Invalid_argument on an out-of-range or crash-stopped
    origin. *)
