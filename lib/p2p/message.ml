type counters = {
  mutable query_forwards : int;
  mutable query_returns : int;
  mutable result_messages : int;
  mutable update_messages : int;
  mutable update_wire_bytes : int;
}

let create () =
  {
    query_forwards = 0;
    query_returns = 0;
    result_messages = 0;
    update_messages = 0;
    update_wire_bytes = 0;
  }

let reset c =
  c.query_forwards <- 0;
  c.query_returns <- 0;
  c.result_messages <- 0;
  c.update_messages <- 0;
  c.update_wire_bytes <- 0

let query_messages c = c.query_forwards + c.query_returns + c.result_messages

let total_messages c = query_messages c + c.update_messages

let add dst src =
  dst.query_forwards <- dst.query_forwards + src.query_forwards;
  dst.query_returns <- dst.query_returns + src.query_returns;
  dst.result_messages <- dst.result_messages + src.result_messages;
  dst.update_messages <- dst.update_messages + src.update_messages;
  dst.update_wire_bytes <- dst.update_wire_bytes + src.update_wire_bytes

type byte_costs = { query_bytes : int; result_bytes : int; update_bytes : int }

let paper_base_bytes = { query_bytes = 250; result_bytes = 250; update_bytes = 1000 }

let gnutella_bytes = { query_bytes = 70; result_bytes = 70; update_bytes = 3500 }

(* Simulated wire sizes for routing-index update payloads, independent
   of the fixed per-message costs above (which reproduce the paper's
   figures): 8 bytes per float entry plus an 8-byte header for a dense
   absolute vector; a sparse delta ships (topic index, delta) pairs at
   12 bytes each (4-byte index + 8-byte float). *)
let wire_full_bytes ~entries = 8 + (8 * entries)

let wire_delta_bytes ~changed = 8 + (12 * changed)

(* An anti-entropy digest names the newest per-row wave stamp and the
   link's last-seen sequence number — three 8-byte words.  Row content
   never rides in a digest; a mismatch triggers a full exchange billed
   at [wire_full_bytes]. *)
let wire_digest_bytes = 24

let bytes_of b c =
  float_of_int
    (((c.query_forwards + c.query_returns) * b.query_bytes)
    + (c.result_messages * b.result_bytes)
    + (c.update_messages * b.update_bytes))

let pp ppf c =
  Format.fprintf ppf
    "@[<h>forwards=%d returns=%d results=%d updates=%d@]" c.query_forwards
    c.query_returns c.result_messages c.update_messages
