open Ri_util
open Ri_content
open Ri_core

type cycle_policy = No_op | Detect_recover

type build_mode = Converged | Rooted of int

let m_builds mode =
  Ri_obs.Metrics.counter ~help:"Networks constructed (RIs built)."
    ~labels:[ ("mode", mode) ] "ri_network_builds_total"

let m_builds_rooted = m_builds "rooted"

let m_builds_converged = m_builds "converged"

let m_builds_no_ri = m_builds "no_ri"

type content = {
  summary : int -> Summary.t;
  count_matching : int -> Topic.id list -> int;
}

let content_of_local_indices indices =
  {
    summary = (fun v -> Local_index.summary indices.(v));
    count_matching = (fun v q -> Local_index.count_matching indices.(v) q);
  }

let content_of_placement (p : Placement.t) =
  {
    summary = (fun v -> p.summaries.(v));
    count_matching = (fun v _ -> p.matches.(v));
  }

type t = {
  mutable adj : int array array;
  content : content;
  scheme_kind : Scheme.kind option;
  compression : Compression.t;
  policy : cycle_policy;
  min_update : float;
  update_distance_floor : float;
  perturb : (float * Compression.error_kind) option;
  rng : Prng.t;
  ris : Scheme.t array;
  locals : Summary.t array;
  mutable converged_iterations : int;
  mutable next_wave : int;
      (* logical update-wave counter for provenance lineage: each
         [Update.wave] draws one id and stamps the RI rows it rewrites.
         Per instance (so [copy] gives clones independent counters —
         pool workers stay deterministic) and purely observational:
         build-time rows keep stamp 0. *)
}

let size t = Array.length t.adj

(* Per-node init/copy work fans across the shared pool only above a
   size floor (default 4096): below that the dispatch costs more than
   the parallelism recovers, and the small-network figure runs stay on
   the literal sequential code.  A perturbation model forces sequential
   — its rng draws are order-dependent — as does running inside a pool
   item (a runner trial), where nested parallelism cannot widen. *)
let parallel_build_pool ?pool ~perturb n =
  let par_min = Env.int ~min:1 "RI_PAR_BUILD_MIN" 4096 in
  if Option.is_none perturb && n >= par_min && not (Pool.in_job ()) then
    let p = match pool with Some p -> p | None -> Pool.global () in
    if Pool.jobs p > 1 then Some p else None
  else None

(* Per-trial clone of a cached template.  Mutable state — adjacency
   rows (churn), RIs and projected locals (update waves) — is deep
   copied; the content closures, compression and policy knobs are
   shared.  The RI clones preserve row-table iteration order
   ([Scheme.copy]), so a copy is bit-for-bit indistinguishable from
   rebuilding the network from scratch.  The PRNG is shared: with no
   perturbation model the network never draws from it, and templates
   are only cached in that case. *)
let copy t =
  let n = Array.length t.ris in
  let ris =
    (* [Scheme.copy] is pure per node, so big-network cache hand-outs
       (scale sweeps, snapshot loads) duplicate row stores in
       parallel; output lands at its own index, order-free. *)
    match parallel_build_pool ~perturb:None n with
    | Some p ->
        Pool.map_chunked ~chunk:256 ~label:"net_copy" p ~n (fun v ->
            Scheme.copy t.ris.(v))
    | None -> Array.map Scheme.copy t.ris
  in
  {
    t with
    (* Only the outer array: [add_link]/[remove_link] replace rows with
       fresh arrays rather than mutating them, so rows can be shared. *)
    adj = Array.copy t.adj;
    ris;
    locals = Array.copy t.locals;
  }

let storage_words t =
  let words = ref 0 in
  Array.iter (fun a -> words := !words + Array.length a + 3) t.adj;
  Array.iter
    (fun ri -> words := !words + (Scheme.storage_bytes ri / 8) + 16)
    t.ris;
  !words + (4 * Array.length t.locals)

let neighbors t v = t.adj.(v)

let degree t v = Array.length t.adj.(v)

(* Monomorphic compare: this runs once per queued update message. *)
let has_link t u v = Array.exists (fun (y : int) -> y = v) t.adj.(u)

let scheme t = t.scheme_kind

let cycle_policy t = t.policy

let min_update t = t.min_update

let update_distance_floor t = t.update_distance_floor

let has_ri t = Array.length t.ris > 0

let ri t v =
  if not (has_ri t) then invalid_arg "Network.ri: No-RI network";
  t.ris.(v)

let local_summary t v = t.locals.(v)

let raw_local_summary t v = t.content.summary v

let count_matching t v q = t.content.count_matching v q

let project_query t q =
  List.map (Compression.project_topic t.compression) q
  |> List.sort_uniq compare

let rng t = t.rng

let compression t = t.compression

let perturbed t = Option.is_some t.perturb

let wave_counter t = t.next_wave

let converged_iterations t = t.converged_iterations

let fresh_wave t =
  t.next_wave <- t.next_wave + 1;
  t.next_wave

let maybe_perturb t payload =
  match t.perturb with
  | None -> payload
  | Some (relative_stddev, kind) ->
      Scheme.payload_perturb t.rng ~relative_stddev ~kind payload

let outgoing_exports t v =
  if not (has_ri t) then []
  else
    let exports = Scheme.export_all t.ris.(v) in
    (* No perturbation model: skip the identity [List.map] — this runs
       twice per delivered update message (pre/post exports). *)
    match t.perturb with
    | None -> exports
    | Some _ ->
        List.map (fun (p, payload) -> (p, maybe_perturb t payload)) exports

let outgoing_exports_except t v ~except =
  if not (has_ri t) then []
  else
    match t.perturb with
    | None -> Scheme.export_except t.ris.(v) ~except
    | Some _ ->
        (* Perturbation draws one rng sample per exported payload, so the
           skip would shift the stream: keep the full pass and filter. *)
        List.filter
          (fun ((p : int), _) -> not (List.exists (fun e -> e = p) except))
          (outgoing_exports t v)

let export_to t v ~peer =
  if not (has_ri t) then invalid_arg "Network.export_to: No-RI network";
  maybe_perturb t (Scheme.export t.ris.(v) ~exclude:(Some peer))

let set_local_summary t v summary =
  let s = Compression.project_summary t.compression summary in
  t.locals.(v) <- s;
  if has_ri t then Scheme.set_local t.ris.(v) s

let refresh_local t v = set_local_summary t v (t.content.summary v)

(* BFS spanning forest: returns the visit order and, per node, its parent
   (-1 for component roots). *)
let bfs_forest adj =
  let n = Array.length adj in
  let parent = Array.make n (-2) in
  let order = Array.make n 0 in
  let filled = ref 0 in
  let q = Queue.create () in
  for root = 0 to n - 1 do
    if parent.(root) = -2 then begin
      parent.(root) <- -1;
      Queue.add root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        order.(!filled) <- u;
        incr filled;
        Array.iter
          (fun v ->
            if parent.(v) = -2 then begin
              parent.(v) <- u;
              Queue.add v q
            end)
          adj.(u)
      done
    end
  done;
  (order, parent)

(* Exact converged RIs on the spanning forest: an up pass sends each
   node's aggregate toward its parent, a down pass distributes the
   completed aggregates back toward the leaves.  Equivalent to running
   the Figure 6 algorithm to quiescence on a cycle-free overlay. *)
let build_forest_exact t order parent =
  let n = size t in
  (* Up pass: reverse BFS order, so every child is handled before its
     parent.  At that point a node's rows hold exactly its children. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let p = parent.(v) in
    if p >= 0 then begin
      let payload = maybe_perturb t (Scheme.export t.ris.(v) ~exclude:None) in
      Scheme.set_row t.ris.(p) ~peer:v payload
    end
  done;
  (* Down pass: BFS order, so a node's parent row is installed before the
     node distributes exports to its children. *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    List.iter
      (fun (peer, payload) ->
        if peer <> parent.(v) then
          Scheme.set_row t.ris.(peer) ~peer:v (maybe_perturb t payload))
      (Scheme.export_all t.ris.(v))
  done

(* Level-synchronized parallel form of [build_forest_exact], used only
   without a perturbation model (so [maybe_perturb] is the identity and
   no rng is drawn).  Bit-identity argument:

   - Up pass.  The sequential pass walks children in reverse BFS order,
     writing each child's export into its parent's store.  Regrouped
     parent-centric: one task per parent, iterating that parent's
     children in reverse BFS order.  Per-store the insert sequence is
     unchanged (a parent's children all share its BFS depth + 1 and
     arrive in the same relative order), every write is local to the
     task's own parent store, and running levels deepest-first with a
     barrier between them guarantees a child's rows are all installed
     before its export is read — exactly the state the sequential pass
     reads at that point.

   - Down pass.  The sequential pass walks nodes in BFS order, writing
     each node's per-child export into the child's store.  Each child
     has a unique tree parent, so one level's tasks never write the same
     store; a node's own store (children rows from the up pass, parent
     row from the previous down level) is complete before its
     [export_all] runs.  Leaves produce no writes in either form and
     are skipped here.

   Float summation order inside every export is the store's iteration
   order, which the identical insert sequences preserve — so the
   resulting RIs are bit-for-bit the sequential build's at any pool
   width. *)
let build_forest_exact_par t pool order parent =
  let n = size t in
  let depth = Array.make n 0 in
  let maxd = ref 0 in
  Array.iter
    (fun v ->
      let p = parent.(v) in
      let d = if p < 0 then 0 else depth.(p) + 1 in
      depth.(v) <- d;
      if d > !maxd then maxd := d)
    order;
  let ccount = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then ccount.(p) <- ccount.(p) + 1) parent;
  let children = Array.init n (fun v -> Array.make ccount.(v) 0) in
  let fill = Array.make n 0 in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let p = parent.(v) in
    if p >= 0 then begin
      children.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  (* Nodes with children, bucketed by BFS depth — leaves never act. *)
  let by_level = Array.make (!maxd + 1) [] in
  for v = n - 1 downto 0 do
    if ccount.(v) > 0 then by_level.(depth.(v)) <- v :: by_level.(depth.(v))
  done;
  let by_level = Array.map Array.of_list by_level in
  for d = !maxd downto 0 do
    let ps = by_level.(d) in
    Pool.iter ~chunk:8 ~label:"ri_build" pool ~n:(Array.length ps) (fun k ->
        let p = ps.(k) in
        Array.iter
          (fun c ->
            Scheme.set_row t.ris.(p) ~peer:c
              (Scheme.export t.ris.(c) ~exclude:None))
          children.(p))
  done;
  for d = 0 to !maxd do
    let ps = by_level.(d) in
    Pool.iter ~chunk:8 ~label:"ri_build" pool ~n:(Array.length ps) (fun k ->
        let v = ps.(k) in
        List.iter
          (fun (peer, payload) ->
            if peer <> parent.(v) then
              Scheme.set_row t.ris.(peer) ~peer:v payload)
          (Scheme.export_all t.ris.(v)))
  done

let non_tree_edges adj parent =
  let n = Array.length adj in
  let is_tree u v = parent.(u) = v || parent.(v) = u in
  let acc = ref [] in
  for u = 0 to n - 1 do
    Array.iter
      (fun v -> if u < v && not (is_tree u v) then acc := (u, v) :: !acc)
      adj.(u)
  done;
  !acc

(* Cycle-closing links on a cyclic overlay: the spanning-tree rows are
   exact; each non-tree link carries what the first creation wave left
   behind.  Under first-arrival (duplicate-suppressed) flooding, the
   information that crosses such a link is the far endpoint's own
   subtree — everything on its parent side reaches the near endpoint
   faster over the tree — so the crossing row is the far endpoint's
   export excluding its tree parent, computed from the converged tree
   state before any non-tree row is installed. *)
let fill_non_tree_once t parent extra =
  let crossing v =
    let exclude = if parent.(v) >= 0 then Some parent.(v) else None in
    maybe_perturb t (Scheme.export t.ris.(v) ~exclude)
  in
  let pending =
    List.concat_map
      (fun (u, v) -> [ (u, v, crossing v); (v, u, crossing u) ])
      extra
  in
  List.iter (fun (at, peer, payload) -> Scheme.set_row t.ris.(at) ~peer payload) pending

(* The paper simulator's construction (Appendix A): RI rows only for
   neighbors strictly further from the originator, each row aggregating
   the neighbor's entire downstream reach.  A node adjacent to two
   same-level parents contributes its reach to both rows — the overlap
   overcount the paper attributes to cycles.  Processing nodes by
   decreasing BFS depth makes every downstream reach available before it
   is consumed. *)
let build_rooted t origin =
  let n = size t in
  let depth = Array.make n max_int in
  depth.(origin) <- 0;
  let bfs_order = Array.make n 0 in
  let filled = ref 0 in
  let q = Queue.create () in
  Queue.add origin q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    bfs_order.(!filled) <- u;
    incr filled;
    Array.iter
      (fun v ->
        if depth.(v) = max_int then begin
          depth.(v) <- depth.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  let reach = Array.make n None in
  for i = !filled - 1 downto 0 do
    let v = bfs_order.(i) in
    Array.iter
      (fun x ->
        if depth.(x) = depth.(v) + 1 then
          match reach.(x) with
          | Some payload -> Scheme.set_row t.ris.(v) ~peer:x payload
          | None -> ())
      t.adj.(v);
    reach.(v) <- Some (maybe_perturb t (Scheme.export t.ris.(v) ~exclude:None))
  done;
  (* Equal-depth neighbors: their creation waves cross on the link
     simultaneously, so each ends up holding the other's downstream
     reach.  These are the link rows that let a query arrive at a node
     through two different parents — the paper's cycle effect. *)
  for i = 0 to !filled - 1 do
    let v = bfs_order.(i) in
    Array.iter
      (fun x ->
        if depth.(x) = depth.(v) && x <> v then
          match reach.(x) with
          | Some payload -> Scheme.set_row t.ris.(v) ~peer:x payload
          | None -> ())
      t.adj.(v)
  done

(* Level-synchronized parallel form of [build_rooted], perturbation-free
   only (same gating as [build_forest_exact_par]).  All writes while a
   node is processed go to that node's own store and its own [reach]
   cell; reads target strictly deeper neighbors' [reach], complete
   before the level barrier.  BFS order is depth-sorted, so levels are
   contiguous slices of it, and per-store inserts keep the sequential
   pass's order (a node's deeper neighbors, in adjacency order, while it
   is processed; equal-depth rows afterwards) — bit-identical RIs. *)
let build_rooted_par t pool origin =
  let n = size t in
  let depth = Array.make n max_int in
  depth.(origin) <- 0;
  let bfs_order = Array.make n 0 in
  let filled = ref 0 in
  let q = Queue.create () in
  Queue.add origin q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    bfs_order.(!filled) <- u;
    incr filled;
    Array.iter
      (fun v ->
        if depth.(v) = max_int then begin
          depth.(v) <- depth.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  let filled = !filled in
  let maxd = if filled = 0 then 0 else depth.(bfs_order.(filled - 1)) in
  (* [level_start.(d)] = first BFS position at depth [d]; BFS depths are
     contiguous, so slices [level_start.(d), level_start.(d+1)) are the
     levels. *)
  let level_start = Array.make (maxd + 2) filled in
  let cur = ref 0 in
  for i = 0 to filled - 1 do
    let d = depth.(bfs_order.(i)) in
    while !cur <= d do
      level_start.(!cur) <- i;
      incr cur
    done
  done;
  let reach = Array.make n None in
  for d = maxd downto 0 do
    let lo = level_start.(d) and hi = level_start.(d + 1) in
    Pool.iter ~chunk:8 ~label:"ri_build" pool ~n:(hi - lo) (fun k ->
        let v = bfs_order.(lo + k) in
        Array.iter
          (fun x ->
            if depth.(x) = depth.(v) + 1 then
              match reach.(x) with
              | Some payload -> Scheme.set_row t.ris.(v) ~peer:x payload
              | None -> ())
          t.adj.(v);
        reach.(v) <- Some (Scheme.export t.ris.(v) ~exclude:None))
  done;
  Pool.iter ~chunk:8 ~label:"ri_build" pool ~n:filled (fun k ->
      let v = bfs_order.(k) in
      Array.iter
        (fun x ->
          if depth.(x) = depth.(v) && x <> v then
            match reach.(x) with
            | Some payload -> Scheme.set_row t.ris.(v) ~peer:x payload
            | None -> ())
        t.adj.(v))

(* The parallel build paths switch on below [RI_PAR_BUILD_MIN] nodes
   (default 4096; see [parallel_build_pool] above): below that the
   level bucketing costs more than the parallelism recovers. *)
let create ~graph ~content ?scheme ?(compression = Compression.exact)
    ?(cycle_policy = Detect_recover) ?(min_update = 0.01)
    ?(update_distance_floor = 1.0) ?perturb ?rng ?(mode = Converged) ?quant
    ?pool () =
  let n = Ri_topology.Graph.n graph in
  let adj = Array.init n (fun v -> Array.copy (Ri_topology.Graph.neighbors graph v)) in
  let rng = match rng with Some r -> r | None -> Prng.create 0x5eed in
  let topics = Summary.topics (content.summary 0) in
  let width = Compression.width ~topics compression in
  let par = parallel_build_pool ?pool ~perturb n in
  (* Per-node summaries and index shells are independent (pure functions
     of shared read-only content), so their initialization parallelizes
     with no ordering concerns at all. *)
  let locals =
    let mk v = Compression.project_summary compression (content.summary v) in
    match par with
    | Some p -> Pool.map_chunked ~chunk:256 ~label:"net_init" p ~n mk
    | None -> Array.init n mk
  in
  let ris =
    match scheme with
    | None -> [||]
    | Some kind ->
        let mk v =
          Scheme.create ~rows:(Array.length adj.(v)) ?quant kind ~width
            ~local:locals.(v)
        in
        (match par with
        | Some p -> Pool.map_chunked ~chunk:256 ~label:"net_init" p ~n mk
        | None -> Array.init n mk)
  in
  let t =
    {
      adj;
      content;
      scheme_kind = scheme;
      compression;
      policy = cycle_policy;
      min_update;
      update_distance_floor;
      perturb;
      rng;
      ris;
      locals;
      converged_iterations = 0;
      next_wave = 0;
    }
  in
  (match (scheme, mode) with
  | None, _ -> Ri_obs.Metrics.incr m_builds_no_ri
  | Some _, Rooted origin ->
      Ri_obs.Metrics.incr m_builds_rooted;
      if origin < 0 || origin >= n then
        invalid_arg "Network.create: rooted origin out of range";
      (match par with
      | Some p -> build_rooted_par t p origin
      | None -> build_rooted t origin);
      t.converged_iterations <- 1
  | Some kind, Converged ->
      Ri_obs.Metrics.incr m_builds_converged;
      let order, parent = bfs_forest adj in
      let extra = non_tree_edges adj parent in
      let cyclic = extra <> [] in
      (match (kind, cyclic, cycle_policy) with
      | (Scheme.Cri_kind | Scheme.Hybrid_kind _), true, No_op ->
          (* The hybrid's beyond-horizon tail is as undamped as a
             compound RI, so it cannot ignore cycles either. *)
          invalid_arg
            "Network.create: a compound RI under the no-op cycle policy \
             does not terminate on a cyclic network (paper, Section 7)"
      | _ -> ());
      (match par with
      | Some p -> build_forest_exact_par t p order parent
      | None -> build_forest_exact t order parent);
      t.converged_iterations <- 1;
      (* On a cyclic overlay the resting state is the spanning-tree
         aggregate plus the single first-wave crossing per cycle link —
         what a finite history of dedup'd/damped creation waves leaves
         behind.  (An exact fixed point of the export equations need not
         exist: an undamped CRI diverges on any cycle, and even damped
         schemes diverge once a node's degree exceeds the assumed
         fanout, as in power-law hubs.)  Update waves therefore judge
         significance against sender-carried baselines, not against
         state self-consistency — see {!Update}. *)
      if cyclic then fill_non_tree_once t parent extra);
  t

(* Snapshot loading: adopt pre-built state wholesale, skipping every
   build pass.  Perturbation models are excluded from snapshots (their
   rng stream position is part of the state and is not captured), so the
   result never perturbs. *)
let of_parts ~adj ~content ~scheme_kind ~compression ~cycle_policy
    ~min_update ~update_distance_floor ~rng ~ris ~locals
    ~converged_iterations ~next_wave () =
  (match scheme_kind with
  | Some _ when Array.length ris <> Array.length adj ->
      invalid_arg "Network.of_parts: one RI per node required"
  | None when Array.length ris <> 0 ->
      invalid_arg "Network.of_parts: RIs on a No-RI network"
  | _ -> ());
  if Array.length locals <> Array.length adj then
    invalid_arg "Network.of_parts: one local summary per node required";
  {
    adj;
    content;
    scheme_kind;
    compression;
    policy = cycle_policy;
    min_update;
    update_distance_floor;
    perturb = None;
    rng;
    ris;
    locals;
    converged_iterations;
    next_wave;
  }

let remove_from_row row x =
  let len = Array.length row in
  let out = Array.make (len - 1) 0 in
  let j = ref 0 in
  Array.iter
    (fun y ->
      if y <> x then begin
        out.(!j) <- y;
        incr j
      end)
    row;
  if !j <> len - 1 then invalid_arg "Network.remove_link: link not present";
  out

let add_link t u v =
  if u = v then invalid_arg "Network.add_link: self-loop";
  if has_link t u v then invalid_arg "Network.add_link: link exists";
  t.adj.(u) <- Array.append t.adj.(u) [| v |];
  t.adj.(v) <- Array.append t.adj.(v) [| u |];
  Array.sort Int.compare t.adj.(u);
  Array.sort Int.compare t.adj.(v)

let remove_link t u v =
  if not (has_link t u v) then
    invalid_arg "Network.remove_link: link not present";
  t.adj.(u) <- remove_from_row t.adj.(u) v;
  t.adj.(v) <- remove_from_row t.adj.(v) u
