(** Fault injection: the adversarial environment the paper assumes away.

    The paper's evaluation is cooperative — updates always arrive, nodes
    announce departures (Section 5), queries never hit a dead neighbor.
    This module supplies a per-trial {e fault plan}: a deterministic,
    PRNG-seeded schedule of update-message loss, update delay
    (aggregates applied whole waves late), crash-stop node failure (no
    goodbye message — neighbors only learn of the death when a query
    forward times out), transient link flaps, and network partitions
    (connected graph cuts with scheduled heal).  The p2p layer threads
    an optional plan through {!Update}, {!Query} and {!Churn}; with no
    plan every code path is byte-identical to the fault-free simulator.

    {b Staleness model.}  Update messages carry the sender's full
    absolute aggregate, so one successful delivery heals a row however
    many predecessors were lost.  A receiver can {e detect} that it
    missed updates (per-link sequence numbers or keepalives reveal the
    gap even though the content is gone), so the plan keeps a
    per-(node, peer) missed-update ledger: rows with recorded gaps
    beyond [stale_after] are treated as unreliable and — when fallback
    is enabled — ranked like the No-RI baseline instead of being
    trusted.  Gaps also {e taint}: a node with an open gap knows the
    aggregates it exports are computed from suspect inputs, so its
    onward update messages carry a staleness bit ({!tainted}).  A
    flagged delivery still refreshes the receiver's row, but it cannot
    heal a recorded gap — only a delivery whose sender held no open
    gaps (or a reconciliation with such a node) proves the row is
    trustworthy again.  A marked row is therefore one that lost an
    update and has received no trustworthy aggregate since.

    {b Partitions.}  A [partition] fraction severs a spanning-tree
    subtree of roughly that many nodes — chosen so {e both} sides of
    the cut stay connected, with the first protected node pinned to the
    majority side — and drops every edge crossing the cut: update messages are dropped (with the gap recorded on both
    endpoints), query forwards time out, and no death certificates are
    issued for unreachable-but-live nodes — a partitioned peer is
    suspected, not buried.  The cut heals after [heal_after] update
    waves, or explicitly via {!heal_partition} (how {!Trial.run_recovery}
    and the chaos harness stage recovery).

    {b Determinism.}  A plan draws from its own generator, derived only
    from [(seed, trial)] — never split from the trial's master stream —
    so enabling faults perturbs no existing stream, an inert spec is a
    strict no-op, and the same seed + spec gives identical results and
    traces at any pool width.  The partition and retry-jitter streams
    are split strictly after the original five, so specs that use
    neither draw the same sequences as before they existed. *)

type spec = {
  update_loss : float;  (** P(update message lost in transit) *)
  update_delay : float;  (** P(update message delayed, not lost) *)
  delay_waves : int;  (** rounds a delayed aggregate sits in transit *)
  crash : float;  (** fraction of nodes crash-stopped before the trial *)
  link_flap : float;  (** P(query forward times out on a live link) *)
  drift : float;
      (** fraction of query results relocated before the query, each
          move propagated by a (fault-prone) corrective update wave —
          the staleness source for query experiments *)
  partition : float;
      (** fraction of nodes severed onto the minority side of a
          connected graph cut; [0.] means no partition *)
  heal_after : int option;
      (** update waves the cut survives; the next wave started after
          that many heals it.  [None] heals only via
          {!heal_partition}. *)
  stale_after : int option;
      (** rows with more than this many recorded missed updates fall
          back to random ranking; [None] trusts stale rows forever *)
  retries : int;  (** resends after the first timeout on a forward *)
  backoff : int;
      (** base backoff; attempt [k] waits uniform in
          [\[0, min (RI_RETRY_CAP, backoff * 2^k)\]] (full jitter) *)
  query_budget : int option;
      (** cap on query forwards; [None] is unlimited.  Needed under
          faults: a timeout-ridden walk would otherwise compensate with
          unbounded traffic, hiding the degradation being measured. *)
}

val none : spec
(** All rates zero, no staleness threshold, no retries, no budget. *)

val active : spec -> bool
(** [true] when any fault rate (loss, delay, crash, flap, drift,
    partition) is positive — the budget alone does not make a spec
    active. *)

val validate : spec -> (unit, string) result
(** Probabilities in [\[0, 1\]] (crash and partition strictly below 1),
    non-negative integers, positive budget. *)

val pp : Format.formatter -> spec -> unit

type t
(** A plan: one trial's concrete fault schedule plus its running state
    (dead set, cut sides, missed-update ledger, death certificates,
    stats). *)

val make :
  ?fault_seed:int ->
  ?neighbors:(int -> int array) ->
  spec ->
  seed:int ->
  trial:int ->
  nodes:int ->
  protect:int list ->
  t
(** Instantiate the plan for one trial.  Crash-stops
    [round (crash * nodes)] nodes (capped so at least one protected
    node survives), never any node in [protect] — the query origin must
    outlive its own query.  When [spec.partition > 0.] the adjacency
    [neighbors] is required to pick the severed subtree (both sides of
    the cut stay connected; the first [protect] entry stays on the
    majority side).
    [fault_seed] (default: [seed]) decouples the plan's stream from the
    topology seed so a fault schedule replays against other networks.
    @raise Invalid_argument on an invalid spec, empty network, or a
    partition spec without [~neighbors]. *)

val spec : t -> spec

val query_budget : t -> int
(** The spec's budget, [max_int] when unlimited. *)

(** {2 Crash-stop and recovery} *)

val is_dead : t -> int -> bool

val crashed : t -> int
(** How many nodes the plan killed. *)

val kill : t -> int -> unit
(** Crash-stop one more node mid-trial ({!Churn.crash_stop}). *)

val revive : t -> int -> unit
(** Mark a dead node live again ({!Churn.recover}).  Revokes every
    death certificate naming it — the node is demonstrably alive, and a
    standing certificate would let reconciliation gossip re-delete its
    freshly announced rows.  A no-op on live nodes. *)

val knows_dead : t -> at:int -> dead:int -> bool
(** Has [at] already declared [dead] dead? *)

val learn_dead : t -> at:int -> dead:int -> bool
(** Record that [at] has presumed [dead] dead (all retries timed out,
    or gossip).  Returns [true] the first time [at] learns it. *)

val known_dead_of : t -> int -> int list
(** Every node [at] has declared dead, in the order it learned of them
    — the death certificates it gossips during reconciliation. *)

val dirty : t -> int -> bool

val set_dirty : t -> int -> unit
(** Mark a node as holding un-reconciled fault knowledge; first contact
    with each neighbor then triggers lazy anti-entropy ({!Churn.reconcile}). *)

val clear_dirty : t -> int -> unit
(** An anti-entropy round has digested every link of the node. *)

(** {2 Partition} *)

val partitioned : t -> bool
(** Is a cut currently active? *)

val same_side : t -> int -> int -> bool
(** Can [u] and [v] exchange messages?  Always [true] with no active
    cut.  Consumes no randomness, so severing is invisible to the
    plan's streams. *)

val cut_size : t -> int
(** Nodes on the minority side (0 when the spec has no partition). *)

val heal_partition : t -> unit
(** Drop the cut immediately; severed links carry traffic again. *)

val note_wave_start : t -> unit
(** An update wave is starting.  Counts waves survived by the cut and
    auto-heals once [heal_after] is exceeded. *)

val quiesce : t -> unit
(** Enter recovery-measurement mode: loss, delay and flap draws answer
    [false] without consuming the stream, so post-heal reconvergence is
    exact.  One-way. *)

val quiesced : t -> bool

(** {2 Fault draws (consume the plan's private stream)} *)

val drop_update : t -> bool

val delay_update : t -> bool
(** Drawn only for messages that were not dropped. *)

val flap : t -> bool
(** One transient-loss draw for a query forward on a live link. *)

val shuffle : t -> int array -> unit
(** Fallback ordering for stale rows, from the plan's query stream. *)

val drift_int : t -> int -> int
(** Uniform draw from the plan's content-drift stream (donor and
    recipient selection when results are relocated). *)

(** {2 Staleness ledger} *)

val note_missed : t -> at:int -> peer:int -> unit
(** A message from [peer] addressed to [at] was lost: [at]'s row for
    [peer] has a detectable gap. *)

val clear_missed : t -> at:int -> peer:int -> unit
(** A full absolute aggregate arrived (or the row was reconciled): the
    gap is healed. *)

val missed : t -> at:int -> peer:int -> int

val tainted : t -> at:int -> toward:int -> bool
(** Is [at]'s export toward [toward] aggregated from suspect inputs —
    does [at] have an open gap on any {e other} row?  (The
    [(at, toward)] row itself is excluded from that export, so a gap
    there does not taint it.)  {!Update} flags such messages with a
    staleness bit; a flagged delivery still refreshes the receiver's
    row — best-effort data beats none — but cannot {e heal} a recorded
    gap, because it proves nothing about the updates that were lost. *)

val fallback : t -> bool
(** Whether the spec degrades stale rows ([stale_after] is set). *)

val stale : t -> at:int -> peer:int -> bool
(** [fallback] is on and the row's recorded gap exceeds the threshold. *)

(** {2 Retry/backoff} *)

val retries : t -> int

val backoff_ticks : t -> attempt:int -> int
(** Full-jitter backoff: uniform in
    [\[0, min (RI_RETRY_CAP, backoff * 2^attempt)\]], drawn from the
    plan's dedicated retry stream (deterministic per plan), in abstract
    ticks (the simulator has no clock; ticks feed a counter that stands
    in for added latency).  [0] when the spec's base backoff is [0] —
    no draw is consumed. *)

(** {2 Stats (also mirrored into [ri_fault_*] metrics when enabled)} *)

type stats = {
  mutable crashes : int;
  mutable update_drops : int;  (** lost in transit *)
  mutable update_dead : int;  (** addressed to a crashed node *)
  mutable update_delays : int;
  mutable partition_drops : int;  (** severed by an active cut *)
  mutable timeouts : int;
  mutable retries_used : int;
  mutable backoff_total : int;  (** accumulated backoff ticks *)
  mutable fallbacks : int;  (** stale rows demoted to random ranking *)
  mutable repairs : int;  (** rows fixed by detection or anti-entropy *)
  mutable recoveries : int;  (** crashed nodes revived *)
  mutable budget_stops : int;
}

val stats : t -> stats
(** The plan's live counters (single-threaded per trial). *)

val note_drop : t -> dead:bool -> unit

val note_delay : t -> unit

val note_partition_drop : t -> unit

val note_timeout : t -> attempt:int -> unit
(** One timed-out forward; charges [backoff_ticks ~attempt] too. *)

val note_retry : t -> unit

val note_fallbacks : t -> int -> unit

val note_repair : t -> unit

val note_budget_stop : t -> unit
