(** RI update propagation — the update phase of the Figure 6 algorithm.

    When a node's local index changes it "aggregates all the rows of its
    compound RI (excluding the row for [the target neighbor]) and sends
    this information" to each neighbor; a receiver replaces the sender's
    row and, {e if the change is significant}, re-exports to its own
    other neighbors, and so on.  Messages are counted so the update-cost
    experiments (Figures 18-20) can be reproduced.

    Significance combines the paper's two criteria: the [minUpdate]
    relative test ("we consider significant all updates that may change
    the current index value by more than 1%", Section 8.2) and the
    absolute Euclidean floor suggested for exponential RIs ("requiring
    that the Euclidean distance between the two vectors is greater than
    a certain number", Section 6.2).

    Each message carries the sender's {e pre-change} export alongside
    the new one, and receivers judge significance against that baseline:
    the wave then measures exactly the marginal effect of the update —
    the honest cost of the change — even on cyclic overlays, where the
    resting RI state is not a strict fixed point of the export
    equations.

    Under the [Detect_recover] cycle policy the wave carries the
    originator's message id and a node reached a second time does not
    forward further; under [No_op] the wave is damped only by the
    significance tests (which is why a compound RI — no decay — must not
    run [No_op] on a cyclic overlay).

    {b Delta encoding.}  Each sent message additionally charges
    [counters.update_wire_bytes] with its simulated wire size: the
    sender diffs the new aggregate against the seed's baseline (its last
    acknowledged export to that neighbor) and ships sparse
    (index, delta) pairs when smaller than the dense absolute vector
    ({!Message.wire_delta_bytes} vs {!Message.wire_full_bytes}).  First
    contact and anti-entropy repair go dense.  Row state is still
    applied as the absolute payload — float addition is not exactly
    invertible, and the bit-for-bit determinism contract requires the
    receiver to end with the sender's exact floats — so the encoding is
    a byte-accounting model, never a semantic change. *)

type wave_seed = {
  sender : int;
  receiver : int;
  payload : Ri_core.Scheme.payload;  (** the new aggregated RI *)
  baseline : Ri_core.Scheme.payload option;
      (** the sender's export before the change; when [None] the
          receiver falls back to comparing against its stored row *)
  tainted : bool;
      (** staleness bit: the sender had an open missed-update gap on
          some other row when it aggregated, so this payload is built
          from suspect inputs; the delivery still refreshes the
          receiver's row but cannot heal a recorded gap
          ({!Fault.tainted}).  Always [false] without a fault plan. *)
}

(** One delivered update message, emitted through the [on_event]
    callbacks — the hop-level trace behind the counters. *)
type event =
  | Delivered of {
      sender : int;
      receiver : int;
      significant : bool;  (** passed the minUpdate / distance tests *)
      forwarded : bool;
          (** re-exported onward; [false] on an insignificant delivery
              or a detect-and-recover repeat *)
    }
  | Dropped of { sender : int; receiver : int; dead : bool }
      (** fault injection: lost in transit ([dead = false]) or
          addressed to a crash-stopped node ([dead = true]) *)
  | Delayed of { sender : int; receiver : int; rounds : int }
      (** fault injection: held in transit, applied [rounds] message
          generations later *)
  | Round of { index : int; pending : int }
      (** a message generation begins with [pending] messages queued;
          emitted before any delivery of the round, including round 0 —
          the span tracer hangs its per-round children off these *)
  | Repaired of { u : int; v : int }
      (** anti-entropy: the [(u, v)] digest exchange found the link
          stale and both endpoints swapped full aggregates *)

val local_change :
  ?on_event:(event -> unit) ->
  ?plan:Fault.t ->
  ?pool:Ri_util.Pool.t ->
  Network.t ->
  origin:int ->
  summary:Ri_content.Summary.t ->
  counters:Message.counters ->
  unit
(** Install [summary] as [origin]'s new (uncompressed) local summary and
    propagate the change.  This is the paper's canonical update: "client
    I introduces two new documents ... To update the RIs of its
    neighbors, I summarizes its new local index, aggregates ... and
    sends". *)

val propagate :
  ?on_event:(event -> unit) ->
  ?plan:Fault.t ->
  ?pool:Ri_util.Pool.t ->
  Network.t ->
  origin:int ->
  counters:Message.counters ->
  unit
(** Propagate from a node whose RI was already modified, judging
    significance against the receivers' stored rows.  Exact on trees
    (where the resting state is the true fixed point); for cyclic
    overlays prefer {!local_change} or {!seeds_for_change}, whose
    baseline-carrying messages isolate the marginal change. *)

val seeds_for_change :
  ?plan:Fault.t ->
  Network.t ->
  at:int ->
  except:int list ->
  mutate:(unit -> unit) ->
  wave_seed list
(** Run [mutate] (which must only alter node [at]'s RI — rows, local
    summary, or adjacent links) and return seeds pairing [at]'s exports
    from before and after the mutation, addressed to every current
    neighbor not in [except].  Feed them to {!wave}.  With [plan], the
    seeds carry the staleness bit when [at] has an open gap. *)

val deliver_one :
  ?plan:Fault.t ->
  ?on_event:(event -> unit) ->
  Network.t ->
  reached:Bytes.t ->
  wave_id:int ->
  forward:(wave_seed -> unit) ->
  wave_seed ->
  unit
(** Apply one update message at its receiver — the exact delivery logic
    of {!wave}, exposed so the discrete-event engine can run waves as
    in-flight message streams.  [reached] is the wave's duplicate map
    (one byte per node, ['\001'] = already reached; mutated in place),
    [wave_id] the provenance stamp for rewritten rows, and [forward]
    receives the onward seeds the delivery generates.  The caller owns
    transport: link checks, budget, and the message/wire-byte counters
    are charged at send time, not here.  With zero link latency and
    service time an engine-driven wave delivers in exactly the
    sequential wave's FIFO order, so events and counters match
    {!local_change} bit-for-bit (fault-free; the engine does not model
    the plan's round-delay machinery). *)

val wire_cost : ?plan:Fault.t -> wave_seed -> int
(** Simulated wire bytes of sending this seed (sparse delta vs dense
    full encoding — see the module doc), for callers that charge
    transport themselves. *)

val anti_entropy :
  ?on_event:(event -> unit) ->
  plan:Fault.t ->
  Network.t ->
  counters:Message.counters ->
  int
(** One periodic anti-entropy round, the proactive counterpart to
    {!Churn.reconcile}'s lazy first-contact repair.  Every live,
    same-side link [(u, v)] exchanges digests (newest per-row wave
    stamp + link sequence state, {!Message.wire_digest_bytes} each
    way); links where either endpoint has a recorded gap
    ({!Fault.missed}) or un-reconciled fault knowledge ({!Fault.dirty})
    escalate to a two-way dense full exchange, stamp both rows with a
    fresh wave id, clear the gaps whose counterpart was trustworthy
    ({!Fault.tainted} judged pre-exchange), and push the corrected
    aggregates onward as an ordinary significance-damped wave.  A
    digest probing a crash-stopped neighbor gets no reply and doubles
    as a failure detector (certificate + row removal, as
    {!Churn.detect_crash}).

    Repair triggers on the {e gap ledger}, never on comparing row
    content against the neighbor's current aggregate: on a cyclic
    overlay the resting state is not a strict fixed point, so
    content-chasing would re-inject historical drift and count to
    infinity.  Divergence downstream of a repaired link heals through
    the onward waves.

    Returns the number of repairs performed (full exchanges plus corpse
    detections) — [0] means the round found nothing to fix.  Callers
    loop until quiescence with a bounded round cap: on {e cyclic}
    overlays a cycle of mutually tainted gaps can in principle refuse
    to drain (every exchange distrusted by both sides); on forests the
    taint frontier strictly shrinks every round, so the loop terminates
    in at most the gap-graph depth. *)

(** Deferred update batching — "For efficiency, we may delay exporting
    an update for a short time so we can batch several updates, thus
    trading RI freshness for a reduced update cost" (Section 4.3).

    A batcher accumulates local-index changes at one node; {!flush}
    installs the latest state and pays for {e one} propagation, however
    many changes were noted. *)
module Batcher : sig
  type t

  val create : Network.t -> origin:int -> t

  val note_local_change : t -> Ri_content.Summary.t -> unit
  (** Record a new local summary.  Later notes supersede earlier ones
      (the summary is absolute, not a delta).  Nothing is sent. *)

  val pending : t -> int
  (** Changes noted since the last flush. *)

  val flush : t -> counters:Message.counters -> unit
  (** Propagate the accumulated state as a single update batch; no-op
      when nothing is pending. *)
end

val wave :
  ?max_messages:int ->
  ?on_event:(event -> unit) ->
  ?plan:Fault.t ->
  ?pool:Ri_util.Pool.t ->
  Network.t ->
  seeds:wave_seed list ->
  already_reached:int list ->
  counters:Message.counters ->
  unit
(** Low-level wave driver used by {!local_change}, {!propagate} and
    {!Churn}: deliver the seed messages, then keep exporting from every
    node whose RI changed significantly.  [already_reached] marks nodes
    that count as having seen the wave (for duplicate suppression under
    [Detect_recover]).

    Seeds whose link no longer exists are discarded unsent and uncounted:
    rows drive the exports, so mid-churn a node can still address a
    neighbor that already vanished — and the departed node must never
    relay the wave announcing its own departure.

    [plan] injects faults per message: delivery to a crash-stopped node
    is silently lost, live-link messages are dropped with
    [update_loss] (recorded in the receiver's missed-update ledger) or
    held [delay_waves] extra message generations with [update_delay].
    Every sent message — dropped, delayed or delivered — is counted
    once.  A receiver with a recorded gap from the sender judges the
    arriving absolute aggregate against its stored row (the carried
    baseline never reached it).  A clean delivery heals the gap; one
    carrying the staleness bit (the sender itself had open gaps)
    refreshes the row with best-effort data but leaves the gap
    recorded.  Omitting [plan] leaves the wave bit-for-bit identical to
    the fault-free simulator.

    An active partition severs every cross-cut message — fresh or
    delayed-in-flight — without consuming randomness; both endpoints
    record the gap, so post-heal anti-entropy knows which rows to
    reconcile.  Each wave that actually sends also ticks the plan's
    scheduled-heal counter ({!Fault.note_wave_start}).

    [max_messages] (default [20 * (nodes + Σ degree)]) bounds the wave:
    on an overlay whose mean degree exceeds the RI's assumed fanout, a
    no-op wave's deltas {e amplify} instead of decaying — the
    Bellman-Ford count-to-infinity failure — and would circulate
    forever.  Real deployments batch and rate-limit updates; the budget
    stands in for that and never binds on configurations where the
    damping works.

    {b Sharded rounds.}  On a fault-free, unperturbed, unobserved wave
    (no [plan], no [on_event], no perturbation model) whose current
    message generation holds at least [RI_WAVE_SHARD_MIN] messages
    (default 64), deliveries are grouped by receiver and the groups run
    across [pool] (default the process pool) — bit-for-bit identical to
    the sequential wave, because a delivery only touches its receiver's
    state and each receiver's messages keep their round order.
    Bookkeeping (budget, wire bytes, counters) is charged in the
    original order at round start, and onward exports are replayed into
    the next generation in the original order afterwards.  Waves with a
    fault plan, an observer, or perturbation always run sequentially. *)
