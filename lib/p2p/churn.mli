(** Node and link churn (Sections 4.2 and 4.3).

    Connecting two nodes: "node A aggregates its RI and sends it to D
    ... Similarly, D aggregates its RI (excluding the row for A if it is
    already in the RI) and sends its aggregated RI to A", after which
    both inform their other neighbors that they can now reach more
    documents.

    Disconnection needs no cooperation from the leaving node: "Node D
    detects the disconnection and updates its RI by removing the row for
    I.  Then D informs its neighbors of the change ... Not requiring the
    participation of a disconnecting node is an important feature in a
    P2P system where nodes can come and go at will."

    All RI traffic is charged to the given counters. *)

val connect : Network.t -> int -> int -> counters:Message.counters -> unit
(** Establish the link, exchange aggregated RIs (two update messages),
    then propagate outward from both endpoints.
    @raise Invalid_argument if the link already exists, the endpoints
    are equal, or this would create a cycle on a network built with the
    CRI/[No_op] combination (which cannot tolerate cycles). *)

type connect_result = Connected | Rejected_cycle

val connect_avoiding_cycles :
  Network.t -> int -> int -> counters:Message.counters -> connect_result
(** The {e cycle avoidance} policy of Section 7: "we do not allow nodes
    to create an 'update' connection to other nodes if such connection
    would create a cycle".  If the endpoints are already connected
    through the overlay the request is refused (at the cost of one probe
    message, charged to the counters); otherwise behaves as {!connect}.
    The paper's caveat applies: "in the absence of global information we
    may end [up] with a suboptimal update network". *)

val disconnect_link : Network.t -> int -> int -> counters:Message.counters -> unit
(** Drop the link; each endpoint removes the other's row and propagates
    its shrunken aggregate.  @raise Invalid_argument if absent. *)

val disconnect_node : Network.t -> int -> counters:Message.counters -> int list
(** Take a node off the network: every neighbor detects the loss,
    removes the row, and propagates — without any participation of the
    departed node.  Returns the former neighbor list.  The departed
    node's own RI rows are cleared locally (no messages), so a later
    {!connect} behaves like the fresh join of Section 5.1. *)

(** {2 Crash-stop churn (fault injection)}

    Unlike {!disconnect_node} — where the neighbors notice the closed
    connection immediately and clean up in one synchronized step — a
    crash-stopped node just goes silent.  The overlay still routes
    messages at it; each neighbor discovers the death independently,
    when its own query forward exhausts its retries ({!Query.run} with
    a plan), and repairs spread lazily rather than by an eager wave. *)

val crash_stop : Network.t -> int -> plan:Fault.t -> unit
(** Kill the node in the plan's failure model.  No messages, no RI
    changes, no adjacency change: the silence {e is} the fault.
    @raise Invalid_argument on an out-of-range node. *)

val detect_crash : Network.t -> int -> dead:int -> plan:Fault.t -> bool
(** [detect_crash net u ~dead ~plan]: node [u] has presumed [dead]
    dead (every retry timed out).  Removes [u]'s row for the corpse (a
    repair: the garbage entry would otherwise keep attracting
    queries), records the death certificate, and marks [u] dirty so
    its next contacts reconcile.  Returns [false] if [u] already
    knew. *)

val reconcile :
  Network.t -> int -> int -> plan:Fault.t -> counters:Message.counters -> unit
(** Lazy anti-entropy on first contact: the two endpoints exchange
    full current aggregates (two update messages), overwriting both
    rows and healing any recorded missed-update gaps, and gossip their
    presumed-dead lists — each side drops rows for newly learned
    corpses and becomes dirty in turn, so death certificates percolate
    along future query paths instead of by broadcast. *)

(** {2 Crash-recovery}

    A recovered node rejoins in one of two states: {e amnesiac} (the
    crash lost the RI; only the local index survives) or {e stale}
    (it replays a persisted row image from before the crash).  Either
    way it re-announces itself to its neighbors like the fresh join of
    Section 5.1 and relies on anti-entropy ({!Update.anti_entropy}) or
    ordinary waves to finish converging. *)

type rejoin =
  | Amnesiac  (** rejoin with an empty RI; every live link opens a gap *)
  | Stale_state of Bytes.t
      (** rejoin replaying a {!persist_rows} image taken before the
          crash *)

val persist_rows : Network.t -> int -> Bytes.t
(** Serialize one node's RI rows — [Ri_sim.Snapshot]-style row
    sections: IEEE float bits, little-endian, rows in the store's live
    iteration order — so persist → restore round-trips bit-identically.
    @raise Invalid_argument on an out-of-range node or an RI-less
    network. *)

val recover :
  ?on_event:(Update.event -> unit) ->
  Network.t ->
  int ->
  rejoin:rejoin ->
  plan:Fault.t ->
  counters:Message.counters ->
  unit
(** Bring a crash-stopped node back.  Revokes every death certificate
    naming it ({!Fault.revive}) {e before} anything is announced, so
    certificate gossip cannot re-delete the fresh rows; installs the
    rejoin state (amnesiac: no rows + a recorded gap per live link;
    stale: the persisted image, rows toward since-vanished links
    dropped); marks the node dirty; and re-announces with a full
    {!Update.propagate} — subject to the plan's faults like any other
    wave.
    @raise Invalid_argument if the node is out of range, not currently
    crash-stopped, or the stale image is corrupt. *)
