open Ri_core

type wave_seed = {
  sender : int;
  receiver : int;
  payload : Scheme.payload;
  baseline : Scheme.payload option;
}

type event =
  | Delivered of {
      sender : int;
      receiver : int;
      significant : bool;
      forwarded : bool;
    }

let m_waves =
  Ri_obs.Metrics.counter ~help:"Update waves propagated." "ri_update_waves_total"

let m_messages =
  Ri_obs.Metrics.counter ~help:"Update messages delivered."
    "ri_update_messages_total"

let m_insignificant =
  Ri_obs.Metrics.counter
    ~help:"Update messages judged insignificant (wave damped)."
    "ri_update_insignificant_total"

let m_budget_stops =
  Ri_obs.Metrics.counter
    ~help:"Update waves cut off by the message budget."
    "ri_update_budget_stops_total"

let significant net ~baseline ~payload =
  match baseline with
  | None -> true
  | Some old ->
      Scheme.payload_rel_diff old payload > Network.min_update net
      && Scheme.payload_distance old payload > Network.update_distance_floor net

let seeds_for_change net ~at ~except ~mutate =
  if not (Network.has_ri net) then begin
    mutate ();
    []
  end
  else begin
    let pre = Network.outgoing_exports net at in
    mutate ();
    let post = Network.outgoing_exports net at in
    List.filter_map
      (fun (peer, payload) ->
        if List.mem peer except then None
        else
          Some
            {
              sender = at;
              receiver = peer;
              payload;
              baseline = List.assoc_opt peer pre;
            })
      post
  end

let default_budget net =
  let n = Network.size net in
  let degrees = ref 0 in
  for v = 0 to n - 1 do
    degrees := !degrees + Network.degree net v
  done;
  20 * (n + !degrees)

let wave ?max_messages ?(on_event = fun (_ : event) -> ()) net ~seeds
    ~already_reached ~counters =
  if Network.has_ri net then begin
    (* Safety valve: on an overlay whose mean degree exceeds the assumed
       fanout, deltas amplify instead of decaying (each node's
       accumulated change grows by (degree-1)/F per generation — the
       Bellman-Ford count-to-infinity failure), so an undamped no-op
       wave need not terminate.  Real deployments rate-limit and batch;
       the budget stands in for that. *)
    let budget =
      match max_messages with Some b -> b | None -> default_budget net
    in
    let reached = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace reached v ()) already_reached;
    let q = Queue.create () in
    List.iter (fun s -> Queue.add s q) seeds;
    let detect = Network.cycle_policy net = Network.Detect_recover in
    let sent = ref 0 in
    while not (Queue.is_empty q) && !sent < budget do
      incr sent;
      let { sender; receiver; payload; baseline } = Queue.pop q in
      counters.Message.update_messages <- counters.Message.update_messages + 1;
      let ri = Network.ri net receiver in
      let baseline =
        match baseline with Some _ as b -> b | None -> Scheme.row ri ~peer:sender
      in
      if significant net ~baseline ~payload then begin
        let repeat = Hashtbl.mem reached receiver in
        Hashtbl.replace reached receiver ();
        on_event
          (Delivered
             {
               sender;
               receiver;
               significant = true;
               forwarded = not (detect && repeat);
             });
        (* Detect-and-recover: a node reached for the second time updates
           its row but breaks the cycle by not forwarding. *)
        if detect && repeat then Scheme.set_row ri ~peer:sender payload
        else begin
          (* Align the stored row with the sender's pre-change export
             before measuring the onward change: on a cyclic overlay the
             stored row may lag the sender's current aggregate (the
             resting state is not a strict fixed point), and that
             historical drift — already judged insignificant when it
             accrued — must not be charged to this update. *)
          (match baseline with
          | Some b -> Scheme.set_row ri ~peer:sender b
          | None -> ());
          let onward =
            seeds_for_change net ~at:receiver ~except:[ sender ]
              ~mutate:(fun () -> Scheme.set_row ri ~peer:sender payload)
          in
          List.iter (fun s -> Queue.add s q) onward
        end
      end
      else begin
        Ri_obs.Metrics.incr m_insignificant;
        on_event
          (Delivered { sender; receiver; significant = false; forwarded = false })
      end
    done;
    if Ri_obs.Metrics.enabled () then begin
      Ri_obs.Metrics.incr m_waves;
      Ri_obs.Metrics.add m_messages !sent;
      if not (Queue.is_empty q) then Ri_obs.Metrics.incr m_budget_stops
    end
  end

let propagate ?on_event net ~origin ~counters =
  if Network.has_ri net then
    let seeds =
      List.map
        (fun (peer, payload) ->
          { sender = origin; receiver = peer; payload; baseline = None })
        (Network.outgoing_exports net origin)
    in
    wave ?on_event net ~seeds ~already_reached:[ origin ] ~counters

let local_change ?on_event net ~origin ~summary ~counters =
  let seeds =
    seeds_for_change net ~at:origin ~except:[] ~mutate:(fun () ->
        Network.set_local_summary net origin summary)
  in
  wave ?on_event net ~seeds ~already_reached:[ origin ] ~counters

module Batcher = struct
  type nonrec t = {
    net : Network.t;
    origin : int;
    mutable latest : Ri_content.Summary.t option;
    mutable pending : int;
  }

  let create net ~origin =
    if origin < 0 || origin >= Network.size net then
      invalid_arg "Update.Batcher.create: origin out of range";
    { net; origin; latest = None; pending = 0 }

  let note_local_change t summary =
    t.latest <- Some summary;
    t.pending <- t.pending + 1

  let pending t = t.pending

  let flush t ~counters =
    match t.latest with
    | None -> ()
    | Some summary ->
        t.latest <- None;
        t.pending <- 0;
        local_change t.net ~origin:t.origin ~summary ~counters
end
