open Ri_util
open Ri_core

type wave_seed = {
  sender : int;
  receiver : int;
  payload : Scheme.payload;
  baseline : Scheme.payload option;
  tainted : bool;
}

type event =
  | Delivered of {
      sender : int;
      receiver : int;
      significant : bool;
      forwarded : bool;
    }
  | Dropped of { sender : int; receiver : int; dead : bool }
  | Delayed of { sender : int; receiver : int; rounds : int }
  | Round of { index : int; pending : int }
      (** A message generation begins with [pending] messages queued.
          Emitted before any delivery of the round, including round 0. *)
  | Repaired of { u : int; v : int }
      (** An anti-entropy digest exchange found the [(u, v)] link stale
          and both endpoints swapped full aggregates. *)

let m_waves =
  Ri_obs.Metrics.counter ~help:"Update waves propagated." "ri_update_waves_total"

let m_messages =
  Ri_obs.Metrics.counter ~help:"Update messages delivered."
    "ri_update_messages_total"

let m_insignificant =
  Ri_obs.Metrics.counter
    ~help:"Update messages judged insignificant (wave damped)."
    "ri_update_insignificant_total"

let m_budget_stops =
  Ri_obs.Metrics.counter
    ~help:"Update waves cut off by the message budget."
    "ri_update_budget_stops_total"

let m_wire_bytes =
  Ri_obs.Metrics.counter
    ~help:"Simulated bytes shipped by update messages (delta encoding)."
    "ri_update_wire_bytes_total"

let m_ae_rounds =
  Ri_obs.Metrics.counter ~help:"Anti-entropy digest rounds run."
    "ri_update_ae_rounds_total"

let m_ae_repairs =
  Ri_obs.Metrics.counter
    ~help:"Links repaired by anti-entropy full exchanges."
    "ri_update_ae_repairs_total"

let significant net ~baseline ~payload =
  match baseline with
  | None -> true
  | Some old ->
      (* Cheap test first, and early-exit: the rel-diff scan stops at the
         first entry over the threshold, and the (full-pass) distance is
         only computed for payloads that already cleared it. *)
      Scheme.payload_exceeds_rel old payload
        ~threshold:(Network.min_update net)
      && Scheme.payload_distance old payload > Network.update_distance_floor net

(* Simulated wire cost of one update message.  Senders diff the new
   aggregate against the last export acknowledged by this neighbor (the
   seed's baseline) and ship sparse (index, delta) pairs when that is
   smaller than the dense absolute vector.  First contact (no baseline)
   and anti-entropy repair (the receiver detectably missed updates from
   this sender, so the sender's baseline does not describe the
   receiver's row) must go dense.  State application stays absolute —
   [old + (new - old)] re-derives the exact floats only symbolically, so
   the simulation applies the payload itself and only the byte metric
   models the encoding. *)
let wire_bytes plan { sender; receiver; payload; baseline; _ } =
  let full = Message.wire_full_bytes ~entries:(Scheme.payload_entries payload) in
  match baseline with
  | None -> full
  | Some b ->
      let repair =
        match plan with
        | Some p -> Fault.missed p ~at:receiver ~peer:sender > 0
        | None -> false
      in
      if repair then full
      else
        min full
          (Message.wire_delta_bytes
             ~changed:(Scheme.payload_changed_entries b payload))

(* Int-specialized list membership/lookup: these run per peer per
   forwarded message, where polymorphic compare is measurable. *)
let rec mem_int (x : int) = function
  | [] -> false
  | y :: rest -> y = x || mem_int x rest

let rec assoc_opt_int (x : int) = function
  | [] -> None
  | (y, v) :: rest -> if y = x then Some v else assoc_opt_int x rest

let seeds_for_change ?plan net ~at ~except ~mutate =
  let no_recipient () =
    (* A leaf hearing from its only neighbor (the overwhelmingly common
       delivery in a tree) has nobody to forward to: the pre/post
       exports would be computed only to be filtered away below, so
       skip them — the stored-row mutation is all that is observable. *)
    Array.for_all (fun p -> mem_int p except) (Network.neighbors net at)
  in
  if (not (Network.has_ri net)) || no_recipient () then begin
    mutate ();
    []
  end
  else begin
    let pre = Network.outgoing_exports_except net at ~except in
    mutate ();
    let post = Network.outgoing_exports_except net at ~except in
    let tainted peer =
      match plan with
      | Some p -> Fault.tainted p ~at ~toward:peer
      | None -> false
    in
    List.map
      (fun (peer, payload) ->
        {
          sender = at;
          receiver = peer;
          payload;
          baseline = assoc_opt_int peer pre;
          tainted = tainted peer;
        })
      post
  end

let default_budget net =
  let n = Network.size net in
  let degrees = ref 0 in
  for v = 0 to n - 1 do
    degrees := !degrees + Network.degree net v
  done;
  20 * (n + !degrees)

(* One update delivery, shared verbatim between the synchronous wave
   loop below and the event engine's in-flight waves: judge
   significance against the carried (or gap-corrected) baseline, store
   the row, stamp provenance, and hand the onward exports to [forward]
   — the sequential path enqueues them directly, the sharded path
   buffers them per message for ordered replay, and an engine driver
   turns each into a scheduled message. *)
let deliver_one ?plan ?(on_event = fun (_ : event) -> ()) net ~reached ~wave_id
    ~forward { sender; receiver; payload; baseline; tainted } =
  let emit = on_event in
  let detect = Network.cycle_policy net = Network.Detect_recover in
  let ri = Network.ri net receiver in
  let baseline =
    match baseline with Some _ as b -> b | None -> Scheme.row ri ~peer:sender
  in
  (* A receiver that detectably missed updates from this sender (see
     {!Fault}) judges the arriving absolute aggregate against its
     stored — stale — row, not the sender-carried baseline: the gap
     means the carried "before" never made it here, and the honest
     marginal change is relative to what the receiver still holds.
     A clean delivery heals the gap; one flagged with the staleness
     bit does not — the sender's own inputs had gaps, so the payload
     proves nothing about the lost updates. *)
  let baseline =
    match plan with
    | Some p when Fault.missed p ~at:receiver ~peer:sender > 0 ->
        if not tainted then Fault.clear_missed p ~at:receiver ~peer:sender;
        Scheme.row ri ~peer:sender
    | _ -> baseline
  in
  if significant net ~baseline ~payload then begin
    let repeat = Bytes.get reached receiver <> '\000' in
    Bytes.set reached receiver '\001';
    emit
      (Delivered
         {
           sender;
           receiver;
           significant = true;
           forwarded = not (detect && repeat);
         });
    (* Detect-and-recover: a node reached for the second time updates
       its row but breaks the cycle by not forwarding. *)
    if detect && repeat then begin
      Scheme.set_row ri ~peer:sender payload;
      Scheme.stamp_row ri ~peer:sender wave_id
    end
    else begin
      (* Align the stored row with the sender's pre-change export
         before measuring the onward change: on a cyclic overlay the
         stored row may lag the sender's current aggregate (the
         resting state is not a strict fixed point), and that
         historical drift — already judged insignificant when it
         accrued — must not be charged to this update. *)
      (match baseline with
      | Some b -> Scheme.set_row ri ~peer:sender b
      | None -> ());
      let onward =
        seeds_for_change ?plan net ~at:receiver ~except:[ sender ]
          ~mutate:(fun () -> Scheme.set_row ri ~peer:sender payload)
      in
      Scheme.stamp_row ri ~peer:sender wave_id;
      List.iter forward onward
    end
  end
  else begin
    Ri_obs.Metrics.incr m_insignificant;
    emit (Delivered { sender; receiver; significant = false; forwarded = false })
  end

let wire_cost ?plan seed = wire_bytes plan seed

(* A queued message: [Fresh] still has its fault draws (and its budget
   charge) ahead of it; [Due] is a delayed message re-entering the wave,
   already counted when it was first sent. *)
type item = Fresh of wave_seed | Due of wave_seed

let wave ?max_messages ?on_event ?plan ?pool net ~seeds ~already_reached
    ~counters =
  if Network.has_ri net then begin
    let emit =
      match on_event with Some f -> f | None -> fun (_ : event) -> ()
    in
    (* Safety valve: on an overlay whose mean degree exceeds the assumed
       fanout, deltas amplify instead of decaying (each node's
       accumulated change grows by (degree-1)/F per generation — the
       Bellman-Ford count-to-infinity failure), so an undamped no-op
       wave need not terminate.  Real deployments rate-limit and batch;
       the budget stands in for that. *)
    let budget =
      match max_messages with Some b -> b | None -> default_budget net
    in
    (* Node ids are dense [0, size): a byte map beats a hash table for
       the per-delivery reached test (no hashing, no growth). *)
    let reached = Bytes.make (Network.size net) '\000' in
    List.iter (fun v -> Bytes.set reached v '\001') already_reached;
    (* The wave advances in rounds (message generations): [current] is
       the round in flight, onward exports land in [next], and delayed
       messages sit in [delayed] until their round comes up.  With no
       plan nothing is ever delayed and the rounds concatenate into
       exactly the old single-FIFO order. *)
    let current = Queue.create () in
    let next = Queue.create () in
    List.iter (fun s -> Queue.add (Fresh s) current) seeds;
    let delayed = ref [] in
    let round = ref 0 in
    if not (Queue.is_empty current) then begin
      emit (Round { index = 0; pending = Queue.length current });
      (* Scheduled heal: the cut counts the waves it has severed and
         drops once [heal_after] is exceeded.  Only waves that actually
         send count — empty-seed calls are invisible. *)
      Option.iter Fault.note_wave_start plan
    end;
    let sent = ref 0 in
    let wire = ref 0 in
    (* Provenance lineage: every row this wave rewrites is stamped with
       one logical wave id, so a later routing decision can name the
       update wave each consulted row came from.  One int write per
       delivery — cheap enough to leave ungated. *)
    let wave_id = Network.fresh_wave net in
    (* [forward] receives the onward seeds this delivery generates; the
       delivery logic itself is the shared {!deliver_one}. *)
    let deliver ~forward seed =
      deliver_one ?plan ~on_event:emit net ~reached ~wave_id ~forward seed
    in
    let forward_next s = Queue.add (Fresh s) next in
    (* An active partition severs the link outright.  Unlike a loss
       draw this consumes no randomness (healing the cut must not shift
       any stream), and unlike a crash both endpoints are live: each
       records a detectable gap toward the other, so post-heal
       anti-entropy knows exactly which rows to reconcile. *)
    let severed p { sender; receiver; _ } =
      Fault.note_partition_drop p;
      Fault.note_missed p ~at:sender ~peer:receiver;
      Fault.note_missed p ~at:receiver ~peer:sender;
      emit (Dropped { sender; receiver; dead = false })
    in
    (* Sharded rounds.  A round's messages are fixed when it starts
       (onward exports land in [next], never in [current]), and a
       delivery only touches its receiver's state: the receiver's RI,
       the receiver's byte in [reached], and — through
       [seeds_for_change] — the receiver's own exports.  Grouping the
       round by receiver therefore makes deliveries to distinct
       receivers independent, and running each group's messages in
       round order reproduces the sequential read/write sequence on
       every store.  Budget, wire and message counters are charged at
       drain time in pop order ([wire_bytes] reads only the carried
       seed, so its value cannot depend on earlier deliveries), and the
       onward seeds are replayed into [next] in round order afterwards
       — the concatenation is bit-identical to the sequential round.
       Faulty or observed waves stay sequential: fault draws consume a
       shared PRNG in delivery order, and an [on_event] observer is
       entitled to see events as they happen. *)
    let shard_min = Env.int ~min:1 "RI_WAVE_SHARD_MIN" 64 in
    let par_pool =
      if
        Option.is_none plan && Option.is_none on_event
        && (not (Network.perturbed net))
        && not (Pool.in_job ())
      then
        let p = match pool with Some p -> p | None -> Pool.global () in
        if Pool.jobs p > 1 then Some p else None
      else None
    in
    let sharded_round p =
      let batch = ref [] in
      while (not (Queue.is_empty current)) && !sent < budget do
        match Queue.pop current with
        | Due seed -> batch := seed :: !batch
        | Fresh seed ->
            if Network.has_link net seed.sender seed.receiver then begin
              incr sent;
              counters.Message.update_messages <-
                counters.Message.update_messages + 1;
              let bytes = wire_bytes plan seed in
              wire := !wire + bytes;
              counters.Message.update_wire_bytes <-
                counters.Message.update_wire_bytes + bytes;
              batch := seed :: !batch
            end
      done;
      let batch = Array.of_list (List.rev !batch) in
      let n_msgs = Array.length batch in
      (* Message indices per receiver, receivers in first-appearance
         order; each group keeps its indices in round order. *)
      let groups : (int, int list) Hashtbl.t = Hashtbl.create (2 * n_msgs) in
      let order = ref [] in
      Array.iteri
        (fun i s ->
          match Hashtbl.find_opt groups s.receiver with
          | Some is -> Hashtbl.replace groups s.receiver (i :: is)
          | None ->
              Hashtbl.add groups s.receiver [ i ];
              order := s.receiver :: !order)
        batch;
      let order = Array.of_list (List.rev !order) in
      let onward = Array.make (max 1 n_msgs) [] in
      Pool.iter ~label:"update_wave" p ~n:(Array.length order) (fun g ->
          let is = List.rev (Hashtbl.find groups order.(g)) in
          List.iter
            (fun i ->
              let acc = ref [] in
              deliver ~forward:(fun s -> acc := s :: !acc) batch.(i);
              onward.(i) <- List.rev !acc)
            is);
      for i = 0 to n_msgs - 1 do
        List.iter forward_next onward.(i)
      done
    in
    let more () =
      (not (Queue.is_empty current))
      || (not (Queue.is_empty next))
      || !delayed <> []
    in
    while more () && !sent < budget do
      if Queue.is_empty current then begin
        incr round;
        Queue.transfer next current;
        let due, later = List.partition (fun (r, _) -> r <= !round) !delayed in
        delayed := later;
        List.iter (fun (_, s) -> Queue.add (Due s) current) due;
        if not (Queue.is_empty current) then
          emit (Round { index = !round; pending = Queue.length current })
      end
      else
        match par_pool with
        | Some p when Queue.length current >= shard_min -> sharded_round p
        | _ -> (
            match Queue.pop current with
            | Due seed -> (
                match plan with
                | Some p when not (Fault.same_side p seed.sender seed.receiver)
                  ->
                    (* The message was in flight when the cut activated
                       (or was delayed across it): it never lands. *)
                    severed p seed
                | _ -> deliver ~forward:forward_next seed)
            | Fresh seed
              when not (Network.has_link net seed.sender seed.receiver) ->
                (* A row can outlive its link mid-churn: rows drive the
                   exports, so a node whose neighbor just vanished still
                   addresses it until its own cleanup runs.  There is no
                   link to carry the message — nothing is sent or
                   counted, and above all the departed node must not
                   relay the very wave announcing its departure. *)
                ()
            | Fresh seed -> (
                incr sent;
                counters.Message.update_messages <-
                  counters.Message.update_messages + 1;
                let bytes = wire_bytes plan seed in
                wire := !wire + bytes;
                counters.Message.update_wire_bytes <-
                  counters.Message.update_wire_bytes + bytes;
                match plan with
                | Some p when not (Fault.same_side p seed.sender seed.receiver)
                  ->
                    severed p seed
                | Some p when Fault.is_dead p seed.receiver ->
                    Fault.note_drop p ~dead:true;
                    (* No acknowledgement will ever come back from a
                       crash-stopped neighbor: the sender's failure
                       detector marks its own row toward the silent node
                       as suspect — the row still advertises a subtree
                       nothing can reach. *)
                    Fault.note_missed p ~at:seed.sender ~peer:seed.receiver;
                    emit
                      (Dropped
                         {
                           sender = seed.sender;
                           receiver = seed.receiver;
                           dead = true;
                         })
                | Some p when Fault.drop_update p ->
                    Fault.note_drop p ~dead:false;
                    Fault.note_missed p ~at:seed.receiver ~peer:seed.sender;
                    emit
                      (Dropped
                         {
                           sender = seed.sender;
                           receiver = seed.receiver;
                           dead = false;
                         })
                | Some p when Fault.delay_update p ->
                    let rounds = 1 + (Fault.spec p).Fault.delay_waves in
                    Fault.note_delay p;
                    (* Until the late message lands the receiver has a
                       detectable sequence gap, exactly as for a loss;
                       the eventual delivery heals it through the
                       missed-branch above. *)
                    Fault.note_missed p ~at:seed.receiver ~peer:seed.sender;
                    delayed := !delayed @ [ (!round + rounds, seed) ];
                    emit
                      (Delayed
                         {
                           sender = seed.sender;
                           receiver = seed.receiver;
                           rounds;
                         })
                | _ -> deliver ~forward:forward_next seed))
    done;
    if Ri_obs.Metrics.enabled () then begin
      Ri_obs.Metrics.incr m_waves;
      Ri_obs.Metrics.add m_messages !sent;
      Ri_obs.Metrics.add m_wire_bytes !wire;
      if more () then Ri_obs.Metrics.incr m_budget_stops
    end
  end

let propagate ?on_event ?plan ?pool net ~origin ~counters =
  if Network.has_ri net then
    let tainted peer =
      match plan with
      | Some p -> Fault.tainted p ~at:origin ~toward:peer
      | None -> false
    in
    let seeds =
      List.map
        (fun (peer, payload) ->
          {
            sender = origin;
            receiver = peer;
            payload;
            baseline = None;
            tainted = tainted peer;
          })
        (Network.outgoing_exports net origin)
    in
    wave ?on_event ?plan ?pool net ~seeds ~already_reached:[ origin ] ~counters

let local_change ?on_event ?plan ?pool net ~origin ~summary ~counters =
  let seeds =
    seeds_for_change ?plan net ~at:origin ~except:[] ~mutate:(fun () ->
        Network.set_local_summary net origin summary)
  in
  wave ?on_event ?plan ?pool net ~seeds ~already_reached:[ origin ] ~counters

(* One periodic anti-entropy round: every live, connected link exchanges
   digests (per-row wave stamps + link sequence state), and links with
   recorded gaps or a dirty endpoint escalate to a full two-way
   aggregate exchange followed by an onward wave.  Repair is triggered
   by the gap ledger, never by comparing row content against the
   neighbor's current aggregate: on a cyclic overlay the resting state
   is not a strict fixed point (see [deliver]'s baseline-alignment
   comment), so content-chasing would re-inject historical drift and
   count to infinity.  Gap-free divergence downstream of a repaired link
   heals through the onward waves' ordinary significance test. *)
let anti_entropy ?on_event ~plan net ~counters =
  if not (Network.has_ri net) then 0
  else begin
    let emit =
      match on_event with Some f -> f | None -> fun (_ : event) -> ()
    in
    let n = Network.size net in
    let repairs = ref 0 in
    Ri_obs.Metrics.incr m_ae_rounds;
    (* Dirt raised mid-round (corpse detection below) must survive to
       the next round: links ordered before the discovery were digested
       against the old state.  Only dirt present at round start is spent
       by this round. *)
    let dirty_at_start = Array.init n (fun v -> Fault.dirty plan v) in
    for u = 0 to n - 1 do
      if not (Fault.is_dead plan u) then
        Array.iter
          (fun v ->
            if v > u then
              if Fault.is_dead plan v then begin
                (* The digest probe gets no reply: the periodic exchange
                   doubles as a failure detector, without waiting for a
                   query to stumble over the corpse. *)
                counters.Message.update_messages <-
                  counters.Message.update_messages + 1;
                counters.Message.update_wire_bytes <-
                  counters.Message.update_wire_bytes + Message.wire_digest_bytes;
                if Fault.learn_dead plan ~at:u ~dead:v then begin
                  (match Scheme.row (Network.ri net u) ~peer:v with
                  | Some _ ->
                      Scheme.remove_row (Network.ri net u) ~peer:v;
                      Fault.note_repair plan
                  | None -> ());
                  Fault.set_dirty plan u;
                  (* Count the detection as a repair: u's exports just
                     changed, so the caller must run at least one more
                     round to spend the dirt on u's other links. *)
                  incr repairs
                end;
                (* The row is gone; a standing gap toward the corpse
                   would taint u's exports forever. *)
                Fault.clear_missed plan ~at:u ~peer:v
              end
              else if Fault.same_side plan u v then begin
                counters.Message.update_messages <-
                  counters.Message.update_messages + 2;
                counters.Message.update_wire_bytes <-
                  counters.Message.update_wire_bytes
                  + (2 * Message.wire_digest_bytes);
                let needs_repair =
                  Fault.missed plan ~at:u ~peer:v > 0
                  || Fault.missed plan ~at:v ~peer:u > 0
                  || Fault.dirty plan u || Fault.dirty plan v
                in
                if needs_repair then begin
                  (* Trustworthiness is judged on the pre-exchange gap
                     state: an aggregate computed from gapped inputs
                     cannot certify the peer's row even though it is
                     about to be stored. *)
                  let u_trust = not (Fault.tainted plan ~at:u ~toward:v) in
                  let v_trust = not (Fault.tainted plan ~at:v ~toward:u) in
                  let to_v = Network.export_to net u ~peer:v in
                  let to_u = Network.export_to net v ~peer:u in
                  counters.Message.update_messages <-
                    counters.Message.update_messages + 2;
                  counters.Message.update_wire_bytes <-
                    counters.Message.update_wire_bytes
                    + Message.wire_full_bytes
                        ~entries:(Scheme.payload_entries to_v)
                    + Message.wire_full_bytes
                        ~entries:(Scheme.payload_entries to_u);
                  let wave_id = Network.fresh_wave net in
                  let seeds_v =
                    seeds_for_change ~plan net ~at:v ~except:[ u ]
                      ~mutate:(fun () ->
                        Scheme.set_row (Network.ri net v) ~peer:u to_v)
                  in
                  Scheme.stamp_row (Network.ri net v) ~peer:u wave_id;
                  let seeds_u =
                    seeds_for_change ~plan net ~at:u ~except:[ v ]
                      ~mutate:(fun () ->
                        Scheme.set_row (Network.ri net u) ~peer:v to_u)
                  in
                  Scheme.stamp_row (Network.ri net u) ~peer:v wave_id;
                  if v_trust then Fault.clear_missed plan ~at:u ~peer:v;
                  if u_trust then Fault.clear_missed plan ~at:v ~peer:u;
                  Fault.note_repair plan;
                  Ri_obs.Metrics.incr m_ae_repairs;
                  incr repairs;
                  emit (Repaired { u; v });
                  (* Push the corrected aggregates onward so downstream
                     rows with no recorded gap converge through the
                     normal significance-damped wave. *)
                  wave ?on_event ~plan net
                    ~seeds:(seeds_u @ seeds_v)
                    ~already_reached:[ u; v ] ~counters
                end
              end)
          (Network.neighbors net u)
    done;
    (* Every live link has been digested against round-start dirt, so
       that dirt is spent; dirt raised mid-round keeps its flag (unless
       a later link exchange of this round already consumed it — the
       ledger still covers the rest). *)
    for v = 0 to n - 1 do
      if dirty_at_start.(v) && not (Fault.is_dead plan v) then
        Fault.clear_dirty plan v
    done;
    !repairs
  end

module Batcher = struct
  type nonrec t = {
    net : Network.t;
    origin : int;
    mutable latest : Ri_content.Summary.t option;
    mutable pending : int;
  }

  let create net ~origin =
    if origin < 0 || origin >= Network.size net then
      invalid_arg "Update.Batcher.create: origin out of range";
    { net; origin; latest = None; pending = 0 }

  let note_local_change t summary =
    t.latest <- Some summary;
    t.pending <- t.pending + 1

  let pending t = t.pending

  let flush t ~counters =
    match t.latest with
    | None -> ()
    | Some summary ->
        t.latest <- None;
        t.pending <- 0;
        local_change t.net ~origin:t.origin ~summary ~counters
end
