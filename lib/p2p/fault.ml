open Ri_util

type spec = {
  update_loss : float;
  update_delay : float;
  delay_waves : int;
  crash : float;
  link_flap : float;
  drift : float;
  stale_after : int option;
  retries : int;
  backoff : int;
  query_budget : int option;
}

let none =
  {
    update_loss = 0.;
    update_delay = 0.;
    delay_waves = 0;
    crash = 0.;
    link_flap = 0.;
    drift = 0.;
    stale_after = None;
    retries = 0;
    backoff = 0;
    query_budget = None;
  }

let active s =
  s.update_loss > 0. || s.update_delay > 0. || s.crash > 0.
  || s.link_flap > 0. || s.drift > 0.

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let prob name v =
    if v < 0. || v > 1. then Some (name, v) else None
  in
  match
    List.find_map
      (fun x -> x)
      [
        prob "update_loss" s.update_loss;
        prob "update_delay" s.update_delay;
        prob "crash" s.crash;
        prob "link_flap" s.link_flap;
        prob "drift" s.drift;
      ]
  with
  | Some (name, v) -> err "%s must be a probability, got %g" name v
  | None ->
      if s.crash >= 1. then err "crash must leave survivors (< 1)"
      else if s.delay_waves < 0 then err "delay_waves must be non-negative"
      else if s.retries < 0 then err "retries must be non-negative"
      else if s.backoff < 0 then err "backoff must be non-negative"
      else if (match s.stale_after with Some k -> k < 0 | None -> false) then
        err "stale_after must be non-negative"
      else if (match s.query_budget with Some b -> b <= 0 | None -> false)
      then err "query_budget must be positive"
      else Ok ()

let pp ppf s =
  Format.fprintf ppf
    "@[loss=%g delay=%g(+%dw) crash=%g flap=%g drift=%g stale>%s retries=%d \
     backoff=%d budget=%s@]"
    s.update_loss s.update_delay s.delay_waves s.crash s.link_flap s.drift
    (match s.stale_after with Some k -> string_of_int k | None -> "off")
    s.retries s.backoff
    (match s.query_budget with Some b -> string_of_int b | None -> "inf")

type stats = {
  mutable crashes : int;
  mutable update_drops : int;
  mutable update_dead : int;
  mutable update_delays : int;
  mutable timeouts : int;
  mutable retries_used : int;
  mutable backoff_total : int;
  mutable fallbacks : int;
  mutable repairs : int;
  mutable budget_stops : int;
}

type t = {
  spec : spec;
  update_rng : Prng.t;  (* drop/delay draws, one or two per message *)
  query_rng : Prng.t;  (* flap draws *)
  drift_rng : Prng.t;  (* donor/recipient picks for content drift *)
  fallback_rng : Prng.t;
      (* stale-row shuffles; separate from the flap stream so a
         fallback and a trust-stale run of the same plan stay paired on
         every timeout draw *)
  dead : bool array;
  (* (at, peer) -> updates from [peer] that [at] detectably missed *)
  missed : (int * int, int) Hashtbl.t;
  (* per-node count of distinct open gaps — nonzero means the node's
     own aggregates are computed from suspect inputs *)
  gaps : int array;
  (* (at, dead) death certificates, plus per-node learn order *)
  certs : (int * int, unit) Hashtbl.t;
  learned : (int, int list) Hashtbl.t;  (* reverse learn order *)
  dirty : bool array;
  stats : stats;
}

(* ri_fault_* counters: registered once, bumped from the note_* helpers
   so every surface (CLI, experiments, tests) shares them. *)
let m_crashes =
  Ri_obs.Metrics.counter ~help:"Nodes crash-stopped by fault plans."
    "ri_fault_crashes_total"

let m_drops =
  Ri_obs.Metrics.counter ~help:"Update messages lost in transit."
    "ri_fault_update_drops_total"

let m_dead_updates =
  Ri_obs.Metrics.counter ~help:"Update messages addressed to dead nodes."
    "ri_fault_update_dead_total"

let m_delays =
  Ri_obs.Metrics.counter ~help:"Update messages delayed in transit."
    "ri_fault_update_delays_total"

let m_timeouts =
  Ri_obs.Metrics.counter ~help:"Query forwards that timed out."
    "ri_fault_timeouts_total"

let m_retries =
  Ri_obs.Metrics.counter ~help:"Query forwards retried after a timeout."
    "ri_fault_retries_total"

let m_fallbacks =
  Ri_obs.Metrics.counter
    ~help:"Stale RI rows demoted to random (No-RI) ranking."
    "ri_fault_stale_fallbacks_total"

let m_repairs =
  Ri_obs.Metrics.counter
    ~help:"RI rows repaired by crash detection or anti-entropy."
    "ri_fault_repairs_total"

let m_budget_stops =
  Ri_obs.Metrics.counter ~help:"Queries cut off by the fault budget."
    "ri_fault_budget_stops_total"

let spec t = t.spec

let query_budget t =
  match t.spec.query_budget with Some b -> b | None -> max_int

let is_dead t v = t.dead.(v)

let crashed t = t.stats.crashes

let kill t v =
  if not t.dead.(v) then begin
    t.dead.(v) <- true;
    t.stats.crashes <- t.stats.crashes + 1;
    Ri_obs.Metrics.incr m_crashes
  end

let make s ~seed ~trial ~nodes ~protect =
  (match validate s with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.make: " ^ msg));
  if nodes < 1 then invalid_arg "Fault.make: empty network";
  (* The plan's master stream depends only on (seed, trial): it is never
     split from the trial master, so an inert plan leaves every existing
     stream untouched and disabled faults reproduce bit-for-bit. *)
  let master =
    Prng.create ((seed * 0x1000003) lxor (trial * 0x9e3779b1) lxor 0xfa0175)
  in
  let crash_rng = Prng.split master in
  let update_rng = Prng.split master in
  let query_rng = Prng.split master in
  let drift_rng = Prng.split master in
  let fallback_rng = Prng.split master in
  let t =
    {
      spec = s;
      update_rng;
      query_rng;
      drift_rng;
      fallback_rng;
      dead = Array.make nodes false;
      missed = Hashtbl.create 64;
      gaps = Array.make nodes 0;
      certs = Hashtbl.create 16;
      learned = Hashtbl.create 16;
      dirty = Array.make nodes false;
      stats =
        {
          crashes = 0;
          update_drops = 0;
          update_dead = 0;
          update_delays = 0;
          timeouts = 0;
          retries_used = 0;
          backoff_total = 0;
          fallbacks = 0;
          repairs = 0;
          budget_stops = 0;
        };
    }
  in
  let protected_ v = List.mem v protect in
  let victims =
    min
      (int_of_float (Float.round (s.crash *. float_of_int nodes)))
      (max 0 (nodes - 1 - List.length protect))
  in
  let killed = ref 0 in
  while !killed < victims do
    let v = Prng.int crash_rng nodes in
    if (not (protected_ v)) && not t.dead.(v) then begin
      kill t v;
      incr killed
    end
  done;
  t

let knows_dead t ~at ~dead = Hashtbl.mem t.certs (at, dead)

let learn_dead t ~at ~dead =
  if Hashtbl.mem t.certs (at, dead) then false
  else begin
    Hashtbl.replace t.certs (at, dead) ();
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.learned at) in
    Hashtbl.replace t.learned at (dead :: prev);
    true
  end

let known_dead_of t at =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.learned at))

let dirty t v = t.dirty.(v)

let set_dirty t v = t.dirty.(v) <- true

let drop_update t = Prng.bernoulli t.update_rng t.spec.update_loss

let delay_update t = Prng.bernoulli t.update_rng t.spec.update_delay

let flap t = Prng.bernoulli t.query_rng t.spec.link_flap

let shuffle t arr = Prng.shuffle_in_place t.fallback_rng arr

let drift_int t bound = Prng.int t.drift_rng bound

let note_missed t ~at ~peer =
  let k = (at, peer) in
  match Hashtbl.find_opt t.missed k with
  | None ->
      t.gaps.(at) <- t.gaps.(at) + 1;
      Hashtbl.replace t.missed k 1
  | Some n -> Hashtbl.replace t.missed k (n + 1)

let clear_missed t ~at ~peer =
  if Hashtbl.mem t.missed (at, peer) then begin
    Hashtbl.remove t.missed (at, peer);
    t.gaps.(at) <- t.gaps.(at) - 1
  end

(* Is [at]'s export toward [toward] built from suspect inputs?  A gap on
   the (at, toward) row itself does not count: that row is excluded from
   the aggregate sent to [toward]. *)
let tainted t ~at ~toward =
  t.gaps.(at) > if Hashtbl.mem t.missed (at, toward) then 1 else 0

let missed t ~at ~peer =
  Option.value ~default:0 (Hashtbl.find_opt t.missed (at, peer))

let fallback t = t.spec.stale_after <> None

let stale t ~at ~peer =
  match t.spec.stale_after with
  | None -> false
  | Some threshold -> missed t ~at ~peer > threshold

let retries t = t.spec.retries

let backoff_ticks t ~attempt = t.spec.backoff * (1 lsl min attempt 20)

let stats t = t.stats

let note_drop t ~dead =
  if dead then begin
    t.stats.update_dead <- t.stats.update_dead + 1;
    Ri_obs.Metrics.incr m_dead_updates
  end
  else begin
    t.stats.update_drops <- t.stats.update_drops + 1;
    Ri_obs.Metrics.incr m_drops
  end

let note_delay t =
  t.stats.update_delays <- t.stats.update_delays + 1;
  Ri_obs.Metrics.incr m_delays

let note_timeout t ~attempt =
  t.stats.timeouts <- t.stats.timeouts + 1;
  t.stats.backoff_total <- t.stats.backoff_total + backoff_ticks t ~attempt;
  Ri_obs.Metrics.incr m_timeouts

let note_retry t =
  t.stats.retries_used <- t.stats.retries_used + 1;
  Ri_obs.Metrics.incr m_retries

let note_fallbacks t n =
  if n > 0 then begin
    t.stats.fallbacks <- t.stats.fallbacks + n;
    Ri_obs.Metrics.add m_fallbacks n
  end

let note_repair t =
  t.stats.repairs <- t.stats.repairs + 1;
  Ri_obs.Metrics.incr m_repairs

let note_budget_stop t =
  t.stats.budget_stops <- t.stats.budget_stops + 1;
  Ri_obs.Metrics.incr m_budget_stops
