open Ri_util

type spec = {
  update_loss : float;
  update_delay : float;
  delay_waves : int;
  crash : float;
  link_flap : float;
  drift : float;
  partition : float;
  heal_after : int option;
  stale_after : int option;
  retries : int;
  backoff : int;
  query_budget : int option;
}

let none =
  {
    update_loss = 0.;
    update_delay = 0.;
    delay_waves = 0;
    crash = 0.;
    link_flap = 0.;
    drift = 0.;
    partition = 0.;
    heal_after = None;
    stale_after = None;
    retries = 0;
    backoff = 0;
    query_budget = None;
  }

let active s =
  s.update_loss > 0. || s.update_delay > 0. || s.crash > 0.
  || s.link_flap > 0. || s.drift > 0. || s.partition > 0.

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let prob name v =
    if v < 0. || v > 1. || Float.is_nan v then Some (name, v) else None
  in
  match
    List.find_map
      (fun x -> x)
      [
        prob "update_loss" s.update_loss;
        prob "update_delay" s.update_delay;
        prob "crash" s.crash;
        prob "link_flap" s.link_flap;
        prob "drift" s.drift;
        prob "partition" s.partition;
      ]
  with
  | Some (name, v) -> err "%s must be a probability, got %g" name v
  | None ->
      if s.crash >= 1. then err "crash must leave survivors (< 1)"
      else if s.partition >= 1. then
        err "partition must leave both sides populated (< 1)"
      else if s.delay_waves < 0 then err "delay_waves must be non-negative"
      else if s.retries < 0 then err "retries must be non-negative"
      else if s.backoff < 0 then err "backoff must be non-negative"
      else if (match s.stale_after with Some k -> k < 0 | None -> false) then
        err "stale_after must be non-negative"
      else if (match s.heal_after with Some k -> k < 0 | None -> false) then
        err "heal_after must be non-negative"
      else if (match s.query_budget with Some b -> b <= 0 | None -> false)
      then err "query_budget must be positive"
      else Ok ()

let pp ppf s =
  Format.fprintf ppf
    "@[loss=%g delay=%g(+%dw) crash=%g flap=%g drift=%g part=%g%s stale>%s \
     retries=%d backoff=%d budget=%s@]"
    s.update_loss s.update_delay s.delay_waves s.crash s.link_flap s.drift
    s.partition
    (match s.heal_after with
    | Some k -> Printf.sprintf "(heal@%dw)" k
    | None -> "")
    (match s.stale_after with Some k -> string_of_int k | None -> "off")
    s.retries s.backoff
    (match s.query_budget with Some b -> string_of_int b | None -> "inf")

type stats = {
  mutable crashes : int;
  mutable update_drops : int;
  mutable update_dead : int;
  mutable update_delays : int;
  mutable partition_drops : int;
  mutable timeouts : int;
  mutable retries_used : int;
  mutable backoff_total : int;
  mutable fallbacks : int;
  mutable repairs : int;
  mutable recoveries : int;
  mutable budget_stops : int;
}

type t = {
  spec : spec;
  update_rng : Prng.t;  (* drop/delay draws, one or two per message *)
  query_rng : Prng.t;  (* flap draws *)
  drift_rng : Prng.t;  (* donor/recipient picks for content drift *)
  fallback_rng : Prng.t;
      (* stale-row shuffles; separate from the flap stream so a
         fallback and a trust-stale run of the same plan stay paired on
         every timeout draw *)
  partition_rng : Prng.t;  (* cut-side growth; split after the PR 3 five *)
  retry_rng : Prng.t;  (* full-jitter backoff draws, one per timeout *)
  retry_cap : int;  (* RI_RETRY_CAP, read once at plan creation *)
  dead : bool array;
  side : bool array;  (* [true] = minority side of the cut *)
  mutable cut_active : bool;
  mutable waves_seen : int;  (* update waves started while the cut holds *)
  mutable quiesced : bool;
      (* recovery measurement mode: probabilistic draws (loss, delay,
         flap) answer [false] without consuming the stream, so the
         reconvergence phase is exact while replay stays deterministic *)
  (* (at, peer) -> updates from [peer] that [at] detectably missed *)
  missed : (int * int, int) Hashtbl.t;
  (* per-node count of distinct open gaps — nonzero means the node's
     own aggregates are computed from suspect inputs *)
  gaps : int array;
  (* (at, dead) death certificates, plus per-node learn order *)
  certs : (int * int, unit) Hashtbl.t;
  learned : (int, int list) Hashtbl.t;  (* reverse learn order *)
  dirty : bool array;
  stats : stats;
}

(* ri_fault_* counters: registered once, bumped from the note_* helpers
   so every surface (CLI, experiments, tests) shares them. *)
let m_crashes =
  Ri_obs.Metrics.counter ~help:"Nodes crash-stopped by fault plans."
    "ri_fault_crashes_total"

let m_drops =
  Ri_obs.Metrics.counter ~help:"Update messages lost in transit."
    "ri_fault_update_drops_total"

let m_dead_updates =
  Ri_obs.Metrics.counter ~help:"Update messages addressed to dead nodes."
    "ri_fault_update_dead_total"

let m_delays =
  Ri_obs.Metrics.counter ~help:"Update messages delayed in transit."
    "ri_fault_update_delays_total"

let m_partition_drops =
  Ri_obs.Metrics.counter
    ~help:"Messages severed by an active network partition."
    "ri_fault_partition_drops_total"

let m_timeouts =
  Ri_obs.Metrics.counter ~help:"Query forwards that timed out."
    "ri_fault_timeouts_total"

let m_retries =
  Ri_obs.Metrics.counter ~help:"Query forwards retried after a timeout."
    "ri_fault_retries_total"

let m_fallbacks =
  Ri_obs.Metrics.counter
    ~help:"Stale RI rows demoted to random (No-RI) ranking."
    "ri_fault_stale_fallbacks_total"

let m_repairs =
  Ri_obs.Metrics.counter
    ~help:"RI rows repaired by crash detection or anti-entropy."
    "ri_fault_repairs_total"

let m_recoveries =
  Ri_obs.Metrics.counter ~help:"Crashed nodes revived by recovery."
    "ri_fault_recoveries_total"

let m_budget_stops =
  Ri_obs.Metrics.counter ~help:"Queries cut off by the fault budget."
    "ri_fault_budget_stops_total"

let spec t = t.spec

let query_budget t =
  match t.spec.query_budget with Some b -> b | None -> max_int

let is_dead t v = t.dead.(v)

let crashed t = t.stats.crashes

let kill t v =
  if not t.dead.(v) then begin
    t.dead.(v) <- true;
    t.stats.crashes <- t.stats.crashes + 1;
    Ri_obs.Metrics.incr m_crashes
  end

let make ?fault_seed ?neighbors s ~seed ~trial ~nodes ~protect =
  (match validate s with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.make: " ^ msg));
  if nodes < 1 then invalid_arg "Fault.make: empty network";
  (* The plan's master stream depends only on (seed, trial): it is never
     split from the trial master, so an inert plan leaves every existing
     stream untouched and disabled faults reproduce bit-for-bit.
     [fault_seed] substitutes for the topology seed so a fault schedule
     can be replayed against a different network. *)
  let plan_seed = Option.value fault_seed ~default:seed in
  let master =
    Prng.create ((plan_seed * 0x1000003) lxor (trial * 0x9e3779b1) lxor 0xfa0175)
  in
  let crash_rng = Prng.split master in
  let update_rng = Prng.split master in
  let query_rng = Prng.split master in
  let drift_rng = Prng.split master in
  let fallback_rng = Prng.split master in
  (* New streams are split strictly after the PR 3 five, so plans that
     never partition and never back off draw the exact same sequences as
     before this plane existed. *)
  let partition_rng = Prng.split master in
  let retry_rng = Prng.split master in
  let t =
    {
      spec = s;
      update_rng;
      query_rng;
      drift_rng;
      fallback_rng;
      partition_rng;
      retry_rng;
      retry_cap = Env.int ~min:1 "RI_RETRY_CAP" (1 lsl 20);
      dead = Array.make nodes false;
      side = Array.make nodes false;
      cut_active = false;
      waves_seen = 0;
      quiesced = false;
      missed = Hashtbl.create 64;
      gaps = Array.make nodes 0;
      certs = Hashtbl.create 16;
      learned = Hashtbl.create 16;
      dirty = Array.make nodes false;
      stats =
        {
          crashes = 0;
          update_drops = 0;
          update_dead = 0;
          update_delays = 0;
          partition_drops = 0;
          timeouts = 0;
          retries_used = 0;
          backoff_total = 0;
          fallbacks = 0;
          repairs = 0;
          recoveries = 0;
          budget_stops = 0;
        };
    }
  in
  let protected_ v = List.mem v protect in
  let victims =
    min
      (int_of_float (Float.round (s.crash *. float_of_int nodes)))
      (max 0 (nodes - 1 - List.length protect))
  in
  let killed = ref 0 in
  while !killed < victims do
    let v = Prng.int crash_rng nodes in
    if (not (protected_ v)) && not t.dead.(v) then begin
      kill t v;
      incr killed
    end
  done;
  if s.partition > 0. then begin
    match neighbors with
    | None ->
        invalid_arg "Fault.make: a partition spec needs ~neighbors adjacency"
    | Some nbrs ->
        (* A plausible bisection must leave BOTH sides connected.  A
           blob grown by BFS from a random start is itself connected,
           but its complement need not be: on a tree a 10% blob grown
           around an interior hub strands the other 90% in fragments,
           and "a small partition" ends up disconnecting almost
           everyone.  Instead, cut a spanning-tree edge: BFS a spanning
           tree from a root pinned to the majority side (the first
           protected node — the query origin — when there is one), then
           sever the subtree whose size is closest to the target.  Both
           the subtree and its complement are connected in the spanning
           tree, hence in the overlay. *)
        let target =
          max 1
            (min (nodes - 1)
               (int_of_float (Float.round (s.partition *. float_of_int nodes))))
        in
        let root =
          match protect with
          | p :: _ when p >= 0 && p < nodes -> p
          | _ -> Prng.int t.partition_rng nodes
        in
        let parent = Array.make nodes (-1) in
        let order = Array.make nodes (-1) in
        let reached = Array.make nodes false in
        let count = ref 0 in
        let frontier = Queue.create () in
        reached.(root) <- true;
        Queue.add root frontier;
        while not (Queue.is_empty frontier) do
          let u = Queue.pop frontier in
          order.(!count) <- u;
          incr count;
          Array.iter
            (fun v ->
              if not reached.(v) then begin
                reached.(v) <- true;
                parent.(v) <- u;
                Queue.add v frontier
              end)
            (nbrs u)
        done;
        (* Subtree sizes and protected-node marks, accumulated leaf-up
           (reverse BFS order visits every child before its parent). *)
        let size = Array.make nodes 1 in
        let has_protected =
          Array.init nodes (fun v -> List.mem v protect)
        in
        for i = !count - 1 downto 1 do
          let v = order.(i) in
          let p = parent.(v) in
          size.(p) <- size.(p) + size.(v);
          if has_protected.(v) then has_protected.(p) <- true
        done;
        (* Best cut edge: reachable non-root subtree, no protected node
           inside, size closest to the target (lowest node id breaks
           ties, so the choice is deterministic). *)
        let best = ref (-1) and best_gap = ref max_int in
        for i = 1 to !count - 1 do
          let v = order.(i) in
          if not has_protected.(v) then begin
            let gap = abs (size.(v) - target) in
            if gap < !best_gap then begin
              best := v;
              best_gap := gap
            end
          end
        done;
        if !best >= 0 then begin
          (* Mark the severed subtree as the minority side.  Unreached
             nodes (a disconnected overlay) stay on the majority side:
             they were already partitioned from everything. *)
          let mark = Queue.create () in
          t.side.(!best) <- true;
          Queue.add !best mark;
          while not (Queue.is_empty mark) do
            let u = Queue.pop mark in
            Array.iter
              (fun v ->
                if parent.(v) = u && not t.side.(v) then begin
                  t.side.(v) <- true;
                  Queue.add v mark
                end)
              (nbrs u)
          done;
          t.cut_active <- true
        end
        (* No cuttable subtree (every branch holds a protected node —
           only possible on degenerate overlays): the spec degrades to
           no cut rather than stranding the protected side. *)
  end;
  t

let partitioned t = t.cut_active

let same_side t u v = (not t.cut_active) || t.side.(u) = t.side.(v)

let cut_size t =
  Array.fold_left (fun acc minority -> if minority then acc + 1 else acc) 0 t.side

let heal_partition t = t.cut_active <- false

let note_wave_start t =
  if t.cut_active then begin
    t.waves_seen <- t.waves_seen + 1;
    match t.spec.heal_after with
    | Some k when t.waves_seen > k -> t.cut_active <- false
    | _ -> ()
  end

let quiesce t = t.quiesced <- true

let quiesced t = t.quiesced

let knows_dead t ~at ~dead = Hashtbl.mem t.certs (at, dead)

let learn_dead t ~at ~dead =
  if Hashtbl.mem t.certs (at, dead) then false
  else begin
    Hashtbl.replace t.certs (at, dead) ();
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.learned at) in
    Hashtbl.replace t.learned at (dead :: prev);
    true
  end

let known_dead_of t at =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.learned at))

let revive t v =
  if t.dead.(v) then begin
    t.dead.(v) <- false;
    t.stats.recoveries <- t.stats.recoveries + 1;
    Ri_obs.Metrics.incr m_recoveries;
    (* The node is demonstrably alive again: revoke every death
       certificate about it, or reconciliation gossip would keep
       deleting its freshly announced rows. *)
    let stale =
      Hashtbl.fold
        (fun ((_, dead) as k) () acc -> if dead = v then k :: acc else acc)
        t.certs []
    in
    List.iter (Hashtbl.remove t.certs) stale;
    Hashtbl.filter_map_inplace
      (fun _ deads -> Some (List.filter (fun d -> d <> v) deads))
      t.learned
  end

let dirty t v = t.dirty.(v)

let set_dirty t v = t.dirty.(v) <- true

let clear_dirty t v = t.dirty.(v) <- false

let drop_update t =
  (not t.quiesced) && Prng.bernoulli t.update_rng t.spec.update_loss

let delay_update t =
  (not t.quiesced) && Prng.bernoulli t.update_rng t.spec.update_delay

let flap t = (not t.quiesced) && Prng.bernoulli t.query_rng t.spec.link_flap

let shuffle t arr = Prng.shuffle_in_place t.fallback_rng arr

let drift_int t bound = Prng.int t.drift_rng bound

let note_missed t ~at ~peer =
  let k = (at, peer) in
  match Hashtbl.find_opt t.missed k with
  | None ->
      t.gaps.(at) <- t.gaps.(at) + 1;
      Hashtbl.replace t.missed k 1
  | Some n -> Hashtbl.replace t.missed k (n + 1)

let clear_missed t ~at ~peer =
  if Hashtbl.mem t.missed (at, peer) then begin
    Hashtbl.remove t.missed (at, peer);
    t.gaps.(at) <- t.gaps.(at) - 1
  end

(* Is [at]'s export toward [toward] built from suspect inputs?  A gap on
   the (at, toward) row itself does not count: that row is excluded from
   the aggregate sent to [toward]. *)
let tainted t ~at ~toward =
  t.gaps.(at) > if Hashtbl.mem t.missed (at, toward) then 1 else 0

let missed t ~at ~peer =
  Option.value ~default:0 (Hashtbl.find_opt t.missed (at, peer))

let fallback t = t.spec.stale_after <> None

let stale t ~at ~peer =
  match t.spec.stale_after with
  | None -> false
  | Some threshold -> missed t ~at ~peer > threshold

let retries t = t.spec.retries

let backoff_ticks t ~attempt =
  if t.spec.backoff = 0 then 0
  else
    (* Full jitter: uniform in [0, min (cap, base * 2^attempt)].  The
       draw comes from the plan's dedicated retry stream so traces stay
       deterministic and no other stream shifts. *)
    let bound = min t.retry_cap (t.spec.backoff * (1 lsl min attempt 20)) in
    Prng.int t.retry_rng (bound + 1)

let stats t = t.stats

let note_drop t ~dead =
  if dead then begin
    t.stats.update_dead <- t.stats.update_dead + 1;
    Ri_obs.Metrics.incr m_dead_updates
  end
  else begin
    t.stats.update_drops <- t.stats.update_drops + 1;
    Ri_obs.Metrics.incr m_drops
  end

let note_delay t =
  t.stats.update_delays <- t.stats.update_delays + 1;
  Ri_obs.Metrics.incr m_delays

let note_partition_drop t =
  t.stats.partition_drops <- t.stats.partition_drops + 1;
  Ri_obs.Metrics.incr m_partition_drops

let note_timeout t ~attempt =
  t.stats.timeouts <- t.stats.timeouts + 1;
  t.stats.backoff_total <- t.stats.backoff_total + backoff_ticks t ~attempt;
  Ri_obs.Metrics.incr m_timeouts

let note_retry t =
  t.stats.retries_used <- t.stats.retries_used + 1;
  Ri_obs.Metrics.incr m_retries

let note_fallbacks t n =
  if n > 0 then begin
    t.stats.fallbacks <- t.stats.fallbacks + n;
    Ri_obs.Metrics.add m_fallbacks n
  end

let note_repair t =
  t.stats.repairs <- t.stats.repairs + 1;
  Ri_obs.Metrics.incr m_repairs

let note_budget_stop t =
  t.stats.budget_stops <- t.stats.budget_stops + 1;
  Ri_obs.Metrics.incr m_budget_stops
