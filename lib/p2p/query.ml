open Ri_util
open Ri_core

type forwarding = Ri_guided | Random_walk

type outcome = {
  found : int;
  satisfied : bool;
  nodes_visited : int;
  counters : Message.counters;
}

let messages o = Message.query_messages o.counters

type event =
  | Forwarded of { sender : int; receiver : int }
  | Returned of { sender : int; receiver : int }
  | Results of { at : int; count : int }
  | Timed_out of { sender : int; receiver : int; attempt : int }
  | Gave_up of { sender : int; receiver : int }
  | Reconciled of { a : int; b : int }

(* Aggregate per-query message counts land in the metrics registry once
   per query, from the outcome counters — never per message. *)
let m_queries mode =
  Ri_obs.Metrics.counter ~help:"Queries executed." ~labels:[ ("mode", mode) ]
    "ri_queries_total"

let m_ri_guided = m_queries "ri_guided"

let m_random_walk = m_queries "random_walk"

let m_parallel = m_queries "parallel"

let m_flood = m_queries "flood"

let m_forwards =
  Ri_obs.Metrics.counter ~help:"Query messages forwarded."
    "ri_query_forwards_total"

let m_returns =
  Ri_obs.Metrics.counter ~help:"Query messages returned (backtracks)."
    "ri_query_returns_total"

let m_results =
  Ri_obs.Metrics.counter ~help:"Result-pointer messages sent."
    "ri_query_results_total"

let m_satisfied =
  Ri_obs.Metrics.counter ~help:"Queries that met their stop condition."
    "ri_query_satisfied_total"

(* Distribution of per-query cost: the counters feed the totals above
   and, once per query, these sketches — which is where p95/p99 of
   messages and hops come from. *)
let s_messages =
  Ri_obs.Sketch.series ~help:"Messages per query (quantile sketch)."
    "ri_query_messages"

let s_hops =
  Ri_obs.Sketch.series ~help:"Forward hops per query (quantile sketch)."
    "ri_query_hops"

let record_outcome kind o =
  if Ri_obs.Metrics.enabled () then begin
    Ri_obs.Metrics.incr kind;
    Ri_obs.Metrics.add m_forwards o.counters.Message.query_forwards;
    Ri_obs.Metrics.add m_returns o.counters.Message.query_returns;
    Ri_obs.Metrics.add m_results o.counters.Message.result_messages;
    if o.satisfied then Ri_obs.Metrics.incr m_satisfied;
    Ri_obs.Sketch.observe s_messages (float_of_int (messages o));
    Ri_obs.Sketch.observe s_hops (float_of_int o.counters.Message.query_forwards)
  end;
  o

type frame = { node : int; from : int; mutable pending : int list }

(* The fault-free depth-first walk, reformulated as a message-driven
   state machine: exactly one message is in flight per query — the
   forward the walk just sent, or the return bouncing it back — so
   delivering that message yields at most one successor.  [run] drains
   the machine inline (the zero-latency schedule, reproducing the
   synchronous walk bit-for-bit: one token means delivery order cannot
   differ); the event engine instead routes each [send] through mailbox
   queueing and link latency, interleaving thousands of walks.  Faulty
   queries keep the synchronous loop in [run_planned] — retries and
   anti-entropy make their hops multi-message affairs. *)
module Step = struct
  type kind = Forward | Return

  type send = { src : int; dst : int; kind : kind }

  type t = {
    net : Network.t;
    query : Ri_content.Workload.query;
    forwarding : forwarding;
    rng : Prng.t;
    on_event : event -> unit;
    decide : Ri_obs.Decision.sink;
    live : bool;
    scheme_name : string;
    projected : int list;
    topics : Ri_content.Topic.id list;
    counters : Message.counters;
    visited : bool array;
    sent : (int * int, int) Hashtbl.t;
    max_sends : int;
    ranks : (int, int) Hashtbl.t;
    mutable stack : frame list;
    mutable remaining : int;
    mutable found : int;
    mutable nodes_visited : int;
  }

  let sends t u v = Option.value ~default:0 (Hashtbl.find_opt t.sent (u, v))

  let process_visit t u =
    if not t.visited.(u) then begin
      t.visited.(u) <- true;
      t.nodes_visited <- t.nodes_visited + 1;
      let local = Network.count_matching t.net u t.topics in
      if local > 0 then begin
        t.counters.Message.result_messages <-
          t.counters.Message.result_messages + 1;
        t.on_event (Results { at = u; count = local });
        t.found <- t.found + local;
        t.remaining <- t.remaining - local
      end
    end

  let order_neighbors t u ~from =
    let is_candidate v = v <> from && sends t u v < t.max_sends in
    match t.forwarding with
    | Random_walk ->
        let nbrs = Network.neighbors t.net u in
        let count = ref 0 in
        Array.iter (fun v -> if is_candidate v then incr count) nbrs;
        let cands = Array.make !count 0 in
        let i = ref 0 in
        Array.iter
          (fun v ->
            if is_candidate v then begin
              cands.(!i) <- v;
              incr i
            end)
          nbrs;
        Prng.shuffle_in_place t.rng cands;
        Array.to_list cands
    | Ri_guided ->
        Scheme.rank_peers (Network.ri t.net u) ~query:t.projected
          ~keep:is_candidate

  (* Fault-free oracle: matching documents reachable through candidate
     [v] with the deciding node [u] removed. *)
  let truth_of t u v =
    let n = Network.size t.net in
    let seen = Bytes.make n '\000' in
    Bytes.set seen u '\001';
    Bytes.set seen v '\001';
    let q = Queue.create () in
    Queue.add v q;
    let total = ref 0 in
    while not (Queue.is_empty q) do
      let x = Queue.pop q in
      total := !total + Network.count_matching t.net x t.topics;
      Array.iter
        (fun y ->
          if Bytes.get seen y = '\000' then begin
            Bytes.set seen y '\001';
            Queue.add y q
          end)
        (Network.neighbors t.net x)
    done;
    !total

  let emit_decide t u ~from order =
    let ri_goodness v =
      match t.forwarding with
      | Ri_guided ->
          Scheme.goodness (Network.ri t.net u) ~peer:v ~query:t.projected
      | Random_walk -> 0.
    in
    let wave_of v =
      if Network.has_ri t.net then
        Scheme.row_stamp (Network.ri t.net u) ~peer:v
      else 0
    in
    let cands =
      List.map
        (fun v ->
          {
            Ri_obs.Decision.peer = v;
            goodness = ri_goodness v;
            truth = truth_of t u v;
            stale = false;
            wave = wave_of v;
          })
        order
    in
    let oracle_best, oracle_rank, regret =
      match cands with
      | [] -> (-1, 0, 0)
      | first :: _ ->
          let _, bp, br, bt =
            List.fold_left
              (fun (i, bp, br, bt) (c : Ri_obs.Decision.candidate) ->
                if c.truth > bt || (c.truth = bt && c.peer < bp) then
                  (i + 1, c.peer, i, c.truth)
                else (i + 1, bp, br, bt))
              (0, -1, 0, min_int) cands
          in
          (bp, br, bt - first.Ri_obs.Decision.truth)
    in
    Ri_obs.Decision.emit t.decide
      (Decide
         {
           node = u;
           from;
           scheme = t.scheme_name;
           candidates = cands;
           oracle_best;
           oracle_rank;
           regret;
           stale_demoted = 0;
         })

  let ordered t u ~from =
    let order = order_neighbors t u ~from in
    if t.live then emit_decide t u ~from order;
    order

  let next_rank t u =
    let r = try Hashtbl.find t.ranks u with Not_found -> 0 in
    Hashtbl.replace t.ranks u (r + 1);
    r

  (* Produce the walk's next outgoing message, doing the send-side
     bookkeeping (link counts, counters, events, provenance) exactly
     where the synchronous loop does it.  [None] means the query is
     over: satisfied, or the origin's frame is exhausted. *)
  let rec advance t =
    if t.remaining <= 0 then None
    else
      match t.stack with
      | [] -> None
      | top :: rest -> (
          match top.pending with
          | [] ->
              (* Exhausted: return the query to whoever sent it. *)
              t.stack <- rest;
              if top.from >= 0 then begin
                t.counters.Message.query_returns <-
                  t.counters.Message.query_returns + 1;
                t.on_event (Returned { sender = top.node; receiver = top.from });
                if t.live then
                  Ri_obs.Decision.emit t.decide
                    (Backtrack { node = top.node; target = top.from });
                Some { src = top.node; dst = top.from; kind = Return }
              end
              else advance t
          | v :: pending ->
              top.pending <- pending;
              Hashtbl.replace t.sent (top.node, v) (sends t top.node v + 1);
              t.counters.Message.query_forwards <-
                t.counters.Message.query_forwards + 1;
              t.on_event (Forwarded { sender = top.node; receiver = v });
              (if t.live then
                 Ri_obs.Decision.emit t.decide
                   (Follow
                      { node = top.node; target = v; rank = next_rank t top.node }));
              Some { src = top.node; dst = v; kind = Forward })

  let deliver t { src; dst; kind } =
    match kind with
    | Return ->
        (* The child frame was popped when this return was sent; the
           receiver's own frame is on top again and resumes. *)
        advance t
    | Forward ->
        if Network.cycle_policy t.net = Network.Detect_recover && t.visited.(dst)
        then begin
          (* The revisited node detects the duplicate and bounces the
             query straight back. *)
          t.counters.Message.query_returns <-
            t.counters.Message.query_returns + 1;
          t.on_event (Returned { sender = dst; receiver = src });
          if t.live then
            Ri_obs.Decision.emit t.decide (Backtrack { node = dst; target = src });
          Some { src = dst; dst = src; kind = Return }
        end
        else begin
          process_visit t dst;
          if t.remaining > 0 then
            t.stack <-
              { node = dst; from = src; pending = ordered t dst ~from:src }
              :: t.stack;
          advance t
        end

  (* [who] labels validation errors, so [run]'s messages are unchanged
     when it delegates here. *)
  let start_for who ?rng ?(on_event = fun (_ : event) -> ())
      ?(decide = Ri_obs.Decision.null) net ~origin ~query ~forwarding =
    let n = Network.size net in
    if origin < 0 || origin >= n then
      invalid_arg (who ^ ": origin out of range");
    (match forwarding with
    | Ri_guided ->
        if not (Network.has_ri net) then
          invalid_arg (who ^ ": Ri_guided needs a network with routing indices")
    | Random_walk -> ());
    let rng = match rng with Some r -> r | None -> Network.rng net in
    let live = Ri_obs.Decision.is_live decide in
    let scheme_name =
      match forwarding with
      | Random_walk -> "none"
      | Ri_guided -> (
          match Network.scheme net with
          | Some k -> Scheme.kind_name k
          | None -> "none")
    in
    let t =
      {
        net;
        query;
        forwarding;
        rng;
        on_event;
        decide;
        live;
        scheme_name;
        projected = Network.project_query net query.Ri_content.Workload.topics;
        topics = query.Ri_content.Workload.topics;
        counters = Message.create ();
        visited = Array.make n false;
        sent = Hashtbl.create 64;
        max_sends =
          (match Network.cycle_policy net with
          | Network.Detect_recover -> 1
          | Network.No_op -> 2);
        ranks = Hashtbl.create (if live then 32 else 1);
        stack = [];
        remaining = query.Ri_content.Workload.stop;
        found = 0;
        nodes_visited = 0;
      }
    in
    process_visit t origin;
    if t.remaining > 0 then
      t.stack <-
        [ { node = origin; from = -1; pending = ordered t origin ~from:(-1) } ];
    (t, advance t)

  let start ?rng ?on_event ?decide net ~origin ~query ~forwarding =
    start_for "Query.Step.start" ?rng ?on_event ?decide net ~origin ~query
      ~forwarding

  let outcome t =
    {
      found = t.found;
      satisfied = t.found >= t.query.Ri_content.Workload.stop;
      nodes_visited = t.nodes_visited;
      counters = t.counters;
    }

  let finish t =
    (if t.live then
       let reason =
         if t.found >= t.query.Ri_content.Workload.stop then "satisfied"
         else "exhausted"
       in
       Ri_obs.Decision.emit t.decide
         (Stop
            {
              reason;
              found = t.found;
              forwards = t.counters.Message.query_forwards;
              returns = t.counters.Message.query_returns;
              visited = t.nodes_visited;
            }));
    record_outcome
      (match t.forwarding with
      | Ri_guided -> m_ri_guided
      | Random_walk -> m_random_walk)
      (outcome t)
end

let run_planned ?rng ?(on_event = fun (_ : event) -> ())
    ?(decide = Ri_obs.Decision.null) ~plan net ~origin ~query ~forwarding =
  (* The synchronous faulty walk.  [plan] is threaded below as an option
     so the body stays textually the shared original; fault-free
     execution never comes through here (see [run]). *)
  let plan = Some plan in
  let n = Network.size net in
  if origin < 0 || origin >= n then invalid_arg "Query.run: origin out of range";
  (match plan with
  | Some p when Fault.is_dead p origin ->
      invalid_arg "Query.run: origin is crash-stopped"
  | _ -> ());
  (match forwarding with
  | Ri_guided ->
      if not (Network.has_ri net) then
        invalid_arg "Query.run: Ri_guided needs a network with routing indices"
  | Random_walk -> ());
  let rng = match rng with Some r -> r | None -> Network.rng net in
  let projected = Network.project_query net query.Ri_content.Workload.topics in
  let topics = query.Ri_content.Workload.topics in
  let counters = Message.create () in
  let visited = Array.make n false in
  (* Per directed link, how many times this query has crossed it.  With
     detect-and-recover a node remembers the query and resumes its
     neighbor cursor, so each link is used once; with no-op a revisited
     node keeps no query state and re-descends ("extra messages are
     generated when we traverse a cycle more than once", Section 8.2) —
     the second crossing carries the repeat traversal, and the count cap
     keeps the walk finite, standing in for the TTL any deployed system
     imposes. *)
  let max_sends =
    match Network.cycle_policy net with
    | Network.Detect_recover -> 1
    | Network.No_op -> 2
  in
  let sent : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let sends u v = Option.value ~default:0 (Hashtbl.find_opt sent (u, v)) in
  let remaining = ref query.Ri_content.Workload.stop in
  let found = ref 0 in
  let nodes_visited = ref 0 in
  let process_visit u =
    if not visited.(u) then begin
      visited.(u) <- true;
      incr nodes_visited;
      let local = Network.count_matching net u topics in
      if local > 0 then begin
        counters.result_messages <- counters.result_messages + 1;
        on_event (Results { at = u; count = local });
        found := !found + local;
        remaining := !remaining - local
      end
    end
  in
  let order_neighbors u ~from =
    let is_candidate v =
      v <> from && sends u v < max_sends
      && match plan with
         | Some p -> not (Fault.knows_dead p ~at:u ~dead:v)
         | None -> true
    in
    match forwarding with
    | Random_walk ->
        let nbrs = Network.neighbors net u in
        let count = ref 0 in
        Array.iter (fun v -> if is_candidate v then incr count) nbrs;
        let cands = Array.make !count 0 in
        let i = ref 0 in
        Array.iter
          (fun v ->
            if is_candidate v then begin
              cands.(!i) <- v;
              incr i
            end)
          nbrs;
        Prng.shuffle_in_place rng cands;
        Array.to_list cands
    | Ri_guided -> (
        (* Only neighbors the RI knows about are candidates: on a rooted
           construction that is exactly the downstream neighbors, and on
           a converged network every link has a row. *)
        match plan with
        | Some p when Fault.fallback p ->
            (* Graceful degradation: rows with detectable update gaps are
               not trusted — fresh rows rank by goodness as usual, stale
               ones follow in random (No-RI) order.  Demotion alone does
               most of the work: a garbage count can no longer outbid an
               honest one. *)
            let fresh v = not (Fault.stale p ~at:u ~peer:v) in
            let ranked =
              Scheme.rank_peers (Network.ri net u) ~query:projected
                ~keep:(fun v -> is_candidate v && fresh v)
            in
            let stale =
              List.filter
                (fun v -> is_candidate v && not (fresh v))
                (List.sort compare (Scheme.peers (Network.ri net u)))
            in
            if stale = [] then ranked
            else begin
              let arr = Array.of_list stale in
              Fault.shuffle p arr;
              Fault.note_fallbacks p (Array.length arr);
              ranked @ Array.to_list arr
            end
        | _ ->
            Scheme.rank_peers (Network.ri net u) ~query:projected
              ~keep:is_candidate)
  in
  (* Provenance capture.  Everything below [live] runs only when a
     Decision sink is recording — in particular the per-candidate oracle
     BFS, which costs O(edges) per decision and must never touch the
     measured query path. *)
  let live = Ri_obs.Decision.is_live decide in
  let scheme_name =
    match forwarding with
    | Random_walk -> "none"
    | Ri_guided -> (
        match Network.scheme net with
        | Some k -> Scheme.kind_name k
        | None -> "none")
  in
  (* Oracle: matching documents actually reachable through candidate [v]
     when deciding at [u] — BFS over live links with [u] removed (the
     query would arrive via [u], so paths back through it are not [v]'s
     to claim) and crash-stopped nodes impassable. *)
  let truth_of u v =
    match plan with
    | Some p when Fault.is_dead p v || not (Fault.same_side p u v) -> 0
    | _ ->
        let seen = Bytes.make n '\000' in
        Bytes.set seen u '\001';
        Bytes.set seen v '\001';
        let q = Queue.create () in
        Queue.add v q;
        let total = ref 0 in
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          total := !total + Network.count_matching net x topics;
          Array.iter
            (fun y ->
              if Bytes.get seen y = '\000' then begin
                Bytes.set seen y '\001';
                match plan with
                | Some p when Fault.is_dead p y || not (Fault.same_side p x y)
                  ->
                    ()
                | _ -> Queue.add y q
              end)
            (Network.neighbors net x)
        done;
        !total
  in
  let emit_decide u ~from order =
    let ri_goodness v =
      match forwarding with
      | Ri_guided -> Scheme.goodness (Network.ri net u) ~peer:v ~query:projected
      | Random_walk -> 0.
    in
    let stale_of v =
      match plan with Some p -> Fault.stale p ~at:u ~peer:v | None -> false
    in
    let wave_of v =
      if Network.has_ri net then Scheme.row_stamp (Network.ri net u) ~peer:v
      else 0
    in
    let cands =
      List.map
        (fun v ->
          {
            Ri_obs.Decision.peer = v;
            goodness = ri_goodness v;
            truth = truth_of u v;
            stale = stale_of v;
            wave = wave_of v;
          })
        order
    in
    let oracle_best, oracle_rank, regret =
      match cands with
      | [] -> (-1, 0, 0)
      | first :: _ ->
          let _, bp, br, bt =
            List.fold_left
              (fun (i, bp, br, bt) (c : Ri_obs.Decision.candidate) ->
                if c.truth > bt || (c.truth = bt && c.peer < bp) then
                  (i + 1, c.peer, i, c.truth)
                else (i + 1, bp, br, bt))
              (0, -1, 0, min_int) cands
          in
          (bp, br, bt - first.Ri_obs.Decision.truth)
    in
    let stale_demoted =
      match plan with
      | Some p when Fault.fallback p ->
          List.length (List.filter (fun c -> c.Ri_obs.Decision.stale) cands)
      | _ -> 0
    in
    Ri_obs.Decision.emit decide
      (Decide
         {
           node = u;
           from;
           scheme = scheme_name;
           candidates = cands;
           oracle_best;
           oracle_rank;
           regret;
           stale_demoted;
         })
  in
  (* Every frame opens through here so each decision point is recorded
     exactly once, with the candidate list in true forwarding order. *)
  let ordered u ~from =
    let order = order_neighbors u ~from in
    if live then emit_decide u ~from order;
    order
  in
  (* Follow ranks (which candidate in forwarding order a frame tried)
     live in a side table touched only when recording, so the frame
     record — one allocation per visited node — stays at its
     provenance-free size. *)
  let ranks : (int, int) Hashtbl.t = Hashtbl.create (if live then 32 else 1) in
  let next_rank u =
    let r = try Hashtbl.find ranks u with Not_found -> 0 in
    Hashtbl.replace ranks u (r + 1);
    r
  in
  let budget = match plan with Some p -> Fault.query_budget p | None -> max_int in
  let budget_stopped = ref false in
  (* Link pairs already reconciled during this query; anti-entropy runs
     once per link however many times the walk crosses it. *)
  let reconciled : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let stack = ref [] in
  let descend top v =
    if Network.cycle_policy net = Network.Detect_recover && visited.(v) then begin
      (* The revisited node detects the duplicate and bounces the
         query straight back. *)
      counters.query_returns <- counters.query_returns + 1;
      on_event (Returned { sender = v; receiver = top.node });
      if live then
        Ri_obs.Decision.emit decide (Backtrack { node = v; target = top.node })
    end
    else begin
      process_visit v;
      if !remaining > 0 then
        stack :=
          { node = v; from = top.node; pending = ordered v ~from:top.node }
          :: !stack
    end
  in
  process_visit origin;
  (if !remaining > 0 then
     stack := [ { node = origin; from = -1; pending = ordered origin ~from:(-1) } ]);
  while !stack <> [] && !remaining > 0 do
    match !stack with
    | [] -> ()
    | top :: rest -> (
        match top.pending with
        | [] ->
            (* Exhausted: return the query to whoever sent it. *)
            stack := rest;
            if top.from >= 0 then begin
              counters.query_returns <- counters.query_returns + 1;
              on_event (Returned { sender = top.node; receiver = top.from });
              if live then
                Ri_obs.Decision.emit decide
                  (Backtrack { node = top.node; target = top.from })
            end
        | v :: pending -> (
            top.pending <- pending;
            match plan with
            | None ->
                Hashtbl.replace sent (top.node, v) (sends top.node v + 1);
                counters.query_forwards <- counters.query_forwards + 1;
                on_event (Forwarded { sender = top.node; receiver = v });
                (if live then
                   Ri_obs.Decision.emit decide
                     (Follow { node = top.node; target = v; rank = next_rank top.node }));
                descend top v
            | Some p ->
                if counters.query_forwards >= budget then begin
                  if not !budget_stopped then begin
                    budget_stopped := true;
                    Fault.note_budget_stop p
                  end;
                  stack := []
                end
                else begin
                  Hashtbl.replace sent (top.node, v) (sends top.node v + 1);
                  (* Rank is claimed when forwarding begins, so a forward
                     abandoned after its retries still consumes its slot. *)
                  let rank = if live then next_rank top.node else 0 in
                  (* Deliver with bounded retry: a crash-stopped receiver
                     (or a flapping link) times out; each attempt is a
                     real message and each timeout charges deterministic
                     exponential backoff.  [retries] failures in a row
                     and the sender presumes the neighbor dead. *)
                  let delivered = ref false in
                  let attempt = ref 0 in
                  let exhausted = ref false in
                  while (not !delivered) && not !exhausted do
                    counters.query_forwards <- counters.query_forwards + 1;
                    on_event (Forwarded { sender = top.node; receiver = v });
                    let lost =
                      (* A cross-cut forward can never land; like a dead
                         receiver it consumes no flap draw. *)
                      if Fault.is_dead p v || not (Fault.same_side p top.node v)
                      then true
                      else Fault.flap p
                    in
                    if not lost then delivered := true
                    else begin
                      Fault.note_timeout p ~attempt:!attempt;
                      on_event
                        (Timed_out
                           { sender = top.node; receiver = v; attempt = !attempt });
                      if live then
                        Ri_obs.Decision.emit decide
                          (Timeout
                             { node = top.node; target = v; attempt = !attempt });
                      incr attempt;
                      if !attempt > Fault.retries p then exhausted := true
                      else begin
                        Fault.note_retry p;
                        if counters.query_forwards >= budget then
                          exhausted := true
                      end
                    end
                  done;
                  if !delivered then begin
                    (* First contact after fault knowledge accrued on
                       either side: lazy anti-entropy across this link
                       before the query proceeds. *)
                    (if
                       Network.has_ri net
                       && (Fault.dirty p top.node || Fault.dirty p v)
                       && not
                            (Hashtbl.mem reconciled
                               (min top.node v, max top.node v))
                     then begin
                       Hashtbl.replace reconciled
                         (min top.node v, max top.node v)
                         ();
                       Churn.reconcile net top.node v ~plan:p ~counters;
                       on_event (Reconciled { a = top.node; b = v })
                     end);
                    if live then
                      Ri_obs.Decision.emit decide
                        (Follow { node = top.node; target = v; rank });
                    descend top v
                  end
                  else if not (Fault.same_side p top.node v) then begin
                    (* Unreachable across an active cut: the peer is
                       suspected, not buried.  No death certificate —
                       post-heal anti-entropy must find both nodes alive
                       — but the row gets a gap mark so ranking demotes
                       it until the link is reconciled. *)
                    Fault.note_missed p ~at:top.node ~peer:v;
                    on_event (Gave_up { sender = top.node; receiver = v })
                  end
                  else if not (Fault.knows_dead p ~at:top.node ~dead:v) then begin
                    (* Presumed dead (possibly a false positive from
                       flaps): remove the row so the garbage entry stops
                       attracting the walk, and remember the certificate
                       for gossip. *)
                    ignore (Churn.detect_crash net top.node ~dead:v ~plan:p);
                    on_event (Gave_up { sender = top.node; receiver = v })
                  end
                end))
  done;
  (if live then
     let reason =
       if !found >= query.Ri_content.Workload.stop then "satisfied"
       else if !budget_stopped then "budget"
       else "exhausted"
     in
     Ri_obs.Decision.emit decide
       (Stop
          {
            reason;
            found = !found;
            forwards = counters.Message.query_forwards;
            returns = counters.Message.query_returns;
            visited = !nodes_visited;
          }));
  record_outcome
    (match forwarding with Ri_guided -> m_ri_guided | Random_walk -> m_random_walk)
    {
      found = !found;
      satisfied = !found >= query.Ri_content.Workload.stop;
      nodes_visited = !nodes_visited;
      counters;
    }

let run ?rng ?on_event ?decide ?plan net ~origin ~query ~forwarding =
  match plan with
  | Some plan ->
      run_planned ?rng ?on_event ?decide ~plan net ~origin ~query ~forwarding
  | None ->
      (* Fault-free queries execute on the step machine — the same
         machine the event engine drives — drained inline: exactly the
         zero-latency schedule, which replays the synchronous walk
         bit-for-bit (see {!Step}). *)
      let t, first =
        Step.start_for "Query.run" ?rng ?on_event ?decide net ~origin ~query
          ~forwarding
      in
      let next = ref first in
      let continue = ref true in
      while !continue do
        match !next with
        | None -> continue := false
        | Some s -> next := Step.deliver t s
      done;
      Step.finish t

type parallel_outcome = {
  p_found : int;
  p_satisfied : bool;
  p_nodes_visited : int;
  p_rounds : int;
  p_counters : Message.counters;
}

let run_parallel ?(on_event = fun (_ : event) -> ()) net ~origin ~query ~branch =
  let n = Network.size net in
  if origin < 0 || origin >= n then
    invalid_arg "Query.run_parallel: origin out of range";
  if branch <= 0 then invalid_arg "Query.run_parallel: branch must be positive";
  if not (Network.has_ri net) then
    invalid_arg "Query.run_parallel: needs a network with routing indices";
  let projected = Network.project_query net query.Ri_content.Workload.topics in
  let topics = query.Ri_content.Workload.topics in
  let counters = Message.create () in
  let visited = Array.make n false in
  let found = ref 0 in
  let nodes_visited = ref 0 in
  let process u =
    visited.(u) <- true;
    incr nodes_visited;
    let local = Network.count_matching net u topics in
    if local > 0 then begin
      counters.result_messages <- counters.result_messages + 1;
      on_event (Results { at = u; count = local });
      found := !found + local
    end
  in
  process origin;
  let satisfied () = !found >= query.Ri_content.Workload.stop in
  let rec expand frontier rounds =
    if satisfied () || frontier = [] then rounds
    else begin
      (* Each frontier node simultaneously forwards to its [branch] best
         neighbors.  Duplicate deliveries within the round are dropped
         on receipt, like any repeat under detect-and-recover, but the
         messages were sent and count. *)
      let next = ref [] in
      List.iter
        (fun (u, from) ->
          let ranked =
            Scheme.rank_array (Network.ri net u) ~query:projected
              ~keep:(fun p -> p <> from)
          in
          let limit = min branch (Array.length ranked) in
          for i = 0 to limit - 1 do
            let v, _ = ranked.(i) in
            counters.query_forwards <- counters.query_forwards + 1;
            on_event (Forwarded { sender = u; receiver = v });
            if not visited.(v) then begin
              process v;
              next := (v, u) :: !next
            end
          done)
        frontier;
      expand !next (rounds + 1)
    end
  in
  let rounds = expand [ (origin, -1) ] 0 in
  if Ri_obs.Metrics.enabled () then begin
    Ri_obs.Metrics.incr m_parallel;
    Ri_obs.Metrics.add m_forwards counters.Message.query_forwards;
    Ri_obs.Metrics.add m_results counters.Message.result_messages;
    if satisfied () then Ri_obs.Metrics.incr m_satisfied;
    Ri_obs.Sketch.observe s_messages
      (float_of_int (Message.query_messages counters));
    Ri_obs.Sketch.observe s_hops (float_of_int counters.Message.query_forwards)
  end;
  {
    p_found = !found;
    p_satisfied = satisfied ();
    p_nodes_visited = !nodes_visited;
    p_rounds = rounds;
    p_counters = counters;
  }

let flood ?(on_event = fun (_ : event) -> ()) ?plan net ~origin ~query ?ttl () =
  let n = Network.size net in
  if origin < 0 || origin >= n then invalid_arg "Query.flood: origin out of range";
  (match plan with
  | Some p when Fault.is_dead p origin ->
      invalid_arg "Query.flood: origin is crash-stopped"
  | _ -> ());
  let ttl = Option.value ttl ~default:max_int in
  let budget = match plan with Some p -> Fault.query_budget p | None -> max_int in
  let budget_stopped = ref false in
  let topics = query.Ri_content.Workload.topics in
  let counters = Message.create () in
  let processed = Array.make n false in
  let found = ref 0 in
  let nodes_visited = ref 0 in
  let q = Queue.create () in
  let process u ~depth ~from =
    processed.(u) <- true;
    incr nodes_visited;
    let local = Network.count_matching net u topics in
    if local > 0 then begin
      counters.result_messages <- counters.result_messages + 1;
      on_event (Results { at = u; count = local });
      found := !found + local
    end;
    if depth < ttl then
      Array.iter
        (fun v ->
          if v <> from then
            if counters.query_forwards < budget then begin
              counters.query_forwards <- counters.query_forwards + 1;
              on_event (Forwarded { sender = u; receiver = v });
              Queue.add (v, u, depth + 1) q
            end
            else if not !budget_stopped then begin
              budget_stopped := true;
              match plan with
              | Some p -> Fault.note_budget_stop p
              | None -> ()
            end)
        (Network.neighbors net u)
  in
  process origin ~depth:0 ~from:(-1);
  while not (Queue.is_empty q) do
    let v, from, depth = Queue.pop q in
    (* Duplicate deliveries are detected by message id and dropped; the
       message was sent and counted regardless.  A crash-stopped
       receiver swallows the copy silently — flooding is fire-and-forget
       and never retries. *)
    if not processed.(v) then
      match plan with
      | Some p when Fault.is_dead p v || not (Fault.same_side p from v) -> ()
      | _ -> process v ~depth ~from
  done;
  record_outcome m_flood
    {
      found = !found;
      satisfied = !found >= query.Ri_content.Workload.stop;
      nodes_visited = !nodes_visited;
      counters;
    }
