(** The P2P network: overlay links, per-node content, and routing
    indices.

    A network couples a topology with per-node document collections and,
    unless it runs index-free (No-RI), one routing index per node.
    {!create} builds the RIs in their {e converged} state — the fixed
    point the distributed creation algorithm of Figure 6 reaches — using
    an exact two-pass computation on trees and the strategy implied by
    the configured cycle policy on cyclic graphs (see {!cycle_policy}).
    Incremental changes (document updates, joins, leaves) are then
    propagated message-by-message by {!Update} and {!Churn}, which is
    what the paper's update-cost experiments measure.

    Index compression (approximate indices, Section 8.2) is applied at
    the source: local summaries are projected into bucket space before
    they enter any RI, and queries are projected the same way at ranking
    time, so consolidation errors flow through aggregation exactly as in
    a real deployment. *)

(** How cycles in the overlay are handled (Section 7).

    [Detect_recover] — creation and update waves carry the originator's
    message id; a node reached a second time does not forward further.
    Converged RIs are exact over a breadth-first spanning tree, and each
    remaining (cycle-closing) link carries the one export that crossed it
    during the first wave.

    [No_op] — cycles are ignored.  Converged RIs are the fixed point of
    the export equations over {e all} links, found by synchronous
    iteration; the exponential decay (ERI) or the horizon (HRI) makes the
    iteration converge, while a compound RI on a cyclic network has no
    fixed point — "the compound RI algorithms can be trapped in an
    infinite loop" — and is rejected. *)
type cycle_policy = No_op | Detect_recover

(** How the initial RI state is computed.

    [Converged] — the resting state of the distributed Figure 6
    algorithm on a long-running network: the exact fixed point on trees;
    on cyclic overlays, exact over a BFS spanning tree with each
    cycle-closing link carrying the one export that crossed it during
    the first creation wave.  (A strict fixed point over every link need
    not exist on cyclic overlays — an undamped CRI diverges on any
    cycle, and even damped schemes diverge when node degrees exceed the
    assumed fanout — so update waves judge significance against
    sender-carried baselines; see {!Update}.)

    [Rooted origin] — the paper's simulator construction (Appendix A):
    "we use a version of the algorithm that only updates RI entries for
    neighbors downstream from the node picked as the originator of the
    query".  Each node holds rows only for neighbors one BFS level
    further from [origin]; a row aggregates the neighbor's whole
    downstream reach, and a node reachable from two same-level parents
    is counted in both — the overcount the paper attributes to cycles,
    and the reason queries can reach a node twice.  On a tree this
    coincides with [Converged] restricted to the directions a query
    from [origin] can take. *)
type build_mode = Converged | Rooted of int

type content = {
  summary : int -> Ri_content.Summary.t;
      (** raw (uncompressed) local-index summary of a node *)
  count_matching : int -> Ri_content.Topic.id list -> int;
      (** ground-truth matching documents at a node for a query *)
}

val content_of_local_indices : Ri_content.Local_index.t array -> content

val content_of_placement : Ri_content.Placement.t -> content
(** Content view of a bulk placement; [count_matching] answers for the
    placement's query (the one the trial runs) regardless of the topic
    list passed. *)

type t

val create :
  graph:Ri_topology.Graph.t ->
  content:content ->
  ?scheme:Ri_core.Scheme.kind ->
  ?compression:Ri_content.Compression.t ->
  ?cycle_policy:cycle_policy ->
  ?min_update:float ->
  ?update_distance_floor:float ->
  ?perturb:float * Ri_content.Compression.error_kind ->
  ?rng:Ri_util.Prng.t ->
  ?mode:build_mode ->
  ?quant:Ri_core.Rowstore.quant_config ->
  ?pool:Ri_util.Pool.t ->
  unit ->
  t
(** [create ~graph ~content ()] builds the network.  Omitting [scheme]
    yields a No-RI network (random forwarding only).  [min_update]
    (default [0.01], the paper's 1%) bounds both the fixed-point
    iteration and later update propagation.  [perturb] enables the
    Gaussian error model on exports.  [rng] (default a fixed seed) feeds
    perturbation draws.  [mode] defaults to [Converged].
    [update_distance_floor] (default [1.0]) is the absolute Euclidean
    threshold below which a row change is never "different enough" to
    re-propagate (Section 6.2: "for example by requiring that the
    Euclidean distance between the two vectors is greater than a certain
    number"); it keeps geometrically decayed residues from ringing
    around the network.

    [quant] stores RI peer rows in the bit-packed log-quantized format
    ({!Ri_core.Rowstore.quant_config}) — the compressed-RI memory mode;
    figure runs leave it off.  On perturbation-free networks of at
    least [RI_PAR_BUILD_MIN] nodes (default 4096) the RI construction
    runs level-synchronized across [pool] (default the process pool),
    producing bit-for-bit the sequential build's state — see the
    bit-identity notes in the implementation.
    @raise Invalid_argument for CRI + [No_op] on a cyclic graph in
    [Converged] mode, or an out-of-range [Rooted] origin. *)

val of_parts :
  adj:int array array ->
  content:content ->
  scheme_kind:Ri_core.Scheme.kind option ->
  compression:Ri_content.Compression.t ->
  cycle_policy:cycle_policy ->
  min_update:float ->
  update_distance_floor:float ->
  rng:Ri_util.Prng.t ->
  ris:Ri_core.Scheme.t array ->
  locals:Ri_content.Summary.t array ->
  converged_iterations:int ->
  next_wave:int ->
  unit ->
  t
(** Adopt pre-built state wholesale — the snapshot loader's constructor,
    skipping every build pass.  The arrays are owned by the network
    afterwards.  The result never perturbs (a perturbation model's rng
    position is state a snapshot does not capture).
    @raise Invalid_argument on per-node array length mismatches. *)

val copy : t -> t
(** An independent clone: adjacency rows, routing indices and projected
    locals are deep-copied (flat-store blits plus structural hash-table
    copies, so iteration order — and with it every figure — is
    bit-for-bit preserved); content closures and configuration are
    shared.  Used by the setup cache to stamp out per-trial networks
    from one converged template at a fraction of a rebuild's cost.
    Only valid without a perturbation model: a perturbing network draws
    from its PRNG, which the clone shares. *)

val storage_words : t -> int
(** Approximate resident size in words (adjacency + RI stores +
    locals) — the setup cache's memory-budget accounting unit. *)

(** {2 Structure} *)

val size : t -> int

val neighbors : t -> int -> int array

val degree : t -> int -> int

val has_link : t -> int -> int -> bool

val scheme : t -> Ri_core.Scheme.kind option

val cycle_policy : t -> cycle_policy

val min_update : t -> float

val update_distance_floor : t -> float

val ri : t -> int -> Ri_core.Scheme.t
(** The node's routing index.  @raise Invalid_argument on a No-RI
    network. *)

val has_ri : t -> bool

(** {2 Content access} *)

val local_summary : t -> int -> Ri_content.Summary.t
(** The node's {e projected} (bucket-space) local summary as currently
    known to the RI layer. *)

val raw_local_summary : t -> int -> Ri_content.Summary.t
(** The node's uncompressed summary, straight from the content
    provider. *)

val count_matching : t -> int -> Ri_content.Topic.id list -> int

val project_query : t -> Ri_content.Topic.id list -> int list
(** Translate query topics into the RI layer's (possibly compressed)
    vector space. *)

val refresh_local : t -> int -> unit
(** Re-read the node's content summary (after documents were added or
    removed) into its RI.  Propagation to neighbors is separate — call
    {!Update.propagate}. *)

val set_local_summary : t -> int -> Ri_content.Summary.t -> unit
(** Install a new (uncompressed) local summary for the node, projecting
    it through the configured compression — used when experiments
    synthesise local-index changes without going through the content
    provider.  Propagation is separate, as with {!refresh_local}. *)

val outgoing_exports : t -> int -> (int * Ri_core.Scheme.payload) list
(** The aggregated RIs node [v] would send to each neighbor right now,
    with the Gaussian perturbation applied when configured.  Empty on a
    No-RI network. *)

val outgoing_exports_except :
  t -> int -> except:int list -> (int * Ri_core.Scheme.payload) list
(** {!outgoing_exports} restricted to neighbors not in [except] — the
    wave hot path, which never sends an update back to its sender.
    Without perturbation the excluded exports are never computed;
    with it they are computed and dropped so the perturbation rng
    stream is unchanged.  Bit-identical to filtering
    {!outgoing_exports} either way. *)

val export_to : t -> int -> peer:int -> Ri_core.Scheme.payload
(** One outgoing export, perturbed when configured. *)

(** {2 Topology mutation (churn support)} *)

val add_link : t -> int -> int -> unit
(** Adjacency only; RI bookkeeping is {!Churn.connect}'s job.
    @raise Invalid_argument if the link exists or endpoints are equal. *)

val remove_link : t -> int -> int -> unit
(** @raise Invalid_argument if the link does not exist. *)

(** {2 Diagnostics} *)

val converged_iterations : t -> int
(** Fixed-point sweeps the builder needed (0 for No-RI; 1 means the
    exact tree computation sufficed). *)

val fresh_wave : t -> int
(** Draw the next logical update-wave id (1, 2, ...) for provenance
    lineage: [Update.wave] calls this once per wave and stamps the RI
    rows it rewrites ({!Scheme.stamp_row}).  Per instance — {!copy}
    clones count independently, so per-trial clones on pool workers stay
    deterministic. *)

val rng : t -> Ri_util.Prng.t

val compression : t -> Ri_content.Compression.t
(** The index-compression model summaries are projected through. *)

val perturbed : t -> bool
(** Whether a Gaussian perturbation model is configured — such networks
    cannot be snapshotted or template-cached. *)

val wave_counter : t -> int
(** The last wave id handed out by {!fresh_wave} (0 before any wave) —
    persisted by snapshots so provenance stamps stay meaningful. *)
