(** Strict JSON parsing and printing.

    A minimal RFC 8259 recursive-descent parser for the observability
    plane: the bench regression gate reads [BENCH_results.json], the
    report dashboard reads bench/decision/trace exports, and the test
    suite validates that every emitted trace line is well-formed.
    Strict means strict — no trailing garbage, no bare control
    characters, no NaN/Infinity literals — so a malformed export is a
    test failure, not a silently tolerated quirk. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON document.  The whole input must be consumed
    (trailing whitespace excepted); the error string carries a byte
    offset. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

(** {2 Accessors} — shape-checked projections, [None] on mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] on non-objects. *)

val to_float : t -> float option

val to_int : t -> int option
(** Numbers with an integral value only. *)

val to_string : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option

val to_obj : t -> (string * t) list option

(** {2 Printing} *)

val escape : string -> string
(** JSON string-body escaping, byte-compatible with the trace and
    decision exporters (['"'], ['\\'], newline, and [\uXXXX] for other
    control bytes). *)

val render : t -> string
(** Compact single-line rendering; floats print as [%.9g] (integral
    values as integers), matching the exporters' number format. *)
