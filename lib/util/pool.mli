(** Fixed-size domain pool for embarrassingly parallel index ranges.

    Simulation trials are independently seeded, so whole waves of them
    can run on separate OCaml 5 domains.  A pool owns [jobs - 1] worker
    domains (the submitting domain participates as the [jobs]-th
    worker); a pool created with [jobs = 1] owns no domains at all and
    runs every job inline, which is the sequential path.

    A pool has a single submitter at a time: jobs are not re-entrant,
    and submitting from inside a running job deadlocks.  Item functions
    run concurrently and must not share unsynchronized mutable state. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs - 1] worker domains. *)

val jobs : t -> int
(** Parallel width, including the submitting domain. *)

val iter : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [iter t ~n f] runs [f 0 .. f (n-1)], claiming [chunk]-sized slices
    (default [1]) across the pool's domains.  Returns when all [n]
    items have finished.  On a 1-job pool this is a plain [for] loop,
    raising as soon as [f] does; on a wider pool the first recorded
    exception is re-raised after in-flight items settle, carrying the
    backtrace captured in the domain where it was raised. *)

val map_chunked : ?chunk:int -> t -> n:int -> (int -> 'a) -> 'a array
(** [map_chunked t ~n f] is [[| f 0; ...; f (n-1) |]], computed like
    {!iter}.  Results land at their own index, so the output order is
    deterministic regardless of scheduling. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Submitting to a
    shut-down pool raises [Invalid_argument]. *)

(** Utilization counters, accumulated per submitted wave (a few cheap
    mutations per {!iter} call, so they are always on). *)
type stats = {
  waves : int;  (** jobs submitted, inline runs included *)
  items : int;  (** total indices across all waves *)
  max_wave : int;  (** largest single wave *)
  busy_domains : int;
      (** sum over waves of domains that claimed at least one chunk;
          [busy_domains / waves] is the mean parallel width achieved *)
  submit_wait_s : float;
      (** total seconds the submitter spent blocked on stragglers after
          draining its own share — queue-wait imbalance *)
}

val stats : t -> stats

val reset_stats : t -> unit

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** Create, run, and always shut down (exception-safe). *)

val default_jobs : unit -> int
(** The [RI_JOBS] environment variable when set (min 1), otherwise
    [Domain.recommended_domain_count () - 1], floored at 1.
    [RI_JOBS=1] forces the sequential path everywhere. *)

val global : unit -> t
(** The process-wide pool, created on first use with {!default_jobs}
    and shut down automatically at exit. *)

val set_global_jobs : int -> unit
(** Replace the global pool with one of the given width (shutting down
    the old one).  Used by command-line [--jobs] flags. *)
