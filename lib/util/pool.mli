(** Fixed-size domain pool for embarrassingly parallel index ranges.

    Simulation trials are independently seeded, so whole waves of them
    can run on separate OCaml 5 domains.  A pool owns [jobs - 1] worker
    domains (the submitting domain participates as the [jobs]-th
    worker); a pool created with [jobs = 1] owns no domains at all and
    runs every job inline, which is the sequential path.

    A pool has a single top-level submitter at a time, but submissions
    are re-entrant in one specific way: an item function that itself
    calls {!iter} (intra-trial parallel code running inside a runner
    trial) is detected through a domain-local flag and runs inline,
    sequentially — the exact loop a 1-job pool would run — instead of
    deadlocking on the submitter protocol.  Item functions run
    concurrently and must not share unsynchronized mutable state. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs - 1] worker domains. *)

val jobs : t -> int
(** Parallel width, including the submitting domain. *)

val in_job : unit -> bool
(** Whether the calling domain is currently executing a pool item.  An
    {!iter} from such a context runs inline; callers that restructure
    work for parallelism (batching, sharding) can use this to skip the
    restructuring when it cannot pay off. *)

val iter : ?chunk:int -> ?label:string -> t -> n:int -> (int -> unit) -> unit
(** [iter t ~n f] runs [f 0 .. f (n-1)], claiming [chunk]-sized slices
    (default [1]) across the pool's domains.  Returns when all [n]
    items have finished.  On a 1-job pool — or when called from inside
    a running pool item, see {!in_job} — this is a plain [for] loop,
    raising as soon as [f] does; on a wider pool the first recorded
    exception is re-raised after in-flight items settle, carrying the
    backtrace captured in the domain where it was raised.  [label]
    attributes the wave to a named phase in {!label_stats}. *)

val map_chunked :
  ?chunk:int -> ?label:string -> t -> n:int -> (int -> 'a) -> 'a array
(** [map_chunked t ~n f] is [[| f 0; ...; f (n-1) |]], computed like
    {!iter}.  Results land at their own index, so the output order is
    deterministic regardless of scheduling. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Submitting to a
    shut-down pool raises [Invalid_argument]. *)

(** Utilization counters, accumulated per submitted wave (a few cheap
    mutations per {!iter} call, so they are always on). *)
type stats = {
  waves : int;  (** jobs submitted, inline runs included *)
  items : int;  (** total indices across all waves *)
  max_wave : int;  (** largest single wave *)
  busy_domains : int;
      (** sum over waves of domains that claimed at least one chunk;
          [busy_domains / waves] is the mean parallel width achieved *)
  submit_wait_s : float;
      (** total seconds the submitter spent blocked on stragglers after
          draining its own share — queue-wait imbalance *)
}

val stats : t -> stats

(** Per-phase utilization, keyed by the [label] passed to {!iter} —
    the parallel-efficiency numbers behind the shard gauges in
    [Ri_obs.Metrics].  Unlabeled waves only feed {!stats}. *)
type label_stats = {
  l_waves : int;  (** waves under this label, inline runs included *)
  l_items : int;  (** total shard indices *)
  l_busy : int;  (** sum over waves of domains that claimed a chunk *)
  l_steals : int;
      (** chunks claimed by non-submitting domains — work that actually
          migrated off the submitter *)
  l_idle : int;
      (** sum over waves of domains that never claimed a chunk — the
          imbalance counter: idle capacity while the wave ran *)
  l_inline : int;  (** waves that ran sequentially (nested or 1-job) *)
  l_wait_s : float;  (** submitter straggler wait, as in {!stats} *)
}

val label_stats : t -> (string * label_stats) list
(** Sorted by label name. *)

val reset_stats : t -> unit
(** Clears both the aggregate counters and every label's. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** Create, run, and always shut down (exception-safe). *)

val default_jobs : unit -> int
(** The [RI_JOBS] environment variable when set (min 1), otherwise
    [Domain.recommended_domain_count () - 1], floored at 1.
    [RI_JOBS=1] forces the sequential path everywhere. *)

val global : unit -> t
(** The process-wide pool, created on first use with {!default_jobs}
    and shut down automatically at exit. *)

val set_global_jobs : int -> unit
(** Replace the global pool with one of the given width (shutting down
    the old one).  Used by command-line [--jobs] flags. *)
