let zeros n = Array.make n 0.

let copy = Array.copy

let check_len a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vecf.%s: length mismatch" name)

let add_into ~dst v =
  check_len dst v "add_into";
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. v.(i)
  done

let sub_into ~dst v =
  check_len dst v "sub_into";
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) -. v.(i)
  done

let scale v k = Array.map (fun x -> x *. k) v

let scale_into v k =
  for i = 0 to Array.length v - 1 do
    v.(i) <- v.(i) *. k
  done

let sum = Array.fold_left ( +. ) 0.

let map2 f a b =
  check_len a b "map2";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let euclidean_distance a b =
  check_len a b "euclidean_distance";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let max_rel_diff old_ new_ =
  check_len old_ new_ "max_rel_diff";
  let worst = ref 0. in
  for i = 0 to Array.length old_ - 1 do
    let denom = Float.max (Float.abs old_.(i)) 1. in
    let d = Float.abs (new_.(i) -. old_.(i)) /. denom in
    if d > !worst then worst := d
  done;
  !worst

(* Slice kernels: the arithmetic backbone of the flat structure-of-arrays
   routing-index store, where one backing array holds many logical rows.
   Each kernel touches exactly [len] slots starting at the given
   positions and performs the same per-slot operation as the boxed
   Summary counterpart, so flat and boxed paths stay bit-identical. *)

let check_slice a pos len name =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg (Printf.sprintf "Vecf.%s: slice out of range" name)

let add_slice ~dst ~dst_pos src ~src_pos ~len =
  check_slice dst dst_pos len "add_slice";
  check_slice src src_pos len "add_slice";
  for i = 0 to len - 1 do
    dst.(dst_pos + i) <- dst.(dst_pos + i) +. src.(src_pos + i)
  done

let sub_clamp_slice ~dst ~dst_pos src ~src_pos ~len =
  check_slice dst dst_pos len "sub_clamp_slice";
  check_slice src src_pos len "sub_clamp_slice";
  for i = 0 to len - 1 do
    (* Branch instead of [Float.max 0.]: identical on every finite float
       and on ±0 (both produce +0.), and the branch skips Float.max's
       signbit/nan handling in the hottest kernel. *)
    let diff = dst.(dst_pos + i) -. src.(src_pos + i) in
    dst.(dst_pos + i) <- (if diff > 0. then diff else 0.)
  done

let scale_slice v ~pos ~len k =
  check_slice v pos len "scale_slice";
  for i = pos to pos + len - 1 do
    v.(i) <- v.(i) *. k
  done

let decay_slice ~dst ~dst_pos src ~src_pos ~len ~k =
  check_slice dst dst_pos len "decay_slice";
  check_slice src src_pos len "decay_slice";
  for i = 0 to len - 1 do
    dst.(dst_pos + i) <- dst.(dst_pos + i) +. (src.(src_pos + i) *. k)
  done

let approx_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a
    || (Float.abs (a.(i) -. b.(i)) <= eps && go (i + 1))
  in
  go 0
