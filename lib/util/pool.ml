(* A hand-rolled fixed-size domain pool (Domainslib is not available in
   this tree).  [jobs - 1] worker domains block on a condition variable;
   each submitted job is a counted range [0, n) that workers and the
   submitting domain drain together by claiming [chunk]-sized slices
   from an atomic cursor.  With [jobs = 1] no domains exist and every
   job runs inline on the caller, which keeps the sequential path free
   of synchronization overhead.

   Re-entrancy: a domain that is already draining a job (a runner trial
   executing on a pool worker) may itself call [iter] — the nested call
   detects the situation through a domain-local flag and runs inline,
   sequentially, instead of deadlocking on the single-submitter
   protocol.  This is what lets intra-trial parallel code (RI builds,
   update-wave sharding) be written unconditionally: under a figure run
   it degrades to the exact sequential loop. *)

type job = {
  run : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;  (* first unclaimed index *)
  remaining : int Atomic.t;  (* indices claimed but not yet credited *)
  participants : int Atomic.t;  (* domains that claimed >= 1 chunk *)
  stolen : int Atomic.t;  (* chunks claimed by non-submitting domains *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
      (* first failure, with the trace from the domain where it was
         raised; protected by the pool mutex *)
}

type stats = {
  waves : int;
  items : int;
  max_wave : int;
  busy_domains : int;
  submit_wait_s : float;
}

type label_stats = {
  l_waves : int;
  l_items : int;
  l_busy : int;
  l_steals : int;
  l_idle : int;
  l_inline : int;
  l_wait_s : float;
}

(* Utilization accounting is a few mutations per submitted wave, not per
   item, so it stays on unconditionally. *)
type stats_acc = {
  mutable s_waves : int;
  mutable s_items : int;
  mutable s_max_wave : int;
  mutable s_busy : int;
  mutable s_wait : float;
}

type label_acc = {
  mutable a_waves : int;
  mutable a_items : int;
  mutable a_busy : int;
  mutable a_steals : int;
  mutable a_idle : int;
  mutable a_inline : int;
  mutable a_wait : float;
}

type t = {
  jobs : int;
  m : Mutex.t;
  has_work : Condition.t;
  finished : Condition.t;
  mutable job : job option;
  mutable gen : int;  (* bumped once per submitted job *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  acc : stats_acc;  (* protected by [m] *)
  labels : (string, label_acc) Hashtbl.t;  (* protected by [m] *)
}

let jobs t = t.jobs

(* Domain-local "currently draining a job" flag.  Set while [execute]
   runs item functions, checked by [iter]: a nested submission would
   block forever (the outer job's range can never complete while its
   domain waits on the inner one), so nested calls run inline. *)
let in_job_flag = Domain.DLS.new_key (fun () -> ref false)

let in_job () = !(Domain.DLS.get in_job_flag)

let record_failure t j e bt =
  Mutex.lock t.m;
  if j.failed = None then j.failed <- Some (e, bt);
  Mutex.unlock t.m

(* Drain the current job: claim chunks until the cursor passes [n].
   Whoever credits the last index broadcasts completion.  A failing item
   is recorded but does not abandon the job — the range must be fully
   credited or the submitter would wait forever. *)
let execute ?(submitter = false) t j =
  let claimed_any = ref false in
  let flag = Domain.DLS.get in_job_flag in
  let was = !flag in
  flag := true;
  let rec claim () =
    let start = Atomic.fetch_and_add j.next j.chunk in
    if start < j.n then begin
      if not !claimed_any then begin
        claimed_any := true;
        Atomic.incr j.participants
      end;
      if not submitter then Atomic.incr j.stolen;
      let stop = min j.n (start + j.chunk) in
      (try
         for i = start to stop - 1 do
           j.run i
         done
       with e -> record_failure t j e (Printexc.get_raw_backtrace ()));
      let credited = stop - start in
      if Atomic.fetch_and_add j.remaining (-credited) = credited then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end;
      claim ()
    end
  in
  Fun.protect ~finally:(fun () -> flag := was) claim

let rec worker t seen =
  Mutex.lock t.m;
  while (not t.stopped) && (t.gen = seen || t.job = None) do
    Condition.wait t.has_work t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let gen = t.gen in
    let j = Option.get t.job in
    Mutex.unlock t.m;
    execute t j;
    worker t gen
  end

let create ~jobs:requested =
  let jobs = max 1 requested in
  let t =
    {
      jobs;
      m = Mutex.create ();
      has_work = Condition.create ();
      finished = Condition.create ();
      job = None;
      gen = 0;
      stopped = false;
      domains = [];
      acc = { s_waves = 0; s_items = 0; s_max_wave = 0; s_busy = 0; s_wait = 0. };
      labels = Hashtbl.create 8;
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let shutdown t =
  Mutex.lock t.m;
  if t.stopped then Mutex.unlock t.m
  else begin
    t.stopped <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let stats t =
  Mutex.lock t.m;
  let s =
    {
      waves = t.acc.s_waves;
      items = t.acc.s_items;
      max_wave = t.acc.s_max_wave;
      busy_domains = t.acc.s_busy;
      submit_wait_s = t.acc.s_wait;
    }
  in
  Mutex.unlock t.m;
  s

let label_stats t =
  Mutex.lock t.m;
  let out =
    Hashtbl.fold
      (fun name a acc ->
        ( name,
          {
            l_waves = a.a_waves;
            l_items = a.a_items;
            l_busy = a.a_busy;
            l_steals = a.a_steals;
            l_idle = a.a_idle;
            l_inline = a.a_inline;
            l_wait_s = a.a_wait;
          } )
        :: acc)
      t.labels []
  in
  Mutex.unlock t.m;
  List.sort (fun (a, _) (b, _) -> String.compare a b) out

let reset_stats t =
  Mutex.lock t.m;
  t.acc.s_waves <- 0;
  t.acc.s_items <- 0;
  t.acc.s_max_wave <- 0;
  t.acc.s_busy <- 0;
  t.acc.s_wait <- 0.;
  Hashtbl.reset t.labels;
  Mutex.unlock t.m

(* Callers hold no lock; the label table is touched under [m] only. *)
let label_acc_locked t name =
  match Hashtbl.find_opt t.labels name with
  | Some a -> a
  | None ->
      let a =
        {
          a_waves = 0;
          a_items = 0;
          a_busy = 0;
          a_steals = 0;
          a_idle = 0;
          a_inline = 0;
          a_wait = 0.;
        }
      in
      Hashtbl.add t.labels name a;
      a

let note_wave ?label t ~n ~busy ~steals ~inline ~wait =
  Mutex.lock t.m;
  t.acc.s_waves <- t.acc.s_waves + 1;
  t.acc.s_items <- t.acc.s_items + n;
  if n > t.acc.s_max_wave then t.acc.s_max_wave <- n;
  t.acc.s_busy <- t.acc.s_busy + busy;
  t.acc.s_wait <- t.acc.s_wait +. wait;
  (match label with
  | None -> ()
  | Some name ->
      let a = label_acc_locked t name in
      a.a_waves <- a.a_waves + 1;
      a.a_items <- a.a_items + n;
      a.a_busy <- a.a_busy + busy;
      a.a_steals <- a.a_steals + steals;
      a.a_idle <- a.a_idle + max 0 (t.jobs - busy);
      if inline then a.a_inline <- a.a_inline + 1;
      a.a_wait <- a.a_wait +. wait);
  Mutex.unlock t.m

let iter ?chunk ?label t ~n f =
  if n < 0 then invalid_arg "Pool.iter: negative n";
  if t.stopped then invalid_arg "Pool.iter: pool is shut down";
  let chunk = max 1 (Option.value chunk ~default:1) in
  if n > 0 then
    if t.jobs = 1 || n = 1 || in_job () then begin
      for i = 0 to n - 1 do
        f i
      done;
      note_wave ?label t ~n ~busy:1 ~steals:0 ~inline:true ~wait:0.
    end
    else begin
      let j =
        {
          run = f;
          n;
          chunk;
          next = Atomic.make 0;
          remaining = Atomic.make n;
          participants = Atomic.make 0;
          stolen = Atomic.make 0;
          failed = None;
        }
      in
      Mutex.lock t.m;
      t.job <- Some j;
      t.gen <- t.gen + 1;
      Condition.broadcast t.has_work;
      Mutex.unlock t.m;
      execute ~submitter:true t j;
      (* Whatever the submitter now spends under [finished] is straggler
         wait: its own share of the range is already drained. *)
      let t0 = Unix.gettimeofday () in
      Mutex.lock t.m;
      while Atomic.get j.remaining > 0 do
        Condition.wait t.finished t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      note_wave ?label t ~n ~busy:(Atomic.get j.participants)
        ~steals:(Atomic.get j.stolen) ~inline:false
        ~wait:(Unix.gettimeofday () -. t0);
      (* Re-raise on the submitter with the worker's own backtrace — a
         bare [raise] here would point every pool failure at this line
         instead of the item that actually blew up. *)
      match j.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_chunked ?chunk ?label t ~n f =
  if n < 0 then invalid_arg "Pool.map_chunked: negative n";
  let out = Array.make n None in
  iter ?chunk ?label t ~n (fun i -> out.(i) <- Some (f i));
  Array.map (function Some v -> v | None -> assert false) out

let default_jobs () =
  Env.int ~min:1 "RI_JOBS" (max 1 (Domain.recommended_domain_count () - 1))

let global_pool = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
      let p = create ~jobs:(default_jobs ()) in
      global_pool := Some p;
      p

(* Resizing keeps the accumulated utilization counters: a run that
   switches widths mid-flight (the scale sweep's 1-core comparison
   builds) still reports every phase it executed, not just the phases
   that ran after the last switch. *)
let set_global_jobs jobs =
  let prev = !global_pool in
  (match prev with Some p -> shutdown p | None -> ());
  let p = create ~jobs in
  (match prev with
  | Some old ->
      p.acc.s_waves <- old.acc.s_waves;
      p.acc.s_items <- old.acc.s_items;
      p.acc.s_max_wave <- old.acc.s_max_wave;
      p.acc.s_busy <- old.acc.s_busy;
      p.acc.s_wait <- old.acc.s_wait;
      (* The old pool is shut down; adopting its accumulator records is
         race-free. *)
      Hashtbl.iter (fun name a -> Hashtbl.add p.labels name a) old.labels
  | None -> ());
  global_pool := Some p

let with_pool ~jobs f =
  let p = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* Worker domains block forever on [has_work]; without this the process
   would never terminate once the global pool has been forced. *)
let () =
  at_exit (fun () ->
      match !global_pool with Some p -> shutdown p | None -> ())
