(* A hand-rolled fixed-size domain pool (Domainslib is not available in
   this tree).  [jobs - 1] worker domains block on a condition variable;
   each submitted job is a counted range [0, n) that workers and the
   submitting domain drain together by claiming [chunk]-sized slices
   from an atomic cursor.  With [jobs = 1] no domains exist and every
   job runs inline on the caller, which keeps the sequential path free
   of synchronization overhead. *)

type job = {
  run : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;  (* first unclaimed index *)
  remaining : int Atomic.t;  (* indices claimed but not yet credited *)
  participants : int Atomic.t;  (* domains that claimed >= 1 chunk *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
      (* first failure, with the trace from the domain where it was
         raised; protected by the pool mutex *)
}

type stats = {
  waves : int;
  items : int;
  max_wave : int;
  busy_domains : int;
  submit_wait_s : float;
}

(* Utilization accounting is a few mutations per submitted wave, not per
   item, so it stays on unconditionally. *)
type stats_acc = {
  mutable s_waves : int;
  mutable s_items : int;
  mutable s_max_wave : int;
  mutable s_busy : int;
  mutable s_wait : float;
}

type t = {
  jobs : int;
  m : Mutex.t;
  has_work : Condition.t;
  finished : Condition.t;
  mutable job : job option;
  mutable gen : int;  (* bumped once per submitted job *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  acc : stats_acc;  (* protected by [m] *)
}

let jobs t = t.jobs

let record_failure t j e bt =
  Mutex.lock t.m;
  if j.failed = None then j.failed <- Some (e, bt);
  Mutex.unlock t.m

(* Drain the current job: claim chunks until the cursor passes [n].
   Whoever credits the last index broadcasts completion.  A failing item
   is recorded but does not abandon the job — the range must be fully
   credited or the submitter would wait forever. *)
let execute t j =
  let claimed_any = ref false in
  let rec claim () =
    let start = Atomic.fetch_and_add j.next j.chunk in
    if start < j.n then begin
      if not !claimed_any then begin
        claimed_any := true;
        Atomic.incr j.participants
      end;
      let stop = min j.n (start + j.chunk) in
      (try
         for i = start to stop - 1 do
           j.run i
         done
       with e -> record_failure t j e (Printexc.get_raw_backtrace ()));
      let credited = stop - start in
      if Atomic.fetch_and_add j.remaining (-credited) = credited then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end;
      claim ()
    end
  in
  claim ()

let rec worker t seen =
  Mutex.lock t.m;
  while (not t.stopped) && (t.gen = seen || t.job = None) do
    Condition.wait t.has_work t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let gen = t.gen in
    let j = Option.get t.job in
    Mutex.unlock t.m;
    execute t j;
    worker t gen
  end

let create ~jobs:requested =
  let jobs = max 1 requested in
  let t =
    {
      jobs;
      m = Mutex.create ();
      has_work = Condition.create ();
      finished = Condition.create ();
      job = None;
      gen = 0;
      stopped = false;
      domains = [];
      acc = { s_waves = 0; s_items = 0; s_max_wave = 0; s_busy = 0; s_wait = 0. };
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let shutdown t =
  Mutex.lock t.m;
  if t.stopped then Mutex.unlock t.m
  else begin
    t.stopped <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let stats t =
  Mutex.lock t.m;
  let s =
    {
      waves = t.acc.s_waves;
      items = t.acc.s_items;
      max_wave = t.acc.s_max_wave;
      busy_domains = t.acc.s_busy;
      submit_wait_s = t.acc.s_wait;
    }
  in
  Mutex.unlock t.m;
  s

let reset_stats t =
  Mutex.lock t.m;
  t.acc.s_waves <- 0;
  t.acc.s_items <- 0;
  t.acc.s_max_wave <- 0;
  t.acc.s_busy <- 0;
  t.acc.s_wait <- 0.;
  Mutex.unlock t.m

let note_wave t ~n ~busy ~wait =
  Mutex.lock t.m;
  t.acc.s_waves <- t.acc.s_waves + 1;
  t.acc.s_items <- t.acc.s_items + n;
  if n > t.acc.s_max_wave then t.acc.s_max_wave <- n;
  t.acc.s_busy <- t.acc.s_busy + busy;
  t.acc.s_wait <- t.acc.s_wait +. wait;
  Mutex.unlock t.m

let iter ?(chunk = 1) t ~n f =
  if n < 0 then invalid_arg "Pool.iter: negative n";
  if t.stopped then invalid_arg "Pool.iter: pool is shut down";
  let chunk = max 1 chunk in
  if n > 0 then
    if t.jobs = 1 || n = 1 then begin
      for i = 0 to n - 1 do
        f i
      done;
      note_wave t ~n ~busy:1 ~wait:0.
    end
    else begin
      let j =
        {
          run = f;
          n;
          chunk;
          next = Atomic.make 0;
          remaining = Atomic.make n;
          participants = Atomic.make 0;
          failed = None;
        }
      in
      Mutex.lock t.m;
      t.job <- Some j;
      t.gen <- t.gen + 1;
      Condition.broadcast t.has_work;
      Mutex.unlock t.m;
      execute t j;
      (* Whatever the submitter now spends under [finished] is straggler
         wait: its own share of the range is already drained. *)
      let t0 = Unix.gettimeofday () in
      Mutex.lock t.m;
      while Atomic.get j.remaining > 0 do
        Condition.wait t.finished t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      note_wave t ~n ~busy:(Atomic.get j.participants)
        ~wait:(Unix.gettimeofday () -. t0);
      (* Re-raise on the submitter with the worker's own backtrace — a
         bare [raise] here would point every pool failure at this line
         instead of the item that actually blew up. *)
      match j.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_chunked ?chunk t ~n f =
  if n < 0 then invalid_arg "Pool.map_chunked: negative n";
  let out = Array.make n None in
  iter ?chunk t ~n (fun i -> out.(i) <- Some (f i));
  Array.map (function Some v -> v | None -> assert false) out

let default_jobs () =
  Env.int ~min:1 "RI_JOBS" (max 1 (Domain.recommended_domain_count () - 1))

let global_pool = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
      let p = create ~jobs:(default_jobs ()) in
      global_pool := Some p;
      p

let set_global_jobs jobs =
  (match !global_pool with Some p -> shutdown p | None -> ());
  global_pool := Some (create ~jobs)

let with_pool ~jobs f =
  let p = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* Worker domains block forever on [has_work]; without this the process
   would never terminate once the global pool has been forced. *)
let () =
  at_exit (fun () ->
      match !global_pool with Some p -> shutdown p | None -> ())
