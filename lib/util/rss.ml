(* Resident-set sampling for the scale experiment: GC stats only see the
   OCaml heap, while mmapped snapshot sections and malloc'd bigarrays
   live outside it.  On Linux, /proc/self/statm column 2 is the resident
   page count and /proc/self/status VmHWM is the lifetime peak; both
   reads are a handful of syscalls.  Elsewhere both probes return [None]
   and callers fall back to GC numbers. *)

let page_bytes =
  (* getpagesize(2) without the C stub: the kernel's page size is 4096
     on every platform this tree targets; statm is Linux-only anyway. *)
  4096.

(* procfs files report length 0, so read until EOF with a hard cap
   rather than trusting [in_channel_length]. *)
let read_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let buf = Buffer.create 256 in
        let chunk = Bytes.create 4096 in
        let rec go () =
          if Buffer.length buf < 65536 then begin
            let k = input ic chunk 0 (Bytes.length chunk) in
            if k > 0 then begin
              Buffer.add_subbytes buf chunk 0 k;
              go ()
            end
          end
        in
        go ();
        Some (Buffer.contents buf))
  with _ -> None

let resident_mb () =
  match read_file "/proc/self/statm" with
  | None -> None
  | Some s -> (
      match String.split_on_char ' ' (String.trim s) with
      | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages when pages >= 0 ->
              Some (float_of_int pages *. page_bytes /. 1e6)
          | _ -> None)
      | _ -> None)

(* "VmHWM:    123456 kB" somewhere in /proc/self/status. *)
let peak_mb () =
  match read_file "/proc/self/status" with
  | None -> None
  | Some s ->
      String.split_on_char '\n' s
      |> List.find_map (fun line ->
             match String.index_opt line ':' with
             | Some i when String.sub line 0 i = "VmHWM" ->
                 let rest = String.sub line (i + 1) (String.length line - i - 1) in
                 (* The value is tab/space padded: "VmHWM:\t  123 kB". *)
                 let fields =
                   String.split_on_char ' ' rest
                   |> List.concat_map (String.split_on_char '\t')
                   |> List.map String.trim
                   |> List.filter (fun f -> f <> "" && f <> "kB")
                 in
                 (match fields with
                 | kb :: _ -> (
                     match int_of_string_opt (String.trim kb) with
                     | Some v when v >= 0 -> Some (float_of_int v /. 1e3)
                     | _ -> None)
                 | [] -> None)
             | _ -> None)
