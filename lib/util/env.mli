(** Environment-variable knobs, parsed one way everywhere.

    The simulator exposes a handful of tuning variables ([RI_NODES],
    [RI_TRIALS], [RI_JOBS], [RI_OBS], ...); every consumer used to
    hand-roll its own parser.  These helpers centralize the policy: an
    unset value falls back to the default silently; a malformed or
    out-of-range value also falls back, but prints one warning per
    variable on stderr, so a typo degrades to the documented behavior
    instead of crashing a long batch run — or being silently ignored. *)

val int : ?min:int -> ?max:int -> string -> int -> int
(** [int name default] is the value of environment variable [name]
    parsed as an integer, or [default] when unset, unparsable, or
    outside [[min, max]] (defaults [1] and [max_int] — most knobs are
    positive counts).  Out-of-range and unparsable values warn once. *)

val float : ?min:float -> ?max:float -> string -> float -> float
(** [float name default], same policy; the range defaults to
    [[0., infinity]]. *)

val check_float :
  ?min:float -> ?max:float -> what:string -> float -> (float, string) result
(** The range check behind {!float}, exposed for strict consumers: [Ok]
    the value when it lies in [[min, max]] (same defaults), [Error] a
    human-readable message naming [what] otherwise.  NaN is always an
    error.  Unlike the env-variable readers this never warns or falls
    back — the CLI uses it to refuse out-of-range flag values outright. *)

val bool : string -> bool -> bool
(** [bool name default] accepts [1/true/yes/on] and [0/false/no/off]
    (case-insensitive); anything else warns once and falls back. *)

val string : string -> string -> string
(** [string name default] is the raw value, or [default] when unset. *)
