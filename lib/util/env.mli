(** Environment-variable knobs, parsed one way everywhere.

    The simulator exposes a handful of tuning variables ([RI_NODES],
    [RI_TRIALS], [RI_JOBS], [RI_MICRO], ...); every consumer used to
    hand-roll its own parser.  These helpers centralize the policy: an
    unset, unparsable or out-of-range value silently falls back to the
    default, so a typo degrades to the documented behavior instead of
    crashing a long batch run. *)

val int : ?min:int -> string -> int -> int
(** [int name default] is the value of environment variable [name]
    parsed as an integer, or [default] when unset, unparsable, or below
    [min] (default [1] — most knobs are positive counts). *)

val float : ?min:float -> string -> float -> float
(** [float name default], same policy; [min] defaults to [0.]. *)

val string : string -> string -> string
(** [string name default] is the raw value, or [default] when unset. *)
