(** Process resident-set size, for memory reporting that sees past the
    OCaml heap (mmapped snapshots, malloc'd bigarrays).

    Linux-only probes over procfs; on other platforms every function
    returns [None] and callers should fall back to [Gc] statistics. *)

val resident_mb : unit -> float option
(** Current resident set in MB ([/proc/self/statm]). *)

val peak_mb : unit -> float option
(** Lifetime peak resident set in MB ([VmHWM] from [/proc/self/status]). *)
