(* Strict recursive-descent JSON parser and printer helpers.

   The toolchain ships no JSON library, and the observability plane both
   emits JSON (traces, decision records, bench results) and consumes it
   (the regression gate, the report dashboard, export-validity tests).
   This parser is deliberately strict — RFC 8259 grammar only, no
   NaN/Infinity literals, no trailing garbage — so a malformed export
   fails a test instead of parsing by accident. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st (Printf.sprintf "expected '%c', found '%c'" c x)
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid \\u escape"

(* Decode a \uXXXX code point to UTF-8 bytes.  Surrogate pairs are kept
   as-is numerically (each half encoded separately) — the traces this
   parser reads never emit them, and strictness about the string grammar
   matters more here than full UTF-16 reassembly. *)
let add_code_point buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = ref 0 in
                for _ = 1 to 4 do
                  match peek st with
                  | None -> fail st "truncated \\u escape"
                  | Some h ->
                      advance st;
                      cp := (!cp * 16) + hex_digit st h
                done;
                add_code_point buf !cp
            | _ -> fail st "invalid escape character");
            go ())
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let digits () =
    let seen = ref false in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some '0' .. '9' ->
          seen := true;
          advance st
      | _ -> continue := false
    done;
    if not !seen then fail st "expected digit"
  in
  if peek st = Some '-' then advance st;
  (match peek st with
  | Some '0' -> advance st
  | Some '1' .. '9' -> digits ()
  | _ -> fail st "expected digit");
  if peek st = Some '.' then begin
    advance st;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st "invalid number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        Arr (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let pair () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let items = ref [ pair () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := pair () :: !items;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !items)
      end
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "parse error at offset %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Json.parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let to_obj = function Obj fields -> Some fields | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

(* Exactly the trace/decision exporters' escaping: only the characters
   JSON requires, with the same \u%04x form for other control bytes, so
   a render/parse round trip through this module is byte-stable against
   their output. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.9g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Arr items -> "[" ^ String.concat "," (List.map render items) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (render v))
             fields)
      ^ "}"
