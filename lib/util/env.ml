let int ?(min = 1) name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= min -> v
      | Some _ | None -> default)

let float ?(min = 0.) name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v >= min -> v
      | Some _ | None -> default)

let string name default =
  match Sys.getenv_opt name with Some s -> s | None -> default
