(* A malformed or out-of-range value falls back to the default (a typo
   must degrade a long batch run, not crash it) but warns on stderr, once
   per variable, so the operator can tell the knob was ignored. *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8

let warn name fmt =
  Printf.ksprintf
    (fun msg ->
      if not (Hashtbl.mem warned name) then begin
        Hashtbl.add warned name ();
        Printf.eprintf "warning: %s=%s; %s\n%!" name
          (match Sys.getenv_opt name with Some s -> Printf.sprintf "%S" s | None -> "")
          msg
      end)
    fmt

(* An empty value is the shell idiom for "unset" (and [putenv] cannot
   remove a variable), so it falls back silently. *)
let lookup name =
  match Sys.getenv_opt name with None | Some "" -> None | Some s -> Some s

let int ?(min = 1) ?(max = max_int) name default =
  match lookup name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= min && v <= max -> v
      | Some _ ->
          warn name "outside [%d, %s]; using default %d" min
            (if max = max_int then "inf" else string_of_int max)
            default;
          default
      | None ->
          warn name "not an integer; using default %d" default;
          default)

(* The one range check behind both policies: the env parser warns and
   falls back on [Error]; strict consumers (CLI flag validation) refuse
   outright.  NaN is rejected explicitly — it fails every comparison,
   so [v >= min] alone would silently admit it nowhere and the message
   would blame the range. *)
let check_float ?(min = 0.) ?(max = infinity) ~what v =
  if Float.is_nan v then Error (Printf.sprintf "%s must be a number, got nan" what)
  else if v >= min && v <= max then Ok v
  else Error (Printf.sprintf "%s must be in [%g, %g], got %g" what min max v)

let float ?(min = 0.) ?(max = infinity) name default =
  match lookup name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v -> (
          match check_float ~min ~max ~what:name v with
          | Ok v -> v
          | Error _ ->
              warn name "outside [%g, %g]; using default %g" min max default;
              default)
      | None ->
          warn name "not a number; using default %g" default;
          default)

let bool name default =
  match lookup name with
  | None -> default
  | Some s -> (
      match String.lowercase_ascii s with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" -> false
      | _ ->
          warn name "not a boolean (use 0/1, true/false, yes/no, on/off); \
                     using default %b" default;
          default)

let string name default =
  match Sys.getenv_opt name with Some s -> s | None -> default
