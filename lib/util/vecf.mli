(** Small dense float-vector helpers.

    Routing-index rows are per-topic document counts; these operations are
    the arithmetic backbone of aggregation ({!add_into}, {!scale}) and of
    the "significant enough to propagate" tests ({!max_rel_diff},
    {!euclidean_distance}) of Sections 4-6 of the paper. *)

val zeros : int -> float array

val copy : float array -> float array

val add_into : dst:float array -> float array -> unit
(** [add_into ~dst v] adds [v] elementwise into [dst].
    @raise Invalid_argument on length mismatch. *)

val sub_into : dst:float array -> float array -> unit

val scale : float array -> float -> float array
(** Fresh vector [v *. k]. *)

val scale_into : float array -> float -> unit

val sum : float array -> float

val map2 : (float -> float -> float) -> float array -> float array -> float array

val euclidean_distance : float array -> float array -> float

val max_rel_diff : float array -> float array -> float
(** [max_rel_diff old new_] is the largest elementwise relative change
    [|new - old| / max(|old|, 1)], the criterion the paper's [minUpdate]
    parameter thresholds ("updates that may change the current index value
    by more than 1%").  The [max(.,1)] floor makes changes to empty
    entries count absolutely, so a count appearing from zero always
    registers. *)

val approx_equal : ?eps:float -> float array -> float array -> bool

(** {2 Slice kernels}

    In-place operations over [len] consecutive slots of a backing array,
    used by the flat structure-of-arrays routing-index store
    ([Ri_core.Rowstore]) where one contiguous float array holds many
    logical rows.  Per-slot arithmetic matches the boxed
    [Summary.add]/[sub]/[scale] operations exactly (including the
    clamp-at-zero subtraction), so flat and boxed code paths produce
    bit-identical results.

    All kernels raise [Invalid_argument] when a slice falls outside its
    array. *)

val add_slice :
  dst:float array -> dst_pos:int -> float array -> src_pos:int -> len:int -> unit
(** [dst.(dst_pos+i) <- dst.(dst_pos+i) +. src.(src_pos+i)] for
    [i < len]. *)

val sub_clamp_slice :
  dst:float array -> dst_pos:int -> float array -> src_pos:int -> len:int -> unit
(** Clamped subtraction, [max 0. (dst - src)] per slot — the paper's
    non-negative-count invariant under float rounding. *)

val scale_slice : float array -> pos:int -> len:int -> float -> unit
(** Multiply [len] slots starting at [pos] by a factor, in place. *)

val decay_slice :
  dst:float array ->
  dst_pos:int ->
  float array ->
  src_pos:int ->
  len:int ->
  k:float ->
  unit
(** [dst += src *. k] per slot — the exponential-RI decay-accumulate
    step fused into one pass. *)
