(** Exponentially aggregated Routing Index (Section 6.2).

    Per neighbor, a single summary whose entries are already discounted
    by the regular-tree cost model: the stored value for topic [T]
    through neighbor [v] is [Σ_j goodness(N[j], T) / F^(j-1)] over every
    hop [j] reachable through [v] — "with the exponential RI we can keep
    information for all nodes accessible from each neighbor", unlike the
    horizon-limited HRI, at the cost of some accuracy.

    Export (update, Section 6.2): "adds up all rows (except the one
    associated with the neighbor to which the update vector is sent),
    multiplies the resulting vector by 1/F, and adds the goodness of the
    summary of its local index". *)

type t

val create :
  ?rows:int ->
  ?quant:Rowstore.quant_config ->
  fanout:float ->
  width:int ->
  local:Ri_content.Summary.t ->
  unit ->
  t
(** [fanout] is the assumed regular-tree fanout [F] (the paper's "decay
    for ERIs", 4 in the base configuration); [rows] pre-sizes the row
    store and [quant] selects the bit-packed quantized cell format (see
    {!Rowstore.create}).
    @raise Invalid_argument unless [fanout > 1], [width > 0] and the
    local summary width matches. *)

val store : t -> Rowstore.t
(** The underlying row store — snapshot persistence reads it raw. *)

val with_store : t -> Rowstore.t -> t
(** The same index over a replacement row store; see {!Cri.with_store}.
    @raise Invalid_argument if the store's stride does not match. *)

val copy : t -> t
(** Independent clone; see {!Cri.copy}. *)

val fanout : t -> float

val width : t -> int

val local : t -> Ri_content.Summary.t

val set_local : t -> Ri_content.Summary.t -> unit

val set_row : t -> peer:int -> Ri_content.Summary.t -> unit

val row : t -> peer:int -> Ri_content.Summary.t option

val remove_row : t -> peer:int -> unit

val peers : t -> int list

val stamp_row : t -> peer:int -> int -> unit
(** Record the logical update-wave id that last wrote the peer's row
    (provenance lineage; see {!Rowstore.set_stamp}).  No-op when
    absent. *)

val row_stamp : t -> peer:int -> int
(** The recorded wave id; [0] for build-time or absent rows. *)

val peer_count : t -> int

val storage_words : t -> int
(** Float slots this index has allocated (local summary plus the flat
    row store's capacity) — the scale experiment's memory metric. *)

val export : t -> exclude:int option -> Ri_content.Summary.t
(** [local + (Σ rows except exclude) / F]. *)

val export_all : t -> (int * Ri_content.Summary.t) list

val export_except : t -> except:int list -> (int * Ri_content.Summary.t) list
(** {!export_all} restricted to peers not in [except] (see
    {!Cri.export_except}). *)

val goodness : t -> peer:int -> query:int list -> float
(** {!Estimator.goodness} applied to the (discounted) row; for a
    single-topic query this is exactly the stored entry, e.g. 16.33 for
    "DB" through X in the paper's Figure 9. *)

val iter_goodness : t -> query:int list -> (int -> float -> unit) -> unit
(** [f peer goodness] for every peer with a row, in unspecified order,
    skipping the per-peer lookup of {!goodness}. *)
