(** Scheme-polymorphic routing-index interface.

    The query-processing and update-propagation algorithms of Section 5
    are identical across the three RI kinds; only the row representation,
    the export (aggregation) rule and the goodness estimator differ.
    This module erases the difference so the P2P layer is written once.

    A {!payload} is what travels in a creation/update message: a plain
    aggregate summary for CRI and ERI, a per-hop vector for HRI. *)

type kind =
  | Cri_kind
  | Hri_kind of { horizon : int; fanout : float }
  | Eri_kind of { fanout : float }
  | Hybrid_kind of { horizon : int; fanout : float }
      (** the hybrid CRI-HRI of Section 6.2: hop-count slots within the
          horizon plus a compound-style aggregate of everything beyond *)

val pp_kind : Format.formatter -> kind -> unit

val kind_name : kind -> string
(** ["CRI"], ["HRI"], ["ERI"] or ["HYB"]. *)

type payload =
  | Vector of Ri_content.Summary.t  (** CRI / ERI export *)
  | Hop_vector of Ri_content.Summary.t array  (** HRI export *)

type t
(** One node's routing index. *)

val create :
  ?rows:int ->
  ?quant:Rowstore.quant_config ->
  kind ->
  width:int ->
  local:Ri_content.Summary.t ->
  t
(** [rows] pre-sizes the per-peer row store — pass the node's overlay
    degree to avoid regrowth copies and slack slots.  [quant] stores
    peer rows in the bit-packed log-quantized cell format (the local
    summary stays exact); see {!Rowstore.quant_config} for the accuracy
    bound. *)

val rowstore : t -> Rowstore.t
(** The underlying flat row store — read raw by snapshot persistence. *)

val with_rowstore : t -> Rowstore.t -> t
(** The same index over a replacement row store (sharing the local
    summary) — how snapshot loading wraps a store rebuilt with
    {!Rowstore.of_loaded}.
    @raise Invalid_argument if the store's stride does not match the
    scheme's row shape. *)

val kind : t -> kind

val width : t -> int

val local : t -> Ri_content.Summary.t

val copy : t -> t
(** An independent clone of the index: the flat row store is duplicated
    with its peer-table iteration order intact ({!Rowstore.copy}), so a
    clone behaves — bit for bit — like the original, while sharing the
    immutable local summary.  This is what lets a cached converged
    network be handed out as cheap per-trial copies. *)

val set_local : t -> Ri_content.Summary.t -> unit

val set_row : t -> peer:int -> payload -> unit
(** @raise Invalid_argument if the payload shape does not match the
    scheme (e.g. a [Hop_vector] handed to a CRI). *)

val row : t -> peer:int -> payload option

val remove_row : t -> peer:int -> unit

val stamp_row : t -> peer:int -> int -> unit
(** Record the logical update-wave id that last wrote the peer's row —
    provenance lineage for the observability plane.  No-op when the peer
    has no row. *)

val row_stamp : t -> peer:int -> int
(** The wave id recorded by {!stamp_row}; [0] for rows untouched since
    network construction or absent peers. *)

val peers : t -> int list

val export : t -> exclude:int option -> payload

val export_all : t -> (int * payload) list
(** One export per known peer, sharing one aggregation pass. *)

val export_except : t -> except:int list -> (int * payload) list
(** {!export_all} restricted to peers not in [except], skipping the
    excluded exports entirely — bit-identical to filtering
    {!export_all}. *)

val goodness : t -> peer:int -> query:int list -> float

val peer_count : t -> int
(** Number of peers with a row, without building the list. *)

val iter_goodness : t -> query:int list -> (int -> float -> unit) -> unit
(** [f peer goodness] for every peer with a row, in unspecified order —
    one pass over the rows, no per-peer lookups. *)

val rank : t -> query:int list -> exclude:int list -> (int * float) list
(** Peers ordered by decreasing goodness for the query, [exclude]d peers
    omitted.  Ties break toward the smaller peer id, keeping runs
    deterministic. *)

val rank_array : t -> query:int list -> keep:(int -> bool) -> (int * float) array
(** {!rank} as a single array pass: peers satisfying [keep], ordered by
    decreasing goodness (ties toward the smaller id).  The allocation-
    light form used on the per-hop forwarding path. *)

val rank_peers : t -> query:int list -> keep:(int -> bool) -> int list
(** The peer ids of {!rank_array}, in rank order. *)

(** {2 Payload utilities} *)

val payload_zero : kind -> width:int -> payload

val payload_rel_diff : payload -> payload -> float
(** Largest relative entry change between two payloads of the same
    shape — the [minUpdate] significance test.  [infinity] on shape
    mismatch (a shape change is always significant). *)

val payload_exceeds_rel : payload -> payload -> threshold:float -> bool
(** [payload_exceeds_rel old new_ ~threshold] is
    [payload_rel_diff old new_ > threshold], but stops scanning at the
    first entry over the threshold — the early-exit form the update
    wave's per-message significance test uses.  A shape (or width)
    mismatch always exceeds. *)

val payload_changed_entries : payload -> payload -> int
(** Entries whose value differs between two payloads of the same shape —
    the pair count a sparse (index, delta) update encoding ships.  On a
    shape or width mismatch every entry of the second payload counts
    (such an update can only be sent dense). *)

val payload_distance : payload -> payload -> float
(** Euclidean distance between two payloads' entry vectors (summed over
    hops for HRI) — the absolute update-significance criterion the paper
    suggests for exponential RIs in Section 6.2.  [infinity] on shape
    mismatch. *)

val payload_total : payload -> float
(** Total-documents entry (hop-summed for HRI). *)

val payload_entries : payload -> int
(** Number of scalar entries, for byte-cost accounting: [(1 + width)]
    per summary, times the horizon for HRI. *)

val storage_entries : kind -> width:int -> neighbors:int -> int
(** Scalar counters one node's routing index holds: one row per
    neighbor plus the local-summary row, each [(1 + width)] counters
    (times the slot count for hop-structured schemes).  Multiplying by a
    counter size in bytes gives the paper's Section 4.1 storage figures:
    "each node of a distributed system would need [s x (c+1) x b]
    bytes". *)

val storage_bytes : t -> int
(** Bytes this node's index has actually allocated for summaries: the
    local row (always 8 bytes per float slot) plus the flat row store's
    capacity in its own cell format — packed-code bytes when quantized.
    Unlike {!storage_entries} (the paper's analytical formula) this
    reflects the live data structure, including growth slack — the
    scale experiment's RI-bytes-per-node metric. *)

val payload_perturb :
  Ri_util.Prng.t ->
  relative_stddev:float ->
  kind:Ri_content.Compression.error_kind ->
  payload ->
  payload
(** Apply the Gaussian error model of Appendix A to every summary in the
    payload (used to make index errors compound across exports). *)
