(** Result-count estimation — the "goodness" of a summary for a query.

    Section 4 of the paper: "queries are conjunctions of subject topics,
    documents can have more than one topic, and document topics are
    independent.  Thus, we can estimate the number of results in a path
    as [NumberOfDocuments × Π_i CRI(s_i)/NumberOfDocuments]".

    The worked example: a query for "databases" and "languages" against
    the RI of Figure 3 yields 20/100 × 30/100 × 100 = 6 through B, 0
    through C, and 100/200 × 150/200 × 200 = 75 through D. *)

val goodness : Ri_content.Summary.t -> int list -> float
(** [goodness s query] estimates how many documents of the summarised
    collection match the conjunctive [query] (a list of indices into the
    summary's topic vector).  [0.] for an empty collection; the empty
    query estimates the whole collection.  Overcounting summaries can
    make per-topic entries exceed the total; the estimate is then allowed
    to exceed the total as well — it is a hint, not a bound.
    @raise Invalid_argument on an out-of-range topic index. *)

val goodness_flat : float array -> pos:int -> width:int -> int list -> float
(** {!goodness} computed directly over a flat routing-index row (slot
    [pos] holds the total, slots [pos+1 .. pos+width] the per-topic
    counts) with no intermediate allocation — the forwarding hot path
    over [Rowstore]-backed indices.  Bit-identical to boxing the row
    into a summary and calling {!goodness}.
    @raise Invalid_argument on an out-of-range topic index (same message
    as [Summary.get]). *)

val documents_per_message : goodness:float -> messages:float -> float
(** The hop-count RI's neighbor-quality ratio, Section 6.1: "a neighbor
    that allows us to find 3 documents per message is better than a
    neighbor that allows us to find 1 document per message".
    [0.] when [messages] is zero. *)
