open Ri_content

type t = {
  width : int;
  mutable local : Summary.t;
  rows : (int, Summary.t) Hashtbl.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Cri.%s: summary width mismatch" name)

let create ~width ~local =
  if width <= 0 then invalid_arg "Cri.create: width must be positive";
  let t = { width; local; rows = Hashtbl.create 8 } in
  check_width t local "create";
  t

let width t = t.width

let local t = t.local

let set_local t s =
  check_width t s "set_local";
  t.local <- s

let set_row t ~peer s =
  check_width t s "set_row";
  Hashtbl.replace t.rows peer s

let row t ~peer = Hashtbl.find_opt t.rows peer

let remove_row t ~peer = Hashtbl.remove t.rows peer

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.rows [] |> List.sort compare

let peer_count t = Hashtbl.length t.rows

(* Raw (unclamped) summary subtraction: valid here because every row is a
   term of the aggregate, so the difference is non-negative up to float
   rounding, which we clamp away.  Built directly (no [Summary.make]):
   this runs per peer per export, and make's defensive copy plus
   validation scan would double its cost. *)
let minus (a : Summary.t) (b : Summary.t) =
  let n = Array.length a.by_topic in
  let by_topic = Array.make n 0. in
  for i = 0 to n - 1 do
    by_topic.(i) <- Float.max 0. (a.by_topic.(i) -. b.by_topic.(i))
  done;
  { Summary.total = Float.max 0. (a.total -. b.total); by_topic }

(* Accumulate in place: exporting runs once per node per index build, so
   one allocation here instead of one per row matters at network scale. *)
let aggregate_with_local t =
  let by_topic = Array.copy t.local.Summary.by_topic in
  let total = ref t.local.Summary.total in
  Hashtbl.iter
    (fun _ (r : Summary.t) ->
      total := !total +. r.total;
      let bt = r.by_topic in
      for i = 0 to Array.length by_topic - 1 do
        by_topic.(i) <- by_topic.(i) +. bt.(i)
      done)
    t.rows;
  { Summary.total = !total; by_topic }

let export t ~exclude =
  let all = aggregate_with_local t in
  match exclude with
  | None -> all
  | Some peer -> (
      match row t ~peer with None -> all | Some r -> minus all r)

let export_all t =
  let all = aggregate_with_local t in
  peers t |> List.map (fun p -> (p, minus all (Hashtbl.find t.rows p)))

let goodness t ~peer ~query =
  match row t ~peer with
  | None -> 0.
  | Some r -> Estimator.goodness r query

let iter_goodness t ~query f =
  Hashtbl.iter (fun p r -> f p (Estimator.goodness r query)) t.rows
