open Ri_util
open Ri_content

(* Peer rows live in a flat structure-of-arrays store: one contiguous
   float array holds every row as [total; by_topic...] ([1 + width]
   slots), resolved through {!Rowstore}.  [Summary.t] remains the
   boundary type — construction, exports and tests speak summaries; the
   aggregation and ranking hot paths run straight over the flat array.
   The store iterates rows in the same hash-table order as the boxed
   representation it replaced, keeping float summation bit-identical.

   A store may instead be quantized (bit-packed log-bucketed cells, see
   {!Rowstore.quant_config}); those stores have no raw float view, so
   every hot path below keeps its exact branch verbatim — that is the
   bit-identity format — and adds a branch that decodes whole rows into
   the per-domain scratch buffer first. *)
type t = {
  width : int;
  mutable local : Summary.t;
  store : Rowstore.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Cri.%s: summary width mismatch" name)

let create ?rows ?quant ~width ~local () =
  if width <= 0 then invalid_arg "Cri.create: width must be positive";
  let t =
    { width; local; store = Rowstore.create ?rows ?quant ~stride:(1 + width) () }
  in
  check_width t local "create";
  t

let store t = t.store

let with_store t store =
  if Rowstore.stride store <> 1 + t.width then
    invalid_arg "Cri.with_store: stride mismatch";
  { t with store }

let width t = t.width

let local t = t.local

(* Summaries are immutable once built (set_local replaces the field, it
   never mutates the value), so the clone shares [local] and deep-copies
   only the row store. *)
let copy t = { t with store = Rowstore.copy t.store }

let set_local t s =
  check_width t s "set_local";
  t.local <- s

(* In-place install: no boxed row is retained, so a row update allocates
   nothing beyond the payload the caller already holds. *)
let set_row t ~peer (s : Summary.t) =
  check_width t s "set_row";
  let off = Rowstore.ensure t.store peer in
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    buf.(0) <- s.total;
    Array.blit s.by_topic 0 buf 1 t.width;
    Rowstore.encode_row t.store off buf
  end
  else begin
    let d = Rowstore.data t.store in
    d.(off) <- s.total;
    Array.blit s.by_topic 0 d (off + 1) t.width
  end

let row t ~peer =
  match Rowstore.find t.store peer with
  | None -> None
  | Some off ->
      if Rowstore.quantized t.store then begin
        let buf = Rowstore.scratch t.store in
        Rowstore.decode_row t.store off buf;
        Some { Summary.total = buf.(0); by_topic = Array.sub buf 1 t.width }
      end
      else
        let d = Rowstore.data t.store in
        Some
          { Summary.total = d.(off); by_topic = Array.sub d (off + 1) t.width }

let remove_row t ~peer = Rowstore.remove t.store peer

let stamp_row t ~peer wave = Rowstore.set_stamp t.store peer wave

let row_stamp t ~peer = Rowstore.stamp t.store peer

let peers t = Rowstore.peers t.store

let peer_count t = Rowstore.count t.store

let storage_words t = 1 + t.width + Rowstore.capacity_words t.store

(* Accumulate in place straight off the flat store, in the row table's
   iteration order (the bit-identity contract — see {!Rowstore}). *)
let aggregate_with_local t =
  let by_topic = Array.copy t.local.Summary.by_topic in
  let total = ref t.local.Summary.total in
  (if Rowstore.quantized t.store then begin
     let buf = Rowstore.scratch t.store in
     Rowstore.iter t.store (fun _ off ->
         Rowstore.decode_row t.store off buf;
         total := !total +. buf.(0);
         Vecf.add_slice ~dst:by_topic ~dst_pos:0 buf ~src_pos:1 ~len:t.width)
   end
   else
     let d = Rowstore.data t.store in
     Rowstore.iter t.store (fun _ off ->
         total := !total +. d.(off);
         Vecf.add_slice ~dst:by_topic ~dst_pos:0 d ~src_pos:(off + 1)
           ~len:t.width));
  { Summary.total = !total; by_topic }

(* Aggregate minus one flat row, clamped: valid because the row is a
   term of the aggregate, so the difference is non-negative up to float
   rounding.  Built without [Summary.make]'s defensive copy/validate —
   this runs per peer per export. *)
let minus_row t (all : Summary.t) off =
  let by_topic = Array.copy all.Summary.by_topic in
  let total =
    if Rowstore.quantized t.store then begin
      let buf = Rowstore.scratch t.store in
      Rowstore.decode_row t.store off buf;
      Vecf.sub_clamp_slice ~dst:by_topic ~dst_pos:0 buf ~src_pos:1 ~len:t.width;
      all.Summary.total -. buf.(0)
    end
    else begin
      let d = Rowstore.data t.store in
      Vecf.sub_clamp_slice ~dst:by_topic ~dst_pos:0 d ~src_pos:(off + 1)
        ~len:t.width;
      all.Summary.total -. d.(off)
    end
  in
  { Summary.total = (if total > 0. then total else 0.); by_topic }

let export t ~exclude =
  let all = aggregate_with_local t in
  match exclude with
  | None -> all
  | Some peer -> (
      match Rowstore.find t.store peer with
      | None -> all
      | Some off -> minus_row t all off)

let export_all t =
  let all = aggregate_with_local t in
  peers t
  |> List.map (fun p ->
         match Rowstore.find t.store p with
         | Some off -> (p, minus_row t all off)
         | None -> assert false)

(* [export_all] minus the [except] peers, without computing their
   exports at all: each peer's export is an independent function of the
   shared aggregate, so the survivors are bit-identical to filtering
   after the fact.  Update waves call this twice per delivered message
   (pre/post), always excluding the sender. *)
let export_except t ~except =
  let all = aggregate_with_local t in
  peers t
  |> List.filter_map (fun p ->
         if List.exists (fun (e : int) -> e = p) except then None
         else
           match Rowstore.find t.store p with
           | Some off -> Some (p, minus_row t all off)
           | None -> assert false)

let goodness t ~peer ~query =
  match Rowstore.find t.store peer with
  | None -> 0.
  | Some off ->
      if Rowstore.quantized t.store then begin
        let buf = Rowstore.scratch t.store in
        Rowstore.decode_row t.store off buf;
        Estimator.goodness_flat buf ~pos:0 ~width:t.width query
      end
      else
        Estimator.goodness_flat (Rowstore.data t.store) ~pos:off ~width:t.width
          query

let iter_goodness t ~query f =
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    Rowstore.iter t.store (fun p off ->
        Rowstore.decode_row t.store off buf;
        f p (Estimator.goodness_flat buf ~pos:0 ~width:t.width query))
  end
  else
    let d = Rowstore.data t.store in
    Rowstore.iter t.store (fun p off ->
        f p (Estimator.goodness_flat d ~pos:off ~width:t.width query))
