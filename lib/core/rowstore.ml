(* Flat structure-of-arrays row storage for routing indices.

   One contiguous float array holds every peer row of a node's index:
   row [slot] occupies [stride] consecutive slots starting at
   [slot * stride].  A peer -> slot hash table resolves rows; freed
   slots are recycled LIFO, so the backing array never shrinks but also
   never fragments.

   Bit-for-bit determinism contract: aggregation iterates rows in the
   order of the peer index table, NOT in slot order.  The table is
   created with the same initial size (8) and sees exactly the same
   add/remove key sequence as the per-peer [Summary] hash tables this
   store replaced, and OCaml's [Hashtbl.replace] mutates an existing
   binding in place, so iteration order — and therefore float summation
   order — is unchanged from the boxed representation. *)

type t = {
  stride : int;
  mutable data : float array;
  mutable stamps : int array;
      (* per-slot provenance stamp: the logical update-wave id that last
         wrote the row; 0 marks rows untouched since construction.  Kept
         parallel to [data] (one int per row) and excluded from
         [capacity_words], which reports the index payload only. *)
  mutable index : (int, int) Hashtbl.t;  (* peer -> slot *)
  mutable shared_index : bool;
      (* the peer table is shared with clones (copy-on-write): it must
         be re-copied privately before any insert or remove *)
  mutable free : int list;  (* recycled slots, most recently freed first *)
  mutable next : int;  (* first never-used slot *)
}

let initial_rows = 4

(* [rows] is a capacity hint — typically the node's overlay degree, so a
   well-hinted store never reallocates and wastes no slots.  The minor
   heap feels the difference: a default-sized store on a 2000-node tree
   costs an extra ~250 words per node in unused and regrown rows. *)
let create ?(rows = initial_rows) ~stride () =
  if stride <= 0 then invalid_arg "Rowstore.create: stride must be positive";
  {
    stride;
    data = Array.make (max 1 rows * stride) 0.;
    stamps = Array.make (max 1 rows) 0;
    index = Hashtbl.create 8;
    shared_index = false;
    free = [];
    next = 0;
  }

(* Template cloning: the floats are blitted, but the peer table is
   shared copy-on-write — a converged-network clone only ever rewrites
   existing rows, so in the common case no clone pays for a table.
   When a mutation does force materialisation, [Hashtbl.copy]
   duplicates the bucket structure verbatim, so iteration order — and
   therefore every aggregation's float summation order — is identical
   either way.  This is what makes cached converged networks safe to
   hand out as per-trial clones. *)
let copy t =
  t.shared_index <- true;
  { t with data = Array.copy t.data; stamps = Array.copy t.stamps }

(* Materialise a private peer table before an insert or remove.  The
   original's flag stays set: it may be shared with any number of other
   clones, none of which ever sees this mutation. *)
let own_index t =
  if t.shared_index then begin
    t.index <- Hashtbl.copy t.index;
    t.shared_index <- false
  end

let stride t = t.stride

let data t = t.data

let count t = Hashtbl.length t.index

let mem t peer = Hashtbl.mem t.index peer

let find t peer =
  match Hashtbl.find_opt t.index peer with
  | None -> None
  | Some slot -> Some (slot * t.stride)

let grow t needed_rows =
  let cap = Array.length t.data / t.stride in
  (* Double from the actual capacity: flooring at [initial_rows] here
     would quadruple every degree-1 store on its first insert and undo
     the caller's degree hint. *)
  let cap' = ref (max cap 1) in
  while !cap' < needed_rows do
    cap' := !cap' * 2
  done;
  if !cap' > cap then begin
    let data' = Array.make (!cap' * t.stride) 0. in
    Array.blit t.data 0 data' 0 (t.next * t.stride);
    t.data <- data';
    let stamps' = Array.make !cap' 0 in
    Array.blit t.stamps 0 stamps' 0 t.next;
    t.stamps <- stamps'
  end

let ensure t peer =
  match Hashtbl.find_opt t.index peer with
  | Some slot -> slot * t.stride
  | None ->
      own_index t;
      let slot =
        match t.free with
        | s :: rest ->
            t.free <- rest;
            s
        | [] ->
            let s = t.next in
            grow t (s + 1);
            t.next <- s + 1;
            s
      in
      Hashtbl.replace t.index peer slot;
      slot * t.stride

let remove t peer =
  match Hashtbl.find_opt t.index peer with
  | None -> ()
  | Some slot ->
      own_index t;
      Hashtbl.remove t.index peer;
      (* Zero the freed row so a recycled slot starts clean and stale
         values can never leak into a future peer's partial writes. *)
      Array.fill t.data (slot * t.stride) t.stride 0.;
      t.stamps.(slot) <- 0;
      t.free <- slot :: t.free

let iter t f = Hashtbl.iter (fun peer slot -> f peer (slot * t.stride)) t.index

let set_stamp t peer wave =
  match Hashtbl.find_opt t.index peer with
  | None -> ()
  | Some slot -> t.stamps.(slot) <- wave

let stamp t peer =
  match Hashtbl.find_opt t.index peer with
  | None -> 0
  | Some slot -> t.stamps.(slot)

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.index [] |> List.sort Int.compare

let capacity_words t = Array.length t.data
