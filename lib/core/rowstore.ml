(* Flat structure-of-arrays row storage for routing indices.

   One contiguous backing buffer holds every peer row of a node's index:
   row [slot] occupies [stride] consecutive cells starting at
   [slot * stride].  A peer -> slot hash table resolves rows; freed
   slots are recycled LIFO, so the backing buffer never shrinks but also
   never fragments.

   Two cell formats share the interface:

   - [Floats] (the default): one IEEE double per cell, exposed raw
     through {!data} for the zero-copy arithmetic kernels.  This is the
     bit-identity format — every figure runs on it.

   - [Codes]: log-scale bucketed, bit-packed topic counts (paper §6's
     compression argument applied to the store itself).  Cell [v] maps
     to code [round(log1p v / gamma)] in [bits] bits, decoded through a
     precomputed [expm1] table; zero is exactly representable both
     ways.  Readers decode whole rows into a per-domain scratch buffer
     ({!decode_row} / {!scratch}), writers encode whole rows back, so
     the arithmetic above the store is unchanged — only resident size
     (and accuracy, boundedly) differs.

   Bit-for-bit determinism contract: aggregation iterates rows in the
   order of the peer index table, NOT in slot order.  The table is
   created with the same initial size (8) and sees exactly the same
   add/remove key sequence as the per-peer [Summary] hash tables this
   store replaced, and OCaml's [Hashtbl.replace] mutates an existing
   binding in place, so iteration order — and therefore float summation
   order — is unchanged from the boxed representation.  Stores rebuilt
   from a snapshot cannot re-create a hash table's history, so they
   carry the live iteration order as an explicit peer array ([order])
   recorded at save time; {!iter} replays it verbatim. *)

type quant_config = { bits : int; vmax : float }

type quantizer = {
  q_bits : int;
  q_vmax : float;
  q_levels : int;
  q_gamma : float;
  q_decode : float array;  (* code -> representative value *)
}

type cells =
  | Floats of float array
  | Codes of { q : quantizer; mutable codes : Bytes.t }

type t = {
  stride : int;
  mutable cells : cells;
  mutable stamps : int array;
      (* per-slot provenance stamp: the logical update-wave id that last
         wrote the row; 0 marks rows untouched since construction.  Kept
         parallel to the cells (one int per row) and excluded from
         [capacity_words], which reports the index payload only. *)
  mutable index : (int, int) Hashtbl.t;  (* peer -> slot *)
  mutable shared_index : bool;
      (* the peer table is shared with clones (copy-on-write): it must
         be re-copied privately before any insert or remove *)
  mutable order : int array option;
      (* explicit iteration order (peers), for stores reconstructed from
         a snapshot.  Treated as immutable: mutations that change the
         peer set install a fresh array, so clones sharing it are safe. *)
  mutable free : int list;  (* recycled slots, most recently freed first *)
  mutable next : int;  (* first never-used slot *)
}

let initial_rows = 4

let default_quant = { bits = 8; vmax = 1e9 }

let make_quantizer { bits; vmax } =
  if bits < 1 || bits > 16 then
    invalid_arg "Rowstore: quantizer bits must be in 1..16";
  if not (vmax > 0.) then invalid_arg "Rowstore: quantizer vmax must be > 0";
  let levels = 1 lsl bits in
  let gamma = Float.log1p vmax /. float_of_int (levels - 1) in
  {
    q_bits = bits;
    q_vmax = vmax;
    q_levels = levels;
    q_gamma = gamma;
    q_decode =
      Array.init levels (fun k -> Float.expm1 (float_of_int k *. gamma));
  }

let encode_cell q v =
  if not (v > 0.) then 0
  else
    let k = int_of_float (Float.round (Float.log1p v /. q.q_gamma)) in
    if k < 0 then 0 else if k > q.q_levels - 1 then q.q_levels - 1 else k

(* Bytes per packed row, padded so the 3-byte windows below never read
   past a row into uninitialized territory (2 spare bytes at the very
   end of the buffer cover the last row). *)
let row_bytes_of ~stride q = ((stride * q.q_bits) + 7) / 8

let pad_bytes = 2

(* Cell [i] of the row starting at byte [base]: up to 16 bits starting
   at bit [i * bits], read/written through a little-endian 3-byte
   window. *)
let get_code codes ~base ~bits i =
  let bitpos = i * bits in
  let byte = base + (bitpos lsr 3) in
  let shift = bitpos land 7 in
  let w =
    Char.code (Bytes.unsafe_get codes byte)
    lor (Char.code (Bytes.unsafe_get codes (byte + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get codes (byte + 2)) lsl 16)
  in
  (w lsr shift) land ((1 lsl bits) - 1)

let set_code codes ~base ~bits i v =
  let bitpos = i * bits in
  let byte = base + (bitpos lsr 3) in
  let shift = bitpos land 7 in
  let mask = ((1 lsl bits) - 1) lsl shift in
  let w =
    Char.code (Bytes.unsafe_get codes byte)
    lor (Char.code (Bytes.unsafe_get codes (byte + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get codes (byte + 2)) lsl 16)
  in
  let w = w land lnot mask lor ((v lsl shift) land mask) in
  Bytes.unsafe_set codes byte (Char.unsafe_chr (w land 0xff));
  Bytes.unsafe_set codes (byte + 1) (Char.unsafe_chr ((w lsr 8) land 0xff));
  Bytes.unsafe_set codes (byte + 2) (Char.unsafe_chr ((w lsr 16) land 0xff))

(* [rows] is a capacity hint — typically the node's overlay degree, so a
   well-hinted store never reallocates and wastes no slots.  The minor
   heap feels the difference: a default-sized store on a 2000-node tree
   costs an extra ~250 words per node in unused and regrown rows. *)
let create ?(rows = initial_rows) ?quant ~stride () =
  if stride <= 0 then invalid_arg "Rowstore.create: stride must be positive";
  let rows = max 1 rows in
  let cells =
    match quant with
    | None -> Floats (Array.make (rows * stride) 0.)
    | Some qc ->
        let q = make_quantizer qc in
        Codes { q; codes = Bytes.make ((rows * row_bytes_of ~stride q) + pad_bytes) '\000' }
  in
  {
    stride;
    cells;
    stamps = Array.make rows 0;
    index = Hashtbl.create 8;
    shared_index = false;
    order = None;
    free = [];
    next = 0;
  }

(* Template cloning: the cells are blitted, but the peer table is
   shared copy-on-write — a converged-network clone only ever rewrites
   existing rows, so in the common case no clone pays for a table.
   When a mutation does force materialisation, [Hashtbl.copy]
   duplicates the bucket structure verbatim, so iteration order — and
   therefore every aggregation's float summation order — is identical
   either way.  This is what makes cached converged networks safe to
   hand out as per-trial clones.  An explicit [order] array is shared
   outright: it is replaced, never mutated. *)
let copy t =
  t.shared_index <- true;
  let cells =
    match t.cells with
    | Floats d -> Floats (Array.copy d)
    | Codes { q; codes } -> Codes { q; codes = Bytes.copy codes }
  in
  { t with cells; stamps = Array.copy t.stamps }

(* Materialise a private peer table before an insert or remove.  The
   original's flag stays set: it may be shared with any number of other
   clones, none of which ever sees this mutation. *)
let own_index t =
  if t.shared_index then begin
    t.index <- Hashtbl.copy t.index;
    t.shared_index <- false
  end

let stride t = t.stride

let data t =
  match t.cells with
  | Floats d -> d
  | Codes _ ->
      invalid_arg "Rowstore.data: quantized store has no raw float view"

let quantized t = match t.cells with Floats _ -> false | Codes _ -> true

let quant t =
  match t.cells with
  | Floats _ -> None
  | Codes { q; _ } -> Some { bits = q.q_bits; vmax = q.q_vmax }

let count t = Hashtbl.length t.index

let mem t peer = Hashtbl.mem t.index peer

let find t peer =
  match Hashtbl.find_opt t.index peer with
  | None -> None
  | Some slot -> Some (slot * t.stride)

let capacity_rows t =
  match t.cells with
  | Floats d -> Array.length d / t.stride
  | Codes { q; codes } ->
      (Bytes.length codes - pad_bytes) / row_bytes_of ~stride:t.stride q

let grow t needed_rows =
  let cap = capacity_rows t in
  (* Double from the actual capacity: flooring at [initial_rows] here
     would quadruple every degree-1 store on its first insert and undo
     the caller's degree hint. *)
  let cap' = ref (max cap 1) in
  while !cap' < needed_rows do
    cap' := !cap' * 2
  done;
  if !cap' > cap then begin
    (match t.cells with
    | Floats d ->
        let d' = Array.make (!cap' * t.stride) 0. in
        Array.blit d 0 d' 0 (t.next * t.stride);
        t.cells <- Floats d'
    | Codes c ->
        let rb = row_bytes_of ~stride:t.stride c.q in
        let codes' = Bytes.make ((!cap' * rb) + pad_bytes) '\000' in
        Bytes.blit c.codes 0 codes' 0 (t.next * rb);
        c.codes <- codes');
    let stamps' = Array.make !cap' 0 in
    Array.blit t.stamps 0 stamps' 0 t.next;
    t.stamps <- stamps'
  end

(* Keep the explicit iteration order (when one exists) in sync with the
   peer set by replacing the array — clones sharing the old one keep
   their own view. *)
let order_append t peer =
  match t.order with
  | None -> ()
  | Some o ->
      let n = Array.length o in
      let o' = Array.make (n + 1) peer in
      Array.blit o 0 o' 0 n;
      t.order <- Some o'

let order_drop t peer =
  match t.order with
  | None -> ()
  | Some o -> t.order <- Some (Array.of_list (List.filter (fun p -> p <> peer) (Array.to_list o)))

let ensure t peer =
  match Hashtbl.find_opt t.index peer with
  | Some slot -> slot * t.stride
  | None ->
      own_index t;
      let slot =
        match t.free with
        | s :: rest ->
            t.free <- rest;
            s
        | [] ->
            let s = t.next in
            grow t (s + 1);
            t.next <- s + 1;
            s
      in
      Hashtbl.replace t.index peer slot;
      order_append t peer;
      slot * t.stride

let remove t peer =
  match Hashtbl.find_opt t.index peer with
  | None -> ()
  | Some slot ->
      own_index t;
      Hashtbl.remove t.index peer;
      (* Zero the freed row so a recycled slot starts clean and stale
         values can never leak into a future peer's partial writes. *)
      (match t.cells with
      | Floats d -> Array.fill d (slot * t.stride) t.stride 0.
      | Codes c ->
          let rb = row_bytes_of ~stride:t.stride c.q in
          Bytes.fill c.codes (slot * rb) rb '\000');
      t.stamps.(slot) <- 0;
      t.free <- slot :: t.free;
      order_drop t peer

let iter t f =
  match t.order with
  | None -> Hashtbl.iter (fun peer slot -> f peer (slot * t.stride)) t.index
  | Some o ->
      Array.iter
        (fun peer ->
          match Hashtbl.find_opt t.index peer with
          | Some slot -> f peer (slot * t.stride)
          | None -> assert false)
        o

let iteration_peers t =
  match t.order with
  | Some o -> Array.copy o
  | None ->
      let out = Array.make (count t) 0 in
      let i = ref 0 in
      Hashtbl.iter
        (fun peer _ ->
          out.(!i) <- peer;
          incr i)
        t.index;
      out

let set_stamp t peer wave =
  match Hashtbl.find_opt t.index peer with
  | None -> ()
  | Some slot -> t.stamps.(slot) <- wave

let stamp t peer =
  match Hashtbl.find_opt t.index peer with
  | None -> 0
  | Some slot -> t.stamps.(slot)

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.index [] |> List.sort Int.compare

let capacity_words t =
  match t.cells with
  | Floats d -> Array.length d
  | Codes { codes; _ } -> (Bytes.length codes + 7) / 8

let capacity_bytes t =
  match t.cells with
  | Floats d -> 8 * Array.length d
  | Codes { codes; _ } -> Bytes.length codes

(* {2 Quantized row access}

   Whole-row decode/encode against caller-held float buffers.  On an
   exact store these degrade to blits, so generic code can be written
   once — though the schemes keep their zero-copy fast path on the raw
   array for the exact (bit-identity) format. *)

let decode_row t off dst =
  match t.cells with
  | Floats d -> Array.blit d off dst 0 t.stride
  | Codes { q; codes } ->
      let slot = off / t.stride in
      let base = slot * row_bytes_of ~stride:t.stride q in
      let bits = q.q_bits in
      let table = q.q_decode in
      for i = 0 to t.stride - 1 do
        dst.(i) <- Array.unsafe_get table (get_code codes ~base ~bits i)
      done

let encode_row t off src =
  match t.cells with
  | Floats d -> Array.blit src 0 d off t.stride
  | Codes { q; codes } ->
      let slot = off / t.stride in
      let base = slot * row_bytes_of ~stride:t.stride q in
      let bits = q.q_bits in
      for i = 0 to t.stride - 1 do
        set_code codes ~base ~bits i (encode_cell q src.(i))
      done

(* Per-domain decode scratch: strictly transient (consumed before the
   next decode on the same domain), so one buffer per domain suffices —
   and pool workers decoding concurrently never share it. *)
let scratch_key : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let scratch t =
  let r = Domain.DLS.get scratch_key in
  if Array.length !r < t.stride then r := Array.make t.stride 0.;
  !r

let quant_rel_error_bound qc =
  let q = make_quantizer qc in
  Float.expm1 (q.q_gamma /. 2.)

(* {2 Snapshot reconstruction} *)

let row_code_bytes t =
  match t.cells with
  | Floats _ -> invalid_arg "Rowstore.row_code_bytes: exact store"
  | Codes { q; _ } -> row_bytes_of ~stride:t.stride q

let blit_row_codes t off dst dpos =
  match t.cells with
  | Floats _ -> invalid_arg "Rowstore.blit_row_codes: exact store"
  | Codes { q; codes } ->
      let rb = row_bytes_of ~stride:t.stride q in
      Bytes.blit codes (off / t.stride * rb) dst dpos rb

let of_loaded ~stride ?quant ~peers ~stamps payload =
  if stride <= 0 then invalid_arg "Rowstore.of_loaded: stride must be positive";
  let n = Array.length peers in
  if Array.length stamps <> n then
    invalid_arg "Rowstore.of_loaded: stamps length mismatch";
  let cells =
    match (quant, payload) with
    | None, `Floats d ->
        if Array.length d <> n * stride then
          invalid_arg "Rowstore.of_loaded: float payload length mismatch";
        Floats (if n = 0 then Array.make stride 0. else d)
    | Some qc, `Codes b ->
        let q = make_quantizer qc in
        let rb = row_bytes_of ~stride q in
        if Bytes.length b <> n * rb then
          invalid_arg "Rowstore.of_loaded: code payload length mismatch";
        let padded = Bytes.make ((max 1 n * rb) + pad_bytes) '\000' in
        Bytes.blit b 0 padded 0 (Bytes.length b);
        Codes { q; codes = padded }
    | None, `Codes _ | Some _, `Floats _ ->
        invalid_arg "Rowstore.of_loaded: payload does not match cell format"
  in
  let index = Hashtbl.create 8 in
  Array.iteri
    (fun slot peer ->
      if Hashtbl.mem index peer then
        invalid_arg "Rowstore.of_loaded: duplicate peer";
      Hashtbl.replace index peer slot)
    peers;
  let stamps' = Array.make (max 1 n) 0 in
  Array.blit stamps 0 stamps' 0 n;
  {
    stride;
    cells;
    stamps = stamps';
    index;
    shared_index = false;
    (* The recorded live order, replayed verbatim by [iter]: this — not
       the freshly built hash table's order — is what keeps summation
       order, and with it every exported float, bit-identical to the
       store that was saved. *)
    order = Some (Array.copy peers);
    free = [];
    next = n;
  }
