(** Hop-count Routing Index (Section 6.1).

    Per neighbor, the HRI stores one summary {e per hop} up to a maximum
    number of hops, the {e horizon}: entry [h] (1-based) counts the
    documents exactly [h] forwardings away through that neighbor, so
    entry 1 is the neighbor's own collection.  "Note that we do not have
    information beyond the horizon with this kind of RI."

    Export (creation/update, Section 6.1): build the aggregate as for a
    compound RI, "then it shifts the columns to the right, so the entries
    for 1 hop become the entries for 2 hops ... The entries in the last
    column of the original RI are discarded and the summary of the local
    index is placed as the first column".

    Goodness uses the regular-tree cost model: [goodness_hc(N_i, Q) =
    Σ_{j=1..h} goodness(N_i[j], Q) / F^(j-1)]. *)

type t

val create :
  ?rows:int ->
  ?quant:Rowstore.quant_config ->
  horizon:int ->
  cost:Cost_model.t ->
  width:int ->
  local:Ri_content.Summary.t ->
  unit ->
  t
(** [rows] pre-sizes the row store and [quant] selects the bit-packed
    quantized cell format (see {!Rowstore.create}).
    @raise Invalid_argument if [horizon <= 0], [width <= 0] or the local
    summary's width differs. *)

val create_hybrid :
  ?rows:int ->
  ?quant:Rowstore.quant_config ->
  horizon:int ->
  cost:Cost_model.t ->
  width:int ->
  local:Ri_content.Summary.t ->
  unit ->
  t
(** The {e hybrid CRI-HRI} the paper sketches in Section 6.2 ("a hybrid
    CRI-HRI overcomes this disadvantage"): rows carry one extra slot
    that aggregates every document {e beyond} the horizon, compound-RI
    style.  On export the column that would fall off the horizon merges
    into the tail instead of being discarded, so no information is ever
    lost; goodness discounts the tail at [horizon + 1] hops. *)

val copy : t -> t
(** Independent clone; see {!Cri.copy}. *)

val store : t -> Rowstore.t
(** The underlying row store — snapshot persistence reads it raw. *)

val with_store : t -> Rowstore.t -> t
(** The same index over a replacement row store; see {!Cri.with_store}.
    @raise Invalid_argument if the store's stride does not match. *)

val has_tail : t -> bool

val row_length : t -> int
(** Slots per row: [horizon], plus one when the hybrid tail is on. *)

val horizon : t -> int

val cost_model : t -> Cost_model.t

val width : t -> int

val local : t -> Ri_content.Summary.t

val set_local : t -> Ri_content.Summary.t -> unit

val set_row : t -> peer:int -> Ri_content.Summary.t array -> unit
(** The array has one summary per hop, length = {!row_length}, index
    [h-1] for hop [h] (the last slot is the beyond-horizon tail when the
    hybrid mode is on).
    @raise Invalid_argument on wrong length or width. *)

val row : t -> peer:int -> Ri_content.Summary.t array option
(** A fresh copy of the stored row, boxed out of the flat store —
    mutating it never affects the index. *)

val remove_row : t -> peer:int -> unit

val peers : t -> int list

val stamp_row : t -> peer:int -> int -> unit
(** Record the logical update-wave id that last wrote the peer's row
    (provenance lineage; see {!Rowstore.set_stamp}).  No-op when
    absent. *)

val row_stamp : t -> peer:int -> int
(** The recorded wave id; [0] for build-time or absent rows. *)

val peer_count : t -> int

val storage_words : t -> int
(** Float slots this index has allocated (local summary plus the flat
    row store's capacity) — the scale experiment's memory metric. *)

val export : t -> exclude:int option -> Ri_content.Summary.t array
(** The shifted aggregate sent to a neighbor: slot 0 = local summary,
    slot [h] = sum over the non-excluded rows' slot [h-1]; the last
    original column falls off the horizon. *)

val export_all : t -> (int * Ri_content.Summary.t array) list
(** One export per peer, sharing a single aggregation pass. *)

val export_except :
  t -> except:int list -> (int * Ri_content.Summary.t array) list
(** {!export_all} restricted to peers not in [except] (see
    {!Cri.export_except}). *)

val goodness : t -> peer:int -> query:int list -> float
(** Cost-model-discounted goodness; [0.] for an unknown peer. *)

val iter_goodness : t -> query:int list -> (int -> float -> unit) -> unit
(** [f peer goodness] for every peer with a row, in unspecified order,
    skipping the per-peer lookup of {!goodness}. *)

val total_beyond_hop : t -> peer:int -> hop:int -> float
(** Documents recorded strictly beyond [hop] through [peer] — used by
    diagnostics and tests probing horizon effects. *)
