open Ri_util
open Ri_content

(* Rows in a flat structure-of-arrays store, [total; by_topic...] per
   peer — see {!Cri} for the layout, the bit-identity contract, and the
   quantized-store branching convention (exact paths verbatim, packed
   rows decoded into the per-domain scratch).  [Summary.t] stays the
   boundary type for exports and tests. *)
type t = {
  fanout : float;
  width : int;
  mutable local : Summary.t;
  store : Rowstore.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Eri.%s: summary width mismatch" name)

let create ?rows ?quant ~fanout ~width ~local () =
  if not (fanout > 1.) then invalid_arg "Eri.create: fanout must be > 1";
  if width <= 0 then invalid_arg "Eri.create: width must be positive";
  let t =
    {
      fanout;
      width;
      local;
      store = Rowstore.create ?rows ?quant ~stride:(1 + width) ();
    }
  in
  check_width t local "create";
  t

let store t = t.store

let with_store t store =
  if Rowstore.stride store <> 1 + t.width then
    invalid_arg "Eri.with_store: stride mismatch";
  { t with store }

let fanout t = t.fanout

let width t = t.width

let local t = t.local

let copy t = { t with store = Rowstore.copy t.store }

let set_local t s =
  check_width t s "set_local";
  t.local <- s

let set_row t ~peer (s : Summary.t) =
  check_width t s "set_row";
  let off = Rowstore.ensure t.store peer in
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    buf.(0) <- s.total;
    Array.blit s.by_topic 0 buf 1 t.width;
    Rowstore.encode_row t.store off buf
  end
  else begin
    let d = Rowstore.data t.store in
    d.(off) <- s.total;
    Array.blit s.by_topic 0 d (off + 1) t.width
  end

let row t ~peer =
  match Rowstore.find t.store peer with
  | None -> None
  | Some off ->
      if Rowstore.quantized t.store then begin
        let buf = Rowstore.scratch t.store in
        Rowstore.decode_row t.store off buf;
        Some { Summary.total = buf.(0); by_topic = Array.sub buf 1 t.width }
      end
      else
        let d = Rowstore.data t.store in
        Some
          { Summary.total = d.(off); by_topic = Array.sub d (off + 1) t.width }

let remove_row t ~peer = Rowstore.remove t.store peer

let stamp_row t ~peer wave = Rowstore.set_stamp t.store peer wave

let row_stamp t ~peer = Rowstore.stamp t.store peer

let peers t = Rowstore.peers t.store

let peer_count t = Rowstore.count t.store

let storage_words t = 1 + t.width + Rowstore.capacity_words t.store

(* One allocation per aggregate, accumulated off the flat store in row
   table order (the bit-identity contract). *)
let aggregate_rows t =
  let by_topic = Array.make t.width 0. in
  let total = ref 0. in
  (if Rowstore.quantized t.store then begin
     let buf = Rowstore.scratch t.store in
     Rowstore.iter t.store (fun _ off ->
         Rowstore.decode_row t.store off buf;
         total := !total +. buf.(0);
         Vecf.add_slice ~dst:by_topic ~dst_pos:0 buf ~src_pos:1 ~len:t.width)
   end
   else
     let d = Rowstore.data t.store in
     Rowstore.iter t.store (fun _ off ->
         total := !total +. d.(off);
         Vecf.add_slice ~dst:by_topic ~dst_pos:0 d ~src_pos:(off + 1)
           ~len:t.width));
  { Summary.total = !total; by_topic }

(* [finish t rest] is local + rest/F.  Fused into one pass: exports run
   per peer per wave message, and the intermediate summaries (minus,
   scale, add) would triple the allocation. *)
let finish t (rest : Summary.t) =
  let k = 1. /. t.fanout in
  let local = t.local in
  let lbt = local.Summary.by_topic and rbt = rest.Summary.by_topic in
  let by_topic = Array.make t.width 0. in
  for i = 0 to t.width - 1 do
    by_topic.(i) <- lbt.(i) +. (rbt.(i) *. k)
  done;
  { Summary.total = local.Summary.total +. (rest.Summary.total *. k); by_topic }

(* local + (agg - row)/F in a single pass over the flat row. *)
let finish_without t (agg : Summary.t) off =
  let k = 1. /. t.fanout in
  let local = t.local in
  let lbt = local.Summary.by_topic and abt = agg.Summary.by_topic in
  let by_topic = Array.make t.width 0. in
  let dt =
    if Rowstore.quantized t.store then begin
      let buf = Rowstore.scratch t.store in
      Rowstore.decode_row t.store off buf;
      for i = 0 to t.width - 1 do
        let diff = abt.(i) -. buf.(i + 1) in
        by_topic.(i) <- lbt.(i) +. ((if diff > 0. then diff else 0.) *. k)
      done;
      agg.Summary.total -. buf.(0)
    end
    else begin
      let d = Rowstore.data t.store in
      for i = 0 to t.width - 1 do
        let diff = abt.(i) -. d.(off + 1 + i) in
        by_topic.(i) <- lbt.(i) +. ((if diff > 0. then diff else 0.) *. k)
      done;
      agg.Summary.total -. d.(off)
    end
  in
  {
    Summary.total =
      local.Summary.total +. ((if dt > 0. then dt else 0.) *. k);
    by_topic;
  }

let export t ~exclude =
  let agg = aggregate_rows t in
  match exclude with
  | None -> finish t agg
  | Some peer -> (
      match Rowstore.find t.store peer with
      | None -> finish t agg
      | Some off -> finish_without t agg off)

let export_all t =
  let agg = aggregate_rows t in
  peers t
  |> List.map (fun p ->
         match Rowstore.find t.store p with
         | Some off -> (p, finish_without t agg off)
         | None -> assert false)

(* See {!Cri.export_except}: per-peer exports are independent given the
   aggregate, so skipping the [except] peers is bit-identical. *)
let export_except t ~except =
  let agg = aggregate_rows t in
  peers t
  |> List.filter_map (fun p ->
         if List.exists (fun (e : int) -> e = p) except then None
         else
           match Rowstore.find t.store p with
           | Some off -> Some (p, finish_without t agg off)
           | None -> assert false)

let goodness t ~peer ~query =
  match Rowstore.find t.store peer with
  | None -> 0.
  | Some off ->
      if Rowstore.quantized t.store then begin
        let buf = Rowstore.scratch t.store in
        Rowstore.decode_row t.store off buf;
        Estimator.goodness_flat buf ~pos:0 ~width:t.width query
      end
      else
        Estimator.goodness_flat (Rowstore.data t.store) ~pos:off ~width:t.width
          query

let iter_goodness t ~query f =
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    Rowstore.iter t.store (fun p off ->
        Rowstore.decode_row t.store off buf;
        f p (Estimator.goodness_flat buf ~pos:0 ~width:t.width query))
  end
  else
    let d = Rowstore.data t.store in
    Rowstore.iter t.store (fun p off ->
        f p (Estimator.goodness_flat d ~pos:off ~width:t.width query))
