open Ri_content

type t = {
  fanout : float;
  width : int;
  mutable local : Summary.t;
  rows : (int, Summary.t) Hashtbl.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Eri.%s: summary width mismatch" name)

let create ~fanout ~width ~local =
  if not (fanout > 1.) then invalid_arg "Eri.create: fanout must be > 1";
  if width <= 0 then invalid_arg "Eri.create: width must be positive";
  let t = { fanout; width; local; rows = Hashtbl.create 8 } in
  check_width t local "create";
  t

let fanout t = t.fanout

let width t = t.width

let local t = t.local

let set_local t s =
  check_width t s "set_local";
  t.local <- s

let set_row t ~peer s =
  check_width t s "set_row";
  Hashtbl.replace t.rows peer s

let row t ~peer = Hashtbl.find_opt t.rows peer

let remove_row t ~peer = Hashtbl.remove t.rows peer

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.rows [] |> List.sort compare

let peer_count t = Hashtbl.length t.rows

(* One allocation per aggregate, not one per row — exports run once per
   node per index build. *)
let aggregate_rows t =
  let by_topic = Array.make t.width 0. in
  let total = ref 0. in
  Hashtbl.iter
    (fun _ (r : Summary.t) ->
      total := !total +. r.total;
      let bt = r.by_topic in
      for i = 0 to t.width - 1 do
        by_topic.(i) <- by_topic.(i) +. bt.(i)
      done)
    t.rows;
  { Summary.total = !total; by_topic }

(* [finish t rest] is local + rest/F.  Fused with the per-peer
   subtraction into one pass: exports run per peer per wave message, and
   the three intermediate summaries (minus, scale, add) would triple the
   allocation. *)
let finish t (rest : Summary.t) =
  let k = 1. /. t.fanout in
  let local = t.local in
  let lbt = local.Summary.by_topic and rbt = rest.Summary.by_topic in
  let by_topic = Array.make t.width 0. in
  for i = 0 to t.width - 1 do
    by_topic.(i) <- lbt.(i) +. (rbt.(i) *. k)
  done;
  { Summary.total = local.Summary.total +. (rest.Summary.total *. k); by_topic }

(* local + (agg - row)/F in a single pass. *)
let finish_without t (agg : Summary.t) (r : Summary.t) =
  let k = 1. /. t.fanout in
  let local = t.local in
  let lbt = local.Summary.by_topic
  and abt = agg.Summary.by_topic
  and rbt = r.Summary.by_topic in
  let by_topic = Array.make t.width 0. in
  for i = 0 to t.width - 1 do
    by_topic.(i) <- lbt.(i) +. (Float.max 0. (abt.(i) -. rbt.(i)) *. k)
  done;
  {
    Summary.total =
      local.Summary.total
      +. (Float.max 0. (agg.Summary.total -. r.Summary.total) *. k);
    by_topic;
  }

let export t ~exclude =
  let agg = aggregate_rows t in
  match exclude with
  | None -> finish t agg
  | Some peer -> (
      match row t ~peer with
      | None -> finish t agg
      | Some r -> finish_without t agg r)

let export_all t =
  let agg = aggregate_rows t in
  peers t
  |> List.map (fun p -> (p, finish_without t agg (Hashtbl.find t.rows p)))

let goodness t ~peer ~query =
  match row t ~peer with
  | None -> 0.
  | Some r -> Estimator.goodness r query

let iter_goodness t ~query f =
  Hashtbl.iter (fun p r -> f p (Estimator.goodness r query)) t.rows
