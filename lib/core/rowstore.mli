(** Flat structure-of-arrays storage for routing-index rows.

    One contiguous float array per node holds all peer rows; each row is
    [stride] consecutive slots at the offset returned by {!find} /
    {!ensure}.  Rows are addressed through a peer -> slot table whose
    iteration order deliberately mirrors the per-peer hash tables this
    store replaced, so aggregation (float summation) order — and with it
    every figure in the paper reproduction — is bit-for-bit unchanged.

    The backing array grows by doubling and is exposed raw through
    {!data} so the arithmetic kernels ([Ri_util.Vecf] slice operations,
    [Estimator.goodness_flat]) can run over it with zero intermediate
    allocation.  A reference obtained from {!data} is invalidated by any
    subsequent {!ensure} that grows the store — re-fetch after inserts. *)

type t

val create : ?rows:int -> stride:int -> unit -> t
(** An empty store whose rows are [stride] floats wide.  [rows] (default
    4, minimum 1) pre-sizes the backing array; pass the node's expected
    peer count (its overlay degree) to avoid both regrowth copies and
    slack slots.
    @raise Invalid_argument if [stride <= 0]. *)

val copy : t -> t
(** An independent clone: one [Array.copy] of the backing floats; the
    peer table is shared copy-on-write and re-copied structurally
    ([Hashtbl.copy]) only if either side later inserts or removes a
    row.  Iteration order — and with it every aggregation's summation
    order — is bit-for-bit the original's in both regimes.
    O(capacity), no per-row boxing, and no table cost for clones that
    only rewrite existing rows (a converged network's update waves). *)

val stride : t -> int

val data : t -> float array
(** The current backing array.  Offsets from {!find}/{!ensure}/{!iter}
    index into it.  Invalidated by growth — do not hold across
    {!ensure}. *)

val count : t -> int
(** Number of rows present. *)

val mem : t -> int -> bool

val find : t -> int -> int option
(** Offset of the peer's row into {!data}, if present. *)

val ensure : t -> int -> int
(** Offset of the peer's row, allocating a zeroed row (recycling freed
    slots, growing the backing array as needed) when absent. *)

val remove : t -> int -> unit
(** Drop the peer's row and recycle its slot (zeroed).  No-op when
    absent. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f peer offset] for every row, in the peer table's
    iteration order — the order float aggregation must use to stay
    bit-identical with the boxed representation. *)

val set_stamp : t -> int -> int -> unit
(** [set_stamp t peer wave] records the logical update-wave id that last
    wrote the peer's row — provenance lineage for the observability
    plane.  No-op when the peer has no row. *)

val stamp : t -> int -> int
(** The wave id recorded by {!set_stamp}; [0] for rows untouched since
    construction or peers without a row.  Stamps survive {!copy}, move
    with growth, and reset to 0 on {!remove}. *)

val peers : t -> int list
(** Peers with a row, in increasing id order. *)

val capacity_words : t -> int
(** Allocated length of the backing array (slots, not rows) — the
    store's memory footprint for the scale experiment's bytes-per-node
    metric. *)
