(** Flat structure-of-arrays storage for routing-index rows.

    One contiguous backing buffer per node holds all peer rows; each row
    is [stride] consecutive cells at the offset returned by {!find} /
    {!ensure}.  Rows are addressed through a peer -> slot table whose
    iteration order deliberately mirrors the per-peer hash tables this
    store replaced, so aggregation (float summation) order — and with it
    every figure in the paper reproduction — is bit-for-bit unchanged.

    Two cell formats share this interface:

    - exact (default): one IEEE double per cell, exposed raw through
      {!data} so the arithmetic kernels ([Ri_util.Vecf] slice
      operations, [Estimator.goodness_flat]) run over it with zero
      intermediate allocation.  A reference obtained from {!data} is
      invalidated by any subsequent {!ensure} that grows the store.

    - quantized ({!quant_config}): log-scale bucketed topic counts
      bit-packed at [bits] per cell — the paper's §6 compression
      argument applied to the resident store.  Rows are read through
      {!decode_row} (typically into the per-domain {!scratch}) and
      written through {!encode_row}; {!data} raises.  Relative cell
      error is bounded by {!quant_rel_error_bound}. *)

type t

(** Log-scale quantization parameters: cell [v > 0] is stored as
    [round(log1p v / gamma)] in [bits] bits where
    [gamma = log1p vmax / (2^bits - 1)]; [v <= 0] is stored as exact
    zero.  Codes decode through a precomputed [expm1] table, so
    [encode (decode k) = k] — re-encoding a decoded row is lossless. *)
type quant_config = { bits : int;  (** cell width, 1..16 *) vmax : float }

val default_quant : quant_config
(** 8 bits, [vmax = 1e9]: ~7% worst-case relative cell error, 8x
    smaller rows than exact. *)

val create : ?rows:int -> ?quant:quant_config -> stride:int -> unit -> t
(** An empty store whose rows are [stride] cells wide.  [rows] (default
    4, minimum 1) pre-sizes the backing buffer; pass the node's expected
    peer count (its overlay degree) to avoid both regrowth copies and
    slack slots.  [quant] selects the bit-packed format.
    @raise Invalid_argument if [stride <= 0] or [quant] is out of
    range. *)

val copy : t -> t
(** An independent clone: one blit of the backing cells; the peer table
    is shared copy-on-write and re-copied structurally ([Hashtbl.copy])
    only if either side later inserts or removes a row.  Iteration
    order — and with it every aggregation's summation order — is
    bit-for-bit the original's in both regimes.  O(capacity), no
    per-row boxing, and no table cost for clones that only rewrite
    existing rows (a converged network's update waves). *)

val stride : t -> int

val data : t -> float array
(** The current backing array of an exact store.  Offsets from
    {!find}/{!ensure}/{!iter} index into it.  Invalidated by growth — do
    not hold across {!ensure}.
    @raise Invalid_argument on a quantized store ({!quantized}). *)

val quantized : t -> bool

val quant : t -> quant_config option
(** The quantizer in effect, [None] for exact stores. *)

val count : t -> int
(** Number of rows present. *)

val mem : t -> int -> bool

val find : t -> int -> int option
(** Offset of the peer's row, if present. *)

val ensure : t -> int -> int
(** Offset of the peer's row, allocating a zeroed row (recycling freed
    slots, growing the backing buffer as needed) when absent. *)

val remove : t -> int -> unit
(** Drop the peer's row and recycle its slot (zeroed).  No-op when
    absent. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f peer offset] for every row, in the peer table's
    iteration order — the order float aggregation must use to stay
    bit-identical with the boxed representation.  A store rebuilt by
    {!of_loaded} instead replays the explicit peer order recorded at
    save time, which is that table's live order by construction. *)

val iteration_peers : t -> int array
(** The peers exactly as {!iter} will visit them — recorded into
    snapshots so {!of_loaded} can replay the order. *)

val decode_row : t -> int -> float array -> unit
(** [decode_row t off dst] expands the row at offset [off] into
    [dst.(0 .. stride-1)] ([dst] must be at least [stride] long) —
    a plain blit on exact stores, a table-driven unpack on quantized
    ones. *)

val encode_row : t -> int -> float array -> unit
(** [encode_row t off src] stores [src.(0 .. stride-1)] as the row at
    offset [off], quantizing if the store is quantized. *)

val scratch : t -> float array
(** A per-domain decode buffer of at least [stride t] cells, for
    transient {!decode_row} results consumed before the next call on
    the same domain.  Distinct domains get distinct buffers, so pool
    workers may decode concurrently. *)

val quant_rel_error_bound : quant_config -> float
(** Worst-case relative error of one decode(encode) round trip for
    cells in [(0, vmax]]: [expm1 (gamma / 2)]. *)

val set_stamp : t -> int -> int -> unit
(** [set_stamp t peer wave] records the logical update-wave id that last
    wrote the peer's row — provenance lineage for the observability
    plane.  No-op when the peer has no row. *)

val stamp : t -> int -> int
(** The wave id recorded by {!set_stamp}; [0] for rows untouched since
    construction or peers without a row.  Stamps survive {!copy}, move
    with growth, and reset to 0 on {!remove}. *)

val peers : t -> int list
(** Peers with a row, in increasing id order. *)

val capacity_words : t -> int
(** Allocated backing size in 8-byte words (exact: array length in
    cells; quantized: packed bytes rounded up) — kept for the
    storage-words accounting in the schemes. *)

val capacity_bytes : t -> int
(** Allocated backing size in bytes — the honest footprint for the
    scale experiment's bytes-per-node metric (8 x cells when exact,
    packed-code bytes when quantized). *)

(** {2 Snapshot support}

    Raw access to the packed representation, used only by the snapshot
    writer/loader. *)

val row_code_bytes : t -> int
(** Packed bytes per row of a quantized store.
    @raise Invalid_argument on an exact store. *)

val blit_row_codes : t -> int -> bytes -> int -> unit
(** [blit_row_codes t off dst dpos] copies the packed codes of the row
    at offset [off] into [dst] at [dpos].
    @raise Invalid_argument on an exact store. *)

val of_loaded :
  stride:int ->
  ?quant:quant_config ->
  peers:int array ->
  stamps:int array ->
  [ `Floats of float array | `Codes of bytes ] ->
  t
(** Rebuild a store from snapshot sections: [peers] lists the rows in
    their recorded iteration order (slot [i] belongs to [peers.(i)]),
    [stamps] carries the per-row wave stamps, and the payload holds the
    rows back to back — [`Floats] of length [n * stride] for exact
    stores, [`Codes] of [n * row_code_bytes] for quantized ones.
    {!iter} on the result visits [peers] in the given order, preserving
    the saved store's float summation order bit for bit.
    @raise Invalid_argument on length mismatches, duplicate peers, or a
    payload that contradicts [quant]. *)
