open Ri_content

let goodness (s : Summary.t) query =
  if s.total <= 0. then 0.
  else
    List.fold_left
      (fun acc topic -> acc *. (Summary.get s topic /. s.total))
      s.total query

(* Same estimate over a flat routing-index row: slot [pos] is the total,
   slots [pos+1 .. pos+width] the per-topic counts.  The arithmetic —
   including evaluation order and the out-of-range error [Summary.get]
   would raise — mirrors [goodness] exactly, so flat and boxed ranking
   agree bit for bit. *)
let goodness_flat d ~pos ~width query =
  let total = d.(pos) in
  if total <= 0. then 0.
  else
    List.fold_left
      (fun acc topic ->
        if topic < 0 || topic >= width then
          invalid_arg "Summary.get: topic out of range";
        acc *. (d.(pos + 1 + topic) /. total))
      total query

let documents_per_message ~goodness ~messages =
  if messages <= 0. then 0. else goodness /. messages
