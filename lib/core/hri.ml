open Ri_content

type t = {
  horizon : int;
  tail : bool;  (* hybrid CRI-HRI: keep a beyond-horizon aggregate *)
  cost : Cost_model.t;
  width : int;
  mutable local : Summary.t;
  rows : (int, Summary.t array) Hashtbl.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Hri.%s: summary width mismatch" name)

let make_t ~tail ~horizon ~cost ~width ~local =
  if horizon <= 0 then invalid_arg "Hri.create: horizon must be positive";
  if width <= 0 then invalid_arg "Hri.create: width must be positive";
  let t = { horizon; tail; cost; width; local; rows = Hashtbl.create 8 } in
  check_width t local "create";
  t

let create ~horizon ~cost ~width ~local =
  make_t ~tail:false ~horizon ~cost ~width ~local

let create_hybrid ~horizon ~cost ~width ~local =
  make_t ~tail:true ~horizon ~cost ~width ~local

let has_tail t = t.tail

let row_length t = t.horizon + if t.tail then 1 else 0

let horizon t = t.horizon

let cost_model t = t.cost

let width t = t.width

let local t = t.local

let set_local t s =
  check_width t s "set_local";
  t.local <- s

let set_row t ~peer r =
  if Array.length r <> row_length t then
    invalid_arg "Hri.set_row: row length must equal the horizon";
  Array.iter (fun s -> check_width t s "set_row") r;
  Hashtbl.replace t.rows peer r

let row t ~peer = Hashtbl.find_opt t.rows peer

let remove_row t ~peer = Hashtbl.remove t.rows peer

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.rows [] |> List.sort compare

let peer_count t = Hashtbl.length t.rows

(* Clamped subtraction, built without [Summary.make]'s copy/validate:
   runs per (peer, hop slot) per export. *)
let minus (a : Summary.t) (b : Summary.t) =
  let n = Array.length a.by_topic in
  let by_topic = Array.make n 0. in
  for i = 0 to n - 1 do
    by_topic.(i) <- Float.max 0. (a.by_topic.(i) -. b.by_topic.(i))
  done;
  { Summary.total = Float.max 0. (a.total -. b.total); by_topic }

(* Sum of all rows, per slot, accumulated in place: one allocation per
   slot instead of one per (row, slot), since exports run once per node
   per index build. *)
let aggregate_rows t =
  let len = row_length t in
  let totals = Array.make len 0. in
  let by_topic = Array.init len (fun _ -> Array.make t.width 0.) in
  Hashtbl.iter
    (fun _ r ->
      for h = 0 to len - 1 do
        let (s : Summary.t) = r.(h) in
        totals.(h) <- totals.(h) +. s.total;
        let bt = s.by_topic
        and acc = by_topic.(h) in
        for i = 0 to t.width - 1 do
          acc.(i) <- acc.(i) +. bt.(i)
        done
      done)
    t.rows;
  Array.init len (fun h -> { Summary.total = totals.(h); by_topic = by_topic.(h) })

(* Shift the aggregate one hop outward.  Plain HRI discards the column
   that crosses the horizon; the hybrid merges it into the tail slot, so
   the compound-style aggregate beyond the horizon stays complete. *)
let shift_with_local t agg =
  if not t.tail then
    Array.init t.horizon (fun h -> if h = 0 then t.local else agg.(h - 1))
  else
    Array.init (t.horizon + 1) (fun h ->
        if h = 0 then t.local
        else if h < t.horizon then agg.(h - 1)
        else Summary.add agg.(t.horizon - 1) agg.(t.horizon))

let export t ~exclude =
  let agg = aggregate_rows t in
  let agg =
    match exclude with
    | None -> agg
    | Some peer -> (
        match row t ~peer with
        | None -> agg
        | Some r -> Array.mapi (fun h s -> minus s r.(h)) agg)
  in
  shift_with_local t agg

let export_all t =
  let agg = aggregate_rows t in
  peers t
  |> List.map (fun p ->
         let r = Hashtbl.find t.rows p in
         let without = Array.mapi (fun h s -> minus s r.(h)) agg in
         (p, shift_with_local t without))

(* In hybrid mode the tail slot sits at index [horizon] and is
   discounted as if everything in it were horizon+1 hops away — the
   hop_count_goodness formula already does exactly that for a per-hop
   array one slot longer. *)
let goodness_of_row t r query =
  let per_hop = Array.map (fun s -> Estimator.goodness s query) r in
  Cost_model.hop_count_goodness t.cost ~per_hop_goodness:per_hop

let goodness t ~peer ~query =
  match row t ~peer with
  | None -> 0.
  | Some r -> goodness_of_row t r query

let iter_goodness t ~query f =
  Hashtbl.iter (fun p r -> f p (goodness_of_row t r query)) t.rows

let total_beyond_hop t ~peer ~hop =
  match row t ~peer with
  | None -> 0.
  | Some r ->
      let acc = ref 0. in
      for h = hop to row_length t - 1 do
        acc := !acc +. r.(h).Summary.total
      done;
      !acc
