open Ri_util
open Ri_content

(* Hop-striped flat rows: each peer row is [row_length] summary slots
   laid out consecutively, slot [h] at [off + h * (1 + width)], each
   slot [total; by_topic...].  One contiguous float array holds every
   row — see {!Cri} for the store layout and {!Rowstore} for the
   bit-identity contract on iteration order. *)
type t = {
  horizon : int;
  tail : bool;  (* hybrid CRI-HRI: keep a beyond-horizon aggregate *)
  cost : Cost_model.t;
  width : int;
  mutable local : Summary.t;
  store : Rowstore.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Hri.%s: summary width mismatch" name)

let make_t ?rows ?quant ~tail ~horizon ~cost ~width ~local () =
  if horizon <= 0 then invalid_arg "Hri.create: horizon must be positive";
  if width <= 0 then invalid_arg "Hri.create: width must be positive";
  let slots = horizon + if tail then 1 else 0 in
  let t =
    {
      horizon;
      tail;
      cost;
      width;
      local;
      store = Rowstore.create ?rows ?quant ~stride:(slots * (1 + width)) ();
    }
  in
  check_width t local "create";
  t

let create ?rows ?quant ~horizon ~cost ~width ~local () =
  make_t ?rows ?quant ~tail:false ~horizon ~cost ~width ~local ()

let create_hybrid ?rows ?quant ~horizon ~cost ~width ~local () =
  make_t ?rows ?quant ~tail:true ~horizon ~cost ~width ~local ()

let store t = t.store

let copy t = { t with store = Rowstore.copy t.store }

let has_tail t = t.tail

let row_length t = t.horizon + if t.tail then 1 else 0

let horizon t = t.horizon

let cost_model t = t.cost

let width t = t.width

let local t = t.local

let set_local t s =
  check_width t s "set_local";
  t.local <- s

(* Summary slot width inside a row. *)
let sw t = 1 + t.width

let with_store t store =
  if Rowstore.stride store <> row_length t * sw t then
    invalid_arg "Hri.with_store: stride mismatch";
  { t with store }

let set_row t ~peer r =
  if Array.length r <> row_length t then
    invalid_arg "Hri.set_row: row length must equal the horizon";
  Array.iter (fun s -> check_width t s "set_row") r;
  let off = Rowstore.ensure t.store peer in
  let sw = sw t in
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    Array.iteri
      (fun h (s : Summary.t) ->
        let pos = h * sw in
        buf.(pos) <- s.total;
        Array.blit s.by_topic 0 buf (pos + 1) t.width)
      r;
    Rowstore.encode_row t.store off buf
  end
  else
    let d = Rowstore.data t.store in
    Array.iteri
      (fun h (s : Summary.t) ->
        let pos = off + (h * sw) in
        d.(pos) <- s.total;
        Array.blit s.by_topic 0 d (pos + 1) t.width)
      r

let row t ~peer =
  match Rowstore.find t.store peer with
  | None -> None
  | Some off ->
      let sw = sw t in
      if Rowstore.quantized t.store then begin
        let buf = Rowstore.scratch t.store in
        Rowstore.decode_row t.store off buf;
        Some
          (Array.init (row_length t) (fun h ->
               let pos = h * sw in
               {
                 Summary.total = buf.(pos);
                 by_topic = Array.sub buf (pos + 1) t.width;
               }))
      end
      else
        let d = Rowstore.data t.store in
        Some
          (Array.init (row_length t) (fun h ->
               let pos = off + (h * sw) in
               {
                 Summary.total = d.(pos);
                 by_topic = Array.sub d (pos + 1) t.width;
               }))

let remove_row t ~peer = Rowstore.remove t.store peer

let stamp_row t ~peer wave = Rowstore.set_stamp t.store peer wave

let row_stamp t ~peer = Rowstore.stamp t.store peer

let peers t = Rowstore.peers t.store

let peer_count t = Rowstore.count t.store

let storage_words t = 1 + t.width + Rowstore.capacity_words t.store

(* Sum of all rows, per slot, accumulated off the flat store in row
   table order (the bit-identity contract): one allocation per slot
   instead of one per (row, slot). *)
let aggregate_rows t =
  let len = row_length t in
  let sw = sw t in
  let totals = Array.make len 0. in
  let by_topic = Array.init len (fun _ -> Array.make t.width 0.) in
  (if Rowstore.quantized t.store then begin
     let buf = Rowstore.scratch t.store in
     Rowstore.iter t.store (fun _ off ->
         Rowstore.decode_row t.store off buf;
         for h = 0 to len - 1 do
           let pos = h * sw in
           totals.(h) <- totals.(h) +. buf.(pos);
           Vecf.add_slice ~dst:by_topic.(h) ~dst_pos:0 buf ~src_pos:(pos + 1)
             ~len:t.width
         done)
   end
   else
     let d = Rowstore.data t.store in
     Rowstore.iter t.store (fun _ off ->
         for h = 0 to len - 1 do
           let pos = off + (h * sw) in
           totals.(h) <- totals.(h) +. d.(pos);
           Vecf.add_slice ~dst:by_topic.(h) ~dst_pos:0 d ~src_pos:(pos + 1)
             ~len:t.width
         done));
  Array.init len (fun h ->
      { Summary.total = totals.(h); by_topic = by_topic.(h) })

(* Aggregate minus one flat row, clamped, slot by slot — per peer per
   export, built without [Summary.make]'s copy/validate. *)
let minus_row t agg off =
  let sw = sw t in
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    Rowstore.decode_row t.store off buf;
    Array.mapi
      (fun h (s : Summary.t) ->
        let pos = h * sw in
        let by_topic = Array.copy s.Summary.by_topic in
        Vecf.sub_clamp_slice ~dst:by_topic ~dst_pos:0 buf ~src_pos:(pos + 1)
          ~len:t.width;
        let total = s.Summary.total -. buf.(pos) in
        { Summary.total = (if total > 0. then total else 0.); by_topic })
      agg
  end
  else
    let d = Rowstore.data t.store in
    Array.mapi
      (fun h (s : Summary.t) ->
        let pos = off + (h * sw) in
        let by_topic = Array.copy s.Summary.by_topic in
        Vecf.sub_clamp_slice ~dst:by_topic ~dst_pos:0 d ~src_pos:(pos + 1)
          ~len:t.width;
        let total = s.Summary.total -. d.(pos) in
        { Summary.total = (if total > 0. then total else 0.); by_topic })
      agg

(* Shift the aggregate one hop outward.  Plain HRI discards the column
   that crosses the horizon; the hybrid merges it into the tail slot, so
   the compound-style aggregate beyond the horizon stays complete. *)
let shift_with_local t agg =
  if not t.tail then
    Array.init t.horizon (fun h -> if h = 0 then t.local else agg.(h - 1))
  else
    Array.init (t.horizon + 1) (fun h ->
        if h = 0 then t.local
        else if h < t.horizon then agg.(h - 1)
        else Summary.add agg.(t.horizon - 1) agg.(t.horizon))

let export t ~exclude =
  let agg = aggregate_rows t in
  let agg =
    match exclude with
    | None -> agg
    | Some peer -> (
        match Rowstore.find t.store peer with
        | None -> agg
        | Some off -> minus_row t agg off)
  in
  shift_with_local t agg

let export_all t =
  let agg = aggregate_rows t in
  peers t
  |> List.map (fun p ->
         match Rowstore.find t.store p with
         | Some off -> (p, shift_with_local t (minus_row t agg off))
         | None -> assert false)

(* See {!Cri.export_except}: per-peer exports are independent given the
   aggregate, so skipping the [except] peers is bit-identical. *)
let export_except t ~except =
  let agg = aggregate_rows t in
  peers t
  |> List.filter_map (fun p ->
         if List.exists (fun (e : int) -> e = p) except then None
         else
           match Rowstore.find t.store p with
           | Some off -> Some (p, shift_with_local t (minus_row t agg off))
           | None -> assert false)

(* In hybrid mode the tail slot sits at index [horizon] and is
   discounted as if everything in it were horizon+1 hops away.  Per-hop
   goodness runs straight over the flat row — no intermediate per-hop
   array — accumulating in the same slot order as the boxed
   [Cost_model.hop_count_goodness] pass did. *)
let goodness_at t d ~off query =
  let sw = sw t in
  let acc = ref 0. in
  for h = 0 to row_length t - 1 do
    let g = Estimator.goodness_flat d ~pos:(off + (h * sw)) ~width:t.width query in
    acc := !acc +. (g *. Cost_model.discount t.cost ~hop:(h + 1))
  done;
  !acc

let goodness t ~peer ~query =
  match Rowstore.find t.store peer with
  | None -> 0.
  | Some off ->
      if Rowstore.quantized t.store then begin
        let buf = Rowstore.scratch t.store in
        Rowstore.decode_row t.store off buf;
        goodness_at t buf ~off:0 query
      end
      else goodness_at t (Rowstore.data t.store) ~off query

let iter_goodness t ~query f =
  if Rowstore.quantized t.store then begin
    let buf = Rowstore.scratch t.store in
    Rowstore.iter t.store (fun p off ->
        Rowstore.decode_row t.store off buf;
        f p (goodness_at t buf ~off:0 query))
  end
  else
    let d = Rowstore.data t.store in
    Rowstore.iter t.store (fun p off -> f p (goodness_at t d ~off query))

let total_beyond_hop t ~peer ~hop =
  match Rowstore.find t.store peer with
  | None -> 0.
  | Some off ->
      let sw = sw t in
      let acc = ref 0. in
      (if Rowstore.quantized t.store then begin
         let buf = Rowstore.scratch t.store in
         Rowstore.decode_row t.store off buf;
         for h = hop to row_length t - 1 do
           acc := !acc +. buf.(h * sw)
         done
       end
       else
         let d = Rowstore.data t.store in
         for h = hop to row_length t - 1 do
           acc := !acc +. d.(off + (h * sw))
         done);
      !acc
