open Ri_content

type kind =
  | Cri_kind
  | Hri_kind of { horizon : int; fanout : float }
  | Eri_kind of { fanout : float }
  | Hybrid_kind of { horizon : int; fanout : float }

let kind_name = function
  | Cri_kind -> "CRI"
  | Hri_kind _ -> "HRI"
  | Eri_kind _ -> "ERI"
  | Hybrid_kind _ -> "HYB"

let pp_kind ppf = function
  | Cri_kind -> Format.pp_print_string ppf "CRI"
  | Hri_kind { horizon; fanout } ->
      Format.fprintf ppf "HRI(horizon=%d, F=%g)" horizon fanout
  | Eri_kind { fanout } -> Format.fprintf ppf "ERI(F=%g)" fanout
  | Hybrid_kind { horizon; fanout } ->
      Format.fprintf ppf "HYB(horizon=%d, F=%g)" horizon fanout

type payload = Vector of Summary.t | Hop_vector of Summary.t array

type t = C of Cri.t | H of Hri.t | E of Eri.t

let create ?rows ?quant k ~width ~local =
  match k with
  | Cri_kind -> C (Cri.create ?rows ?quant ~width ~local ())
  | Hri_kind { horizon; fanout } ->
      H
        (Hri.create ?rows ?quant ~horizon ~cost:(Cost_model.make ~fanout)
           ~width ~local ())
  | Hybrid_kind { horizon; fanout } ->
      H
        (Hri.create_hybrid ?rows ?quant ~horizon ~cost:(Cost_model.make ~fanout)
           ~width ~local ())
  | Eri_kind { fanout } -> E (Eri.create ?rows ?quant ~fanout ~width ~local ())

let rowstore = function
  | C c -> Cri.store c
  | H h -> Hri.store h
  | E e -> Eri.store e

let with_rowstore t store =
  match t with
  | C c -> C (Cri.with_store c store)
  | H h -> H (Hri.with_store h store)
  | E e -> E (Eri.with_store e store)

let kind = function
  | C _ -> Cri_kind
  | H h ->
      let horizon = Hri.horizon h
      and fanout = Cost_model.fanout (Hri.cost_model h) in
      if Hri.has_tail h then Hybrid_kind { horizon; fanout }
      else Hri_kind { horizon; fanout }
  | E e -> Eri_kind { fanout = Eri.fanout e }

let width = function
  | C c -> Cri.width c
  | H h -> Hri.width h
  | E e -> Eri.width e

let local = function
  | C c -> Cri.local c
  | H h -> Hri.local h
  | E e -> Eri.local e

let copy = function
  | C c -> C (Cri.copy c)
  | H h -> H (Hri.copy h)
  | E e -> E (Eri.copy e)

let set_local t s =
  match t with
  | C c -> Cri.set_local c s
  | H h -> Hri.set_local h s
  | E e -> Eri.set_local e s

let shape_error () =
  invalid_arg "Scheme.set_row: payload shape does not match the scheme"

let set_row t ~peer payload =
  match (t, payload) with
  | C c, Vector s -> Cri.set_row c ~peer s
  | H h, Hop_vector r -> Hri.set_row h ~peer r
  | E e, Vector s -> Eri.set_row e ~peer s
  | (C _ | E _), Hop_vector _ | H _, Vector _ -> shape_error ()

let row t ~peer =
  match t with
  | C c -> Option.map (fun s -> Vector s) (Cri.row c ~peer)
  | H h -> Option.map (fun r -> Hop_vector r) (Hri.row h ~peer)
  | E e -> Option.map (fun s -> Vector s) (Eri.row e ~peer)

let remove_row t ~peer =
  match t with
  | C c -> Cri.remove_row c ~peer
  | H h -> Hri.remove_row h ~peer
  | E e -> Eri.remove_row e ~peer

let stamp_row t ~peer wave =
  match t with
  | C c -> Cri.stamp_row c ~peer wave
  | H h -> Hri.stamp_row h ~peer wave
  | E e -> Eri.stamp_row e ~peer wave

let row_stamp t ~peer =
  match t with
  | C c -> Cri.row_stamp c ~peer
  | H h -> Hri.row_stamp h ~peer
  | E e -> Eri.row_stamp e ~peer

let peers = function
  | C c -> Cri.peers c
  | H h -> Hri.peers h
  | E e -> Eri.peers e

let export t ~exclude =
  match t with
  | C c -> Vector (Cri.export c ~exclude)
  | H h -> Hop_vector (Hri.export h ~exclude)
  | E e -> Vector (Eri.export e ~exclude)

let export_all t =
  match t with
  | C c -> List.map (fun (p, s) -> (p, Vector s)) (Cri.export_all c)
  | H h -> List.map (fun (p, r) -> (p, Hop_vector r)) (Hri.export_all h)
  | E e -> List.map (fun (p, s) -> (p, Vector s)) (Eri.export_all e)

let export_except t ~except =
  match t with
  | C c -> List.map (fun (p, s) -> (p, Vector s)) (Cri.export_except c ~except)
  | H h ->
      List.map (fun (p, r) -> (p, Hop_vector r)) (Hri.export_except h ~except)
  | E e -> List.map (fun (p, s) -> (p, Vector s)) (Eri.export_except e ~except)

let goodness t ~peer ~query =
  match t with
  | C c -> Cri.goodness c ~peer ~query
  | H h -> Hri.goodness h ~peer ~query
  | E e -> Eri.goodness e ~peer ~query

let peer_count = function
  | C c -> Cri.peer_count c
  | H h -> Hri.peer_count h
  | E e -> Eri.peer_count e

let iter_goodness t ~query f =
  match t with
  | C c -> Cri.iter_goodness c ~query f
  | H h -> Hri.iter_goodness h ~query f
  | E e -> Eri.iter_goodness e ~query f

(* Goodness descending, peer id ascending: a total order over distinct
   peers, so the ranking is independent of row iteration order. *)
let compare_ranked (p1, g1) (p2, g2) =
  match Float.compare g2 g1 with 0 -> Int.compare p1 p2 | c -> c

let rank_array t ~query ~keep =
  let buf = Array.make (peer_count t) (0, 0.) in
  let count = ref 0 in
  iter_goodness t ~query (fun p g ->
      if keep p then begin
        buf.(!count) <- (p, g);
        incr count
      end);
  let arr = if !count = Array.length buf then buf else Array.sub buf 0 !count in
  Array.sort compare_ranked arr;
  arr

let rank_peers t ~query ~keep =
  Array.fold_right (fun (p, _) acc -> p :: acc) (rank_array t ~query ~keep) []

let rank t ~query ~exclude =
  (* Exclude lists are tiny (typically 0-2 entries): specialize the
     common shapes into direct comparisons so the closure allocates no
     intermediate structure at all, and fall back to a list scan (ints
     compare physically) for longer lists. *)
  let keep =
    match exclude with
    | [] -> fun _ -> true
    | [ a ] -> fun p -> p <> a
    | [ a; b ] -> fun p -> p <> a && p <> b
    | excl -> fun p -> not (List.memq p excl)
  in
  Array.to_list (rank_array t ~query ~keep)

let payload_zero k ~width =
  match k with
  | Cri_kind | Eri_kind _ -> Vector (Summary.zero ~topics:width)
  | Hri_kind { horizon; _ } ->
      Hop_vector (Array.init horizon (fun _ -> Summary.zero ~topics:width))
  | Hybrid_kind { horizon; _ } ->
      Hop_vector (Array.init (horizon + 1) (fun _ -> Summary.zero ~topics:width))

let payload_rel_diff a b =
  match (a, b) with
  | Vector x, Vector y -> Summary.max_rel_diff x y
  | Hop_vector x, Hop_vector y ->
      if Array.length x <> Array.length y then infinity
      else begin
        let worst = ref 0. in
        Array.iteri
          (fun i sx -> worst := Float.max !worst (Summary.max_rel_diff sx y.(i)))
          x;
        !worst
      end
  | Vector _, Hop_vector _ | Hop_vector _, Vector _ -> infinity

(* Early-exit form of [payload_rel_diff a b > threshold]: the max over
   entries exceeds the threshold iff some entry does, so the scan can
   stop at the first hit instead of computing the full max.  This is the
   significance test every delivered update message runs. *)
let summary_exceeds_rel (x : Summary.t) (y : Summary.t) ~threshold =
  let exceeds old_ new_ =
    Float.abs (new_ -. old_) /. Float.max (Float.abs old_) 1. > threshold
  in
  Summary.topics x <> Summary.topics y
  || exceeds x.Summary.total y.Summary.total
  ||
  let xb = x.Summary.by_topic and yb = y.Summary.by_topic in
  let n = Array.length xb in
  let rec go i = i < n && (exceeds xb.(i) yb.(i) || go (i + 1)) in
  go 0

let payload_exceeds_rel a b ~threshold =
  match (a, b) with
  | Vector x, Vector y -> summary_exceeds_rel x y ~threshold
  | Hop_vector x, Hop_vector y ->
      Array.length x <> Array.length y
      ||
      let n = Array.length x in
      let rec go i =
        i < n && (summary_exceeds_rel x.(i) y.(i) ~threshold || go (i + 1))
      in
      go 0
  | Vector _, Hop_vector _ | Hop_vector _, Vector _ ->
      (* A shape change is always significant. *)
      true

(* Entries whose value differs between two payloads of the same shape —
   what a sparse (index, delta) update encoding would ship.  A shape or
   width mismatch can only be sent dense: every entry counts. *)
let summary_changed_entries (x : Summary.t) (y : Summary.t) =
  if Summary.topics x <> Summary.topics y then 1 + Summary.topics y
  else begin
    let n = ref (if x.Summary.total <> y.Summary.total then 1 else 0) in
    let xb = x.Summary.by_topic and yb = y.Summary.by_topic in
    for i = 0 to Array.length xb - 1 do
      if xb.(i) <> yb.(i) then incr n
    done;
    !n
  end

let payload_entries = function
  | Vector s -> 1 + Summary.topics s
  | Hop_vector r ->
      if Array.length r = 0 then 0
      else Array.length r * (1 + Summary.topics r.(0))

let payload_changed_entries a b =
  match (a, b) with
  | Vector x, Vector y -> summary_changed_entries x y
  | Hop_vector x, Hop_vector y when Array.length x = Array.length y ->
      let acc = ref 0 in
      Array.iteri
        (fun i sx -> acc := !acc + summary_changed_entries sx y.(i))
        x;
      !acc
  | _ -> payload_entries b

let payload_distance a b =
  match (a, b) with
  | Vector x, Vector y -> Summary.euclidean_distance x y
  | Hop_vector x, Hop_vector y ->
      if Array.length x <> Array.length y then infinity
      else begin
        let acc = ref 0. in
        Array.iteri
          (fun i sx ->
            let d = Summary.euclidean_distance sx y.(i) in
            acc := !acc +. (d *. d))
          x;
        sqrt !acc
      end
  | Vector _, Hop_vector _ | Hop_vector _, Vector _ -> infinity

let payload_total = function
  | Vector s -> s.Summary.total
  | Hop_vector r -> Array.fold_left (fun acc s -> acc +. s.Summary.total) 0. r

let storage_entries k ~width ~neighbors =
  if width <= 0 || neighbors < 0 then
    invalid_arg "Scheme.storage_entries: bad dimensions";
  let per_summary = 1 + width in
  let slots =
    match k with
    | Cri_kind | Eri_kind _ -> 1
    | Hri_kind { horizon; _ } -> horizon
    | Hybrid_kind { horizon; _ } -> horizon + 1
  in
  (* One local-summary row plus one row per neighbor. *)
  (neighbors + 1) * slots * per_summary

(* The local summary stays a float row either way; only the peer-row
   store may be bit-packed, so its own byte accounting is authoritative. *)
let storage_bytes t =
  (8 * (1 + width t)) + Rowstore.capacity_bytes (rowstore t)

let payload_perturb rng ~relative_stddev ~kind payload =
  let f = Compression.perturb rng ~relative_stddev ~kind in
  match payload with
  | Vector s -> Vector (f s)
  | Hop_vector r -> Hop_vector (Array.map f r)
