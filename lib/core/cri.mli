(** Compound Routing Index (Sections 4-5).

    One CRI lives at each node.  It holds a summary of the node's own
    local index plus, per neighbor, the aggregate summary of {e all}
    documents reachable through that neighbor, with no hop information:
    "we can access 1000 documents through C (i.e., there are 1000
    documents in C, G and H)".

    Aggregation for export "is done by adding all the vectors in the RI"
    (Section 4.2), excluding the row of the neighbor the export is sent
    to. *)

type t

val create :
  ?rows:int ->
  ?quant:Rowstore.quant_config ->
  width:int ->
  local:Ri_content.Summary.t ->
  unit ->
  t
(** [width] is the topic-vector width (after any index compression);
    [rows] pre-sizes the row store and [quant] selects the bit-packed
    quantized cell format (see {!Rowstore.create}).
    @raise Invalid_argument if the local summary's width differs. *)

val store : t -> Rowstore.t
(** The underlying row store — snapshot persistence reads it raw. *)

val with_store : t -> Rowstore.t -> t
(** The same index over a replacement row store (sharing the local
    summary) — how snapshot loading rebuilds an index around a store
    reconstructed with {!Rowstore.of_loaded}.
    @raise Invalid_argument if the store's stride does not match. *)

val copy : t -> t
(** An independent clone sharing the (immutable) local summary and
    deep-copying the row store — see {!Rowstore.copy} for the
    iteration-order guarantee that keeps clones bit-identical. *)

val width : t -> int

val local : t -> Ri_content.Summary.t

val set_local : t -> Ri_content.Summary.t -> unit

val set_row : t -> peer:int -> Ri_content.Summary.t -> unit
(** Install or replace the row for [peer]. *)

val row : t -> peer:int -> Ri_content.Summary.t option

val remove_row : t -> peer:int -> unit
(** Forget a neighbor (e.g. on disconnection, Section 4.3).  No-op if
    absent. *)

val stamp_row : t -> peer:int -> int -> unit
(** Record the logical update-wave id that last wrote the peer's row
    (provenance lineage; see {!Rowstore.set_stamp}).  No-op when
    absent. *)

val row_stamp : t -> peer:int -> int
(** The recorded wave id; [0] for build-time or absent rows. *)

val peers : t -> int list
(** Neighbors with a row, in increasing id order. *)

val peer_count : t -> int
(** Number of neighbors with a row, without building the list. *)

val storage_words : t -> int
(** Float slots this index has allocated (local summary plus the flat
    row store's capacity) — the scale experiment's memory metric. *)

val export : t -> exclude:int option -> Ri_content.Summary.t
(** The aggregated RI sent to a neighbor: local summary plus every row
    except [exclude]'s.  In the paper's Figure 5, A aggregates rows
    A/B/C and sends D the vector (1400, 50, 380, 10, 90). *)

val export_all : t -> (int * Ri_content.Summary.t) list
(** [(peer, export ~exclude:peer)] for every peer, computed with one
    pass over the rows (the full aggregate minus each row), so hub nodes
    pay O(degree) rather than O(degree²). *)

val export_except : t -> except:int list -> (int * Ri_content.Summary.t) list
(** {!export_all} restricted to peers not in [except], without computing
    the excluded exports at all — bit-identical to filtering
    {!export_all} (each export depends only on the shared aggregate). *)

val goodness : t -> peer:int -> query:int list -> float
(** {!Estimator.goodness} of the peer's row; [0.] for an unknown peer. *)

val iter_goodness : t -> query:int list -> (int -> float -> unit) -> unit
(** Call [f peer goodness] for every peer with a row, in unspecified
    order and without the per-peer lookup of {!goodness} — the
    forwarding hot path. *)
