open Ri_util

(* Fanout trees are built row-directly rather than through the edge-list
   builder: in the structural tree (node 0 the root, node c's parent
   [(c - 1) / fanout]) every node's neighbor set is a closed form —
   parent [(c - 1) / fanout] plus children [c*fanout + 1 .. c*fanout +
   fanout] capped at [n - 1] — so each sorted adjacency row can be
   emitted independently, and the whole construction parallelizes over
   nodes.  Sorted adjacency is a function of the edge set alone, so the
   result is identical to [Graph.of_edges] over the same edges at any
   pool width. *)

let structural_row ~n ~fanout c =
  let lo = (c * fanout) + 1 in
  let hi = min (n - 1) (c * fanout + fanout) in
  let kids = if hi >= lo then hi - lo + 1 else 0 in
  let has_parent = if c > 0 then 1 else 0 in
  let row = Array.make (has_parent + kids) 0 in
  if has_parent = 1 then row.(0) <- (c - 1) / fanout;
  for i = 0 to kids - 1 do
    row.(has_parent + i) <- lo + i
  done;
  (* Parent < c < first child, children consecutive: already sorted. *)
  row

let regular ~n ~fanout =
  if n <= 0 then invalid_arg "Tree_gen.regular: n must be positive";
  if fanout <= 0 then invalid_arg "Tree_gen.regular: fanout must be positive";
  let adj =
    Pool.map_chunked ~chunk:1024 ~label:"topo_tree" (Pool.global ()) ~n
      (fun c -> structural_row ~n ~fanout c)
  in
  Graph.of_sorted_adjacency adj

let random_labels g ~n ~fanout =
  if n <= 0 then invalid_arg "Tree_gen.random_labels: n must be positive";
  if fanout <= 0 then
    invalid_arg "Tree_gen.random_labels: fanout must be positive";
  (* The permutation consumes the PRNG exactly as the edge-list version
     did, before any parallel work — the stream stays aligned. *)
  let perm = Array.init n Fun.id in
  Prng.shuffle_in_place g perm;
  let adj = Array.make n [||] in
  Pool.iter ~chunk:1024 ~label:"topo_tree" (Pool.global ()) ~n (fun c ->
      let row = structural_row ~n ~fanout c in
      for i = 0 to Array.length row - 1 do
        row.(i) <- perm.(row.(i))
      done;
      Array.sort Int.compare row;
      (* [perm] is a bijection: each index writes a distinct cell. *)
      adj.(perm.(c)) <- row);
  Graph.of_sorted_adjacency adj

let random_attachment g ~n ~max_children =
  if n <= 0 then invalid_arg "Tree_gen.random_attachment: n must be positive";
  if max_children <= 0 then
    invalid_arg "Tree_gen.random_attachment: max_children must be positive";
  let children = Array.make n 0 in
  (* Nodes that can still accept a child, as a swappable pool.  Each
     draw depends on every earlier attachment, so this generator is
     inherently sequential. *)
  let pool = Array.make n 0 in
  let pool_len = ref 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    let slot = Prng.int g !pool_len in
    let parent = pool.(slot) in
    edges := (parent, v) :: !edges;
    children.(parent) <- children.(parent) + 1;
    if children.(parent) >= max_children then begin
      (* Remove saturated parent from the pool. *)
      pool.(slot) <- pool.(!pool_len - 1);
      decr pool_len
    end;
    pool.(!pool_len) <- v;
    incr pool_len
  done;
  Graph.of_edges ~n !edges
