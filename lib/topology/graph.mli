(** Undirected simple graphs over nodes [0 .. n-1].

    The P2P overlay of the paper: nodes are peers, edges are neighbor
    links.  Graphs are immutable once built; construction goes through
    {!of_edges} or {!Builder}.  Adjacency is stored as sorted int arrays,
    giving cache-friendly neighbor iteration for the simulator's hot
    loops. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph.  Self-loops and duplicate edges
    are rejected.  @raise Invalid_argument on out-of-range endpoints,
    self-loops or duplicates. *)

val of_sorted_adjacency : int array array -> t
(** [of_sorted_adjacency adj] adopts [adj] directly as the adjacency
    structure — the zero-copy path for generators that can emit each
    node's sorted row independently (and build rows in parallel).  The
    result is identical to {!of_edges} over the same edge set, since
    sorted adjacency is a function of the edge set alone.  Rows must be
    strictly ascending and mutually symmetric; symmetry is the caller's
    obligation and is not checked.  The arrays are owned by the graph
    afterwards.
    @raise Invalid_argument on empty input, out-of-range ids,
    self-loops, unsorted rows, or an odd half-edge total. *)

val n : t -> int
(** Number of nodes. *)

val edge_count : t -> int
(** Number of (undirected) edges. *)

val neighbors : t -> int -> int array
(** Sorted neighbor ids.  The returned array is owned by the graph; do
    not mutate it. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool
(** Binary search over the adjacency row. *)

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over edges, each visited once with [u < v]. *)

val iter_nodes : (int -> unit) -> t -> unit

val bfs_distances : t -> int -> int array
(** [bfs_distances g src] gives hop counts from [src]; unreachable nodes
    get [max_int]. *)

val bfs_parents : t -> int -> int array
(** First-arrival BFS tree from [src]: [parents.(src) = src], parent of
    an unreachable node is [-1].  Ties between equal-distance parents are
    broken toward the smaller node id, making the tree deterministic. *)

val is_connected : t -> bool

val component_representatives : t -> int list
(** One node id per connected component. *)

val spanning_tree_edges : t -> (int * int) list
(** Edges of a BFS spanning forest (rooted at node 0 and at each later
    component representative). *)

module Builder : sig
  type graph := t

  type t

  val create : n:int -> t

  val add_edge : t -> int -> int -> bool
  (** Adds the edge unless it exists or is a self-loop; returns whether it
      was added.  @raise Invalid_argument on out-of-range endpoints. *)

  val has_edge : t -> int -> int -> bool

  val edge_count : t -> int

  val degree : t -> int -> int

  val to_graph : t -> graph
end
