type t = { adj : int array array; m : int }

let n t = Array.length t.adj

let edge_count t = t.m

let neighbors t v = t.adj.(v)

let degree t v = Array.length t.adj.(v)

(* Rows are sorted with [Int.compare] (see [Builder.to_graph]); the
   bsearch reuses it so lookup and sort can never disagree. *)
let has_edge t u v =
  let row = t.adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = Int.compare row.(mid) v in
      if c = 0 then true
      else if c < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length row)

module Builder = struct
  type t = {
    nodes : int;
    rows : (int, unit) Hashtbl.t array;
    mutable m : int;
  }

  let create ~n =
    if n <= 0 then invalid_arg "Graph.Builder.create: n must be positive";
    { nodes = n; rows = Array.init n (fun _ -> Hashtbl.create 4); m = 0 }

  let check t v =
    if v < 0 || v >= t.nodes then
      invalid_arg "Graph.Builder: node id out of range"

  let has_edge t u v =
    check t u;
    check t v;
    Hashtbl.mem t.rows.(u) v

  let add_edge t u v =
    check t u;
    check t v;
    if u = v || Hashtbl.mem t.rows.(u) v then false
    else begin
      Hashtbl.add t.rows.(u) v ();
      Hashtbl.add t.rows.(v) u ();
      t.m <- t.m + 1;
      true
    end

  let edge_count t = t.m

  let degree t v =
    check t v;
    Hashtbl.length t.rows.(v)

  let to_graph t =
    let adj =
      Array.map
        (fun row ->
          let a = Array.make (Hashtbl.length row) 0 in
          let i = ref 0 in
          Hashtbl.iter
            (fun v () ->
              a.(!i) <- v;
              incr i)
            row;
          (* [Int.compare], not polymorphic [compare]: the generic
             structural compare walks its runtime-type dispatch per
             element pair, measurable on the 100k-node power-law
             build's hub rows. *)
          Array.sort Int.compare a;
          a)
        t.rows
    in
    { adj; m = t.m }
end

(* Direct constructor for generators that can emit each node's sorted
   row independently (and so in parallel).  Validates what can be
   checked per row in one pass — range, self-loops, strict ascending
   order, an even half-edge total — but trusts the caller for symmetry:
   checking it would cost the bsearches the fast path exists to skip. *)
let of_sorted_adjacency adj =
  let n = Array.length adj in
  if n = 0 then invalid_arg "Graph.of_sorted_adjacency: no nodes";
  let total = ref 0 in
  Array.iteri
    (fun u row ->
      total := !total + Array.length row;
      let prev = ref (-1) in
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Graph.of_sorted_adjacency: node id out of range";
          if v = u then invalid_arg "Graph.of_sorted_adjacency: self-loop";
          if v <= !prev then
            invalid_arg "Graph.of_sorted_adjacency: row not strictly ascending";
          prev := v)
        row)
    adj;
  if !total land 1 = 1 then
    invalid_arg "Graph.of_sorted_adjacency: odd half-edge count";
  { adj; m = !total / 2 }

let of_edges ~n edges =
  let b = Builder.create ~n in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      if not (Builder.add_edge b u v) then
        invalid_arg "Graph.of_edges: duplicate edge")
    edges;
  Builder.to_graph b

let edges t =
  let acc = ref [] in
  for u = n t - 1 downto 0 do
    let row = t.adj.(u) in
    for i = Array.length row - 1 downto 0 do
      let v = row.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let fold_edges f t init =
  let acc = ref init in
  for u = 0 to n t - 1 do
    let row = t.adj.(u) in
    for i = 0 to Array.length row - 1 do
      let v = row.(i) in
      if u < v then acc := f u v !acc
    done
  done;
  !acc

let iter_nodes f t =
  for v = 0 to n t - 1 do
    f v
  done

let bfs_run t src ~on_tree_edge =
  let dist = Array.make (n t) max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let row = t.adj.(u) in
    for i = 0 to Array.length row - 1 do
      let v = row.(i) in
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        on_tree_edge ~parent:u ~child:v;
        Queue.add v q
      end
    done
  done;
  dist

let bfs_distances t src =
  bfs_run t src ~on_tree_edge:(fun ~parent:_ ~child:_ -> ())

let bfs_parents t src =
  let parents = Array.make (n t) (-1) in
  parents.(src) <- src;
  let (_ : int array) =
    bfs_run t src ~on_tree_edge:(fun ~parent ~child -> parents.(child) <- parent)
  in
  parents

let is_connected t =
  let dist = bfs_distances t 0 in
  Array.for_all (fun d -> d < max_int) dist

let component_representatives t =
  let seen = Array.make (n t) false in
  let reps = ref [] in
  for v = 0 to n t - 1 do
    if not seen.(v) then begin
      reps := v :: !reps;
      let dist = bfs_distances t v in
      Array.iteri (fun u d -> if d < max_int then seen.(u) <- true) dist
    end
  done;
  List.rev !reps

let spanning_tree_edges t =
  let seen = Array.make (n t) false in
  let acc = ref [] in
  let visit root =
    if not seen.(root) then begin
      seen.(root) <- true;
      let q = Queue.create () in
      Queue.add root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              acc := (min u v, max u v) :: !acc;
              Queue.add v q
            end)
          t.adj.(u)
      done
    end
  in
  List.iter visit (List.init (n t) Fun.id);
  List.rev !acc
