(* Deterministic mergeable quantile sketch (DDSketch-style log buckets).

   A value x > 0 lands in bucket ceil(log_gamma x) with
   gamma = (1 + alpha) / (1 - alpha); the bucket's midpoint estimate
   2*gamma^i / (gamma + 1) is then within relative error [alpha] of any
   value the bucket holds — the bounded-relative-error guarantee the
   property tests verify against an exact sorted reference.

   Everything a sketch accumulates is order-independent by
   construction: bucket counts and the total are integer sums, the
   running sum is kept in integer micro-units (each observation rounded
   once, deterministically), and min/max commute.  Merging per-shard or
   per-trial sketches therefore reaches the same bytes whatever the
   merge order or pool width — the bit-identity contract the rest of
   the observability plane already obeys. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  counts : (int, int ref) Hashtbl.t;  (* bucket index -> count *)
  mutable zero : int;  (* observations <= 0 *)
  mutable total : int;
  mutable sum_micro : int;  (* sum scaled by 1e6, rounded per observation *)
  mutable v_min : float;
  mutable v_max : float;
}

let default_alpha = 0.01

let create ?(alpha = default_alpha) () =
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1. +. alpha) /. (1. -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    counts = Hashtbl.create 64;
    zero = 0;
    total = 0;
    sum_micro = 0;
    v_min = infinity;
    v_max = neg_infinity;
  }

let alpha t = t.alpha

let count t = t.total

let sum t = float_of_int t.sum_micro /. 1e6

let min_value t = if t.total = 0 then 0. else t.v_min

let max_value t = if t.total = 0 then 0. else t.v_max

let bucket_of t x = int_of_float (Float.ceil (log x /. t.log_gamma))

let bucket_value t i = 2. *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.)

let add t x =
  if Float.is_nan x then ()
  else begin
    (if x <= 0. then t.zero <- t.zero + 1
     else begin
       let i = bucket_of t x in
       match Hashtbl.find_opt t.counts i with
       | Some r -> incr r
       | None -> Hashtbl.add t.counts i (ref 1)
     end);
    t.total <- t.total + 1;
    t.sum_micro <- t.sum_micro + int_of_float (Float.round (x *. 1e6));
    if x < t.v_min then t.v_min <- x;
    if x > t.v_max then t.v_max <- x
  end

let merge_into ~dst src =
  if dst.alpha <> src.alpha then
    invalid_arg "Sketch.merge_into: alpha mismatch";
  Hashtbl.iter
    (fun i r ->
      match Hashtbl.find_opt dst.counts i with
      | Some d -> d := !d + !r
      | None -> Hashtbl.add dst.counts i (ref !r))
    src.counts;
  dst.zero <- dst.zero + src.zero;
  dst.total <- dst.total + src.total;
  dst.sum_micro <- dst.sum_micro + src.sum_micro;
  if src.v_min < dst.v_min then dst.v_min <- src.v_min;
  if src.v_max > dst.v_max then dst.v_max <- src.v_max

let merge a b =
  let t = create ~alpha:a.alpha () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let copy t =
  let c = create ~alpha:t.alpha () in
  merge_into ~dst:c t;
  c

(* Sorted (bucket, count) pairs; the canonical order every renderer
   uses, so equal sketches always print equal bytes. *)
let sorted_buckets t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.total = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int (t.total - 1))) in
    if rank < t.zero then 0.
    else begin
      let cum = ref t.zero in
      let result = ref t.v_max in
      (try
         List.iter
           (fun (i, c) ->
             cum := !cum + c;
             if !cum > rank then begin
               result := bucket_value t i;
               raise Exit
             end)
           (sorted_buckets t)
       with Exit -> ());
      (* Clamping to the observed extremes never violates the error
         bound (the true quantile lies inside them) and keeps p0/p100
         exact. *)
      Float.min (Float.max !result t.v_min) t.v_max
    end
  end

let quantile_labels =
  [ ("0.5", 0.5); ("0.9", 0.9); ("0.95", 0.95); ("0.99", 0.99); ("0.999", 0.999) ]

(* %.9g with integral values as integers — matches Metrics.float_string
   so sketch summaries and gauges read alike. *)
let float_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let encode t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "a=%s;n=%d;z=%d;s=%d;min=%s;max=%s|" (float_string t.alpha)
    t.total t.zero t.sum_micro
    (float_string (min_value t))
    (float_string (max_value t));
  List.iteri
    (fun j (i, c) ->
      if j > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "%d:%d" i c)
    (sorted_buckets t);
  Buffer.contents buf

let snapshot_json t =
  let q l = float_string (quantile t l) in
  Printf.sprintf
    "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p95\":%s,\"p99\":%s,\"p999\":%s}"
    t.total (float_string (sum t))
    (float_string (min_value t))
    (float_string (max_value t))
    (q 0.5) (q 0.9) (q 0.95) (q 0.99) (q 0.999)

(* ------------------------------------------------------------------ *)
(* Global series registry.                                             *)

(* Observations arrive from whichever domain runs the trial; the
   per-series mutex makes each observation atomic, and because every
   accumulated quantity commutes (see header) the merged state — and
   hence the rendered bytes — is independent of arrival order.  The
   recording gate is the same one Metrics uses, so RI_OBS=0 keeps the
   instrumented hot paths at one load and branch. *)
type series = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_lock : Mutex.t;
  s_sketch : t;
}

let registry_lock = Mutex.create ()

let registry : (string * (string * string) list, series) Hashtbl.t =
  Hashtbl.create 32

let series ?(help = "") ?(labels = []) ?alpha name =
  let labels = List.sort compare labels in
  let key = (name, labels) in
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt registry key with
    | Some s -> s
    | None ->
        let s =
          {
            s_name = name;
            s_labels = labels;
            s_help = help;
            s_lock = Mutex.create ();
            s_sketch = create ?alpha ();
          }
        in
        Hashtbl.add registry key s;
        s
  in
  Mutex.unlock registry_lock;
  s

let observe s x =
  if Metrics.enabled () then begin
    Mutex.lock s.s_lock;
    add s.s_sketch x;
    Mutex.unlock s.s_lock
  end

let snapshot s =
  Mutex.lock s.s_lock;
  let c = copy s.s_sketch in
  Mutex.unlock s.s_lock;
  c

let all () =
  Mutex.lock registry_lock;
  let xs = Hashtbl.fold (fun _ s acc -> s :: acc) registry [] in
  Mutex.unlock registry_lock;
  let xs =
    List.sort (fun a b -> compare (a.s_name, a.s_labels) (b.s_name, b.s_labels)) xs
  in
  List.map (fun s -> (s.s_name, s.s_labels, snapshot s)) xs

let reset () =
  Mutex.lock registry_lock;
  let xs = Hashtbl.fold (fun _ s acc -> s :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.iter
    (fun s ->
      Mutex.lock s.s_lock;
      Hashtbl.reset s.s_sketch.counts;
      s.s_sketch.zero <- 0;
      s.s_sketch.total <- 0;
      s.s_sketch.sum_micro <- 0;
      s.s_sketch.v_min <- infinity;
      s.s_sketch.v_max <- neg_infinity;
      Mutex.unlock s.s_lock)
    xs

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

(* Prometheus summary exposition: one {quantile=...} sample per tracked
   quantile plus _sum and _count, sorted by (name, labels) — same
   deterministic-diff contract as Metrics.render. *)
let render () =
  let buf = Buffer.create 1024 in
  let last_header = ref "" in
  List.iter
    (fun (name, labels, sk) ->
      if name <> !last_header then begin
        last_header := name;
        Mutex.lock registry_lock;
        let help =
          match Hashtbl.find_opt registry (name, labels) with
          | Some s -> s.s_help
          | None -> ""
        in
        Mutex.unlock registry_lock;
        if help <> "" then Printf.bprintf buf "# HELP %s %s\n" name help;
        Printf.bprintf buf "# TYPE %s summary\n" name
      end;
      List.iter
        (fun (ql, q) ->
          Printf.bprintf buf "%s%s %s\n" name
            (label_string (List.sort compare (("quantile", ql) :: labels)))
            (float_string (quantile sk q)))
        quantile_labels;
      Printf.bprintf buf "%s_sum%s %s\n" name (label_string labels)
        (float_string (sum sk));
      Printf.bprintf buf "%s_count%s %d\n" name (label_string labels)
        (count sk))
    (all ());
  Buffer.contents buf

(* JSON snapshot of every registered series, for the /progress
   endpoint: {"name{k=v}": {...}, ...} with the same sort order as the
   Prometheus render. *)
let render_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, labels, sk) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%s"
        (Ri_util.Json.escape (name ^ label_string labels))
        (snapshot_json sk))
    (all ());
  Buffer.add_char buf '}';
  Buffer.contents buf
