(* Per-phase GC and allocation profiling.

   Phase.time wraps each phase body with a Gc.quick_stat delta; the
   deltas accumulate here per phase name.  quick_stat reads the
   counters of the calling domain only, so a phase that runs on a pool
   worker charges that worker's allocation — the numbers answer "what
   does one execution of this phase allocate and collect", not "what
   did the whole process do meanwhile".  Accumulation takes a mutex:
   phases fire a few times per trial, never per message, so the lock is
   nowhere near any hot path, and capture only happens when metric
   recording is on at all (Phase.time's gate). *)

type acc = {
  mutable samples : int;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable major_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable compactions : int;
  mutable top_heap_words : int;  (* max observed after any sample *)
}

type stat = {
  g_phase : string;
  g_samples : int;
  g_minor_words : float;
  g_promoted_words : float;
  g_major_words : float;
  g_minor_collections : int;
  g_major_collections : int;
  g_compactions : int;
  g_top_heap_words : int;
}

let lock = Mutex.create ()

let table : (string, acc) Hashtbl.t = Hashtbl.create 16

let record name ~minor (before : Gc.stat) (after : Gc.stat) =
  Mutex.lock lock;
  let a =
    match Hashtbl.find_opt table name with
    | Some a -> a
    | None ->
        let a =
          {
            samples = 0;
            minor_words = 0.;
            promoted_words = 0.;
            major_words = 0.;
            minor_collections = 0;
            major_collections = 0;
            compactions = 0;
            top_heap_words = 0;
          }
        in
        Hashtbl.add table name a;
        a
  in
  a.samples <- a.samples + 1;
  a.minor_words <- a.minor_words +. minor;
  a.promoted_words <-
    a.promoted_words +. (after.Gc.promoted_words -. before.Gc.promoted_words);
  a.major_words <- a.major_words +. (after.Gc.major_words -. before.Gc.major_words);
  a.minor_collections <-
    a.minor_collections + (after.Gc.minor_collections - before.Gc.minor_collections);
  a.major_collections <-
    a.major_collections + (after.Gc.major_collections - before.Gc.major_collections);
  a.compactions <- a.compactions + (after.Gc.compactions - before.Gc.compactions);
  if after.Gc.top_heap_words > a.top_heap_words then
    a.top_heap_words <- after.Gc.top_heap_words;
  Mutex.unlock lock

(* The capture run by Phase.time.  quick_stat is a handful of loads —
   cheap enough for phase granularity, far too hot for per-message
   sites.  Minor words come from [Gc.minor_words] instead: quick_stat's
   field only advances at collection boundaries, which would read 0 for
   any phase that fits inside one minor heap. *)
let wrap name f =
  let mw0 = Gc.minor_words () in
  let before = Gc.quick_stat () in
  let finally () =
    record name ~minor:(Gc.minor_words () -. mw0) before (Gc.quick_stat ())
  in
  Fun.protect ~finally f

let stats () =
  Mutex.lock lock;
  let xs =
    Hashtbl.fold
      (fun name a acc ->
        {
          g_phase = name;
          g_samples = a.samples;
          g_minor_words = a.minor_words;
          g_promoted_words = a.promoted_words;
          g_major_words = a.major_words;
          g_minor_collections = a.minor_collections;
          g_major_collections = a.major_collections;
          g_compactions = a.compactions;
          g_top_heap_words = a.top_heap_words;
        }
        :: acc)
      table []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.g_phase b.g_phase) xs

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

(* Gauges carry cumulative words/collections per phase; registration is
   idempotent so export can create them lazily at snapshot time. *)
let export_metrics () =
  List.iter
    (fun s ->
      let g what help =
        Metrics.gauge ~help ~labels:[ ("phase", s.g_phase) ] ("ri_gc_" ^ what)
      in
      let setf what help v = Metrics.set (g what help) v in
      setf "minor_words" "Minor words allocated inside this phase." s.g_minor_words;
      setf "promoted_words" "Words promoted to the major heap inside this phase."
        s.g_promoted_words;
      setf "major_words" "Major-heap words allocated inside this phase."
        s.g_major_words;
      setf "minor_collections" "Minor collections triggered inside this phase."
        (float_of_int s.g_minor_collections);
      setf "major_collections" "Major collection slices inside this phase."
        (float_of_int s.g_major_collections);
      setf "compactions" "Heap compactions inside this phase."
        (float_of_int s.g_compactions);
      setf "top_heap_words" "Peak heap words observed at this phase's boundary."
        (float_of_int s.g_top_heap_words))
    (stats ())

let mb words = words *. 8. /. 1e6

(* Per-run summary table, printed by the CLI next to the cache/pool
   lines when metrics were on. *)
let table_lines () =
  match stats () with
  | [] -> []
  | xs ->
      let header =
        Printf.sprintf "%-12s %8s %12s %12s %10s %8s %8s %10s" "gc/phase"
          "samples" "minor MB" "major MB" "promoted" "min gc" "maj gc"
          "peak MB"
      in
      header
      :: List.map
           (fun s ->
             Printf.sprintf "%-12s %8d %12.1f %12.1f %9.1fM %8d %8d %10.1f"
               s.g_phase s.g_samples (mb s.g_minor_words) (mb s.g_major_words)
               (s.g_promoted_words /. 1e6)
               s.g_minor_collections s.g_major_collections
               (mb (float_of_int s.g_top_heap_words)))
           xs
