(** Live observability endpoint: a dependency-free [Unix] HTTP server
    on its own domain serving [/metrics] (Prometheus text),
    [/progress] (JSON run status), [/traffic] (JSON traffic-observatory
    snapshot) and [/healthz] during a run.

    Handlers read only atomic {!Progress} fields and registry
    snapshots taken under their own locks, never simulation state, so
    serving cannot perturb the deterministic pipeline.  Binds
    [127.0.0.1] by default — the endpoint is a local diagnostic
    surface, not a public one. *)

(** Run-status fields behind [/progress], stored by the run loop (one
    store per wave / sweep point) and read by server handlers. *)
module Progress : sig
  val begin_run : ?label:string -> total:int -> unit -> unit
  (** Reset the clock and counters for a new run of [total] trials;
      the label is kept unless a new one is given. *)

  val set_label : string -> unit
  (** Name the current sweep point (e.g. ["scale n=10000"]). *)

  val set_trials : int -> unit
  (** Store the number of completed trials. *)

  val add_trials : int -> unit

  val json : unit -> string
  (** [{"phase":..,"label":..,"trials_done":..,"trials_total":..,
      "elapsed_s":..,"eta_s":..,"sketches":{..}}] — [eta_s] is [null]
      until at least one trial has finished. *)
end

(** Live traffic-observatory snapshot behind [/traffic]: the open-loop
    driver publishes one complete JSON document per finished sweep
    point (points so far, decomposition, hotspots, knee), and handlers
    read it whole — a scrape racing a publish still sees valid JSON. *)
module Traffic : sig
  val publish : string -> unit
  (** Replace the snapshot.  The argument must be a complete JSON
      document; {!Ri_experiments.Traffic} renders it. *)

  val clear : unit -> unit
  (** Back to the empty-state body (valid JSON, no points). *)

  val json : unit -> string
end

type t

val start : ?bind:string -> port:int -> metrics:(unit -> string) -> unit -> t
(** Bind, listen and serve on a fresh domain.  [metrics] produces the
    [/metrics] body per request.  [port] 0 picks an ephemeral port —
    read it back with {!port}.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int

val stop : t -> unit
(** Stop accepting, join the serving domain and release the socket.
    Idempotent in effect but call it once. *)
