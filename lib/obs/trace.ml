(* Per-trial event tracing.

   The per-trial buffering, (unit, trial) merge rule and logical-tick
   numbering live in {!Keyed_log} (shared with {!Decision}); this module
   instantiates it for generic named events and renders them as JSONL
   and Chrome trace_event output. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type event = { name : string; cat : string; args : (string * arg) list }

module Log = Keyed_log.Make (struct
  type t = event
end)

type sink = Log.sink

let null = Log.null

let is_live = Log.is_live

let recording = Log.recording

let start = Log.start

let stop = Log.stop

let next_unit = Log.next_unit

let clear = Log.clear

let with_trial = Log.with_trial

let emit s ?(cat = "sim") name args = Log.push s { name; cat; args }

let events = Log.events

(* ------------------------------------------------------------------ *)
(* Export.                                                             *)

let escape = Ri_util.Json.escape

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> string_of_bool b

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)) args)
  ^ "}"

let render_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((u, trial), evs) ->
      List.iteri
        (fun seq e ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"unit\":%d,\"trial\":%d,\"seq\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"args\":%s}\n"
               u trial seq (escape e.cat) (escape e.name) (args_json e.args)))
        evs)
    (events ());
  Buffer.contents buf

(* Chrome trace_event format (about://tracing, Perfetto): one instant
   event per trace event, pid = unit, tid = trial, ts = logical tick. *)
let render_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun ((u, trial), evs) ->
      List.iteri
        (fun seq e ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"args\":%s}"
               (escape e.name) (escape e.cat) u trial seq (args_json e.args)))
        evs)
    (events ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let export path render =
  let oc = open_out path in
  output_string oc (render ());
  close_out oc

let export_jsonl path = export path render_jsonl

let export_chrome path = export path render_chrome
