(* Per-trial event tracing.

   Determinism contract: events are buffered in a per-trial sink on
   whichever domain runs the trial, and completed buffers are merged
   into the global store keyed by (unit, trial) — [unit] is bumped once
   per Runner.run, on the submitting domain, so it is scheduling
   independent.  Rendering sorts by that key and numbers events by their
   in-trial position, so the exported bytes are identical whatever the
   pool width.  For the same reason trace timestamps are *logical*
   ticks, not wall clock: wall clock would differ run to run and domain
   to domain.  Wall-clock belongs in Metrics/Phase, not here. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type event = { name : string; cat : string; args : (string * arg) list }

type sink = {
  live : bool;
  key : int * int;  (* (unit, trial) *)
  mutable rev : event list;  (* newest first *)
}

let null = { live = false; key = (0, 0); rev = [] }

let is_live s = s.live

let recording_flag = Atomic.make false

let recording () = Atomic.get recording_flag

let start () = Atomic.set recording_flag true

let stop () = Atomic.set recording_flag false

let unit_counter = Atomic.make 0

let next_unit () =
  if Atomic.get recording_flag then ignore (Atomic.fetch_and_add unit_counter 1)

let lock = Mutex.create ()

(* Values are newest-first so same-key registrations (e.g. a query trial
   followed by an update trial at the same index) prepend in O(own
   events); rendering reverses once. *)
let store : (int * int, event list ref) Hashtbl.t = Hashtbl.create 256

let clear () =
  Mutex.lock lock;
  Hashtbl.reset store;
  Atomic.set unit_counter 0;
  Mutex.unlock lock

let with_trial ~trial f =
  if not (Atomic.get recording_flag) then f null
  else begin
    let s = { live = true; key = (Atomic.get unit_counter, trial); rev = [] } in
    let finally () =
      if s.rev <> [] then begin
        Mutex.lock lock;
        (match Hashtbl.find_opt store s.key with
        | Some r -> r := s.rev @ !r
        | None -> Hashtbl.add store s.key (ref s.rev));
        Mutex.unlock lock
      end
    in
    Fun.protect ~finally (fun () -> f s)
  end

let emit s ?(cat = "sim") name args =
  if s.live then s.rev <- { name; cat; args } :: s.rev

let events () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun key r acc -> (key, List.rev !r) :: acc) store [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) all

(* ------------------------------------------------------------------ *)
(* Export.                                                             *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> string_of_bool b

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)) args)
  ^ "}"

let render_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((u, trial), evs) ->
      List.iteri
        (fun seq e ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"unit\":%d,\"trial\":%d,\"seq\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"args\":%s}\n"
               u trial seq (escape e.cat) (escape e.name) (args_json e.args)))
        evs)
    (events ());
  Buffer.contents buf

(* Chrome trace_event format (about://tracing, Perfetto): one instant
   event per trace event, pid = unit, tid = trial, ts = logical tick. *)
let render_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun ((u, trial), evs) ->
      List.iteri
        (fun seq e ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"args\":%s}"
               (escape e.name) (escape e.cat) u trial seq (args_json e.args)))
        evs)
    (events ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let export path render =
  let oc = open_out path in
  output_string oc (render ());
  close_out oc

let export_jsonl path = export path render_jsonl

let export_chrome path = export path render_chrome
