(** Low-overhead counters, gauges and fixed-bucket histograms behind a
    global registry.

    Instrumented modules register their metrics once at module-init
    time; registration is always live so {!render} can enumerate the
    full schema.  {e Recording} is gated by one atomic flag: when
    observability is off (the default — set [RI_OBS=1] or call
    {!set_enabled} to turn it on) every record operation is a single
    load-and-branch, which keeps instrumented hot paths within the
    sub-1% overhead budget.

    Values are atomics, so trial code running on pool worker domains
    records concurrently without locks; the registry mutex only guards
    registration and enumeration. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** The initial value honors the [RI_OBS] environment variable
    (default off).  [risim --metrics] and the trace recorder force it
    on for their own run. *)

type counter

type gauge

type histogram

val counter :
  ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter name] registers (or retrieves — registration is idempotent
    per [(name, labels)]) a monotonically increasing counter.
    @raise Invalid_argument if [name]+[labels] is already registered as
    a different metric kind. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are strictly increasing upper bounds; an [+Inf] bucket is
    implicit.  The default buckets are exponential seconds from 10us
    to 10s, suiting phase timings. *)

val default_buckets : float array
(** Exponential seconds, 10us to 10s — build-scale phases. *)

val micro_buckets : float array
(** Microsecond-range preset (1us to 10ms in 2.5x steps): per-trial hot
    paths like the ~80us prebuilt-net query and single update waves,
    which the default grid collapses into one or two buckets. *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its wall-clock duration in seconds;
    when recording is disabled it is exactly [f ()]. *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_buckets : histogram -> int array
(** Raw (non-cumulative) per-bucket counts, the [+Inf] bucket last. *)

val reset : unit -> unit
(** Zero every registered value; registrations are kept. *)

val render : unit -> string
(** Prometheus text exposition format, metrics sorted by name then
    labels (deterministic output for diffing). *)
