(** Per-trial event tracing: query forwarding hops, backtracks, stop
    conditions and RI update propagation, as logically timestamped
    events.

    Events are buffered in a per-trial {!sink} on whichever pool domain
    executes the trial; a completed buffer is merged into the global
    store under [(unit, trial)], where [unit] is a counter bumped once
    per {e sequential} runner invocation.  Rendering sorts by that key
    and numbers events by in-trial position — so traces are
    byte-identical at any [--jobs] width.  Timestamps are logical ticks
    (event position within the trial), not wall clock, for the same
    reason; wall-clock profiling lives in {!Metrics} / {!Phase}.

    When recording is off (the default), {!with_trial} hands out the
    {!null} sink and {!emit} is a single branch. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type event = { name : string; cat : string; args : (string * arg) list }

type sink

val null : sink
(** Swallows everything; what {!with_trial} passes when not recording. *)

val is_live : sink -> bool
(** [false] on {!null} or when recording was off at trial start — lets
    instrumentation skip building event values entirely. *)

val recording : unit -> bool

val start : unit -> unit

val stop : unit -> unit
(** Stop recording; already-collected events are kept for export. *)

val clear : unit -> unit
(** Drop all events and reset the unit counter (so a fresh run numbers
    from zero again). *)

val next_unit : unit -> unit
(** Called by the trial runner before each batch of trials; groups the
    trials of one data point under one unit id.  No-op when not
    recording. *)

val with_trial : trial:int -> (sink -> 'a) -> 'a
(** Run a trial body with a fresh sink; on exit (normal or exceptional)
    the buffered events are merged into the store under
    [(current unit, trial)].  Two [with_trial] calls with the same key
    (e.g. a query then an update at the same trial index) append in
    call order. *)

val emit : sink -> ?cat:string -> string -> (string * arg) list -> unit
(** [emit sink name args] buffers one event ([cat] defaults to
    ["sim"]).  No-op on a dead sink. *)

val events : unit -> ((int * int) * event list) list
(** Merged snapshot, sorted by [(unit, trial)]. *)

val render_jsonl : unit -> string
(** One JSON object per line:
    [{"unit":u,"trial":t,"seq":s,"cat":...,"name":...,"args":{...}}]. *)

val render_chrome : unit -> string
(** Chrome [trace_event] JSON (loadable in about://tracing or Perfetto):
    instant events with [pid = unit], [tid = trial], [ts = seq]. *)

val export_jsonl : string -> unit

val export_chrome : string -> unit
