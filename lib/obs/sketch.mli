(** Deterministic, mergeable quantile sketches with bounded relative
    error (DDSketch-style logarithmic buckets).

    A sketch built from the same multiset of observations always holds
    the same state — bucket counts and totals are integer sums, the
    running sum is accumulated in integer micro-units (rounded once per
    observation), and min/max commute — so {!merge} is associative and
    commutative {e at the byte level}: per-shard or per-trial sketches
    combine to identical {!encode} output whatever the merge order or
    pool width.

    Quantile estimates are within relative error [alpha] (default 1%)
    of the exact sorted-reference quantile for positive values;
    non-positive observations collapse into an exact zero bucket. *)

type t

val default_alpha : float
(** 0.01 — 1% relative error, ~115 buckets per decade. *)

val create : ?alpha:float -> unit -> t
(** @raise Invalid_argument unless [0 < alpha < 1]. *)

val alpha : t -> float

val add : t -> float -> unit
(** NaN observations are ignored; values [<= 0] land in the exact zero
    bucket. *)

val count : t -> int

val sum : t -> float
(** Sum of observations, from the order-independent micro-unit
    accumulator (so exact to 1e-6 per observation). *)

val min_value : t -> float
(** 0 on an empty sketch. *)

val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]; relative error is bounded by
    [alpha t] against the exact sorted reference.  0 on an empty
    sketch. *)

val merge_into : dst:t -> t -> unit
(** @raise Invalid_argument on an alpha mismatch. *)

val merge : t -> t -> t

val copy : t -> t

val encode : t -> string
(** Canonical single-line encoding (sorted buckets) — equal sketches
    encode to equal bytes; the merge property tests compare these. *)

val snapshot_json : t -> string
(** [{"count":..,"sum":..,"min":..,"max":..,"p50":..,...,"p999":..}] *)

(** {2 Global series registry}

    Named sketch series for the instrumented hot paths (per-query
    message count, hops, wire bytes, per-phase wall clock).  Recording
    is gated by {!Metrics.enabled} — one load and a branch when off —
    and each observation takes a per-series mutex, so worker domains
    record concurrently and the accumulated state is still
    order-independent. *)

type series

val series :
  ?help:string ->
  ?labels:(string * string) list ->
  ?alpha:float ->
  string ->
  series
(** Registration is idempotent per [(name, labels)]. *)

val observe : series -> float -> unit

val snapshot : series -> t
(** A private copy of the series' current sketch. *)

val all : unit -> (string * (string * string) list * t) list
(** Snapshots of every registered series, sorted by (name, labels). *)

val reset : unit -> unit
(** Zero every registered series; registrations are kept. *)

val render : unit -> string
(** Prometheus text exposition as summaries:
    [name{quantile="0.5"} v] ... plus [_sum]/[_count], deterministic
    order.  Concatenated after {!Metrics.render} by the exporters. *)

val render_json : unit -> string
(** One JSON object mapping ["name{labels}"] to {!snapshot_json}
    values — the sketch section of the [/progress] endpoint. *)
