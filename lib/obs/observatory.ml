(* Traffic observatory: per-node hotspot attribution, end-to-end latency
   decomposition and a logical-time timeline for the discrete-event
   engine.

   Three cooperating pieces, all feeding off logical-nanosecond stamps
   so every export is a pure function of (seed, trial):

   - [decomp]: per-point accumulator splitting completed-query latency
     into queue-wait + service + link-transit.  The split is exact by
     construction — a sequential message chain's end-to-end time is the
     integer sum of its per-hop link, wait and service times — and the
     traffic tests pin the invariant.

   - [node_acc] / [hotspot]: flat per-node accumulators (busy-ns,
     queue-wait-ns, peak depth, critical-hop counts) merged across
     trials element-wise and ranked into a top-K table.  The rank key
     is queue-wait-ns — where time is lost, not merely spent.

   - [Timeline] + the keyed log: a fixed-bin logical-time ring of
     arrivals / completions / aggregate backlog, buffered per trial and
     merged by (unit, trial) through {!Keyed_log} — the same rule as
     Trace and Decision — so the JSONL export is byte-identical at any
     pool width.  Recording is off by default; when off, the only cost
     at a capture site is the sink's [is_live] load and branch. *)

(* ------------------------------------------------------------------ *)
(* Latency decomposition.                                               *)

type decomp = {
  mutable d_queries : int;
  mutable d_total_ns : int;
  mutable d_queue_ns : int;
  mutable d_service_ns : int;
  mutable d_link_ns : int;
}

let decomp_zero () =
  { d_queries = 0; d_total_ns = 0; d_queue_ns = 0; d_service_ns = 0; d_link_ns = 0 }

let decomp_add d ~total_ns ~queue_ns ~service_ns ~link_ns =
  d.d_queries <- d.d_queries + 1;
  d.d_total_ns <- d.d_total_ns + total_ns;
  d.d_queue_ns <- d.d_queue_ns + queue_ns;
  d.d_service_ns <- d.d_service_ns + service_ns;
  d.d_link_ns <- d.d_link_ns + link_ns

let decomp_merge ~into d =
  into.d_queries <- into.d_queries + d.d_queries;
  into.d_total_ns <- into.d_total_ns + d.d_total_ns;
  into.d_queue_ns <- into.d_queue_ns + d.d_queue_ns;
  into.d_service_ns <- into.d_service_ns + d.d_service_ns;
  into.d_link_ns <- into.d_link_ns + d.d_link_ns

let decomp_exact d =
  d.d_total_ns = d.d_queue_ns + d.d_service_ns + d.d_link_ns

let decomp_queue_share d =
  if d.d_total_ns = 0 then 0.
  else float_of_int d.d_queue_ns /. float_of_int d.d_total_ns

(* ------------------------------------------------------------------ *)
(* Per-node hotspot accumulation.                                       *)

type node_acc = {
  nodes : int;
  a_arrivals : int array;
  a_completions : int array;
  a_busy_ns : int array;
  a_wait_ns : int array;
  a_peak : int array;  (* merged with max, not (+) *)
  a_critical : int array;
      (* completed queries whose largest queue-wait hop was here *)
}

let acc_create nodes =
  if nodes <= 0 then invalid_arg "Observatory.acc_create: nodes must be positive";
  {
    nodes;
    a_arrivals = Array.make nodes 0;
    a_completions = Array.make nodes 0;
    a_busy_ns = Array.make nodes 0;
    a_wait_ns = Array.make nodes 0;
    a_peak = Array.make nodes 0;
    a_critical = Array.make nodes 0;
  }

let acc_merge ~into src =
  if into.nodes <> src.nodes then
    invalid_arg "Observatory.acc_merge: node count mismatch";
  for v = 0 to into.nodes - 1 do
    into.a_arrivals.(v) <- into.a_arrivals.(v) + src.a_arrivals.(v);
    into.a_completions.(v) <- into.a_completions.(v) + src.a_completions.(v);
    into.a_busy_ns.(v) <- into.a_busy_ns.(v) + src.a_busy_ns.(v);
    into.a_wait_ns.(v) <- into.a_wait_ns.(v) + src.a_wait_ns.(v);
    if src.a_peak.(v) > into.a_peak.(v) then into.a_peak.(v) <- src.a_peak.(v);
    into.a_critical.(v) <- into.a_critical.(v) + src.a_critical.(v)
  done

type hotspot = {
  h_node : int;
  h_arrivals : int;
  h_completions : int;
  h_busy_ns : int;
  h_wait_ns : int;
  h_peak : int;
  h_critical : int;
  h_utilization : float;
}

(* Rank by queue-wait first (congestion cost), then busy time, then the
   node id for a total, deterministic order. *)
let hotter a b =
  if a.h_wait_ns <> b.h_wait_ns then compare b.h_wait_ns a.h_wait_ns
  else if a.h_busy_ns <> b.h_busy_ns then compare b.h_busy_ns a.h_busy_ns
  else compare a.h_node b.h_node

let hotspots acc ~makespan_ns ~k =
  if k <= 0 then []
  else begin
    let util busy =
      if makespan_ns <= 0 then 0.
      else float_of_int busy /. float_of_int makespan_ns
    in
    let all = ref [] in
    for v = acc.nodes - 1 downto 0 do
      if acc.a_arrivals.(v) > 0 then
        all :=
          {
            h_node = v;
            h_arrivals = acc.a_arrivals.(v);
            h_completions = acc.a_completions.(v);
            h_busy_ns = acc.a_busy_ns.(v);
            h_wait_ns = acc.a_wait_ns.(v);
            h_peak = acc.a_peak.(v);
            h_critical = acc.a_critical.(v);
            h_utilization = util acc.a_busy_ns.(v);
          }
          :: !all
    done;
    let sorted = List.sort hotter !all in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    take k sorted
  end

let hotspot_json h =
  Printf.sprintf
    "{\"node\": %d, \"arrivals\": %d, \"completions\": %d, \"busy_ns\": %d, \
     \"queue_wait_ns\": %d, \"peak_depth\": %d, \"critical_hops\": %d, \
     \"utilization\": %.4f}"
    h.h_node h.h_arrivals h.h_completions h.h_busy_ns h.h_wait_ns h.h_peak
    h.h_critical h.h_utilization

(* ------------------------------------------------------------------ *)
(* Timeline: fixed-bin ring over logical time.                          *)

(* One bin's worth of activity; depth is the engine-wide waiting
   backlog sampled at every recorded event in the bin. *)
type bin = {
  t_bin : int;
  t_start_ns : int;
  t_width_ns : int;
  t_arrivals : int;
  t_completions : int;
  t_depth_sum : int;
  t_samples : int;
  t_depth_peak : int;
}

module Log = Keyed_log.Make (struct
  type t = bin
end)

type sink = Log.sink

let null = Log.null

let is_live = Log.is_live

let recording = Log.recording

let start = Log.start

let stop = Log.stop

let next_unit = Log.next_unit

let clear = Log.clear

let with_trial = Log.with_trial

module Timeline = struct
  type t = {
    width_ns : int;
    arrivals : int array;
    completions : int array;
    depth_sum : int array;
    samples : int array;
    depth_peak : int array;
  }

  let create ~bins ~width_ns =
    if bins <= 0 then invalid_arg "Timeline.create: bins must be positive";
    if width_ns <= 0 then
      invalid_arg "Timeline.create: width_ns must be positive";
    {
      width_ns;
      arrivals = Array.make bins 0;
      completions = Array.make bins 0;
      depth_sum = Array.make bins 0;
      samples = Array.make bins 0;
      depth_peak = Array.make bins 0;
    }

  (* The ring is fixed: logical times past the last bin (the drain
     overhang of an overloaded sweep) clamp into it, so the export
     always has a bounded, pre-known shape. *)
  let index t ~at =
    let i = at / t.width_ns in
    let last = Array.length t.arrivals - 1 in
    if i < 0 then 0 else if i > last then last else i

  let sample t i ~depth =
    t.depth_sum.(i) <- t.depth_sum.(i) + depth;
    t.samples.(i) <- t.samples.(i) + 1;
    if depth > t.depth_peak.(i) then t.depth_peak.(i) <- depth

  let arrival t ~at ~depth =
    let i = index t ~at in
    t.arrivals.(i) <- t.arrivals.(i) + 1;
    sample t i ~depth

  let completion t ~at ~depth =
    let i = index t ~at in
    t.completions.(i) <- t.completions.(i) + 1;
    sample t i ~depth

  (* Push the non-empty bins, in bin order, into the trial's sink; the
     keyed log then merges trials by (unit, trial) at render time. *)
  let flush t sink =
    if Log.is_live sink then
      Array.iteri
        (fun i a ->
          if a > 0 || t.completions.(i) > 0 then
            Log.push sink
              {
                t_bin = i;
                t_start_ns = i * t.width_ns;
                t_width_ns = t.width_ns;
                t_arrivals = a;
                t_completions = t.completions.(i);
                t_depth_sum = t.depth_sum.(i);
                t_samples = t.samples.(i);
                t_depth_peak = t.depth_peak.(i);
              })
        t.arrivals
end

(* ------------------------------------------------------------------ *)
(* Export.                                                              *)

let render_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((u, trial), bins) ->
      List.iter
        (fun b ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"unit\":%d,\"trial\":%d,\"bin\":%d,\"start_ns\":%d,\"width_ns\":%d,\"arrivals\":%d,\"completions\":%d,\"depth_sum\":%d,\"samples\":%d,\"depth_peak\":%d}\n"
               u trial b.t_bin b.t_start_ns b.t_width_ns b.t_arrivals
               b.t_completions b.t_depth_sum b.t_samples b.t_depth_peak))
        bins)
    (Log.events ());
  Buffer.contents buf

let export_jsonl path =
  let oc = open_out path in
  output_string oc (render_jsonl ());
  close_out oc
