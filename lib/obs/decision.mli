(** Per-hop routing-decision provenance.

    The counters say {e that} an RI-guided query beat the baseline; this
    recorder captures {e why each hop was chosen}: for every forwarding
    step, the candidate-neighbor goodness vector the routing index
    produced, the counterfactual ground-truth-best neighbor (oracle
    reachability with the deciding node removed and crash-stopped nodes
    skipped), the staleness and update-wave lineage of each consulted RI
    row, and the follow / backtrack / timeout / stop skeleton of the
    walk.

    Records obey the same [(unit, trial)] logical-tick merge rule as
    {!Trace} (both instantiate {!Keyed_log}), so Decision output is
    byte-identical at any [--jobs] width.  Recording is off by default;
    when off, {!with_trial} hands out {!null} and every capture site is
    one [is_live] branch, keeping the query hot path unchanged. *)

type candidate = {
  peer : int;
  goodness : float;
      (** the RI's goodness estimate (0 under No-RI forwarding) *)
  truth : int;
      (** oracle: matching documents actually reachable through this
          candidate, BFS over live links with the deciding node removed *)
  stale : bool;  (** row demoted by the fault plane's staleness ledger *)
  wave : int;
      (** logical update-wave id that last wrote this row; 0 means the
          row is untouched since network construction *)
}

type record =
  | Decide of {
      node : int;
      from : int;  (** -1 at the origin *)
      scheme : string;  (** [Scheme.kind_name], or ["none"] for No-RI *)
      candidates : candidate list;  (** in forwarding (rank) order *)
      oracle_best : int;
          (** candidate with the most reachable results (ties toward the
              smaller peer id) *)
      oracle_rank : int;
          (** position of [oracle_best] in the forwarding order — the
              rank regret of the estimate (0 = the RI chose the true
              best) *)
      regret : int;
          (** [oracle_best]'s reachable results minus the first
              candidate's — the count regret of the choice *)
      stale_demoted : int;  (** candidates demoted below the fresh rows *)
    }
  | Follow of { node : int; target : int; rank : int }
      (** the walk advanced to [target], the [rank]-th candidate tried *)
  | Backtrack of { node : int; target : int }
      (** the walk returned from [node] to [target]: the subtree under
          [node] is exhausted, or a revisited [node] bounced the query
          straight back.  Abandoned forwards (every retry timed out)
          leave only their {!Timeout} records — no [Follow] was emitted,
          so no [Backtrack] balances one. *)
  | Timeout of { node : int; target : int; attempt : int }
      (** fault plane: the forward to [target] got no acknowledgment *)
  | Stop of {
      reason : string;  (** ["satisfied"], ["exhausted"] or ["budget"] *)
      found : int;
      forwards : int;
      returns : int;
      visited : int;
    }

type sink

val null : sink
(** Swallows everything; what {!with_trial} passes when not recording. *)

val is_live : sink -> bool
(** [false] on {!null} — lets capture sites (including the per-candidate
    oracle BFS) skip all work when provenance is off. *)

val recording : unit -> bool

val start : unit -> unit

val stop : unit -> unit
(** Stop recording; already-collected records are kept for export. *)

val clear : unit -> unit
(** Drop all records and reset the unit counter. *)

val next_unit : unit -> unit
(** Called by the trial runner before each data point; no-op when not
    recording.  Independent of {!Trace.next_unit}. *)

val with_trial : trial:int -> (sink -> 'a) -> 'a
(** Run a trial body with a fresh sink; on exit the buffer merges into
    the store under [(current unit, trial)], same-key calls appending in
    call order — {!Trace.with_trial}'s exact rule. *)

val emit : sink -> record -> unit
(** Buffer one record.  No-op on a dead sink. *)

val records : unit -> ((int * int) * record list) list
(** Merged snapshot, sorted by [(unit, trial)]. *)

val render_jsonl : unit -> string
(** One JSON object per line, [kind]-tagged:
    [{"unit":u,"trial":t,"seq":s,"kind":"decide",...}].  Deterministic
    bytes at any pool width. *)

val export_jsonl : string -> unit
