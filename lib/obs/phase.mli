(** Wall-clock phase profiling of the trial pipeline (topology gen →
    placement → RI build → query/update execution), recorded as
    [ri_phase_seconds{phase=...}] histograms in the {!Metrics}
    registry.

    Phase timings are wall clock and therefore {e not} part of the
    deterministic trace — see {!Trace}. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f], observing its duration under [phase] when
    metrics are enabled — into the fixed-bucket histogram, the
    [ri_phase_wall_seconds{phase=...}] quantile sketch ({!Sketch}), and
    the per-phase GC delta accumulator ({!Gcprof}); exactly [f ()]
    otherwise. *)

val current : unit -> string
(** The most recently entered (still running) phase, [""] outside any —
    what the [/progress] endpoint reports.  Nested phases restore the
    enclosing name on exit. *)

val totals : unit -> (string * int * float) list
(** [(phase, samples, total_seconds)] for every phase seen so far,
    sorted by name. *)
