(** Wall-clock phase profiling of the trial pipeline (topology gen →
    placement → RI build → query/update execution), recorded as
    [ri_phase_seconds{phase=...}] histograms in the {!Metrics}
    registry.

    Phase timings are wall clock and therefore {e not} part of the
    deterministic trace — see {!Trace}. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f], observing its duration under [phase] when
    metrics are enabled; exactly [f ()] otherwise. *)

val totals : unit -> (string * int * float) list
(** [(phase, samples, total_seconds)] for every phase seen so far,
    sorted by name. *)
