(* Causal span tracing.

   Trace records flat events; spans add the causal structure the
   latency work needs: a query span parents its hop, retry and fallback
   child spans, an update-wave span parents its per-round spans.  The
   buffering, (unit, trial) merge rule and byte-identity contract are
   Keyed_log's, shared with Trace and Decision.

   Determinism: span ids are the per-trial creation index (seq), and
   start/finish timestamps are logical ticks drawn from a per-trial
   counter — both functions of (unit, trial, seq) only, never of wall
   clock or pool scheduling, so every export below is byte-identical at
   any --jobs width. *)

type arg = Trace.arg = Int of int | Float of float | Str of string | Bool of bool

type record = {
  sid : int;  (* per-trial creation index *)
  parent : int;  (* parent sid, -1 for a root *)
  name : string;
  cat : string;
  t0 : int;  (* logical tick at enter *)
  mutable t1 : int;  (* logical tick at finish *)
  mutable args : (string * arg) list;
}

module Log = Keyed_log.Make (struct
  type t = record
end)

(* The wrapper adds the per-trial id and tick counters; records are
   pushed at enter (creation order = sid order) and mutated in place at
   finish — rendering happens only after the run, so it always sees the
   final state. *)
type sink = { log : Log.sink; mutable next_sid : int; mutable tick : int }

type span = record

let dummy =
  { sid = -1; parent = -1; name = ""; cat = ""; t0 = 0; t1 = 0; args = [] }

let null = { log = Log.null; next_sid = 0; tick = 0 }

let is_live s = Log.is_live s.log

let recording = Log.recording

let start = Log.start

let stop = Log.stop

let clear = Log.clear

let next_unit = Log.next_unit

let with_trial ~trial f =
  Log.with_trial ~trial (fun log -> f { log; next_sid = 0; tick = 0 })

let enter s ?parent ?(cat = "sim") name args =
  if not (Log.is_live s.log) then dummy
  else begin
    let sid = s.next_sid in
    s.next_sid <- sid + 1;
    let t0 = s.tick in
    s.tick <- t0 + 1;
    let r =
      {
        sid;
        parent = (match parent with Some p -> p.sid | None -> -1);
        name;
        cat;
        t0;
        t1 = t0;
        args;
      }
    in
    Log.push s.log r;
    r
  end

let finish s span ?(args = []) () =
  if Log.is_live s.log && span != dummy then begin
    span.t1 <- s.tick;
    s.tick <- s.tick + 1;
    if args <> [] then span.args <- span.args @ args
  end

(* [enter] then [finish] with no ticks in between: a point-like child
   (one hop, one retry) that still carries causal order. *)
let instant s ?parent ?cat name args =
  let sp = enter s ?parent ?cat name args in
  finish s sp ();
  sp

let spans = Log.events

(* ------------------------------------------------------------------ *)
(* Export.                                                             *)

let escape = Ri_util.Json.escape

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> string_of_bool b

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)) args)
  ^ "}"

let render_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((u, trial), rs) ->
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"unit\":%d,\"trial\":%d,\"span\":%d,\"parent\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"t0\":%d,\"t1\":%d,\"args\":%s}\n"
               u trial r.sid r.parent (escape r.cat) (escape r.name) r.t0 r.t1
               (args_json r.args)))
        rs)
    (spans ());
  Buffer.contents buf

(* Chrome trace_event export: one complete ("X") event per span plus a
   flow start/finish pair ("s"/"f") from parent to child, so Perfetto
   draws the causal arrows.  pid = unit, tid = trial, ts = logical
   tick; flow ids are "unit:trial:sid" strings, unique by
   construction. *)
let render_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf "\n";
        Buffer.add_string buf s)
      fmt
  in
  List.iter
    (fun ((u, trial), rs) ->
      let by_sid = Hashtbl.create (2 * List.length rs) in
      List.iter (fun r -> Hashtbl.replace by_sid r.sid r) rs;
      List.iter
        (fun r ->
          emit
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":%s}"
            (escape r.name) (escape r.cat) u trial r.t0
            (max 1 (r.t1 - r.t0))
            (args_json r.args);
          if r.parent >= 0 && Hashtbl.mem by_sid r.parent then begin
            let p = Hashtbl.find by_sid r.parent in
            let id = Printf.sprintf "%d:%d:%d" u trial r.sid in
            emit
              "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"id\":\"%s\"}"
              (escape p.name) u trial p.t0 id;
            emit
              "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"id\":\"%s\"}"
              (escape r.name) u trial r.t0 id
          end)
        rs)
    (spans ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* OTLP-style JSON (the shape of an OTLP/HTTP trace export, logical
   ticks standing in for the nano timestamps).  Ids derive from
   (unit, trial, seq) alone: traceId is the 32-hex (unit, trial) pair,
   spanId the 16-hex (unit, trial, sid) triple. *)
let trace_id u t = Printf.sprintf "%016x%016x" u t

let span_id u t sid =
  Printf.sprintf "%04x%04x%08x" (u land 0xffff) (t land 0xffff)
    (sid land 0xffffffff)

let otlp_value = function
  | Int i -> Printf.sprintf "{\"intValue\":\"%d\"}" i
  | Float f -> Printf.sprintf "{\"doubleValue\":%.9g}" f
  | Str s -> Printf.sprintf "{\"stringValue\":\"%s\"}" (escape s)
  | Bool b -> Printf.sprintf "{\"boolValue\":%b}" b

let otlp_attributes args =
  "["
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "{\"key\":\"%s\",\"value\":%s}" (escape k)
             (otlp_value v))
         args)
  ^ "]"

let render_otlp () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\"resourceSpans\":[{\"resource\":{\"attributes\":[{\"key\":\"service.name\",\"value\":{\"stringValue\":\"risim\"}}]},\"scopeSpans\":[{\"scope\":{\"name\":\"ri_obs.span\"},\"spans\":[";
  let first = ref true in
  List.iter
    (fun ((u, trial), rs) ->
      List.iter
        (fun r ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n{\"traceId\":\"%s\",\"spanId\":\"%s\",\"parentSpanId\":\"%s\",\"name\":\"%s\",\"kind\":1,\"startTimeUnixNano\":\"%d\",\"endTimeUnixNano\":\"%d\",\"attributes\":%s}"
               (trace_id u trial) (span_id u trial r.sid)
               (if r.parent >= 0 then span_id u trial r.parent else "")
               (escape r.name) r.t0 r.t1
               (otlp_attributes
                  (("cat", Str r.cat) :: ("trial", Int trial) :: r.args))))
        rs)
    (spans ());
  Buffer.add_string buf "\n]}]}]}\n";
  Buffer.contents buf

let export path render =
  let oc = open_out path in
  output_string oc (render ());
  close_out oc

let export_jsonl path = export path render_jsonl

let export_chrome path = export path render_chrome

let export_otlp path = export path render_otlp
