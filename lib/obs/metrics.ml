open Ri_util

(* Registration is always live (it happens once, at module-init time, in
   the instrumented libraries); only *recording* is gated.  The gate is
   one atomic load and a branch, so instrumented hot paths cost nothing
   measurable when observability is off — the RI_OBS=0 contract. *)
let enabled_flag = Atomic.make (Env.bool "RI_OBS" false)

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* Values are atomics so worker domains record without taking the
   registry lock; the lock only guards registration and enumeration. *)
type hist = {
  bounds : float array;  (* strictly increasing upper bounds; +inf implicit *)
  buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  h_sum : float Atomic.t;
}

type data = C of int Atomic.t | G of float Atomic.t | H of hist

type metric = {
  name : string;
  labels : (string * string) list;
  help : string;
  data : data;
}

type counter = metric

type gauge = metric

type histogram = metric

let lock = Mutex.create ()

let registry : (string * (string * string) list, metric) Hashtbl.t =
  Hashtbl.create 64

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register ?(help = "") ?(labels = []) name data =
  let labels = List.sort compare labels in
  let key = (name, labels) in
  Mutex.lock lock;
  let m =
    match Hashtbl.find_opt registry key with
    | Some existing ->
        if kind_name existing.data <> kind_name data then begin
          Mutex.unlock lock;
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name existing.data))
        end;
        existing
    | None ->
        let m = { name; labels; help; data } in
        Hashtbl.add registry key m;
        m
  in
  Mutex.unlock lock;
  m

let counter ?help ?labels name = register ?help ?labels name (C (Atomic.make 0))

let gauge ?help ?labels name = register ?help ?labels name (G (Atomic.make 0.))

let default_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 0.01; 0.03; 0.1; 0.3; 1.; 3.; 10. |]

(* Microsecond-range preset for per-trial hot-path phases: the prebuilt
   query path runs in ~80us, which the default 10us..10s grid collapses
   into two buckets.  2.5x steps from 1us to 10ms keep the ~µs regime
   resolved while the tail still catches a degenerate slow phase. *)
let micro_buckets =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3;
    2.5e-3; 5e-3; 0.01; 0.1;
  |]

let histogram ?help ?labels ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register ?help ?labels name
    (H
       {
         bounds = Array.copy buckets;
         buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
         h_sum = Atomic.make 0.;
       })

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let add c n =
  if Atomic.get enabled_flag then
    match c.data with
    | C v -> ignore (Atomic.fetch_and_add v n)
    | G _ | H _ -> assert false

let incr c = add c 1

let set g x =
  if Atomic.get enabled_flag then
    match g.data with G v -> Atomic.set v x | C _ | H _ -> assert false

let bucket_index bounds x =
  (* Linear scan: bucket arrays are small and fixed. *)
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && x > bounds.(!i) do
    Stdlib.incr i
  done;
  !i

let observe h x =
  if Atomic.get enabled_flag then
    match h.data with
    | H hist ->
        Atomic.incr hist.buckets.(bucket_index hist.bounds x);
        atomic_add_float hist.h_sum x
    | C _ | G _ -> assert false

let time h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finally () = observe h (Unix.gettimeofday () -. t0) in
    Fun.protect ~finally f
  end

let counter_value c = match c.data with C v -> Atomic.get v | _ -> assert false

let gauge_value g = match g.data with G v -> Atomic.get v | _ -> assert false

let hist_count h =
  match h.data with
  | H hist -> Array.fold_left (fun acc b -> acc + Atomic.get b) 0 hist.buckets
  | _ -> assert false

let hist_sum h =
  match h.data with H hist -> Atomic.get hist.h_sum | _ -> assert false

let hist_buckets h =
  match h.data with
  | H hist -> Array.map Atomic.get hist.buckets
  | _ -> assert false

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ m ->
      match m.data with
      | C v -> Atomic.set v 0
      | G v -> Atomic.set v 0.
      | H hist ->
          Array.iter (fun b -> Atomic.set b 0) hist.buckets;
          Atomic.set hist.h_sum 0.)
    registry;
  Mutex.unlock lock

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.                                         *)

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let with_extra_label labels k v = List.sort compare ((k, v) :: labels)

let float_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let render () =
  Mutex.lock lock;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock lock;
  let metrics =
    List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) metrics
  in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let last_header = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_header then begin
        last_header := m.name;
        if m.help <> "" then line "# HELP %s %s\n" m.name m.help;
        line "# TYPE %s %s\n" m.name (kind_name m.data)
      end;
      match m.data with
      | C v -> line "%s%s %d\n" m.name (label_string m.labels) (Atomic.get v)
      | G v ->
          line "%s%s %s\n" m.name (label_string m.labels)
            (float_string (Atomic.get v))
      | H hist ->
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + Atomic.get b;
              let le =
                if i < Array.length hist.bounds then
                  Printf.sprintf "%g" hist.bounds.(i)
                else "+Inf"
              in
              line "%s_bucket%s %d\n" m.name
                (label_string (with_extra_label m.labels "le" le))
                !cum)
            hist.buckets;
          line "%s_sum%s %s\n" m.name (label_string m.labels)
            (float_string (Atomic.get hist.h_sum));
          line "%s_count%s %d\n" m.name (label_string m.labels) !cum)
    metrics;
  Buffer.contents buf
