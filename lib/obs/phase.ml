(* Named wall-clock phases over Metrics histograms.  The handle table
   avoids re-walking the metric registry on every call; phases fire a
   few times per trial, from any domain. *)

let lock = Mutex.create ()

let table : (string, Metrics.histogram) Hashtbl.t = Hashtbl.create 16

let names = ref []

(* Per-trial phases (one query, one update wave, one drift pass) run in
   microseconds-to-milliseconds; build phases in milliseconds-to-seconds.
   Each gets the bucket grid that resolves its regime. *)
let buckets_for = function
  | "query" | "update" | "drift" -> Metrics.micro_buckets
  | _ -> Metrics.default_buckets

let handle name =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt table name with
    | Some h -> h
    | None ->
        let h =
          Metrics.histogram ~help:"Wall-clock seconds per pipeline phase."
            ~buckets:(buckets_for name)
            ~labels:[ ("phase", name) ] "ri_phase_seconds"
        in
        Hashtbl.add table name h;
        names := name :: !names;
        h
  in
  Mutex.unlock lock;
  h

let time name f = if Metrics.enabled () then Metrics.time (handle name) f else f ()

let totals () =
  Mutex.lock lock;
  let ns = List.sort compare !names in
  Mutex.unlock lock;
  List.map
    (fun name ->
      let h = handle name in
      (name, Metrics.hist_count h, Metrics.hist_sum h))
    ns
