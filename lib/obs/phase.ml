(* Named wall-clock phases over Metrics histograms.  The handle table
   avoids re-walking the metric registry on every call; phases fire a
   few times per trial, from any domain — registration and the name
   list are mutex-guarded so a first touch inside a sharded section is
   safe (see the racing-registration test in test_obs.ml). *)

let lock = Mutex.create ()

type handles = { h_hist : Metrics.histogram; h_sketch : Sketch.series }

let table : (string, handles) Hashtbl.t = Hashtbl.create 16

let names = ref []

(* Per-trial phases (one query, one update wave, one drift pass) run in
   microseconds-to-milliseconds; build phases in milliseconds-to-seconds.
   Each gets the bucket grid that resolves its regime. *)
let buckets_for = function
  | "query" | "update" | "drift" -> Metrics.micro_buckets
  | _ -> Metrics.default_buckets

let handle name =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt table name with
    | Some h -> h
    | None ->
        let h =
          {
            h_hist =
              Metrics.histogram ~help:"Wall-clock seconds per pipeline phase."
                ~buckets:(buckets_for name)
                ~labels:[ ("phase", name) ] "ri_phase_seconds";
            h_sketch =
              Sketch.series
                ~help:"Wall-clock seconds per pipeline phase (quantile sketch)."
                ~labels:[ ("phase", name) ] "ri_phase_wall_seconds";
          }
        in
        Hashtbl.add table name h;
        names := name :: !names;
        h
  in
  Mutex.unlock lock;
  h

(* The most recently entered phase, for the /progress endpoint.  One
   atomic store per phase entry/exit — nothing a per-trial phase can
   feel.  Nested phases restore the enclosing name on exit. *)
let current_phase = Atomic.make ""

let current () = Atomic.get current_phase

let time name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let h = handle name in
    let enclosing = Atomic.get current_phase in
    Atomic.set current_phase name;
    let t0 = Unix.gettimeofday () in
    let finally () =
      let dt = Unix.gettimeofday () -. t0 in
      Metrics.observe h.h_hist dt;
      Sketch.observe h.h_sketch dt;
      Atomic.set current_phase enclosing
    in
    Fun.protect ~finally (fun () -> Gcprof.wrap name f)
  end

let totals () =
  Mutex.lock lock;
  let ns = List.sort compare !names in
  Mutex.unlock lock;
  List.map
    (fun name ->
      let h = handle name in
      (name, Metrics.hist_count h.h_hist, Metrics.hist_sum h.h_hist))
    ns
