(** Traffic observatory: latency decomposition, per-node hotspot
    attribution and a logical-time timeline for the discrete-event
    engine.

    The open-loop driver ({!Ri_experiments.Traffic}) reports merged
    end-to-end quantiles; this module breaks them open.  Everything is
    stamped in logical nanoseconds and buffered per trial, so every
    rendered artifact is a pure function of [(seed, trial)] — the
    timeline JSONL merges by [(unit, trial)] through {!Keyed_log}
    exactly like {!Trace} and {!Decision}, and is byte-identical at any
    [--jobs] width.  Timeline recording is off by default; when off, a
    capture site costs one [is_live] load and branch.

    {b Decomposition invariant.}  A completed query's end-to-end
    latency is the exact integer sum of its per-hop components:
    queue-wait + service + link-transit over the hop chain.  The chain
    is sequential — each handler fires at its message's service end and
    immediately emits the next send — so no time is unaccounted; the
    traffic tests pin [decomp_exact] over every completed query. *)

(** {2 Latency decomposition} *)

(** Accumulated split of completed-query latency.  All fields are sums
    over queries, in logical nanoseconds. *)
type decomp = {
  mutable d_queries : int;
  mutable d_total_ns : int;  (** end-to-end: completion - arrival *)
  mutable d_queue_ns : int;  (** time spent waiting in mailboxes *)
  mutable d_service_ns : int;  (** time spent being serviced *)
  mutable d_link_ns : int;  (** time spent crossing links *)
}

val decomp_zero : unit -> decomp

val decomp_add :
  decomp -> total_ns:int -> queue_ns:int -> service_ns:int -> link_ns:int -> unit
(** Fold one completed query in. *)

val decomp_merge : into:decomp -> decomp -> unit

val decomp_exact : decomp -> bool
(** [true] iff queue + service + link sums exactly to end-to-end — the
    decomposition invariant, which must hold for every accumulation of
    sequential hop chains. *)

val decomp_queue_share : decomp -> float
(** Fraction of end-to-end time spent queueing ([0] when empty) — the
    measured form of the saturation claim: past the knee this
    dominates. *)

(** {2 Per-node hotspot attribution} *)

(** Flat per-node accumulators, element-wise mergeable across trials
    of identically sized networks ([a_peak] merges with max). *)
type node_acc = {
  nodes : int;
  a_arrivals : int array;
  a_completions : int array;
  a_busy_ns : int array;
  a_wait_ns : int array;
  a_peak : int array;
  a_critical : int array;
      (** completed queries whose largest queue-wait hop was at this
          node — the critical-hop attribution *)
}

val acc_create : int -> node_acc
(** @raise Invalid_argument on a non-positive node count. *)

val acc_merge : into:node_acc -> node_acc -> unit
(** @raise Invalid_argument on a node-count mismatch. *)

(** One row of the top-K hotspot table. *)
type hotspot = {
  h_node : int;
  h_arrivals : int;
  h_completions : int;
  h_busy_ns : int;
  h_wait_ns : int;
  h_peak : int;
  h_critical : int;
  h_utilization : float;  (** busy-ns over the makespan *)
}

val hotspots : node_acc -> makespan_ns:int -> k:int -> hotspot list
(** The [k] hottest nodes that saw any traffic, ranked by queue-wait-ns
    (then busy-ns, then node id — a total, deterministic order).  Empty
    when [k <= 0]. *)

val hotspot_json : hotspot -> string
(** One strict-JSON object — the rows of the traffic JSON's
    [q_hotspots] section. *)

(** {2 Recording gate}

    The shared {!Keyed_log} contract: buffer per trial, merge by
    [(unit, trial)], render deterministically. *)

type sink

val null : sink

val is_live : sink -> bool

val recording : unit -> bool

val start : unit -> unit

val stop : unit -> unit

val next_unit : unit -> unit
(** Bump once per sweep point, on the submitting domain. *)

val clear : unit -> unit

val with_trial : trial:int -> (sink -> 'a) -> 'a

(** {2 Timeline} *)

(** One exported timeline bin: activity within
    [[t_start_ns, t_start_ns + t_width_ns)]; aggregate depth is the
    engine-wide waiting backlog ({!Ri_sim.Engine.backlog} convention —
    in-service messages excluded) sampled at each recorded event. *)
type bin = {
  t_bin : int;
  t_start_ns : int;
  t_width_ns : int;
  t_arrivals : int;
  t_completions : int;
  t_depth_sum : int;
  t_samples : int;
  t_depth_peak : int;
}

(** A fixed-bin ring over logical time, owned by one trial.  Events
    past the last bin (the drain overhang of a saturated sweep) clamp
    into it, keeping the export's shape bounded and pre-known. *)
module Timeline : sig
  type t

  val create : bins:int -> width_ns:int -> t
  (** @raise Invalid_argument unless both are positive. *)

  val arrival : t -> at:int -> depth:int -> unit

  val completion : t -> at:int -> depth:int -> unit

  val flush : t -> sink -> unit
  (** Push the non-empty bins, in bin order, into the trial's sink.
      No-op on a dead sink. *)
end

(** {2 Export} *)

val render_jsonl : unit -> string
(** One strict-JSON object per bin, sorted by (unit, trial, bin) —
    byte-identical at any pool width. *)

val export_jsonl : string -> unit
