(* Live observability endpoint: a dependency-free Unix HTTP server on
   its own domain, serving /metrics (Prometheus text), /progress
   (JSON), /traffic (JSON traffic-observatory snapshot) and /healthz
   while a run executes.

   The server never touches simulation state: every handler reads only
   atomic Progress fields and registry snapshots taken under their own
   locks (Metrics/Sketch render, Gcprof stats), so it cannot perturb
   the deterministic pipeline.  What /metrics renders is passed in as a
   closure so this module stays independent of the CLI layering.

   One connection is handled at a time — the consumers are a human with
   curl or a single scraper, and a sequential loop keeps the domain
   count and failure modes trivial.  Binds 127.0.0.1 unless told
   otherwise: the endpoint is diagnostics, not a public surface. *)

module Progress = struct
  (* Writers are the run loop (one store per wave / sweep point);
     readers are server handlers on their own domain.  Individual
     atomics, no cross-field consistency needed — a /progress snapshot
     that straddles a wave boundary is still meaningful. *)
  let run_label = Atomic.make ""

  let started = Atomic.make 0.

  let trials_done = Atomic.make 0

  let trials_total = Atomic.make 0

  let begin_run ?label ~total () =
    (match label with Some l -> Atomic.set run_label l | None -> ());
    Atomic.set started (Unix.gettimeofday ());
    Atomic.set trials_done 0;
    Atomic.set trials_total total

  let set_label l = Atomic.set run_label l

  let set_trials n = Atomic.set trials_done n

  let add_trials n = ignore (Atomic.fetch_and_add trials_done n)

  let json () =
    let t0 = Atomic.get started in
    let elapsed = if t0 > 0. then Unix.gettimeofday () -. t0 else 0. in
    let done_ = Atomic.get trials_done and total = Atomic.get trials_total in
    let eta =
      if done_ > 0 && total > done_ then
        Printf.sprintf "%.3f" (elapsed /. float_of_int done_ *. float_of_int (total - done_))
      else "null"
    in
    Printf.sprintf
      "{\"phase\":\"%s\",\"label\":\"%s\",\"trials_done\":%d,\"trials_total\":%d,\"elapsed_s\":%.3f,\"eta_s\":%s,\"sketches\":%s}"
      (Ri_util.Json.escape (Phase.current ()))
      (Ri_util.Json.escape (Atomic.get run_label))
      done_ total elapsed eta (Sketch.render_json ())
end

module Traffic = struct
  (* The traffic driver renders one JSON snapshot per finished sweep
     point and publishes it whole; handlers only ever read a complete
     string, so a scrape racing a publish still sees valid JSON.  The
     empty-state body is itself valid JSON so /traffic is always
     parseable. *)
  let empty = "{\"points\": [], \"knee_qps\": null}"

  let state = Atomic.make empty

  let publish s = Atomic.set state s

  let clear () = Atomic.set state empty

  let json () = Atomic.get state
end

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  dom : unit Domain.t;
}

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write_substring fd s !off (n - !off)
     done
   with Unix.Unix_error _ -> ())

let respond fd status ctype body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status ctype (String.length body) body)

(* Read until the header terminator (we only care about the request
   line) with a small cap and a receive timeout, so a stalled client
   cannot wedge the serving domain for long. *)
let read_request fd =
  let buf = Bytes.create 4096 in
  let data = Buffer.create 256 in
  let rec go () =
    if Buffer.length data < 16384 then begin
      let n = try Unix.read fd buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0 in
      if n > 0 then begin
        Buffer.add_subbytes data buf 0 n;
        let s = Buffer.contents data in
        if
          not
            (String.length s >= 4
            && String.sub s (String.length s - 4) 4 = "\r\n\r\n")
        then go ()
      end
    end
  in
  go ();
  Buffer.contents data

let route metrics path =
  match path with
  | "/metrics" -> Some ("text/plain; version=0.0.4; charset=utf-8", metrics ())
  | "/progress" -> Some ("application/json", Progress.json ())
  | "/traffic" -> Some ("application/json", Traffic.json ())
  | "/healthz" -> Some ("text/plain; charset=utf-8", "ok\n")
  | _ -> None

let handle metrics fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
  let req = read_request fd in
  match String.split_on_char ' ' (List.hd (String.split_on_char '\r' req)) with
  | meth :: path :: _ when meth = "GET" || meth = "HEAD" -> (
      match route metrics path with
      | Some (ctype, body) ->
          respond fd "200 OK" ctype (if meth = "HEAD" then "" else body)
      | None -> respond fd "404 Not Found" "text/plain" "not found\n")
  | _ :: _ :: _ -> respond fd "405 Method Not Allowed" "text/plain" "GET only\n"
  | _ -> ()

let rec accept_loop sock stopping metrics =
  if not (Atomic.get stopping) then
    match Unix.accept sock with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        accept_loop sock stopping metrics
    | exception Unix.Unix_error (_, _, _) ->
        (* listening socket shut down (or broken beyond repair): exit *)
        ()
    | fd, _ ->
        (try handle metrics fd with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        accept_loop sock stopping metrics

let start ?(bind = "127.0.0.1") ~port ~metrics () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string bind, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  (* port 0 asks the kernel for an ephemeral port (tests); read back
     the one actually bound *)
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let dom = Domain.spawn (fun () -> accept_loop sock stopping metrics) in
  { sock; port; stopping; dom }

let port t = t.port

let stop t =
  Atomic.set t.stopping true;
  (* a blocked accept does not observe the flag; wake it with a dummy
     connection, with shutdown as the fallback for non-loopback binds *)
  (try
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
      with Unix.Unix_error _ -> ());
     try Unix.close fd with Unix.Unix_error _ -> ()
   with Unix.Unix_error _ -> ());
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Domain.join t.dom;
  try Unix.close t.sock with Unix.Unix_error _ -> ()
