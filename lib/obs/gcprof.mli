(** Per-phase GC and allocation profiling.

    {!Phase.time} captures a [Gc.quick_stat] delta around every phase
    body (only when metric recording is on); the deltas accumulate here
    per phase name.  [quick_stat] reads the calling domain's counters,
    so a phase executed on a pool worker charges that worker's
    allocation — per-phase cost, not whole-process activity.

    Exported as [ri_gc_*{phase=...}] gauges (minor/promoted/major
    words, minor/major collections, compactions, peak heap) and a
    per-run summary table. *)

type stat = {
  g_phase : string;
  g_samples : int;
  g_minor_words : float;
  g_promoted_words : float;
  g_major_words : float;
  g_minor_collections : int;
  g_major_collections : int;
  g_compactions : int;
  g_top_heap_words : int;  (** max observed at any sample boundary *)
}

val wrap : string -> (unit -> 'a) -> 'a
(** [wrap phase f] runs [f] between two [Gc.quick_stat] reads and
    accumulates the delta under [phase].  Called by {!Phase.time};
    robust to [f] raising. *)

val stats : unit -> stat list
(** Accumulated per-phase deltas, sorted by phase name. *)

val reset : unit -> unit

val export_metrics : unit -> unit
(** Snapshot {!stats} into [ri_gc_*{phase=...}] gauges.  Call before
    {!Metrics.render}. *)

val table_lines : unit -> string list
(** Human-readable per-run summary table (header + one line per
    phase); empty when nothing was recorded. *)
