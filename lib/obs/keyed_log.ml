(* The shared merge rule behind every per-trial recorder.

   Determinism contract (identical for traces and decision records):
   events are buffered in a per-trial sink on whichever domain runs the
   trial, and completed buffers are merged into a global store keyed by
   (unit, trial) — [unit] is bumped once per Runner.run, on the
   submitting domain, so it is scheduling independent.  Rendering sorts
   by that key and numbers events by their in-trial position, so
   exported bytes are identical whatever the pool width.  Timestamps are
   logical ticks, never wall clock: wall clock would differ run to run
   and domain to domain (wall-clock profiling belongs in Metrics/Phase).

   Each [Make] application owns private state — recording flag, unit
   counter, store — so Trace and Decision record independently: turning
   decisions on does not start tracing and vice versa. *)

module Make (E : sig
  type t
end) =
struct
  type event = E.t

  type sink = {
    live : bool;
    key : int * int;  (* (unit, trial) *)
    mutable rev : event list;  (* newest first *)
  }

  let null = { live = false; key = (0, 0); rev = [] }

  let is_live s = s.live

  let recording_flag = Atomic.make false

  let recording () = Atomic.get recording_flag

  let start () = Atomic.set recording_flag true

  let stop () = Atomic.set recording_flag false

  let unit_counter = Atomic.make 0

  let next_unit () =
    if Atomic.get recording_flag then
      ignore (Atomic.fetch_and_add unit_counter 1)

  let lock = Mutex.create ()

  (* Values are newest-first so same-key registrations (e.g. a query
     trial followed by an update trial at the same index) prepend in
     O(own events); rendering reverses once. *)
  let store : (int * int, event list ref) Hashtbl.t = Hashtbl.create 256

  let clear () =
    Mutex.lock lock;
    Hashtbl.reset store;
    Atomic.set unit_counter 0;
    Mutex.unlock lock

  let with_trial ~trial f =
    if not (Atomic.get recording_flag) then f null
    else begin
      let s = { live = true; key = (Atomic.get unit_counter, trial); rev = [] } in
      let finally () =
        if s.rev <> [] then begin
          Mutex.lock lock;
          (match Hashtbl.find_opt store s.key with
          | Some r -> r := s.rev @ !r
          | None -> Hashtbl.add store s.key (ref s.rev));
          Mutex.unlock lock
        end
      in
      Fun.protect ~finally (fun () -> f s)
    end

  let push s e = if s.live then s.rev <- e :: s.rev

  let events () =
    Mutex.lock lock;
    let all =
      Hashtbl.fold (fun key r acc -> (key, List.rev !r) :: acc) store []
    in
    Mutex.unlock lock;
    List.sort (fun (a, _) (b, _) -> compare a b) all
end
