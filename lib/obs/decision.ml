(* Per-hop routing-decision provenance.

   Where {!Trace} records that messages moved, this recorder captures
   why: at every forwarding step the deciding node's full candidate
   vector (estimated goodness, ground-truth reachable results, staleness
   and update-wave lineage per consulted RI row), the oracle-best
   candidate and the regret of the estimate-driven choice, plus the
   follow/backtrack/timeout/stop skeleton of the walk.  Records share
   {!Trace}'s (unit, trial) logical-tick merge rule through {!Keyed_log},
   so exported bytes are identical at any pool width; recording is off
   by default and every capture site early-outs on {!is_live}. *)

type candidate = {
  peer : int;
  goodness : float;  (* the RI's estimate (0 for No-RI forwarding) *)
  truth : int;  (* oracle: results actually reachable through this peer *)
  stale : bool;  (* row demoted by the fault plane's staleness ledger *)
  wave : int;  (* logical update-wave id that last wrote the row; 0 = build *)
}

type record =
  | Decide of {
      node : int;
      from : int;  (* -1 at the origin *)
      scheme : string;  (* Scheme.kind_name, or "none" for No-RI *)
      candidates : candidate list;  (* in forwarding order *)
      oracle_best : int;  (* candidate with the most reachable results *)
      oracle_rank : int;  (* position of oracle_best in forwarding order *)
      regret : int;  (* oracle_best's truth minus the first candidate's *)
      stale_demoted : int;
    }
  | Follow of { node : int; target : int; rank : int }
  | Backtrack of { node : int; target : int }
  | Timeout of { node : int; target : int; attempt : int }
  | Stop of {
      reason : string;  (* "satisfied" | "exhausted" | "budget" *)
      found : int;
      forwards : int;
      returns : int;
      visited : int;
    }

module Log = Keyed_log.Make (struct
  type t = record
end)

type sink = Log.sink

let null = Log.null

let is_live = Log.is_live

let recording = Log.recording

let start = Log.start

let stop = Log.stop

let next_unit = Log.next_unit

let clear = Log.clear

let with_trial = Log.with_trial

let emit = Log.push

let records = Log.events

(* ------------------------------------------------------------------ *)
(* Export.                                                             *)

let candidate_json c =
  Printf.sprintf
    "{\"peer\":%d,\"goodness\":%.9g,\"truth\":%d,\"stale\":%b,\"wave\":%d}"
    c.peer c.goodness c.truth c.stale c.wave

let record_json buf ~u ~trial ~seq r =
  let head kind = Printf.bprintf buf "{\"unit\":%d,\"trial\":%d,\"seq\":%d,\"kind\":\"%s\"" u trial seq kind in
  (match r with
  | Decide d ->
      head "decide";
      Printf.bprintf buf
        ",\"node\":%d,\"from\":%d,\"scheme\":\"%s\",\"oracle_best\":%d,\"oracle_rank\":%d,\"regret\":%d,\"stale_demoted\":%d,\"candidates\":[%s]"
        d.node d.from
        (Ri_util.Json.escape d.scheme)
        d.oracle_best d.oracle_rank d.regret d.stale_demoted
        (String.concat "," (List.map candidate_json d.candidates))
  | Follow f ->
      head "follow";
      Printf.bprintf buf ",\"node\":%d,\"target\":%d,\"rank\":%d" f.node
        f.target f.rank
  | Backtrack b ->
      head "backtrack";
      Printf.bprintf buf ",\"node\":%d,\"target\":%d" b.node b.target
  | Timeout t ->
      head "timeout";
      Printf.bprintf buf ",\"node\":%d,\"target\":%d,\"attempt\":%d" t.node
        t.target t.attempt
  | Stop s ->
      head "stop";
      Printf.bprintf buf
        ",\"reason\":\"%s\",\"found\":%d,\"forwards\":%d,\"returns\":%d,\"visited\":%d"
        (Ri_util.Json.escape s.reason)
        s.found s.forwards s.returns s.visited);
  Buffer.add_string buf "}\n"

let render_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((u, trial), rs) ->
      List.iteri (fun seq r -> record_json buf ~u ~trial ~seq r) rs)
    (records ());
  Buffer.contents buf

let export_jsonl path =
  let oc = open_out path in
  output_string oc (render_jsonl ());
  close_out oc
