(** Causal span tracing.

    Where {!Trace} records flat events, spans carry causal structure: a
    query span parents its per-hop, retry and fallback children; an
    update-wave span parents its per-round children.  Buffering and
    merging follow the {!Keyed_log} rule — per-trial sinks, merged by
    [(unit, trial)] — so every export is byte-identical at any [--jobs]
    width, including faulty trials.

    Span identity is fully deterministic: the span id is the per-trial
    creation index and timestamps are per-trial logical ticks, both
    functions of [(unit, trial, seq)] only.  Exported ids derive from
    that triple ([trace_id]/[span_id] for the OTLP form,
    ["unit:trial:sid"] for Chrome flow events). *)

type arg = Trace.arg = Int of int | Float of float | Str of string | Bool of bool

type record = {
  sid : int;  (** per-trial creation index *)
  parent : int;  (** parent sid, [-1] for a root *)
  name : string;
  cat : string;
  t0 : int;  (** logical tick at enter *)
  mutable t1 : int;  (** logical tick at finish *)
  mutable args : (string * arg) list;
}

type sink
(** Per-trial recording handle: a {!Keyed_log} sink plus the trial's
    span-id and tick counters.  Not domain-safe — confined to the
    domain running the trial, like [Trace.sink]. *)

type span
(** Handle to an open (or finished) span, used to parent children. *)

val null : sink
(** Inert sink: [enter] returns a dummy, [finish] is a no-op. *)

val is_live : sink -> bool

val recording : unit -> bool

val start : unit -> unit
(** Enable recording and clear previously collected spans. *)

val stop : unit -> unit

val clear : unit -> unit

val next_unit : unit -> unit
(** Advance the unit-of-work id (one per data point); trials recorded
    afterwards key under the new unit. *)

val with_trial : trial:int -> (sink -> 'a) -> 'a
(** Run one trial's body with a live sink (inert when recording is
    off); publishes the trial's spans into the shared store on exit,
    even on exception. *)

val enter : sink -> ?parent:span -> ?cat:string -> string -> (string * arg) list -> span
(** Open a span.  [cat] defaults to ["sim"]. *)

val finish : sink -> span -> ?args:(string * arg) list -> unit -> unit
(** Close a span, stamping its end tick and appending [args]. *)

val instant :
  sink -> ?parent:span -> ?cat:string -> string -> (string * arg) list -> span
(** [enter] immediately followed by [finish]: a point-like child (one
    hop, one retry) that still carries causal order. *)

val spans : unit -> ((int * int) * record list) list
(** Collected spans grouped by [(unit, trial)], sorted by key;
    within a trial, in creation (= sid) order. *)

val trace_id : int -> int -> string
(** [trace_id unit trial]: 32-hex OTLP trace id for one data point. *)

val span_id : int -> int -> int -> string
(** [span_id unit trial sid]: 16-hex OTLP span id. *)

val render_jsonl : unit -> string
(** One JSON object per span per line, in deterministic
    [(unit, trial, sid)] order. *)

val render_chrome : unit -> string
(** [chrome://tracing] / Perfetto JSON: a complete ("X") event per span
    (pid = unit, tid = trial, ts/dur = logical ticks) plus "s"/"f" flow
    events drawing each parent→child edge. *)

val render_otlp : unit -> string
(** OTLP/HTTP-shaped JSON ([resourceSpans]/[scopeSpans]/[spans]), with
    logical ticks in the time fields. *)

val export_jsonl : string -> unit

val export_chrome : string -> unit

val export_otlp : string -> unit
