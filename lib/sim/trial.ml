open Ri_util
open Ri_content
open Ri_topology
open Ri_p2p
open Ri_obs

type setup = {
  network : Network.t;
  universe : Topic.t;
  query : Workload.query;
  origin : int;
  rng : Prng.t;
  placement : Placement.t;
}

let topology_graph (cfg : Config.t) rng =
  match cfg.topology with
  | Config.Tree ->
      Tree_gen.random_labels rng ~n:cfg.num_nodes ~fanout:cfg.fanout
  | Config.Tree_with_cycles { extra_links } ->
      Cycle_gen.tree_with_cycles rng ~n:cfg.num_nodes ~fanout:cfg.fanout
        ~extra_links
  | Config.Power_law_graph ->
      Power_law.generate rng ~n:cfg.num_nodes ~exponent:cfg.outdegree_exponent ()

type purpose = For_query | For_update

let build ?(purpose = For_query) ?perturb ?(mutable_placement = false)
    (cfg : Config.t) ~trial =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Trial.build: " ^ msg));
  (* One master stream per (seed, trial); independent substreams per
     subsystem so changes in one never perturb the others.  The split
     states are fixed once the master is seeded, so a substream left
     unused on a cache hit never perturbs the others. *)
  let master = Prng.create (cfg.seed + (trial * 0x9e3779b)) in
  let topo_rng = Prng.split master in
  let place_rng = Prng.split master in
  let query_rng = Prng.split master in
  let net_rng = Prng.split master in
  let trial_rng = Prng.split master in
  let universe = Topic.make cfg.topics in
  let graph_key =
    {
      Setup_cache.g_topology = cfg.topology;
      g_num_nodes = cfg.num_nodes;
      g_fanout = cfg.fanout;
      g_exponent = cfg.outdegree_exponent;
      g_seed = cfg.seed;
      g_trial = trial;
    }
  in
  let graph =
    Setup_cache.graph graph_key
      (fun () -> Phase.time "topology" (fun () -> topology_graph cfg topo_rng))
  in
  (* The query's stop condition is carried in the config, not drawn from
     the stream, so the cached draw is shared across stop sweeps and the
     query record is rebuilt with the right stop below. *)
  let content_key =
    {
      Setup_cache.c_num_nodes = cfg.num_nodes;
      c_topics = cfg.topics;
      c_query_results = cfg.query_results;
      c_distribution = cfg.distribution;
      c_background = cfg.background_per_node;
      c_seed = cfg.seed;
      c_trial = trial;
    }
  in
  let draw =
    Setup_cache.content content_key
      (fun () ->
        Phase.time "placement" (fun () ->
            let query =
              Workload.random_single query_rng universe ~stop:cfg.stop_condition
            in
            let placement =
              Placement.distribute place_rng ~universe ~n:cfg.num_nodes
                ~query_topics:query.topics ~results:cfg.query_results
                ~distribution:cfg.distribution
                ~background_per_node:cfg.background_per_node ()
            in
            let origin = Prng.int query_rng cfg.num_nodes in
            { Setup_cache.query_topics = query.topics; placement; origin }))
  in
  let query =
    Workload.query ~topics:draw.Setup_cache.query_topics
      ~stop:cfg.stop_condition
  in
  let placement = draw.Setup_cache.placement in
  (* The cached placement is shared across trials and configurations;
     a caller that intends to mutate content (the fault plane's result
     drift) gets a fresh copy of the per-node arrays, bound into the
     network's content closures before any RI is built. *)
  let placement =
    if mutable_placement then
      {
        placement with
        Placement.matches = Array.copy placement.Placement.matches;
        summaries = Array.copy placement.Placement.summaries;
      }
    else placement
  in
  let content = Network.content_of_placement placement in
  let origin = draw.Setup_cache.origin in
  let mode =
    match purpose with
    | For_update -> Network.Converged
    | For_query ->
        (* The paper simulator's construction: RIs built downstream from
           the query originator (Appendix A), under either cycle
           policy — the policies then differ in how the query itself
           handles a revisited node. *)
        Network.Rooted origin
  in
  let network =
    Phase.time "ri_build" (fun () ->
        let fresh () =
          Network.create ~graph ~content
            ?scheme:(Config.scheme_kind cfg)
            ~compression:(Config.compression cfg)
            ~cycle_policy:cfg.cycle_policy ~min_update:cfg.min_update
            ~update_distance_floor:cfg.update_distance_floor ?perturb
            ~rng:net_rng ~mode
            ?quant:(Config.quant cfg)
            ()
        in
        (* The built network is itself cacheable: a template is shared
           across every sweep cell with the same overlay, content and
           index parameters, and each trial gets a bit-identical
           [Network.copy].  Perturbed builds draw from the PRNG and
           mutable placements bind content closures to this call's
           private copy — both must build fresh. *)
        if Option.is_some perturb || mutable_placement then fresh ()
        else
          Setup_cache.network
            {
              Setup_cache.n_graph = graph_key;
              n_content = content_key;
              n_scheme = Config.scheme_kind cfg;
              n_ratio = cfg.compression_ratio;
              n_error_kind = cfg.compression_mode;
              n_policy = cfg.cycle_policy;
              n_min_update = cfg.min_update;
              n_floor = cfg.update_distance_floor;
              n_origin =
                (match mode with
                | Network.Rooted o -> Some o
                | Network.Converged -> None);
              n_quant = cfg.quant_bits;
              n_source = Setup_cache.Generated;
            }
            fresh)
  in
  { network; universe; query; origin; rng = trial_rng; placement }

type query_metrics = {
  messages : int;
  forwards : int;
  returns : int;
  results : int;
  found : int;
  satisfied : bool;
  nodes_visited : int;
  bytes : float;
}

(* Per-unit-of-work cost distributions: message and hop sketches live
   next to their counters in Query; the byte-cost ones are observed
   here, where the cost model is applied. *)
let s_query_bytes =
  Sketch.series ~help:"Simulated wire bytes per query (quantile sketch)."
    "ri_query_wire_bytes"

let s_update_wave_messages =
  Sketch.series ~help:"Messages per update wave (quantile sketch)."
    "ri_update_wave_messages"

let s_update_wave_bytes =
  Sketch.series
    ~help:"Simulated wire bytes per update wave (quantile sketch)."
    "ri_update_wave_wire_bytes"

let metrics_of_outcome (cfg : Config.t) (o : Query.outcome) =
  let m =
    {
      messages = Query.messages o;
      forwards = o.counters.Message.query_forwards;
      returns = o.counters.Message.query_returns;
      results = o.counters.Message.result_messages;
      found = o.found;
      satisfied = o.satisfied;
      nodes_visited = o.nodes_visited;
      bytes = Message.bytes_of cfg.bytes o.counters;
    }
  in
  Sketch.observe s_query_bytes m.bytes;
  m

let query_outcome ?on_event ?decide ?plan (cfg : Config.t) setup =
  match cfg.search with
  | Config.Ri _ ->
      Query.run ?on_event ?decide ?plan ~rng:setup.rng setup.network
        ~origin:setup.origin ~query:setup.query ~forwarding:Query.Ri_guided
  | Config.No_ri ->
      Query.run ?on_event ?decide ?plan ~rng:setup.rng setup.network
        ~origin:setup.origin ~query:setup.query ~forwarding:Query.Random_walk
  | Config.Flooding { ttl } ->
      (* Flooding makes no per-neighbor routing decisions — there is
         nothing for a Decision sink to explain, so it is not passed. *)
      Query.flood ?on_event ?plan setup.network ~origin:setup.origin
        ~query:setup.query ?ttl ()

let run_query_on ?on_event ?decide ?plan (cfg : Config.t) setup =
  metrics_of_outcome cfg (query_outcome ?on_event ?decide ?plan cfg setup)

(* Tracing hooks: built only when a live sink exists, so the disabled
   path passes [None] and the p2p layer keeps its no-op default. *)
let query_hook sink =
  if not (Trace.is_live sink) then None
  else
    Some
      (function
      | Query.Forwarded { sender; receiver } ->
          Trace.emit sink ~cat:"query" "forward"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Returned { sender; receiver } ->
          Trace.emit sink ~cat:"query" "backtrack"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Results { at; count } ->
          Trace.emit sink ~cat:"query" "results"
            [ ("at", Trace.Int at); ("count", Trace.Int count) ]
      | Query.Timed_out { sender; receiver; attempt } ->
          Trace.emit sink ~cat:"fault" "timeout"
            [
              ("sender", Trace.Int sender);
              ("receiver", Trace.Int receiver);
              ("attempt", Trace.Int attempt);
            ]
      | Query.Gave_up { sender; receiver } ->
          Trace.emit sink ~cat:"fault" "gave_up"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Reconciled { a; b } ->
          Trace.emit sink ~cat:"fault" "reconcile"
            [ ("a", Trace.Int a); ("b", Trace.Int b) ])

let update_hook sink =
  if not (Trace.is_live sink) then None
  else
    Some
      (function
      | Update.Delivered { sender; receiver; significant; forwarded } ->
          Trace.emit sink ~cat:"update" "update_hop"
            [
              ("sender", Trace.Int sender);
              ("receiver", Trace.Int receiver);
              ("significant", Trace.Bool significant);
              ("forwarded", Trace.Bool forwarded);
            ]
      | Update.Dropped { sender; receiver; dead } ->
          Trace.emit sink ~cat:"fault" "update_dropped"
            [
              ("sender", Trace.Int sender);
              ("receiver", Trace.Int receiver);
              ("dead", Trace.Bool dead);
            ]
      | Update.Delayed { sender; receiver; rounds } ->
          Trace.emit sink ~cat:"fault" "update_delayed"
            [
              ("sender", Trace.Int sender);
              ("receiver", Trace.Int receiver);
              ("rounds", Trace.Int rounds);
            ]
      | Update.Round { index; pending } ->
          Trace.emit sink ~cat:"update" "round"
            [ ("index", Trace.Int index); ("pending", Trace.Int pending) ]
      | Update.Repaired { u; v } ->
          Trace.emit sink ~cat:"fault" "ae_repair"
            [ ("u", Trace.Int u); ("v", Trace.Int v) ])

(* Span hooks: the causal layer over the same p2p events.  A query root
   parents point-like hop / backtrack / retry / fallback children; an
   update root parents one span per message generation, each of which
   parents its deliveries.  Like the trace hooks they are only built
   over a live sink, and their mere presence keeps the update wave on
   the sequential path (the sharded rounds require no observer), so
   span order is deterministic at any pool width. *)
let span_query_hook ssink root =
  if not (Span.is_live ssink) then None
  else
    Some
      (fun e ->
        ignore
          (match e with
          | Query.Forwarded { sender; receiver } ->
              Span.instant ssink ~parent:root ~cat:"query" "hop"
                [ ("sender", Span.Int sender); ("receiver", Span.Int receiver) ]
          | Query.Returned { sender; receiver } ->
              Span.instant ssink ~parent:root ~cat:"query" "backtrack"
                [ ("sender", Span.Int sender); ("receiver", Span.Int receiver) ]
          | Query.Results { at; count } ->
              Span.instant ssink ~parent:root ~cat:"query" "results"
                [ ("at", Span.Int at); ("count", Span.Int count) ]
          | Query.Timed_out { sender; receiver; attempt } ->
              Span.instant ssink ~parent:root ~cat:"fault" "retry"
                [
                  ("sender", Span.Int sender);
                  ("receiver", Span.Int receiver);
                  ("attempt", Span.Int attempt);
                ]
          | Query.Gave_up { sender; receiver } ->
              Span.instant ssink ~parent:root ~cat:"fault" "gave_up"
                [ ("sender", Span.Int sender); ("receiver", Span.Int receiver) ]
          | Query.Reconciled { a; b } ->
              Span.instant ssink ~parent:root ~cat:"fault" "reconcile"
                [ ("a", Span.Int a); ("b", Span.Int b) ]))

(* Returns the handler plus a closer for the trailing round span (the
   wave just stops; no event marks the end of the last generation). *)
let span_update_hook ssink root =
  if not (Span.is_live ssink) then (None, fun () -> ())
  else begin
    let round = ref None in
    let close_round () =
      match !round with
      | Some sp ->
          Span.finish ssink sp ();
          round := None
      | None -> ()
    in
    let handler e =
      ignore
        (match e with
        | Update.Round { index; pending } ->
            close_round ();
            let sp =
              Span.enter ssink ~parent:root ~cat:"update" "round"
                [ ("index", Span.Int index); ("pending", Span.Int pending) ]
            in
            round := Some sp;
            sp
        | Update.Delivered { sender; receiver; significant; forwarded } ->
            Span.instant ssink ?parent:!round ~cat:"update" "deliver"
              [
                ("sender", Span.Int sender);
                ("receiver", Span.Int receiver);
                ("significant", Span.Bool significant);
                ("forwarded", Span.Bool forwarded);
              ]
        | Update.Dropped { sender; receiver; dead } ->
            Span.instant ssink ?parent:!round ~cat:"fault" "drop"
              [
                ("sender", Span.Int sender);
                ("receiver", Span.Int receiver);
                ("dead", Span.Bool dead);
              ]
        | Update.Delayed { sender; receiver; rounds } ->
            Span.instant ssink ?parent:!round ~cat:"fault" "delay"
              [
                ("sender", Span.Int sender);
                ("receiver", Span.Int receiver);
                ("rounds", Span.Int rounds);
              ]
        | Update.Repaired { u; v } ->
            Span.instant ssink ?parent:!round ~cat:"fault" "ae_repair"
              [ ("u", Span.Int u); ("v", Span.Int v) ])
    in
    (Some handler, close_round)
  end

let compose_hooks f g =
  match (f, g) with
  | None, h | h, None -> h
  | Some f, Some g -> Some (fun e -> f e; g e)

let emit_stop sink (m : query_metrics) =
  if Trace.is_live sink then
    Trace.emit sink ~cat:"query" "stop"
      [
        ( "reason",
          Trace.Str (if m.satisfied then "satisfied" else "exhausted") );
        ("found", Trace.Int m.found);
        ("messages", Trace.Int m.messages);
        ("nodes_visited", Trace.Int m.nodes_visited);
      ]

(* Both recorders wrap the trial body: each hands out its own sink
   (null when that recorder is off), and each merges under the same
   (unit, trial) key, so trace and decision output stay independently
   byte-deterministic at any pool width. *)
let traced_query (cfg : Config.t) ~trial setup =
  Trace.with_trial ~trial (fun sink ->
      Decision.with_trial ~trial (fun decide ->
          Span.with_trial ~trial (fun ssink ->
              let root =
                Span.enter ssink ~cat:"query" "query"
                  [ ("origin", Span.Int setup.origin) ]
              in
              let m =
                Phase.time "query" (fun () ->
                    run_query_on
                      ?on_event:
                        (compose_hooks (query_hook sink)
                           (span_query_hook ssink root))
                      ~decide cfg setup)
              in
              emit_stop sink m;
              Span.finish ssink root
                ~args:
                  [
                    ("messages", Span.Int m.messages);
                    ("found", Span.Int m.found);
                    ("satisfied", Span.Bool m.satisfied);
                  ]
                ();
              m)))

let run_query cfg ~trial =
  traced_query cfg ~trial (build ~purpose:For_query cfg ~trial)

let run_query_perturbed (cfg : Config.t) ~relative_stddev ~kind ~trial =
  traced_query cfg ~trial
    (build ~purpose:For_query ~perturb:(relative_stddev, kind) cfg ~trial)

(* ------------------------------------------------------------------ *)
(* Faulty trials.                                                      *)

type fault_metrics = {
  f_query : query_metrics;
  f_clean_found : int;
  f_recall : float;
  f_drift_messages : int;
  f_repair_messages : int;
  f_messages_per_result : float;
  f_stats : Fault.stats;
}

(* Relocate [drift * QR] results between live nodes, in batches, each
   move announced by corrective update waves from both endpoints — waves
   that run through the fault plan, so some corrections are lost or
   delayed and the surviving RI rows point at emptied subtrees.  This is
   the staleness source: without drift a lossy network merely keeps its
   (still accurate) creation-time indices. *)
let drift_content plan setup ~counters ?on_event () =
  let spec = Fault.spec plan in
  if spec.Fault.drift > 0. then begin
    let p = setup.placement in
    let n = Network.size setup.network in
    let topics = setup.query.Workload.topics in
    let to_move =
      int_of_float
        (Float.round
           (spec.Fault.drift *. float_of_int p.Placement.total_matches))
    in
    (* Matching documents carry exactly the query topics, so moving
       [take] of them shifts the summary by [take] on the total and on
       each query topic (clamped against float fuzz). *)
    let adjust v delta =
      let s = p.Placement.summaries.(v) in
      let by_topic = Array.copy s.Summary.by_topic in
      List.iter
        (fun t -> by_topic.(t) <- Float.max 0. (by_topic.(t) +. delta))
        topics;
      let s' =
        Summary.make ~total:(Float.max 0. (s.Summary.total +. delta)) ~by_topic
      in
      p.Placement.summaries.(v) <- s';
      s'
    in
    (* Deterministic rejection sampling on the plan's drift stream; the
       try bound keeps termination unconditional (e.g. when every
       surviving node is already empty). *)
    let pick_alive keep =
      let tries = ref 0 in
      let found = ref (-1) in
      while !found < 0 && !tries < 64 * n do
        let v = Fault.drift_int plan n in
        incr tries;
        if (not (Fault.is_dead plan v)) && keep v then found := v
      done;
      !found
    in
    let moved = ref 0 in
    let stuck = ref false in
    (* Each move drains its donor completely: a correction that is then
       lost leaves some row upstream advertising documents that are
       entirely gone — the garbage count the fallback policy exists to
       distrust. *)
    while !moved < to_move && not !stuck do
      let donor = pick_alive (fun v -> p.Placement.matches.(v) > 0) in
      let recipient =
        if donor < 0 then -1 else pick_alive (fun v -> v <> donor)
      in
      if donor < 0 || recipient < 0 then stuck := true
      else begin
        let take = min (to_move - !moved) p.Placement.matches.(donor) in
        p.Placement.matches.(donor) <- p.Placement.matches.(donor) - take;
        p.Placement.matches.(recipient) <-
          p.Placement.matches.(recipient) + take;
        let d = float_of_int take in
        let donor_summary = adjust donor (-.d) in
        let recipient_summary = adjust recipient d in
        moved := !moved + take;
        Update.local_change ?on_event ~plan setup.network ~origin:donor
          ~summary:donor_summary ~counters;
        Update.local_change ?on_event ~plan setup.network ~origin:recipient
          ~summary:recipient_summary ~counters
      end
    done
  end

(* The paired clean baseline — recall's denominator — replays the same
   build, the same content drift and the same query budget as a faulty
   trial with every fault rate at zero: its corrective waves all
   deliver, nothing crashes, no cut severs anything, and its indices
   converge on the drifted world.  Recall against it then measures
   fault damage alone (exactly 1 when every rate is zero), not the
   drift's rearrangement of the content. *)
let clean_found_baseline (cfg : Config.t) ~trial ~spec =
  let clean_spec =
    {
      Fault.none with
      Fault.drift = spec.Fault.drift;
      query_budget = spec.Fault.query_budget;
    }
  in
  let setup =
    build ~purpose:For_update
      ~mutable_placement:(clean_spec.Fault.drift > 0.)
      cfg ~trial
  in
  let plan =
    Fault.make clean_spec ?fault_seed:cfg.fault_seed
      ~neighbors:(Network.neighbors setup.network)
      ~seed:cfg.seed ~trial ~nodes:cfg.num_nodes ~protect:[ setup.origin ]
  in
  drift_content plan setup ~counters:(Message.create ()) ();
  (query_outcome ~plan cfg setup).Query.found

let run_query_faulty (cfg : Config.t) ~trial =
  let spec = cfg.fault in
  if not (Fault.active spec) then
    invalid_arg "Trial.run_query_faulty: inert fault spec (use run_query)";
  (* Faulty trials always run on the converged construction: corrective
     waves must be able to reach the rows that guide routing from the
     origin, which the rooted (downstream-only) build cannot express. *)
  let clean_found = clean_found_baseline cfg ~trial ~spec in
  Trace.with_trial ~trial (fun sink ->
      Decision.with_trial ~trial (fun decide ->
      Span.with_trial ~trial (fun ssink ->
      let setup =
        build ~purpose:For_update ~mutable_placement:(spec.Fault.drift > 0.)
          cfg ~trial
      in
      let plan =
        Fault.make spec ?fault_seed:cfg.fault_seed
          ~neighbors:(Network.neighbors setup.network)
          ~seed:cfg.seed ~trial ~nodes:cfg.num_nodes ~protect:[ setup.origin ]
      in
      let drift_counters = Message.create () in
      Phase.time "drift" (fun () ->
          let droot = Span.enter ssink ~cat:"update" "drift" [] in
          let shook, close_round = span_update_hook ssink droot in
          drift_content plan setup ~counters:drift_counters
            ?on_event:(compose_hooks (update_hook sink) shook) ();
          close_round ();
          Span.finish ssink droot
            ~args:
              [ ("messages", Span.Int drift_counters.Message.update_messages) ]
            ());
      let qroot =
        Span.enter ssink ~cat:"query" "query"
          [ ("origin", Span.Int setup.origin) ]
      in
      let outcome =
        Phase.time "query" (fun () ->
            query_outcome
              ?on_event:
                (compose_hooks (query_hook sink) (span_query_hook ssink qroot))
              ~decide ~plan cfg setup)
      in
      let m = metrics_of_outcome cfg outcome in
      emit_stop sink m;
      Span.finish ssink qroot
        ~args:
          [
            ("messages", Span.Int m.messages);
            ("found", Span.Int m.found);
            ("satisfied", Span.Bool m.satisfied);
          ]
        ();
      let repair_messages = outcome.Query.counters.Message.update_messages in
      {
        f_query = m;
        f_clean_found = clean_found;
        f_recall =
          (if clean_found = 0 then 1.
           else float_of_int m.found /. float_of_int clean_found);
        f_drift_messages = drift_counters.Message.update_messages;
        f_repair_messages = repair_messages;
        f_messages_per_result =
          float_of_int (m.messages + repair_messages)
          /. float_of_int (max 1 m.found);
        f_stats = Fault.stats plan;
      })))

type parallel_metrics = {
  par_messages : int;
  par_rounds : int;
  par_found : int;
  par_satisfied : bool;
}

let run_query_parallel (cfg : Config.t) ~branch ~trial =
  (match cfg.search with
  | Config.Ri _ -> ()
  | Config.No_ri | Config.Flooding _ ->
      invalid_arg "Trial.run_query_parallel: needs an RI search mechanism");
  let setup = build ~purpose:For_query cfg ~trial in
  Trace.with_trial ~trial (fun sink ->
      Span.with_trial ~trial (fun ssink ->
          let root =
            Span.enter ssink ~cat:"query" "query_parallel"
              [ ("origin", Span.Int setup.origin); ("branch", Span.Int branch) ]
          in
          let o =
            Phase.time "query" (fun () ->
                Query.run_parallel
                  ?on_event:
                    (compose_hooks (query_hook sink)
                       (span_query_hook ssink root))
                  setup.network ~origin:setup.origin ~query:setup.query ~branch)
          in
          let m =
            {
              par_messages = Message.query_messages o.Query.p_counters;
              par_rounds = o.Query.p_rounds;
              par_found = o.Query.p_found;
              par_satisfied = o.Query.p_satisfied;
            }
          in
          Span.finish ssink root
            ~args:
              [
                ("messages", Span.Int m.par_messages);
                ("rounds", Span.Int m.par_rounds);
                ("found", Span.Int m.par_found);
              ]
            ();
          m))

type update_metrics = {
  update_messages : int;
  update_bytes : float;
  update_wire_bytes : int;
}

let run_update_on ?on_event ?plan (cfg : Config.t) setup =
  let counters = Message.create () in
  (if Network.has_ri setup.network then begin
     (* One batch of document additions on a random topic at the origin
        ("client I introduces two new documents about languages",
        Section 4.3 — batched per Section 4.3's batching remark).  The
        batch is sized relative to the topic's network-wide count so it
        clears the minUpdate significance floor near the origin. *)
     let topic = Prng.int setup.rng cfg.topics in
     let network_topic_count =
       let acc = ref 0. in
       for v = 0 to Network.size setup.network - 1 do
         acc :=
           !acc +. Summary.get (Network.raw_local_summary setup.network v) topic
       done;
       !acc
     in
     let batch =
       Float.max 1. (Float.round (cfg.update_fraction *. network_topic_count))
     in
     let base = Network.raw_local_summary setup.network setup.origin in
     let by_topic = Array.copy base.Summary.by_topic in
     by_topic.(topic) <- by_topic.(topic) +. batch;
     let summary =
       Summary.make ~total:(base.Summary.total +. batch) ~by_topic
     in
     Update.local_change ?on_event ?plan setup.network ~origin:setup.origin
       ~summary ~counters
   end);
  Sketch.observe s_update_wave_messages
    (float_of_int counters.Message.update_messages);
  Sketch.observe s_update_wave_bytes
    (float_of_int counters.Message.update_wire_bytes);
  {
    update_messages = counters.Message.update_messages;
    update_bytes =
      float_of_int (counters.Message.update_messages * cfg.bytes.Message.update_bytes);
    update_wire_bytes = counters.Message.update_wire_bytes;
  }

let run_update (cfg : Config.t) ~trial =
  let setup = build ~purpose:For_update cfg ~trial in
  (* A fault-carrying config exposes the update wave to the same loss /
     delay / crash environment as its queries; the inert spec builds no
     plan at all, keeping the fault-free path bit-for-bit unchanged. *)
  let plan =
    if Fault.active cfg.fault then
      Some
        (Fault.make cfg.fault ?fault_seed:cfg.fault_seed
           ~neighbors:(Network.neighbors setup.network)
           ~seed:cfg.seed ~trial ~nodes:cfg.num_nodes
           ~protect:[ setup.origin ])
    else None
  in
  Trace.with_trial ~trial (fun sink ->
      Span.with_trial ~trial (fun ssink ->
          Phase.time "update" (fun () ->
              let root =
                Span.enter ssink ~cat:"update" "update_wave"
                  [ ("origin", Span.Int setup.origin) ]
              in
              let shook, close_round = span_update_hook ssink root in
              let m =
                run_update_on
                  ?on_event:(compose_hooks (update_hook sink) shook)
                  ?plan cfg setup
              in
              close_round ();
              Span.finish ssink root
                ~args:
                  [
                    ("messages", Span.Int m.update_messages);
                    ("wire_bytes", Span.Int m.update_wire_bytes);
                  ]
                ();
              m)))

(* ------------------------------------------------------------------ *)
(* Recovery trials: damage, dip, heal, reconverge.                     *)

type recovery_metrics = {
  r_dip : query_metrics;
  r_restored : query_metrics;
  r_clean_found : int;
  r_dip_recall : float;
  r_restored_recall : float;
  r_cut_size : int;
  r_recovered : int;
  r_ae_rounds : int;
  r_ae_repairs : int;
  r_recovery_messages : int;
  r_stats : Fault.stats;
}

(* Safety valve only: on trees the taint frontier shrinks every round,
   but a mutual-taint gap cycle on a cyclic overlay could ping-pong
   forever (see [Update.anti_entropy]'s doc). *)
let ae_round_cap = 64

let run_recovery (cfg : Config.t) ~trial =
  let spec = cfg.fault in
  if not (Fault.active spec) then
    invalid_arg "Trial.run_recovery: inert fault spec (use run_query)";
  (match cfg.search with
  | Config.Ri _ -> ()
  | Config.No_ri | Config.Flooding _ ->
      invalid_arg "Trial.run_recovery: needs an RI search mechanism");
  let clean_found = clean_found_baseline cfg ~trial ~spec in
  Trace.with_trial ~trial (fun sink ->
      Decision.with_trial ~trial (fun decide ->
      Span.with_trial ~trial (fun ssink ->
      let setup =
        build ~purpose:For_update ~mutable_placement:(spec.Fault.drift > 0.)
          cfg ~trial
      in
      let n = Network.size setup.network in
      let plan =
        Fault.make spec ?fault_seed:cfg.fault_seed
          ~neighbors:(Network.neighbors setup.network)
          ~seed:cfg.seed ~trial ~nodes:cfg.num_nodes ~protect:[ setup.origin ]
      in
      let cut = Fault.cut_size plan in
      (* Persist every odd-numbered victim's rows now — before the drift
         — so its later [Stale_state] rejoin replays a genuinely stale
         image; even-numbered victims rejoin amnesiac. *)
      let images = Hashtbl.create 8 in
      for v = 0 to n - 1 do
        if Fault.is_dead plan v && v land 1 = 1 then
          Hashtbl.replace images v (Churn.persist_rows setup.network v)
      done;
      let drift_counters = Message.create () in
      Phase.time "drift" (fun () ->
          drift_content plan setup ~counters:drift_counters
            ?on_event:(update_hook sink) ());
      (* The dip: query the damaged network — victims silent, the cut
         severing forwards, stale rows misrouting. *)
      let dip =
        Phase.time "query" (fun () ->
            run_query_on ?on_event:(query_hook sink) ~decide ~plan cfg setup)
      in
      let recovery_counters = Message.create () in
      let recovered = ref 0 in
      let rounds = ref 0 in
      let repairs = ref 0 in
      Phase.time "recovery" (fun () ->
          let root = Span.enter ssink ~cat:"fault" "recovery" [] in
          let shook, close_round = span_update_hook ssink root in
          let on_event = compose_hooks (update_hook sink) shook in
          (* Heal the cut and stop the weather first: reconvergence is
             then a property of the repair machinery alone, not of how
             lucky the re-announcement waves get. *)
          Fault.heal_partition plan;
          Fault.quiesce plan;
          for v = 0 to n - 1 do
            if Fault.is_dead plan v then begin
              let rejoin =
                match Hashtbl.find_opt images v with
                | Some bytes -> Churn.Stale_state bytes
                | None -> Churn.Amnesiac
              in
              Churn.recover ?on_event setup.network v ~rejoin ~plan
                ~counters:recovery_counters;
              incr recovered
            end
          done;
          let continue = ref true in
          while !continue && !rounds < ae_round_cap do
            let r =
              Update.anti_entropy ?on_event ~plan setup.network
                ~counters:recovery_counters
            in
            incr rounds;
            repairs := !repairs + r;
            if r = 0 then continue := false
          done;
          close_round ();
          Span.finish ssink root
            ~args:
              [
                ("recovered", Span.Int !recovered);
                ("ae_rounds", Span.Int !rounds);
                ("ae_repairs", Span.Int !repairs);
              ]
            ());
      let restored =
        Phase.time "query" (fun () ->
            run_query_on ?on_event:(query_hook sink) ~decide ~plan cfg setup)
      in
      let recall found =
        if clean_found = 0 then 1.
        else float_of_int found /. float_of_int clean_found
      in
      {
        r_dip = dip;
        r_restored = restored;
        r_clean_found = clean_found;
        r_dip_recall = recall dip.found;
        r_restored_recall = recall restored.found;
        r_cut_size = cut;
        r_recovered = !recovered;
        r_ae_rounds = !rounds;
        r_ae_repairs = !repairs;
        r_recovery_messages = recovery_counters.Message.update_messages;
        r_stats = Fault.stats plan;
      })))
