open Ri_util
open Ri_content
open Ri_topology
open Ri_p2p
open Ri_obs

type setup = {
  network : Network.t;
  universe : Topic.t;
  query : Workload.query;
  origin : int;
  rng : Prng.t;
}

let topology_graph (cfg : Config.t) rng =
  match cfg.topology with
  | Config.Tree ->
      Tree_gen.random_labels rng ~n:cfg.num_nodes ~fanout:cfg.fanout
  | Config.Tree_with_cycles { extra_links } ->
      Cycle_gen.tree_with_cycles rng ~n:cfg.num_nodes ~fanout:cfg.fanout
        ~extra_links
  | Config.Power_law_graph ->
      Power_law.generate rng ~n:cfg.num_nodes ~exponent:cfg.outdegree_exponent ()

type purpose = For_query | For_update

let build ?(purpose = For_query) ?perturb (cfg : Config.t) ~trial =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Trial.build: " ^ msg));
  (* One master stream per (seed, trial); independent substreams per
     subsystem so changes in one never perturb the others.  The split
     states are fixed once the master is seeded, so a substream left
     unused on a cache hit never perturbs the others. *)
  let master = Prng.create (cfg.seed + (trial * 0x9e3779b)) in
  let topo_rng = Prng.split master in
  let place_rng = Prng.split master in
  let query_rng = Prng.split master in
  let net_rng = Prng.split master in
  let trial_rng = Prng.split master in
  let universe = Topic.make cfg.topics in
  let graph =
    Setup_cache.graph
      {
        Setup_cache.g_topology = cfg.topology;
        g_num_nodes = cfg.num_nodes;
        g_fanout = cfg.fanout;
        g_exponent = cfg.outdegree_exponent;
        g_seed = cfg.seed;
        g_trial = trial;
      }
      (fun () -> Phase.time "topology" (fun () -> topology_graph cfg topo_rng))
  in
  (* The query's stop condition is carried in the config, not drawn from
     the stream, so the cached draw is shared across stop sweeps and the
     query record is rebuilt with the right stop below. *)
  let draw =
    Setup_cache.content
      {
        Setup_cache.c_num_nodes = cfg.num_nodes;
        c_topics = cfg.topics;
        c_query_results = cfg.query_results;
        c_distribution = cfg.distribution;
        c_background = cfg.background_per_node;
        c_seed = cfg.seed;
        c_trial = trial;
      }
      (fun () ->
        Phase.time "placement" (fun () ->
            let query =
              Workload.random_single query_rng universe ~stop:cfg.stop_condition
            in
            let placement =
              Placement.distribute place_rng ~universe ~n:cfg.num_nodes
                ~query_topics:query.topics ~results:cfg.query_results
                ~distribution:cfg.distribution
                ~background_per_node:cfg.background_per_node ()
            in
            let origin = Prng.int query_rng cfg.num_nodes in
            { Setup_cache.query_topics = query.topics; placement; origin }))
  in
  let query =
    Workload.query ~topics:draw.Setup_cache.query_topics
      ~stop:cfg.stop_condition
  in
  let placement = draw.Setup_cache.placement in
  let content = Network.content_of_placement placement in
  let origin = draw.Setup_cache.origin in
  let mode =
    match purpose with
    | For_update -> Network.Converged
    | For_query ->
        (* The paper simulator's construction: RIs built downstream from
           the query originator (Appendix A), under either cycle
           policy — the policies then differ in how the query itself
           handles a revisited node. *)
        Network.Rooted origin
  in
  let network =
    Phase.time "ri_build" (fun () ->
        Network.create ~graph ~content
          ?scheme:(Config.scheme_kind cfg)
          ~compression:(Config.compression cfg)
          ~cycle_policy:cfg.cycle_policy ~min_update:cfg.min_update ?perturb
          ~rng:net_rng ~mode ())
  in
  { network; universe; query; origin; rng = trial_rng }

type query_metrics = {
  messages : int;
  forwards : int;
  returns : int;
  results : int;
  found : int;
  satisfied : bool;
  nodes_visited : int;
  bytes : float;
}

let metrics_of_outcome (cfg : Config.t) (o : Query.outcome) =
  {
    messages = Query.messages o;
    forwards = o.counters.Message.query_forwards;
    returns = o.counters.Message.query_returns;
    results = o.counters.Message.result_messages;
    found = o.found;
    satisfied = o.satisfied;
    nodes_visited = o.nodes_visited;
    bytes = Message.bytes_of cfg.bytes o.counters;
  }

let run_query_on ?on_event (cfg : Config.t) setup =
  let outcome =
    match cfg.search with
    | Config.Ri _ ->
        Query.run ?on_event ~rng:setup.rng setup.network ~origin:setup.origin
          ~query:setup.query ~forwarding:Query.Ri_guided
    | Config.No_ri ->
        Query.run ?on_event ~rng:setup.rng setup.network ~origin:setup.origin
          ~query:setup.query ~forwarding:Query.Random_walk
    | Config.Flooding { ttl } ->
        Query.flood ?on_event setup.network ~origin:setup.origin
          ~query:setup.query ?ttl ()
  in
  metrics_of_outcome cfg outcome

(* Tracing hooks: built only when a live sink exists, so the disabled
   path passes [None] and the p2p layer keeps its no-op default. *)
let query_hook sink =
  if not (Trace.is_live sink) then None
  else
    Some
      (function
      | Query.Forwarded { sender; receiver } ->
          Trace.emit sink ~cat:"query" "forward"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Returned { sender; receiver } ->
          Trace.emit sink ~cat:"query" "backtrack"
            [ ("sender", Trace.Int sender); ("receiver", Trace.Int receiver) ]
      | Query.Results { at; count } ->
          Trace.emit sink ~cat:"query" "results"
            [ ("at", Trace.Int at); ("count", Trace.Int count) ])

let update_hook sink =
  if not (Trace.is_live sink) then None
  else
    Some
      (function
      | Update.Delivered { sender; receiver; significant; forwarded } ->
          Trace.emit sink ~cat:"update" "update_hop"
            [
              ("sender", Trace.Int sender);
              ("receiver", Trace.Int receiver);
              ("significant", Trace.Bool significant);
              ("forwarded", Trace.Bool forwarded);
            ])

let emit_stop sink (m : query_metrics) =
  if Trace.is_live sink then
    Trace.emit sink ~cat:"query" "stop"
      [
        ( "reason",
          Trace.Str (if m.satisfied then "satisfied" else "exhausted") );
        ("found", Trace.Int m.found);
        ("messages", Trace.Int m.messages);
        ("nodes_visited", Trace.Int m.nodes_visited);
      ]

let traced_query (cfg : Config.t) ~trial setup =
  Trace.with_trial ~trial (fun sink ->
      let m =
        Phase.time "query" (fun () ->
            run_query_on ?on_event:(query_hook sink) cfg setup)
      in
      emit_stop sink m;
      m)

let run_query cfg ~trial =
  traced_query cfg ~trial (build ~purpose:For_query cfg ~trial)

let run_query_perturbed (cfg : Config.t) ~relative_stddev ~kind ~trial =
  traced_query cfg ~trial
    (build ~purpose:For_query ~perturb:(relative_stddev, kind) cfg ~trial)

type parallel_metrics = {
  par_messages : int;
  par_rounds : int;
  par_found : int;
  par_satisfied : bool;
}

let run_query_parallel (cfg : Config.t) ~branch ~trial =
  (match cfg.search with
  | Config.Ri _ -> ()
  | Config.No_ri | Config.Flooding _ ->
      invalid_arg "Trial.run_query_parallel: needs an RI search mechanism");
  let setup = build ~purpose:For_query cfg ~trial in
  Trace.with_trial ~trial (fun sink ->
      let o =
        Phase.time "query" (fun () ->
            Query.run_parallel
              ?on_event:(query_hook sink)
              setup.network ~origin:setup.origin ~query:setup.query ~branch)
      in
      {
        par_messages = Message.query_messages o.Query.p_counters;
        par_rounds = o.Query.p_rounds;
        par_found = o.Query.p_found;
        par_satisfied = o.Query.p_satisfied;
      })

type update_metrics = { update_messages : int; update_bytes : float }

let run_update_on ?on_event (cfg : Config.t) setup =
  let counters = Message.create () in
  (if Network.has_ri setup.network then begin
     (* One batch of document additions on a random topic at the origin
        ("client I introduces two new documents about languages",
        Section 4.3 — batched per Section 4.3's batching remark).  The
        batch is sized relative to the topic's network-wide count so it
        clears the minUpdate significance floor near the origin. *)
     let topic = Prng.int setup.rng cfg.topics in
     let network_topic_count =
       let acc = ref 0. in
       for v = 0 to Network.size setup.network - 1 do
         acc :=
           !acc +. Summary.get (Network.raw_local_summary setup.network v) topic
       done;
       !acc
     in
     let batch =
       Float.max 1. (Float.round (cfg.update_fraction *. network_topic_count))
     in
     let base = Network.raw_local_summary setup.network setup.origin in
     let by_topic = Array.copy base.Summary.by_topic in
     by_topic.(topic) <- by_topic.(topic) +. batch;
     let summary =
       Summary.make ~total:(base.Summary.total +. batch) ~by_topic
     in
     Update.local_change ?on_event setup.network ~origin:setup.origin ~summary
       ~counters
   end);
  {
    update_messages = counters.Message.update_messages;
    update_bytes =
      float_of_int (counters.Message.update_messages * cfg.bytes.Message.update_bytes);
  }

let run_update cfg ~trial =
  let setup = build ~purpose:For_update cfg ~trial in
  Trace.with_trial ~trial (fun sink ->
      Phase.time "update" (fun () ->
          run_update_on ?on_event:(update_hook sink) cfg setup))
