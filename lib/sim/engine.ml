(* Discrete-event scheduler: a logical nanosecond clock, a binary-heap
   event queue ordered by (time, seq), and per-node FIFO mailboxes with
   a deterministic service model.  One engine drives one trial, on one
   domain; cross-trial parallelism stays at the pool layer, so nothing
   here needs synchronization and the (seed, trial, seq) determinism
   contract holds by construction. *)

type handler = unit -> unit

(* Array-backed binary min-heap over (time, seq).  [seq] is assigned at
   push in program order, so equal-time events pop exactly in the order
   they were scheduled — the tiebreak that makes a zero-latency schedule
   replay the synchronous execution order. *)
module Heap = struct
  type entry = { time : int; seq : int; run : handler }

  type t = { mutable a : entry array; mutable len : int }

  let dummy = { time = 0; seq = 0; run = ignore }

  let create () = { a = Array.make 256 dummy; len = 0 }

  let before x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push t e =
    if t.len = Array.length t.a then begin
      let a = Array.make (2 * t.len) dummy in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.a.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if before t.a.(!i) t.a.(p) then begin
        let tmp = t.a.(p) in
        t.a.(p) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.a.(0) in
      t.len <- t.len - 1;
      t.a.(0) <- t.a.(t.len);
      t.a.(t.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.len && before t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

(* Per-message queued entry: the handler plus the logical time it
   entered the mailbox, so the wait it accrued is known when service
   finally starts. *)
type queued = { enq : int; run : handler }

type t = {
  mutable now : int;
  mutable seq : int;
  heap : Heap.t;
  service_ns : int;
  link_ns : int;
  (* Mailboxes: a node services one message at a time; arrivals while
     busy wait in FIFO order. *)
  inbox : queued Queue.t array;
  busy : bool array;
  mutable processed : int;
  mutable backlog : int;  (* waiting messages across all mailboxes *)
  (* Per-node attribution, accumulated in flat arrays — the hotspot
     profiler's raw feed.  Always on: plain int stores on paths that
     already pay a heap operation per event, and the engine only exists
     while traffic actually flows. *)
  n_arrivals : int array;
  n_completions : int array;
  n_busy_ns : int array;
  n_wait_ns : int array;
  n_depth_sum : int array;  (* backlog seen by each arriving message *)
  n_peak : int array;
  (* Queue wait of the delivery whose handler is currently running;
     meaningful only inside a mailbox-delivered handler. *)
  mutable last_wait : int;
}

let ns_per_s = 1_000_000_000.

let of_seconds s = int_of_float (Float.round (s *. ns_per_s))

let to_seconds ns = float_of_int ns /. ns_per_s

let create ?(service_ns = 0) ?(link_ns = 0) ~nodes () =
  if nodes <= 0 then invalid_arg "Engine.create: nodes must be positive";
  if service_ns < 0 || link_ns < 0 then
    invalid_arg "Engine.create: negative latency";
  {
    now = 0;
    seq = 0;
    heap = Heap.create ();
    service_ns;
    link_ns;
    inbox = Array.init nodes (fun _ -> Queue.create ());
    busy = Array.make nodes false;
    processed = 0;
    backlog = 0;
    n_arrivals = Array.make nodes 0;
    n_completions = Array.make nodes 0;
    n_busy_ns = Array.make nodes 0;
    n_wait_ns = Array.make nodes 0;
    n_depth_sum = Array.make nodes 0;
    n_peak = Array.make nodes 0;
    last_wait = 0;
  }

let now t = t.now

let nodes t = Array.length t.inbox

let service_ns t = t.service_ns

let link_ns t = t.link_ns

let processed t = t.processed

let backlog t = t.backlog

let last_wait_ns t = t.last_wait

(* Global depth statistics are folds over the per-node arrays; both use
   the same convention as the per-node fields — waiting messages only,
   the one in service excluded. *)
let queue_peak t = Array.fold_left max 0 t.n_peak

let queue_mean t =
  let arrivals = Array.fold_left ( + ) 0 t.n_arrivals in
  if arrivals = 0 then 0.
  else
    float_of_int (Array.fold_left ( + ) 0 t.n_depth_sum)
    /. float_of_int arrivals

type node_stat = {
  s_arrivals : int;
  s_completions : int;
  s_busy_ns : int;
  s_wait_ns : int;
  s_depth_sum : int;
  s_peak : int;
}

let node_stat t v =
  if v < 0 || v >= Array.length t.inbox then
    invalid_arg "Engine.node_stat: node out of range";
  {
    s_arrivals = t.n_arrivals.(v);
    s_completions = t.n_completions.(v);
    s_busy_ns = t.n_busy_ns.(v);
    s_wait_ns = t.n_wait_ns.(v);
    s_depth_sum = t.n_depth_sum.(v);
    s_peak = t.n_peak.(v);
  }

let schedule t ~at run =
  if at < t.now then invalid_arg "Engine.schedule: event in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.heap { Heap.time = at; seq; run }

(* Service completion at [dst]: attribute the finished message's wait
   and busy time to the node, process it, then start on the next one
   waiting, if any (its wait = now - enqueue time). *)
let rec complete t dst ~wait run =
  t.processed <- t.processed + 1;
  t.n_completions.(dst) <- t.n_completions.(dst) + 1;
  t.n_busy_ns.(dst) <- t.n_busy_ns.(dst) + t.service_ns;
  t.n_wait_ns.(dst) <- t.n_wait_ns.(dst) + wait;
  t.last_wait <- wait;
  run ();
  if Queue.is_empty t.inbox.(dst) then t.busy.(dst) <- false
  else begin
    let next = Queue.pop t.inbox.(dst) in
    t.backlog <- t.backlog - 1;
    let wait = t.now - next.enq in
    schedule t
      ~at:(t.now + t.service_ns)
      (fun () -> complete t dst ~wait next.run)
  end

(* A message lands in [dst]'s mailbox: start service now if the node is
   idle, otherwise join the FIFO.  The backlog it sees — waiting
   messages, excluding any in service — feeds both the per-node depth
   mean and the peak. *)
let arrive t dst run =
  t.n_arrivals.(dst) <- t.n_arrivals.(dst) + 1;
  let depth = Queue.length t.inbox.(dst) in
  t.n_depth_sum.(dst) <- t.n_depth_sum.(dst) + depth;
  if t.busy.(dst) then begin
    Queue.add { enq = t.now; run } t.inbox.(dst);
    t.backlog <- t.backlog + 1;
    if depth + 1 > t.n_peak.(dst) then t.n_peak.(dst) <- depth + 1
  end
  else begin
    t.busy.(dst) <- true;
    schedule t ~at:(t.now + t.service_ns) (fun () ->
        complete t dst ~wait:0 run)
  end

let inject t ~at ~dst run =
  if dst < 0 || dst >= Array.length t.inbox then
    invalid_arg "Engine.inject: node out of range";
  schedule t ~at (fun () -> arrive t dst run)

let send t ~dst run =
  if dst < 0 || dst >= Array.length t.inbox then
    invalid_arg "Engine.send: node out of range";
  if t.link_ns = 0 then arrive t dst run
  else schedule t ~at:(t.now + t.link_ns) (fun () -> arrive t dst run)

let run t =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some e ->
        t.now <- e.Heap.time;
        e.Heap.run ()
  done
