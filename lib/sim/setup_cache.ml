open Ri_util
open Ri_content
open Ri_topology

(* Every trial derives independent PRNG substreams per subsystem from
   (seed, trial), so the overlay graph depends only on the topology
   parameters and the content draw (query topic, placement, origin)
   depends only on the workload parameters — neither sees the search
   scheme, stop condition, compression, or cycle policy.  Experiment
   sweeps that vary only those therefore regenerate identical graphs and
   placements for every cell; this cache shares them instead.  Cached
   values are immutable by contract: [Network.create] copies adjacency
   rows and projects summaries into its own arrays, and nothing mutates
   a [Placement.t] after construction. *)

type graph_key = {
  g_topology : Config.topology;
  g_num_nodes : int;
  g_fanout : int;
  g_exponent : float;
  g_seed : int;
  g_trial : int;
}

type content = {
  query_topics : Topic.id list;
  placement : Placement.t;
  origin : int;
}

type content_key = {
  c_num_nodes : int;
  c_topics : int;
  c_query_results : int;
  c_distribution : Placement.distribution;
  c_background : float;
  c_seed : int;
  c_trial : int;
}

(* Converged (or rooted) networks are pure functions of the overlay,
   the content draw and the index parameters below — nothing else in a
   [Config.t] feeds the build.  Keying on exactly those fields lets a
   stop-condition or byte-cost sweep reuse one template across every
   cell; each access returns [Network.copy template], never the
   template itself, so callers may mutate their copy freely. *)
(* Where a template's RI state came from.  A snapshot-loaded network
   has the same configuration fingerprint as a generator-built one but
   not necessarily the same floats (the snapshot may predate a content
   tweak, or carry quantized rows), so the provenance is part of the
   key — the two must never alias one cache slot. *)
type source = Generated | Snapshot of string

type network_key = {
  n_graph : graph_key;
  n_content : content_key;
  n_scheme : Ri_core.Scheme.kind option;
  n_ratio : float;
  n_error_kind : Compression.error_kind;
  n_policy : Ri_p2p.Network.cycle_policy;
  n_min_update : float;
  n_floor : float;  (* update_distance_floor *)
  n_origin : int option;  (* [Rooted] origin; [None] is converged *)
  n_quant : int option;  (* quantization bits; [None] is exact floats *)
  n_source : source;
}

type stats = {
  graph_hits : int;
  graph_misses : int;
  content_hits : int;
  content_misses : int;
  network_hits : int;
  network_misses : int;
  network_generated : int;
  network_snapshot : int;
}

(* Trials inside a runner wave execute on separate domains; one mutex
   guards both tables.  Misses compute outside the lock — a racing
   domain may build the same key twice, but both values are structurally
   identical and the first insert wins. *)
let lock = Mutex.create ()

let graphs : (graph_key, Graph.t) Hashtbl.t = Hashtbl.create 64

let contents : (content_key, content) Hashtbl.t = Hashtbl.create 64

let networks : (network_key, Ri_p2p.Network.t) Hashtbl.t = Hashtbl.create 64

let graph_words = ref 0

let content_words = ref 0

let network_words = ref 0

let g_hits = ref 0

let g_misses = ref 0

let c_hits = ref 0

let c_misses = ref 0

let n_hits = ref 0

let n_misses = ref 0

let n_generated = ref 0

let n_snapshot = ref 0

(* Bound resident memory rather than entry counts: a 60k-node placement
   is ~15MB while a 300-node one is trivial.  On overflow the table is
   reset wholesale — reuse distances within an experiment sweep are
   short, so the refill cost is one trial set.  Each of the three
   tables gets its own budget; [RI_CACHE_WORDS] resizes it (the scale
   experiment's 100k-node templates are ~8M words apiece). *)
let budget_words = Env.int ~min:1 "RI_CACHE_WORDS" 32_000_000

let cache_enabled = ref (Env.int ~min:0 "RI_CACHE" 1 <> 0)

let enabled () = !cache_enabled

let set_enabled b = cache_enabled := b

let clear () =
  Mutex.lock lock;
  Hashtbl.reset graphs;
  Hashtbl.reset contents;
  Hashtbl.reset networks;
  graph_words := 0;
  content_words := 0;
  network_words := 0;
  g_hits := 0;
  g_misses := 0;
  c_hits := 0;
  c_misses := 0;
  n_hits := 0;
  n_misses := 0;
  n_generated := 0;
  n_snapshot := 0;
  Mutex.unlock lock

let stats () =
  Mutex.lock lock;
  let s =
    {
      graph_hits = !g_hits;
      graph_misses = !g_misses;
      content_hits = !c_hits;
      content_misses = !c_misses;
      network_hits = !n_hits;
      network_misses = !n_misses;
      network_generated = !n_generated;
      network_snapshot = !n_snapshot;
    }
  in
  Mutex.unlock lock;
  s

let find_or tbl hits misses words ~cost key compute =
  if not !cache_enabled then compute ()
  else begin
    Mutex.lock lock;
    match Hashtbl.find_opt tbl key with
    | Some v ->
        incr hits;
        Mutex.unlock lock;
        v
    | None ->
        incr misses;
        Mutex.unlock lock;
        let v = compute () in
        let c = cost v in
        Mutex.lock lock;
        let v =
          match Hashtbl.find_opt tbl key with
          | Some winner -> winner
          | None ->
              if !words + c > budget_words then begin
                Hashtbl.reset tbl;
                words := 0
              end;
              Hashtbl.add tbl key v;
              words := !words + c;
              v
        in
        Mutex.unlock lock;
        v
  end

let graph_cost g =
  let n = Graph.n g in
  n + (2 * Graph.edge_count g)

let content_cost c =
  let n = Array.length c.placement.Placement.matches in
  let topics =
    if n = 0 then 0 else Summary.topics c.placement.Placement.summaries.(0)
  in
  n * (topics + 4)

let graph key compute = find_or graphs g_hits g_misses graph_words ~cost:graph_cost key compute

let content key compute =
  find_or contents c_hits c_misses content_words ~cost:content_cost key compute

(* The template stays private to the cache: every access — the miss
   that built it included — hands out a [Network.copy], whose flat-store
   blits preserve bit-identity with a from-scratch build.  With the
   cache disabled the freshly built network is returned as is. *)
let network key compute =
  Mutex.lock lock;
  (match key.n_source with
  | Generated -> incr n_generated
  | Snapshot _ -> incr n_snapshot);
  Mutex.unlock lock;
  if not !cache_enabled then compute ()
  else
    Ri_p2p.Network.copy
      (find_or networks n_hits n_misses network_words
         ~cost:Ri_p2p.Network.storage_words key compute)
