(** Bridge from the simulator's always-on internal counters
    ({!Setup_cache} hit/miss, {!Ri_util.Pool} utilization) into the
    {!Ri_obs.Metrics} registry, plus the one-line human summaries the
    CLI prints after experiment runs. *)

val export_metrics : unit -> unit
(** Snapshot current setup-cache and global-pool statistics into
    gauges ([ri_setup_cache_*], [ri_pool_*]), including one
    [ri_pool_shard_*{phase=...}] family per labeled sharding site
    (update_wave, placement, ri_build): busy/idle domain averages,
    steal and inline-wave counters, straggler wait — and the per-phase
    GC deltas as [ri_gc_*{phase=...}] gauges ({!Ri_obs.Gcprof}).  Call
    just before {!Ri_obs.Metrics.render}. *)

val render_metrics : unit -> string
(** [export_metrics] then the full Prometheus text exposition:
    registry metrics followed by the quantile-sketch summaries
    ({!Ri_obs.Sketch.render}).  What [--metrics] writes and
    [--serve-obs] serves at [/metrics]. *)

val gc_lines : unit -> string list
(** Per-phase GC summary table ({!Ri_obs.Gcprof.table_lines}); empty
    when no phase ran with metrics on. *)

val cache_line : unit -> string
(** e.g. ["setup-cache: graphs 40 hits / 8 misses (83%), content ..."],
    or a note that the cache is disabled.  When any network template
    came from a snapshot file the line carries a
    [[source: generated xN, snapshot xM]] tag. *)

val pool_line : unit -> string
(** e.g. ["pool: 4 domains, 12 waves / 96 trials (max wave 8), ..."];
    labeled sharding phases append one per-phase efficiency line
    each. *)
