open Ri_util
open Ri_obs

type spec = { min_trials : int; max_trials : int; target_rel_error : float }

let m_units =
  Metrics.counter ~help:"Runner invocations (data points)." "ri_runner_units_total"

let m_waves = Metrics.counter ~help:"Trial waves executed." "ri_runner_waves_total"

let m_trials = Metrics.counter ~help:"Trials executed." "ri_runner_trials_total"

let m_converged =
  Metrics.counter ~help:"Data points stopped early by the CI rule."
    "ri_runner_converged_total"

let default_spec = { min_trials = 5; max_trials = 30; target_rel_error = 0.1 }

let spec_of_env () =
  let m = Env.int ~min:1 "RI_TRIALS" default_spec.max_trials in
  { default_spec with max_trials = m; min_trials = min default_spec.min_trials m }

(* Trials run in waves so the adaptive stopping rule stays deterministic
   under parallel execution: the first wave is [min_trials], every later
   wave is a fixed-size batch, and convergence is only checked at wave
   boundaries.  Wave size never depends on the pool width, and the wave's
   observations fold into the accumulator in trial-index order, so
   [RI_JOBS=4] and [RI_JOBS=1] produce bit-identical summaries.  The
   price is a bounded overshoot: up to [wave_batch - 1] extra trials
   compared to checking after every single one. *)
let wave_batch = 4

let run ?pool spec f =
  if spec.min_trials < 1 || spec.max_trials < spec.min_trials then
    invalid_arg "Runner.run: bad trial bounds";
  let pool = match pool with Some p -> p | None -> Pool.global () in
  (* One trace unit per data point, bumped on the submitting domain, so
     trial keys never depend on the pool width.  Each recorder keeps its
     own counter: provenance can be on without tracing and vice versa. *)
  Trace.next_unit ();
  Decision.next_unit ();
  Span.next_unit ();
  Metrics.incr m_units;
  Serve.Progress.begin_run ~total:spec.max_trials ();
  let acc = Stats.Acc.create () in
  let next = ref 0 in
  let converged = ref false in
  while (not !converged) && !next < spec.max_trials do
    let wave =
      if !next = 0 then min spec.min_trials spec.max_trials
      else min wave_batch (spec.max_trials - !next)
    in
    let base = !next in
    let obs = Pool.map_chunked ~chunk:1 pool ~n:wave (fun i -> f ~trial:(base + i)) in
    Array.iter (Stats.Acc.add acc) obs;
    Metrics.incr m_waves;
    Metrics.add m_trials wave;
    next := base + wave;
    Serve.Progress.set_trials !next;
    if
      Stats.Acc.count acc >= spec.min_trials
      && Stats.converged ~target:spec.target_rel_error ~min_obs:spec.min_trials
           acc
    then converged := true
  done;
  if !converged then Metrics.incr m_converged;
  Stats.summarize acc

let mean ?pool spec f = (run ?pool spec f).Stats.mean
