open Ri_util
open Ri_core
open Ri_content
open Ri_p2p

(* Versioned binary snapshot of a converged trial setup.

   Layout: one 4096-byte header page (magic, fingerprint, state scalars,
   section directory), then nine page-aligned sections:

     adj_offsets  int64[n+1]   per-node offsets into adj_flat
     adj_flat     int32[2m]    concatenated sorted adjacency rows
     matches      int32[n]     query results placed per node
     summaries    f64[n*(t+1)] per-node local summary (total, by_topic)
     qtopics      int32[q]     the trial's query topics
     row_counts   int32[n]     RI rows per node
     peers        int32[R]     row peers, in each store's iteration order
     stamps       int64[R]     per-row update-wave stamps
     rowdata      f64[R*s] or bytes[R*cb]   row cells (exact | packed)

   Everything load needs that is not config-derivable is in the file;
   everything that is config-derivable (universe, query stop, PRNG
   streams) is re-derived, and a 21-field fingerprint ties the file to
   the exact (config, trial) that produced it — loading under any other
   configuration fails loudly rather than silently mixing states.  The
   peers sections record each store's live iteration order, so a loaded
   network's aggregation (float summation) order — and with it every
   routed query — is bit-for-bit the saved network's. *)

let magic = "RISNAP01"

let page = 4096

let align off = (off + page - 1) / page * page

let f64 = Int64.bits_of_float

let bad fmt = Printf.ksprintf (fun s -> failwith ("Snapshot: " ^ s)) fmt

(* Fixed header slots (8 bytes each, after the 8-byte magic). *)
let slot_fingerprint = 0 (* .. 20 *)

let slot_distance_floor = 21

let slot_stride = 22

let slot_rooted = 23

let slot_origin = 24

let slot_converged_iters = 25

let slot_next_wave = 26

let slot_qtopics = 27

let slot_total_matches = 28

let slot_rows = 29

let slot_half_edges = 30

let slot_width = 31

let slot_sections = 32 (* 9 x (offset, length) pairs: 32 .. 49 *)

(* The (config, trial) fields the saved state is a pure function of —
   compared slot-for-slot at load time.  Float-valued knobs are
   compared by IEEE bit pattern: the fingerprint asks "same build
   inputs", not "approximately similar". *)
let fingerprint (cfg : Config.t) ~trial =
  let dist_code, f_doc, f_node =
    match cfg.distribution with
    | Placement.Uniform -> (0L, 0L, 0L)
    | Placement.Biased { doc_share; node_share } ->
        (1L, f64 doc_share, f64 node_share)
  in
  let topo_code, topo_links, topo_expo =
    match cfg.topology with
    | Config.Tree -> (0L, 0L, 0L)
    | Config.Tree_with_cycles { extra_links } ->
        (1L, Int64.of_int extra_links, 0L)
    | Config.Power_law_graph -> (2L, 0L, f64 cfg.outdegree_exponent)
  in
  let sch_code, sch_horizon, sch_fanout =
    match Config.scheme_kind cfg with
    | None -> bad "a No-RI configuration has no index state to snapshot"
    | Some Scheme.Cri_kind -> (1L, 0L, 0L)
    | Some (Scheme.Hri_kind { horizon; fanout }) ->
        (2L, Int64.of_int horizon, f64 fanout)
    | Some (Scheme.Eri_kind { fanout }) -> (3L, 0L, f64 fanout)
    | Some (Scheme.Hybrid_kind { horizon; fanout }) ->
        (4L, Int64.of_int horizon, f64 fanout)
  in
  let quant_bits, quant_vmax =
    match Config.quant cfg with
    | None -> (0L, 0L)
    | Some q -> (Int64.of_int q.Rowstore.bits, f64 q.Rowstore.vmax)
  in
  [|
    ("num_nodes", Int64.of_int cfg.num_nodes);
    ("topics", Int64.of_int cfg.topics);
    ("fanout", Int64.of_int cfg.fanout);
    ("query_results", Int64.of_int cfg.query_results);
    ("seed", Int64.of_int cfg.seed);
    ("trial", Int64.of_int trial);
    ("background_per_node", f64 cfg.background_per_node);
    ("distribution", dist_code);
    ("doc_share", f_doc);
    ("node_share", f_node);
    ("topology", topo_code);
    ("extra_links", topo_links);
    ("outdegree_exponent", topo_expo);
    ("scheme", sch_code);
    ("horizon", sch_horizon);
    ("scheme_fanout", sch_fanout);
    ("cycle_policy",
     match cfg.cycle_policy with Network.No_op -> 0L | Network.Detect_recover -> 1L);
    ("min_update", f64 cfg.min_update);
    ("compression_ratio", f64 cfg.compression_ratio);
    ("quant_bits", quant_bits);
    ("quant_vmax", quant_vmax);
  |]

(* Re-derive the per-trial PRNG substreams exactly as [Trial.build]
   does: the split states are fixed once the master is seeded, so the
   trial stream a loaded setup hands out is the very stream the
   generator-built setup would have. *)
let trial_streams (cfg : Config.t) ~trial =
  let master = Prng.create (cfg.seed + (trial * 0x9e3779b)) in
  let _topo = Prng.split master in
  let _place = Prng.split master in
  let _query = Prng.split master in
  let net_rng = Prng.split master in
  let trial_rng = Prng.split master in
  (net_rng, trial_rng)

let set_slot hdr i v = Bytes.set_int64_le hdr (8 + (8 * i)) v

let get_slot hdr i = Bytes.get_int64_le hdr (8 + (8 * i))

let slot_int hdr i = Int64.to_int (get_slot hdr i)

(* ------------------------------------------------------------------ *)
(* Save.                                                               *)

let save path (cfg : Config.t) ~trial ~rooted (setup : Trial.setup) =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error m -> invalid_arg ("Snapshot.save: " ^ m));
  let dbg = Env.int ~min:0 "RI_SNAP_DEBUG" 0 <> 0 in
  let t_last = ref (Sys.time ()) in
  let mark name =
    if dbg then begin
      let t = Sys.time () in
      Printf.eprintf "snap-save %-10s %7.3fs\n%!" name (t -. !t_last);
      t_last := t
    end
  in
  let net = setup.Trial.network in
  let n = Network.size net in
  if Network.perturbed net then
    invalid_arg "Snapshot.save: a perturbed network draws from its PRNG \
                 mid-run; its state cannot be captured";
  if not (Network.has_ri net) then
    invalid_arg "Snapshot.save: No-RI network";
  if cfg.compression_ratio <> 0. then
    invalid_arg "Snapshot.save: only exact (uncompressed) index \
                 configurations are snapshotted";
  if n <> cfg.num_nodes then invalid_arg "Snapshot.save: network/config size mismatch";
  let topics = cfg.topics in
  let fp = fingerprint cfg ~trial in
  let stride = Rowstore.stride (Scheme.rowstore (Network.ri net 0)) in
  let width = Scheme.width (Network.ri net 0) in
  let quant = Config.quant cfg in
  let half_edges = ref 0 in
  for v = 0 to n - 1 do
    half_edges := !half_edges + Network.degree net v
  done;
  let rows = ref 0 in
  for v = 0 to n - 1 do
    rows := !rows + Rowstore.count (Scheme.rowstore (Network.ri net v))
  done;
  let rows = !rows in
  let row_bytes =
    match quant with
    | None -> 8 * stride
    | Some _ -> Rowstore.row_code_bytes (Scheme.rowstore (Network.ri net 0))
  in
  let qtopics = Array.of_list setup.Trial.query.Workload.topics in
  let p = setup.Trial.placement in
  (* Section lengths in bytes, in file order. *)
  let lengths =
    [|
      8 * (n + 1);
      4 * !half_edges;
      4 * n;
      8 * n * (topics + 1);
      4 * Array.length qtopics;
      4 * n;
      4 * rows;
      8 * rows;
      rows * row_bytes;
    |]
  in
  let hdr = Bytes.make page '\000' in
  Bytes.blit_string magic 0 hdr 0 8;
  Array.iteri (fun i (_, v) -> set_slot hdr (slot_fingerprint + i) v) fp;
  set_slot hdr slot_distance_floor (f64 (Network.update_distance_floor net));
  set_slot hdr slot_stride (Int64.of_int stride);
  set_slot hdr slot_rooted (if rooted then 1L else 0L);
  set_slot hdr slot_origin (Int64.of_int setup.Trial.origin);
  set_slot hdr slot_converged_iters
    (Int64.of_int (Network.converged_iterations net));
  set_slot hdr slot_next_wave (Int64.of_int (Network.wave_counter net));
  set_slot hdr slot_qtopics (Int64.of_int (Array.length qtopics));
  set_slot hdr slot_total_matches
    (Int64.of_int p.Placement.total_matches);
  set_slot hdr slot_rows (Int64.of_int rows);
  set_slot hdr slot_half_edges (Int64.of_int !half_edges);
  set_slot hdr slot_width (Int64.of_int width);
  let off = ref page in
  Array.iteri
    (fun i len ->
      set_slot hdr (slot_sections + (2 * i)) (Int64.of_int !off);
      set_slot hdr (slot_sections + (2 * i) + 1) (Int64.of_int len);
      off := align (!off + len))
    lengths;
  let oc = Out_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> Out_channel.close oc)
    (fun () ->
      Out_channel.output_bytes oc hdr;
      let pos = ref page in
      let section_buf i buf =
        Out_channel.output_bytes oc buf;
        pos := !pos + lengths.(i);
        let padded = align !pos in
        if padded > !pos then begin
          Out_channel.output_string oc (String.make (padded - !pos) '\000');
          pos := padded
        end
      in
      let section i fill =
        let buf = Bytes.make lengths.(i) '\000' in
        fill buf;
        section_buf i buf
      in
      (* adj_offsets + adj_flat *)
      section 0 (fun buf ->
          let acc = ref 0 in
          for v = 0 to n - 1 do
            Bytes.set_int64_le buf (8 * v) (Int64.of_int !acc);
            acc := !acc + Network.degree net v
          done;
          Bytes.set_int64_le buf (8 * n) (Int64.of_int !acc));
      section 1 (fun buf ->
          let k = ref 0 in
          for v = 0 to n - 1 do
            Array.iter
              (fun u ->
                Bytes.set_int32_le buf (4 * !k) (Int32.of_int u);
                incr k)
              (Network.neighbors net v)
          done);
      section 2 (fun buf ->
          for v = 0 to n - 1 do
            Bytes.set_int32_le buf (4 * v)
              (Int32.of_int p.Placement.matches.(v))
          done);
      section 3 (fun buf ->
          for v = 0 to n - 1 do
            (* The live (projected) local summary: with exact
               compression it doubles as the content summary, keeping
               one section authoritative for both. *)
            let s = Network.local_summary net v in
            let base = 8 * v * (topics + 1) in
            Bytes.set_int64_le buf base (f64 s.Summary.total);
            for t = 0 to topics - 1 do
              Bytes.set_int64_le buf
                (base + (8 * (t + 1)))
                (f64 s.Summary.by_topic.(t))
            done
          done);
      section 4 (fun buf ->
          Array.iteri
            (fun i t -> Bytes.set_int32_le buf (4 * i) (Int32.of_int t))
            qtopics);
      section 5 (fun buf ->
          for v = 0 to n - 1 do
            Bytes.set_int32_le buf (4 * v)
              (Int32.of_int (Rowstore.count (Scheme.rowstore (Network.ri net v))))
          done);
      mark "small";
      let row = ref 0 in
      let peer_buf = Bytes.make lengths.(6) '\000' in
      let stamp_buf = Bytes.make lengths.(7) '\000' in
      let data_buf = Bytes.make lengths.(8) '\000' in
      for v = 0 to n - 1 do
        let store = Scheme.rowstore (Network.ri net v) in
        Rowstore.iter store (fun peer offv ->
            let i = !row in
            incr row;
            Bytes.set_int32_le peer_buf (4 * i) (Int32.of_int peer);
            Bytes.set_int64_le stamp_buf (8 * i)
              (Int64.of_int (Rowstore.stamp store peer));
            match quant with
            | None ->
                let scratch = Rowstore.scratch store in
                Rowstore.decode_row store offv scratch;
                for c = 0 to stride - 1 do
                  Bytes.set_int64_le data_buf
                    (8 * ((i * stride) + c))
                    (f64 scratch.(c))
                done
            | Some _ -> Rowstore.blit_row_codes store offv data_buf (i * row_bytes))
      done;
      mark "rows";
      (* The row sections are written from their fill buffers directly —
         at a million nodes these are hundreds of MB and a staging copy
         through [section] would double both the traffic and the live
         bytes. *)
      section_buf 6 peer_buf;
      section_buf 7 stamp_buf;
      section_buf 8 data_buf;
      mark "write")

(* ------------------------------------------------------------------ *)
(* Load.                                                               *)

let read_section ic hdr i =
  let off = slot_int hdr (slot_sections + (2 * i)) in
  let len = slot_int hdr (slot_sections + (2 * i) + 1) in
  if off < page || len < 0 then bad "corrupt section directory";
  In_channel.seek ic (Int64.of_int off);
  let buf = Bytes.create len in
  (match In_channel.really_input ic buf 0 len with
  | Some () -> ()
  | None -> bad "truncated file (section %d)" i);
  buf

let load path (cfg : Config.t) ~trial =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error m -> invalid_arg ("Snapshot.load: " ^ m));
  let dbg = Env.int ~min:0 "RI_SNAP_DEBUG" 0 <> 0 in
  let t_last = ref (Sys.time ()) in
  let g_last = ref (Gc.quick_stat ()) in
  let mark name =
    if dbg then begin
      let t = Sys.time () and g = Gc.quick_stat () in
      Printf.eprintf "snap-load %-10s %7.3fs  majors %3d  minor %6.1fMw\n%!"
        name (t -. !t_last)
        (g.Gc.major_collections - !g_last.Gc.major_collections)
        ((g.Gc.minor_words -. !g_last.Gc.minor_words) /. 1e6);
      t_last := t;
      g_last := g
    end
  in
  let fp = fingerprint cfg ~trial in
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () ->
      let hdr = Bytes.create page in
      (match In_channel.really_input ic hdr 0 page with
      | Some () -> ()
      | None -> bad "truncated header");
      if Bytes.sub_string hdr 0 8 <> magic then
        bad "bad magic (not a snapshot, or an incompatible version)";
      Array.iteri
        (fun i (name, expected) ->
          let got = get_slot hdr (slot_fingerprint + i) in
          if got <> expected then
            bad "fingerprint mismatch on %s: file has %Ld, configuration \
                 expects %Ld"
              name got expected)
        fp;
      let n = cfg.num_nodes in
      let topics = cfg.topics in
      let stride = slot_int hdr slot_stride in
      let width = slot_int hdr slot_width in
      let rows = slot_int hdr slot_rows in
      let half_edges = slot_int hdr slot_half_edges in
      let origin = slot_int hdr slot_origin in
      let rooted = get_slot hdr slot_rooted <> 0L in
      let quant = Config.quant cfg in
      let row_bytes =
        match quant with
        | None -> 8 * stride
        | Some q -> ((stride * q.Rowstore.bits) + 7) / 8
      in
      mark "header";
      (* adjacency *)
      let offs = read_section ic hdr 0 in
      let flat = read_section ic hdr 1 in
      mark "read-adj";
      if Bytes.length flat <> 4 * half_edges then bad "adjacency length mismatch";
      let adj =
        Array.init n (fun v ->
            let lo = Int64.to_int (Bytes.get_int64_le offs (8 * v)) in
            let hi = Int64.to_int (Bytes.get_int64_le offs (8 * (v + 1))) in
            if lo < 0 || hi < lo || hi > half_edges then
              bad "corrupt adjacency offsets at node %d" v;
            Array.init (hi - lo) (fun i ->
                Int32.to_int (Bytes.get_int32_le flat (4 * (lo + i)))))
      in
      mark "adj";
      (* content *)
      let matches_b = read_section ic hdr 2 in
      let matches =
        Array.init n (fun v -> Int32.to_int (Bytes.get_int32_le matches_b (4 * v)))
      in
      let sums_b = read_section ic hdr 3 in
      let locals =
        Array.init n (fun v ->
            let base = 8 * v * (topics + 1) in
            let total =
              Int64.float_of_bits (Bytes.get_int64_le sums_b base)
            in
            let by_topic =
              Array.init topics (fun t ->
                  Int64.float_of_bits
                    (Bytes.get_int64_le sums_b (base + (8 * (t + 1)))))
            in
            Summary.make ~total ~by_topic)
      in
      let qt_b = read_section ic hdr 4 in
      let query_topics =
        List.init (slot_int hdr slot_qtopics) (fun i ->
            Int32.to_int (Bytes.get_int32_le qt_b (4 * i)))
      in
      mark "content";
      (* routing indices *)
      let counts_b = read_section ic hdr 5 in
      let peers_b = read_section ic hdr 6 in
      let stamps_b = read_section ic hdr 7 in
      let data_b = read_section ic hdr 8 in
      mark "read-rows";
      if Bytes.length data_b <> rows * row_bytes then
        bad "row payload length contradicts the configured cell format";
      let kind =
        match Config.scheme_kind cfg with
        | Some k -> k
        | None -> bad "a No-RI configuration cannot load index state"
      in
      (* Each node's slice of the row sections is fixed by the prefix
         sums of the counts, so the per-node store rebuild is pure and
         big loads fan it across the pool — every store lands at its
         own index, order-free. *)
      let bases = Array.make (n + 1) 0 in
      for v = 0 to n - 1 do
        let count = Int32.to_int (Bytes.get_int32_le counts_b (4 * v)) in
        if count < 0 then bad "negative row count at node %d" v;
        bases.(v + 1) <- bases.(v) + count
      done;
      if bases.(n) <> rows then bad "row counts disagree with the row total";
      let build v =
        let base = bases.(v) in
        let count = bases.(v + 1) - base in
        let peers =
          Array.init count (fun i ->
              Int32.to_int (Bytes.get_int32_le peers_b (4 * (base + i))))
        in
        let stamps =
          Array.init count (fun i ->
              Int64.to_int (Bytes.get_int64_le stamps_b (8 * (base + i))))
        in
        let payload =
          match quant with
          | None ->
              let cells = Array.make (count * stride) 0. in
              for i = 0 to (count * stride) - 1 do
                cells.(i) <-
                  Int64.float_of_bits
                    (Bytes.get_int64_le data_b (8 * ((base * stride) + i)))
              done;
              `Floats cells
          | Some _ ->
              `Codes (Bytes.sub data_b (base * row_bytes) (count * row_bytes))
        in
        let store = Rowstore.of_loaded ~stride ?quant ~peers ~stamps payload in
        Scheme.with_rowstore
          (Scheme.create ~rows:1 ?quant kind ~width ~local:locals.(v))
          store
      in
      let ris =
        let pool = Pool.global () in
        if
          Pool.jobs pool > 1
          && (not (Pool.in_job ()))
          && n >= Env.int ~min:1 "RI_PAR_BUILD_MIN" 4096
        then Pool.map_chunked ~chunk:256 ~label:"snap_load" pool ~n build
        else Array.init n build
      in
      mark "stores";
      let placement =
        {
          Placement.matches;
          summaries = locals;
          total_matches = slot_int hdr slot_total_matches;
        }
      in
      let net_rng, trial_rng = trial_streams cfg ~trial in
      let network =
        Network.of_parts ~adj
          ~content:(Network.content_of_placement placement)
          ~scheme_kind:(Some kind)
          ~compression:(Config.compression cfg)
          ~cycle_policy:cfg.cycle_policy ~min_update:cfg.min_update
          ~update_distance_floor:
            (Int64.float_of_bits (get_slot hdr slot_distance_floor))
          ~rng:net_rng ~ris ~locals
          ~converged_iterations:(slot_int hdr slot_converged_iters)
          ~next_wave:(slot_int hdr slot_next_wave)
          ()
      in
      (* Register the template under a snapshot-source key: later
         accesses get bit-identical copies, and the source tag keeps
         this slot — and the run summary's provenance counts — disjoint
         from generator builds of the same configuration. *)
      let network =
        Setup_cache.network
          {
            Setup_cache.n_graph =
              {
                Setup_cache.g_topology = cfg.topology;
                g_num_nodes = cfg.num_nodes;
                g_fanout = cfg.fanout;
                g_exponent = cfg.outdegree_exponent;
                g_seed = cfg.seed;
                g_trial = trial;
              };
            n_content =
              {
                Setup_cache.c_num_nodes = cfg.num_nodes;
                c_topics = cfg.topics;
                c_query_results = cfg.query_results;
                c_distribution = cfg.distribution;
                c_background = cfg.background_per_node;
                c_seed = cfg.seed;
                c_trial = trial;
              };
            n_scheme = Some kind;
            n_ratio = cfg.compression_ratio;
            n_error_kind = cfg.compression_mode;
            n_policy = cfg.cycle_policy;
            n_min_update = cfg.min_update;
            n_floor = cfg.update_distance_floor;
            n_origin = (if rooted then Some origin else None);
            n_quant = cfg.quant_bits;
            n_source = Setup_cache.Snapshot path;
          }
          (fun () -> network)
      in
      mark "register";
      {
        Trial.network;
        universe = Topic.make topics;
        query = Workload.query ~topics:query_topics ~stop:cfg.stop_condition;
        origin;
        rng = trial_rng;
        placement;
      })
