(** Snapshot persistence for converged trial setups.

    Building a million-node converged network costs minutes; loading
    its resting state back costs one sequential file read.  A snapshot
    captures everything a {!Trial.setup} holds that is not derivable
    from the configuration — overlay adjacency, content placement,
    query topics and origin, and every routing-index row with its peer
    iteration order and provenance stamp — into a versioned binary file
    (magic ["RISNAP01"], one 4096-byte header page, page-aligned
    sections).

    Determinism contract: each row store's peers are recorded in live
    iteration order and replayed by {!Ri_core.Rowstore.of_loaded}, and
    the per-trial PRNG substreams are re-derived exactly as
    {!Trial.build} derives them — so queries routed on a loaded setup
    are bit-for-bit the queries the saved setup would have routed.

    A 21-field fingerprint (sizes, seeds, topology, scheme, policy,
    quantization — float knobs compared by IEEE bit pattern) ties the
    file to the exact [(config, trial)] that produced it; {!load} under
    any other configuration fails loudly.  Perturbed networks cannot be
    saved (their PRNG position is state the file does not capture), and
    only exact (uncompressed) index configurations are supported. *)

val save :
  string -> Config.t -> trial:int -> rooted:bool -> Trial.setup -> unit
(** [save path cfg ~trial ~rooted setup] writes the snapshot.  [rooted]
    records whether the setup was built with the rooted (downstream-
    only) construction — it keys the loaded template's cache slot.
    @raise Invalid_argument on a perturbed, No-RI, or
    index-compressed setup, or a config/network size mismatch. *)

val load : string -> Config.t -> trial:int -> Trial.setup
(** [load path cfg ~trial] rebuilds the setup.  The loaded network is
    registered as a {!Setup_cache} template under a
    [Setup_cache.Snapshot] source key (never colliding with generator
    builds), and the returned network is a bit-identical copy of it.
    @raise Failure on a bad magic, fingerprint mismatch, or corrupt
    section data. *)
