open Ri_core
open Ri_content
open Ri_p2p

type topology =
  | Tree
  | Tree_with_cycles of { extra_links : int }
  | Power_law_graph

type search = No_ri | Ri of Scheme.kind | Flooding of { ttl : int option }

type t = {
  num_nodes : int;
  topology : topology;
  fanout : int;
  outdegree_exponent : float;
  topics : int;
  query_results : int;
  distribution : Placement.distribution;
  background_per_node : float;
  stop_condition : int;
  horizon : int;
  eri_decay : float;
  compression_ratio : float;
  compression_mode : Compression.error_kind;
  min_update : float;
  update_distance_floor : float;
  cycle_policy : Network.cycle_policy;
  search : search;
  bytes : Message.byte_costs;
  update_fraction : float;
  fault : Fault.spec;
  fault_seed : int option;
  quant_bits : int option;
  seed : int;
}

(* "About 5.2% of the nodes of the Gnutella network will have an answer
   for a given query, so we set this number to 3125" (Appendix A) — the
   exact base ratio, so [scaled ~num_nodes:60000] reproduces QR = 3125. *)
let result_fraction = 3125. /. 60000.

let base =
  {
    num_nodes = 60000;
    topology = Tree;
    fanout = 4;
    outdegree_exponent = -2.2088;
    topics = 30;
    query_results = 3125;
    distribution = Placement.eighty_twenty;
    background_per_node = 2.0;
    stop_condition = 10;
    horizon = 5;
    eri_decay = 4.;
    compression_ratio = 0.;
    compression_mode = Compression.Overcount;
    min_update = 0.01;
    update_distance_floor = 1.0;
    cycle_policy = Network.Detect_recover;
    search = Ri (Scheme.Eri_kind { fanout = 4. });
    bytes = Message.paper_base_bytes;
    update_fraction = 0.05;
    fault = Fault.none;
    fault_seed = None;
    quant_bits = None;
    seed = 42;
  }

let scaled t ~num_nodes =
  {
    t with
    num_nodes;
    query_results =
      max 1 (int_of_float (Float.round (result_fraction *. float_of_int num_nodes)));
  }

let scaled_links t ~paper_links =
  if paper_links <= 0 then 0
  else
    max 1
      (int_of_float
         (Float.round
            (float_of_int paper_links *. float_of_int t.num_nodes /. 60000.)))

let with_search t search = { t with search }

let with_topology t topology = { t with topology }

let scheme_kind t = match t.search with Ri k -> Some k | No_ri | Flooding _ -> None

let cri = Scheme.Cri_kind

let hri t = Scheme.Hri_kind { horizon = t.horizon; fanout = float_of_int t.fanout }

let eri t = Scheme.Eri_kind { fanout = t.eri_decay }

let hybrid t =
  Scheme.Hybrid_kind { horizon = t.horizon; fanout = float_of_int t.fanout }

let compression t =
  Compression.of_ratio ~topics:t.topics ~ratio:t.compression_ratio
    ~mode:t.compression_mode

let quant t =
  Option.map
    (fun bits -> { Rowstore.default_quant with Rowstore.bits })
    t.quant_bits

let search_name = function
  | No_ri -> "No-RI"
  | Ri k -> Scheme.kind_name k
  | Flooding _ -> "Flooding"

let topology_name = function
  | Tree -> "Tree"
  | Tree_with_cycles _ -> "Tree+Cycle"
  | Power_law_graph -> "Powerlaw"

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.num_nodes < 2 then err "num_nodes must be at least 2"
  else if t.fanout < 1 then err "fanout must be at least 1"
  else if t.topics < 1 then err "topics must be at least 1"
  else if t.query_results < 0 then err "query_results must be non-negative"
  else if t.stop_condition < 1 then err "stop_condition must be positive"
  else if t.horizon < 1 then err "horizon must be positive"
  else if not (t.eri_decay > 1.) then err "eri_decay must exceed 1"
  else if t.compression_ratio < 0. || t.compression_ratio >= 1. then
    err "compression_ratio must be in [0, 1)"
  else if t.min_update < 0. then err "min_update must be non-negative"
  else if t.update_distance_floor < 0. then
    err "update_distance_floor must be non-negative"
  else if
    match t.quant_bits with Some b -> b < 1 || b > 16 | None -> false
  then err "quant_bits must be in [1, 16]"
  else
    match Fault.validate t.fault with
    | Error msg -> err "fault spec: %s" msg
    | Ok () ->
    (* continue with the topology/search cross-checks *)
    let cyclic =
      match t.topology with
      | Tree -> false
      | Tree_with_cycles { extra_links } -> extra_links > 0
      | Power_law_graph -> true
    in
    match (t.search, cyclic, t.cycle_policy) with
    | Ri (Scheme.Cri_kind | Scheme.Hybrid_kind _), true, Network.No_op ->
        err
          "undamped indices (CRI, hybrid) with the no-op cycle policy \
           cannot run on cyclic topologies"
    | _ -> Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>NumNodes=%d T=%s F=%d o=%.4f topics=%d QR=%d D=%s Stop=%d H=%d \
     A=%g c=%.0f%% minUpdate=%.0f%% policy=%s search=%s%t@]"
    t.num_nodes (topology_name t.topology) t.fanout t.outdegree_exponent
    t.topics t.query_results
    (match t.distribution with
    | Placement.Uniform -> "uniform"
    | Placement.Biased { doc_share; node_share } ->
        Printf.sprintf "%.0f/%.0f" (100. *. doc_share) (100. *. node_share))
    t.stop_condition t.horizon t.eri_decay
    (100. *. t.compression_ratio)
    (100. *. t.min_update)
    (match t.cycle_policy with
    | Network.No_op -> "no-op"
    | Network.Detect_recover -> "detect")
    (search_name t.search)
    (fun ppf ->
      if t.update_distance_floor <> base.update_distance_floor then
        Format.fprintf ppf " floor=%g" t.update_distance_floor;
      if Fault.active t.fault then
        Format.fprintf ppf " faults=[%a]" Fault.pp t.fault;
      match t.fault_seed with
      | Some fs -> Format.fprintf ppf " faultSeed=%d" fs
      | None -> ())
