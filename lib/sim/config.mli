(** Simulation configuration — the parameter table of Figure 12.

    {v
    Parameter           Description                                Base
    NumNodes            nodes in the network                       60000
    T                   topology                                   tree
    F                   branching factor (tree)                    4
    EL                  extra links added to create cycles         10
    o                   outdegree exponent (power law)             -2.2088
    QR                  query results available in the network     3125
    D                   document distribution                      80/20
    StopCondition       number of documents requested              10
    H                   horizon for HRIs                           5
    A                   decay (assumed fanout) for ERIs            4
    c                   RI compression                             0%
    minUpdate           minimum %-difference to propagate updates  1%
    Creationsize        RI creation/update message size            1000 B
    Querysize           query message size                         250 B
    v}

    The paper abstracts index categories; this reproduction fixes a
    topic universe of [topics] (default 30) so the compression sweep of
    Figure 15 has meaningful bucket counts at every level. *)

type topology =
  | Tree
  | Tree_with_cycles of { extra_links : int }
  | Power_law_graph

type search =
  | No_ri  (** random sequential forwarding *)
  | Ri of Ri_core.Scheme.kind
  | Flooding of { ttl : int option }  (** Gnutella baseline *)

type t = {
  num_nodes : int;
  topology : topology;
  fanout : int;  (** F, tree branching factor; also the RI cost-model fanout *)
  outdegree_exponent : float;  (** o, power-law topology *)
  topics : int;  (** size of the topic universe *)
  query_results : int;  (** QR *)
  distribution : Ri_content.Placement.distribution;  (** D *)
  background_per_node : float;
  stop_condition : int;
  horizon : int;  (** H, hop-count RIs *)
  eri_decay : float;  (** A, exponential RIs *)
  compression_ratio : float;  (** c, fraction of index entries saved *)
  compression_mode : Ri_content.Compression.error_kind;
  min_update : float;  (** minUpdate, as a fraction *)
  update_distance_floor : float;
      (** absolute Euclidean floor of the update-significance test
          ({!Ri_p2p.Network.create}'s [update_distance_floor]; the base
          value, [1.0], matches its default).  The recovery experiments
          set it to [0.] together with [min_update = 0.] so the
          post-heal fixpoint is exact. *)
  cycle_policy : Ri_p2p.Network.cycle_policy;
  search : search;
  bytes : Ri_p2p.Message.byte_costs;
  update_fraction : float;
      (** size of one update batch, as a fraction of the changed topic's
          network-wide document count.  The paper batches updates ("we
          may delay exporting an update for a short time so we can batch
          several updates"); a batch below the [minUpdate] significance
          floor would never leave the origin's vicinity. *)
  fault : Ri_p2p.Fault.spec;
      (** fault environment for {!Trial.run_query_faulty} and faulty
          updates; {!Ri_p2p.Fault.none} (the base value) leaves every
          code path bit-for-bit identical to the fault-free simulator *)
  fault_seed : int option;
      (** decouple the fault plan's PRNG from the topology [seed]
          ([--fault-seed]): the same fault schedule — kills, losses,
          partition shape draws — replays against different networks.
          [None] (the base value) derives the plan from [seed] as
          before. *)
  quant_bits : int option;
      (** store RI rows log-quantized to this many bits per cell
          ({!Ri_core.Rowstore.default_quant} vmax); [None] — the base
          value — keeps the exact float format and with it bit-for-bit
          figure output *)
  seed : int;
}

val base : t
(** Figure 12's base values with [num_nodes = 60000], searching with an
    ERI.  Simulation-only knobs: [topics = 30],
    [background_per_node = 2.0], [update_fraction = 0.05], [seed = 42]. *)

val scaled : t -> num_nodes:int -> t
(** Rescale the network, keeping QR at the paper's 5.2% of nodes
    ("[YGM01a] found that about 5.2% of the nodes of the Gnutella
    network will have an answer for a given query"). *)

val scaled_links : t -> paper_links:int -> int
(** Translate an added-link count quoted at the paper's 60000-node scale
    to this configuration's network size, preserving cycle {e density}
    (links per node).  Figures 16 and 19 sweep up to 10000 added links
    on 60000 nodes — a mean degree of 2.3; keeping the absolute count on
    a smaller network would instead push the mean degree past the RI
    fanout, where exponential damping no longer wins.  Identity at
    [num_nodes = 60000]; never rounds a positive count to zero. *)

val with_search : t -> search -> t

val with_topology : t -> topology -> t

val scheme_kind : t -> Ri_core.Scheme.kind option
(** The RI kind in play, [None] for No-RI and flooding. *)

val cri : Ri_core.Scheme.kind

val hri : t -> Ri_core.Scheme.kind
(** HRI with the config's horizon and fanout. *)

val eri : t -> Ri_core.Scheme.kind
(** ERI with the config's decay. *)

val hybrid : t -> Ri_core.Scheme.kind
(** The Section 6.2 hybrid CRI-HRI with the config's horizon and
    fanout. *)

val compression : t -> Ri_content.Compression.t

val quant : t -> Ri_core.Rowstore.quant_config option
(** The rowstore quantization implied by [quant_bits] (default vmax). *)

val search_name : search -> string

val topology_name : topology -> string

val validate : t -> (unit, string) result
(** Static sanity checks, including the CRI/no-op/cycles exclusion. *)

val pp : Format.formatter -> t -> unit
