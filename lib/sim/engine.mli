(** Discrete-event scheduler for in-flight traffic.

    The synchronous simulator runs each query or update wave to
    completion before the next begins; this engine lets thousands of
    them interleave.  It owns a logical nanosecond clock, a binary-heap
    event queue, and one FIFO mailbox per node: a message sent to a
    node crosses the link (constant [link_ns]), waits its turn in the
    mailbox, is serviced for [service_ns], and only then runs its
    handler — which typically advances a query state machine one hop
    and sends the next message.

    {b Determinism.}  Heap order is [(time, seq)]: [seq] is assigned in
    program order at scheduling time, so equal-time events fire exactly
    in the order they were scheduled.  One engine drives one trial on
    one domain, and every random draw comes from streams derived from
    [(seed, trial)] — so the full event order is a function of
    [(seed, trial, seq)], independent of the pool width; cross-trial
    parallelism composes through the usual per-trial observability
    merge.  With [service_ns = 0] and [link_ns = 0] the schedule
    degenerates to pure scheduling order, which replays the synchronous
    execution of each message chain bit-for-bit. *)

type t

type handler = unit -> unit

val create : ?service_ns:int -> ?link_ns:int -> nodes:int -> unit -> t
(** Fresh engine at logical time 0.  [service_ns] (default [0]) is the
    per-message service time of every node; [link_ns] (default [0]) the
    per-hop propagation delay.
    @raise Invalid_argument on a non-positive node count or negative
    latency. *)

val now : t -> int
(** Current logical time in nanoseconds. *)

val schedule : t -> at:int -> handler -> unit
(** Raw event at absolute time [at] (>= [now]), bypassing the mailbox
    model — used for workload arrivals and timers.
    @raise Invalid_argument when [at] is in the past. *)

val inject : t -> at:int -> dst:int -> handler -> unit
(** Deliver a message into [dst]'s mailbox at absolute time [at]
    (queueing + service apply; no link latency — the message originates
    at [dst], like a client query handed to its entry node). *)

val send : t -> dst:int -> handler -> unit
(** Send a message from the currently executing event to [dst]: it
    arrives after [link_ns] and then queues for service.  Call only
    from inside a running handler (uses the current logical time). *)

val run : t -> unit
(** Drain the event queue to empty, advancing the clock. *)

val of_seconds : float -> int
(** Seconds to logical nanoseconds (rounded). *)

val to_seconds : int -> float

val processed : t -> int
(** Messages serviced through mailboxes so far. *)

val queue_peak : t -> int
(** Largest mailbox backlog observed (waiting messages, excluding the
    one in service). *)

val queue_mean : t -> float
(** Mean backlog seen by an arriving message (its queue wait in units
    of service times) — 0 on an unloaded engine. *)
