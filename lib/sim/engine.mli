(** Discrete-event scheduler for in-flight traffic.

    The synchronous simulator runs each query or update wave to
    completion before the next begins; this engine lets thousands of
    them interleave.  It owns a logical nanosecond clock, a binary-heap
    event queue, and one FIFO mailbox per node: a message sent to a
    node crosses the link (constant [link_ns]), waits its turn in the
    mailbox, is serviced for [service_ns], and only then runs its
    handler — which typically advances a query state machine one hop
    and sends the next message.

    {b Determinism.}  Heap order is [(time, seq)]: [seq] is assigned in
    program order at scheduling time, so equal-time events fire exactly
    in the order they were scheduled.  One engine drives one trial on
    one domain, and every random draw comes from streams derived from
    [(seed, trial)] — so the full event order is a function of
    [(seed, trial, seq)], independent of the pool width; cross-trial
    parallelism composes through the usual per-trial observability
    merge.  With [service_ns = 0] and [link_ns = 0] the schedule
    degenerates to pure scheduling order, which replays the synchronous
    execution of each message chain bit-for-bit.

    {b Attribution.}  Every mailbox delivery is attributed to its node
    in flat per-node arrays — arrivals, completions, busy and
    queue-wait nanoseconds, depth sum and peak — the raw feed of the
    traffic observatory's hotspot profiler ({!Ri_obs.Observatory}).
    The accounting is always on: plain integer stores on paths that
    already pay a heap operation per event.

    {b Depth conventions.}  Two related statistics, one definition of
    "queue depth": the number of {e waiting} messages in a mailbox,
    {b excluding} any message currently in service.  {!queue_mean} is
    the mean depth seen by an arriving message (sampled at every
    arrival, before the arriver joins); {!queue_peak} is the largest
    depth any mailbox reached (sampled after the arriver joins).  The
    per-node [s_depth_sum]/[s_peak] fields use the same definition, so
    per-node and global figures are directly comparable: the global
    values are exactly folds of the per-node arrays. *)

type t

type handler = unit -> unit

val create : ?service_ns:int -> ?link_ns:int -> nodes:int -> unit -> t
(** Fresh engine at logical time 0.  [service_ns] (default [0]) is the
    per-message service time of every node; [link_ns] (default [0]) the
    per-hop propagation delay.
    @raise Invalid_argument on a non-positive node count or negative
    latency. *)

val now : t -> int
(** Current logical time in nanoseconds. *)

val nodes : t -> int
(** The node count the engine was created with. *)

val service_ns : t -> int

val link_ns : t -> int

val schedule : t -> at:int -> handler -> unit
(** Raw event at absolute time [at] (>= [now]), bypassing the mailbox
    model — used for workload arrivals and timers.
    @raise Invalid_argument when [at] is in the past. *)

val inject : t -> at:int -> dst:int -> handler -> unit
(** Deliver a message into [dst]'s mailbox at absolute time [at]
    (queueing + service apply; no link latency — the message originates
    at [dst], like a client query handed to its entry node). *)

val send : t -> dst:int -> handler -> unit
(** Send a message from the currently executing event to [dst]: it
    arrives after [link_ns] and then queues for service.  Call only
    from inside a running handler (uses the current logical time). *)

val run : t -> unit
(** Drain the event queue to empty, advancing the clock. *)

val of_seconds : float -> int
(** Seconds to logical nanoseconds (rounded). *)

val to_seconds : int -> float

val processed : t -> int
(** Messages serviced through mailboxes so far. *)

val backlog : t -> int
(** Messages currently waiting across all mailboxes (in-service
    messages excluded) — the aggregate-depth sample the timeline
    records per bin. *)

val last_wait_ns : t -> int
(** Queue wait of the mailbox delivery whose handler is currently
    running: service-start minus mailbox-arrival time, [0] when the
    message found its node idle.  Meaningful only inside a handler
    delivered through {!inject}/{!send} — raw {!schedule} events do not
    update it.  This is the per-hop queue-wait stamp of the latency
    decomposition. *)

val queue_peak : t -> int
(** Largest mailbox backlog observed at any single node: {e waiting}
    messages only, the one in service excluded.  Equals the max over
    the per-node [s_peak] fields. *)

val queue_mean : t -> float
(** Mean backlog seen by an arriving message, before it joins the
    queue and excluding any message in service (its expected queue
    wait in units of service times) — 0 on an unloaded engine.  Equals
    total per-node [s_depth_sum] over total arrivals. *)

(** Per-node attribution counters, all using the conventions above. *)
type node_stat = {
  s_arrivals : int;  (** messages that entered this node's mailbox *)
  s_completions : int;  (** messages fully serviced here *)
  s_busy_ns : int;  (** total service time burned by this node *)
  s_wait_ns : int;  (** total queue wait accrued in this mailbox *)
  s_depth_sum : int;  (** backlog seen by each arriving message, summed *)
  s_peak : int;  (** largest waiting backlog at this node *)
}

val node_stat : t -> int -> node_stat
(** @raise Invalid_argument when the node is out of range. *)
