(** Cross-trial cache of the immutable, expensive trial ingredients.

    The paper's evaluation repeats every data point over independently
    seeded trials, and each experiment sweeps a parameter (search
    scheme, stop condition, compression, ...) that does not feed the
    overlay generator or the document placement.  Because {!Trial.build}
    derives one PRNG substream per subsystem from [(seed, trial)], the
    overlay graph is a pure function of the topology parameters and the
    content draw (query topic, placement, origin) is a pure function of
    the workload parameters — so sweep cells can share them instead of
    regenerating identical structures.

    Cached values must be treated as immutable: [Network.create] copies
    adjacency rows and projects summaries into its own arrays, and
    nothing may mutate a cached [Placement.t]'s summaries in place.

    The cache is domain-safe (trials in a runner wave run concurrently)
    and memory-bounded; set [RI_CACHE=0] to disable it entirely. *)

type graph_key = {
  g_topology : Config.topology;
  g_num_nodes : int;
  g_fanout : int;
  g_exponent : float;
  g_seed : int;
  g_trial : int;
}

type content = {
  query_topics : Ri_content.Topic.id list;
  placement : Ri_content.Placement.t;
  origin : int;
}

type content_key = {
  c_num_nodes : int;
  c_topics : int;
  c_query_results : int;
  c_distribution : Ri_content.Placement.distribution;
  c_background : float;
  c_seed : int;
  c_trial : int;
}

type source = Generated | Snapshot of string
(** Where a template's RI state came from: built by the generators, or
    loaded from the named snapshot file.  Part of the network key —
    snapshot state shares the configuration fingerprint of a fresh
    build without necessarily sharing its floats, so the two must not
    alias one cache slot. *)

type network_key = {
  n_graph : graph_key;
  n_content : content_key;
  n_scheme : Ri_core.Scheme.kind option;
  n_ratio : float;
  n_error_kind : Ri_content.Compression.error_kind;
  n_policy : Ri_p2p.Network.cycle_policy;
  n_min_update : float;
  n_floor : float;  (** update_distance_floor *)
  n_origin : int option;  (** [Rooted] origin; [None] is converged *)
  n_quant : int option;  (** quantization bits; [None] is exact floats *)
  n_source : source;
}
(** Everything a network build depends on — and nothing it does not, so
    sweeps over stop conditions, byte costs or update batch sizes share
    one template per trial. *)

val graph : graph_key -> (unit -> Ri_topology.Graph.t) -> Ri_topology.Graph.t
(** [graph key compute] returns the cached overlay for [key], calling
    [compute] on a miss.  [compute] runs outside the cache lock. *)

val content : content_key -> (unit -> content) -> content
(** Same, for the (query topics, placement, origin) draw. *)

val network :
  network_key -> (unit -> Ri_p2p.Network.t) -> Ri_p2p.Network.t
(** Same, for the built network — except that what is returned is a
    fresh {!Ri_p2p.Network.copy} of the cached template (bit-identical
    to a from-scratch build, including hash-table iteration orders), so
    the caller may freely run update waves or churn against it.  Only
    cache perturbation-free builds over immutable placements:
    {!Trial.build} bypasses this table when a perturbation model is
    installed (the build draws from the PRNG) or when the caller
    requested a mutable placement (the network's content closures must
    bind the caller's private copy). *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggle at runtime (tests compare cached against fresh builds).  The
    initial value honors [RI_CACHE] ([0] disables). *)

val clear : unit -> unit
(** Drop all entries and reset the hit/miss counters. *)

type stats = {
  graph_hits : int;
  graph_misses : int;
  content_hits : int;
  content_misses : int;
  network_hits : int;
  network_misses : int;
  network_generated : int;
      (** network accesses keyed to a generator build *)
  network_snapshot : int;  (** network accesses keyed to a snapshot *)
}

val stats : unit -> stats
