open Ri_util
open Ri_obs

(* The cache and pool keep their own always-on counters (they predate
   the metrics registry and cost a few mutations per wave, not per
   item); this bridge snapshots them into gauges so one Metrics.render
   carries the whole picture. *)

let g_cache kind what =
  Metrics.gauge ~help:"Setup-cache lookups." ~labels:[ ("kind", kind) ]
    ("ri_setup_cache_" ^ what)

let g_graph_hits = g_cache "graph" "hits"

let g_graph_misses = g_cache "graph" "misses"

let g_content_hits = g_cache "content" "hits"

let g_content_misses = g_cache "content" "misses"

let g_network_hits = g_cache "network" "hits"

let g_network_misses = g_cache "network" "misses"

let g_pool_jobs = Metrics.gauge ~help:"Pool width (domains)." "ri_pool_jobs"

let g_pool_waves = Metrics.gauge ~help:"Waves submitted." "ri_pool_waves"

let g_pool_items = Metrics.gauge ~help:"Items executed." "ri_pool_items"

let g_pool_max_wave = Metrics.gauge ~help:"Largest wave." "ri_pool_max_wave"

let g_pool_busy =
  Metrics.gauge ~help:"Mean domains busy per wave." "ri_pool_busy_domains_avg"

let g_pool_wait =
  Metrics.gauge ~help:"Seconds the submitter waited on stragglers."
    "ri_pool_submit_wait_seconds"

let export_metrics () =
  let s = Setup_cache.stats () in
  Metrics.set g_graph_hits (float_of_int s.Setup_cache.graph_hits);
  Metrics.set g_graph_misses (float_of_int s.Setup_cache.graph_misses);
  Metrics.set g_content_hits (float_of_int s.Setup_cache.content_hits);
  Metrics.set g_content_misses (float_of_int s.Setup_cache.content_misses);
  Metrics.set g_network_hits (float_of_int s.Setup_cache.network_hits);
  Metrics.set g_network_misses (float_of_int s.Setup_cache.network_misses);
  let pool = Pool.global () in
  let p = Pool.stats pool in
  Metrics.set g_pool_jobs (float_of_int (Pool.jobs pool));
  Metrics.set g_pool_waves (float_of_int p.Pool.waves);
  Metrics.set g_pool_items (float_of_int p.Pool.items);
  Metrics.set g_pool_max_wave (float_of_int p.Pool.max_wave);
  Metrics.set g_pool_busy
    (if p.Pool.waves = 0 then 0.
     else float_of_int p.Pool.busy_domains /. float_of_int p.Pool.waves);
  Metrics.set g_pool_wait p.Pool.submit_wait_s

let pct hits misses =
  let total = hits + misses in
  if total = 0 then 0. else 100. *. float_of_int hits /. float_of_int total

let cache_line () =
  if not (Setup_cache.enabled ()) then "setup-cache: disabled (RI_CACHE=0)"
  else
    let s = Setup_cache.stats () in
    Printf.sprintf
      "setup-cache: graphs %d hits / %d misses (%.0f%%), content %d hits / %d \
       misses (%.0f%%), networks %d hits / %d misses (%.0f%%)"
      s.Setup_cache.graph_hits s.Setup_cache.graph_misses
      (pct s.Setup_cache.graph_hits s.Setup_cache.graph_misses)
      s.Setup_cache.content_hits s.Setup_cache.content_misses
      (pct s.Setup_cache.content_hits s.Setup_cache.content_misses)
      s.Setup_cache.network_hits s.Setup_cache.network_misses
      (pct s.Setup_cache.network_hits s.Setup_cache.network_misses)

let pool_line () =
  let pool = Pool.global () in
  let p = Pool.stats pool in
  Printf.sprintf
    "pool: %d domains, %d waves / %d trials (max wave %d), %.1f domains busy \
     per wave, %.2fs straggler wait"
    (Pool.jobs pool) p.Pool.waves p.Pool.items p.Pool.max_wave
    (if p.Pool.waves = 0 then 0.
     else float_of_int p.Pool.busy_domains /. float_of_int p.Pool.waves)
    p.Pool.submit_wait_s
