open Ri_util
open Ri_obs

(* The cache and pool keep their own always-on counters (they predate
   the metrics registry and cost a few mutations per wave, not per
   item); this bridge snapshots them into gauges so one Metrics.render
   carries the whole picture. *)

let g_cache kind what =
  Metrics.gauge ~help:"Setup-cache lookups." ~labels:[ ("kind", kind) ]
    ("ri_setup_cache_" ^ what)

let g_graph_hits = g_cache "graph" "hits"

let g_graph_misses = g_cache "graph" "misses"

let g_content_hits = g_cache "content" "hits"

let g_content_misses = g_cache "content" "misses"

let g_network_hits = g_cache "network" "hits"

let g_network_misses = g_cache "network" "misses"

let g_pool_jobs = Metrics.gauge ~help:"Pool width (domains)." "ri_pool_jobs"

let g_pool_waves = Metrics.gauge ~help:"Waves submitted." "ri_pool_waves"

let g_pool_items = Metrics.gauge ~help:"Items executed." "ri_pool_items"

let g_pool_max_wave = Metrics.gauge ~help:"Largest wave." "ri_pool_max_wave"

let g_pool_busy =
  Metrics.gauge ~help:"Mean domains busy per wave." "ri_pool_busy_domains_avg"

let g_pool_wait =
  Metrics.gauge ~help:"Seconds the submitter waited on stragglers."
    "ri_pool_submit_wait_seconds"

let g_network_source source =
  Metrics.gauge ~help:"Network templates built, by source."
    ~labels:[ ("source", source) ]
    "ri_setup_cache_network_builds"

let g_net_generated = g_network_source "generated"

let g_net_snapshot = g_network_source "snapshot"

(* Per-phase shard gauges, keyed by the [~label] each sharded site
   passes to [Pool.iter].  Labels are a small fixed set (update_wave,
   placement, ri_build, ...) and registration is idempotent, so
   creating them at export time is cheap and needs no pre-declared
   list. *)
let g_shard ~phase what help =
  Metrics.gauge ~help ~labels:[ ("phase", phase) ] ("ri_pool_shard_" ^ what)

let export_label (phase, l) =
  let waves = max 1 l.Pool.l_waves in
  let setf what help v = Metrics.set (g_shard ~phase what help) v in
  let seti what help v = setf what help (float_of_int v) in
  seti "waves" "Sharded waves under this phase." l.Pool.l_waves;
  seti "items" "Shard indices executed." l.Pool.l_items;
  seti "steals" "Chunks claimed by non-submitting domains." l.Pool.l_steals;
  seti "inline_waves" "Waves that ran sequentially." l.Pool.l_inline;
  setf "busy_domains_avg" "Mean domains that claimed a chunk per wave."
    (float_of_int l.Pool.l_busy /. float_of_int waves);
  setf "idle_domains_avg"
    "Mean domains left idle per wave (shard imbalance)."
    (float_of_int l.Pool.l_idle /. float_of_int waves);
  setf "submit_wait_seconds" "Submitter straggler wait." l.Pool.l_wait_s

let export_metrics () =
  let s = Setup_cache.stats () in
  Metrics.set g_graph_hits (float_of_int s.Setup_cache.graph_hits);
  Metrics.set g_graph_misses (float_of_int s.Setup_cache.graph_misses);
  Metrics.set g_content_hits (float_of_int s.Setup_cache.content_hits);
  Metrics.set g_content_misses (float_of_int s.Setup_cache.content_misses);
  Metrics.set g_network_hits (float_of_int s.Setup_cache.network_hits);
  Metrics.set g_network_misses (float_of_int s.Setup_cache.network_misses);
  Metrics.set g_net_generated (float_of_int s.Setup_cache.network_generated);
  Metrics.set g_net_snapshot (float_of_int s.Setup_cache.network_snapshot);
  List.iter export_label (Pool.label_stats (Pool.global ()));
  let pool = Pool.global () in
  let p = Pool.stats pool in
  Metrics.set g_pool_jobs (float_of_int (Pool.jobs pool));
  Metrics.set g_pool_waves (float_of_int p.Pool.waves);
  Metrics.set g_pool_items (float_of_int p.Pool.items);
  Metrics.set g_pool_max_wave (float_of_int p.Pool.max_wave);
  Metrics.set g_pool_busy
    (if p.Pool.waves = 0 then 0.
     else float_of_int p.Pool.busy_domains /. float_of_int p.Pool.waves);
  Metrics.set g_pool_wait p.Pool.submit_wait_s;
  Gcprof.export_metrics ()

(* Everything a scrape or a --metrics dump should carry: the registry
   (counters/gauges/histograms, with the bridge gauges refreshed) plus
   the sketch summaries.  This is also what --serve-obs hands to
   /metrics. *)
let render_metrics () =
  export_metrics ();
  Metrics.render () ^ Sketch.render ()

let gc_lines = Gcprof.table_lines

let pct hits misses =
  let total = hits + misses in
  if total = 0 then 0. else 100. *. float_of_int hits /. float_of_int total

(* The source tag distinguishes templates the generators built from
   templates loaded off a snapshot file — with both in play the hit
   ratios alone no longer say where the networks came from. *)
let source_tag s =
  if s.Setup_cache.network_snapshot = 0 then
    if s.Setup_cache.network_generated = 0 then ""
    else Printf.sprintf " [source: generated x%d]" s.Setup_cache.network_generated
  else
    Printf.sprintf " [source: generated x%d, snapshot x%d]"
      s.Setup_cache.network_generated s.Setup_cache.network_snapshot

let cache_line () =
  if not (Setup_cache.enabled ()) then "setup-cache: disabled (RI_CACHE=0)"
  else
    let s = Setup_cache.stats () in
    Printf.sprintf
      "setup-cache: graphs %d hits / %d misses (%.0f%%), content %d hits / %d \
       misses (%.0f%%), networks %d hits / %d misses (%.0f%%)%s"
      s.Setup_cache.graph_hits s.Setup_cache.graph_misses
      (pct s.Setup_cache.graph_hits s.Setup_cache.graph_misses)
      s.Setup_cache.content_hits s.Setup_cache.content_misses
      (pct s.Setup_cache.content_hits s.Setup_cache.content_misses)
      s.Setup_cache.network_hits s.Setup_cache.network_misses
      (pct s.Setup_cache.network_hits s.Setup_cache.network_misses)
      (source_tag s)

let pool_line () =
  let pool = Pool.global () in
  let p = Pool.stats pool in
  let phases =
    List.filter_map
      (fun (label, l) ->
        if l.Pool.l_waves = 0 then None
        else
          let waves = float_of_int l.Pool.l_waves in
          Some
            (Printf.sprintf
               "  phase %-12s %6d waves / %8d shards, %.1f busy / %.1f idle \
                domains, %d steals, %d inline, %.2fs wait"
               label l.Pool.l_waves l.Pool.l_items
               (float_of_int l.Pool.l_busy /. waves)
               (float_of_int l.Pool.l_idle /. waves)
               l.Pool.l_steals l.Pool.l_inline l.Pool.l_wait_s))
      (Pool.label_stats pool)
  in
  Printf.sprintf
    "pool: %d domains, %d waves / %d trials (max wave %d), %.1f domains busy \
     per wave, %.2fs straggler wait%s"
    (Pool.jobs pool) p.Pool.waves p.Pool.items p.Pool.max_wave
    (if p.Pool.waves = 0 then 0.
     else float_of_int p.Pool.busy_domains /. float_of_int p.Pool.waves)
    p.Pool.submit_wait_s
    (match phases with [] -> "" | ps -> "\n" ^ String.concat "\n" ps)
