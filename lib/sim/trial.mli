(** One simulation trial.

    Appendix A: "The simulator starts by generating a network topology.
    Then it distributes results among the nodes, picks at random a node
    that will initially receive the query or update, and creates the
    necessary RIs."  Each trial index derives an independent random
    stream from the configuration seed, so topology, placement and
    origin all vary between trials while whole experiments stay
    reproducible. *)

type setup = {
  network : Ri_p2p.Network.t;
  universe : Ri_content.Topic.t;
  query : Ri_content.Workload.query;
  origin : int;
  rng : Ri_util.Prng.t;  (** stream for in-trial randomness *)
  placement : Ri_content.Placement.t;
      (** the content behind the network's summaries; shared with the
          setup cache unless the trial was built with
          [mutable_placement] *)
}

(** Which RI construction the trial needs.

    [For_query] uses the paper simulator's rooted construction — RIs
    built downstream from the query originator (Appendix A).
    [For_update] needs rows in every direction, so it builds the
    converged network-wide state. *)
type purpose = For_query | For_update

val build :
  ?purpose:purpose ->
  ?perturb:float * Ri_content.Compression.error_kind ->
  ?mutable_placement:bool ->
  Config.t ->
  trial:int ->
  setup
(** Generate topology, placement, origin and RIs for trial [trial]
    (default purpose [For_query]).  [perturb] enables the Gaussian
    index-error model on every export (Appendix A's second error
    scenario).  [mutable_placement] (default [false]) deep-copies the
    cached placement's per-node arrays so the caller may mutate content
    mid-trial (the fault plane's result drift) without corrupting the
    setup cache.
    @raise Invalid_argument if the configuration is invalid. *)

type query_metrics = {
  messages : int;  (** forwards + returns + result messages *)
  forwards : int;
  returns : int;
  results : int;
  found : int;
  satisfied : bool;
  nodes_visited : int;
  bytes : float;  (** query traffic priced per the config's byte costs *)
}

val run_query : Config.t -> trial:int -> query_metrics
(** Build a trial and run one query from its origin using the configured
    search mechanism. *)

val run_query_on :
  ?on_event:(Ri_p2p.Query.event -> unit) ->
  ?decide:Ri_obs.Decision.sink ->
  ?plan:Ri_p2p.Fault.t ->
  Config.t ->
  setup ->
  query_metrics
(** Run the configured search on an existing setup (lets one setup be
    shared across search mechanisms for paired comparisons).
    [on_event] observes every query message; {!run_query} wires it to
    the {!Ri_obs.Trace} recorder when tracing is on.  [decide] receives
    per-hop routing-decision provenance (see {!Ri_p2p.Query.run}; the
    sink is not passed to flooding, which makes no routing decisions).
    [plan] runs the query in a fault environment (see
    {!Ri_p2p.Fault}). *)

val run_query_perturbed :
  Config.t ->
  relative_stddev:float ->
  kind:Ri_content.Compression.error_kind ->
  trial:int ->
  query_metrics
(** A query trial whose RIs were built under the Gaussian error model:
    every exported aggregate is perturbed by [N(0, (sd * entry)^2)],
    shaped positive / negative / signed per [kind], so errors compound
    from node to node as in a long-running approximate-index network. *)

type fault_metrics = {
  f_query : query_metrics;  (** the faulty query itself *)
  f_clean_found : int;
      (** results the paired fault-free baseline run found *)
  f_recall : float;
      (** [found / clean_found] — the fraction of the fault-free result
          count still located under faults ([1.] when the baseline
          found nothing) *)
  f_drift_messages : int;
      (** corrective update traffic from the pre-query result drift —
          background staleness cost, not charged to the query *)
  f_repair_messages : int;
      (** anti-entropy traffic triggered by the query's own contacts *)
  f_messages_per_result : float;
      (** (query messages + repair messages) / max found 1 *)
  f_stats : Ri_p2p.Fault.stats;  (** the plan's fault counters *)
}

val run_query_faulty : Config.t -> trial:int -> fault_metrics
(** One trial in the fault environment carried by [cfg.fault]: build
    the {e converged} network (corrective waves must be able to flow
    toward the origin, which the rooted construction cannot express),
    crash-stop the planned victims, relocate [drift * QR] results with
    fault-prone corrective waves so indices genuinely go stale, then
    run the query with timeouts, retries, stale-row fallback and lazy
    repair.  Recall is measured against a paired clean run of the same
    setup (same build, same query budget, zero fault rates).
    Deterministic for a given seed + spec at any pool width: the plan
    draws from its own [(seed, trial)]-keyed stream.
    @raise Invalid_argument when [cfg.fault] is inert. *)

type parallel_metrics = {
  par_messages : int;
  par_rounds : int;  (** response-time proxy: forwarding rounds *)
  par_found : int;
  par_satisfied : bool;
}

val run_query_parallel : Config.t -> branch:int -> trial:int -> parallel_metrics
(** Build a trial and run one query with parallel forwarding
    (Section 3.1), [branch] best neighbors per node per round.
    @raise Invalid_argument unless the config searches with an RI. *)

type update_metrics = {
  update_messages : int;
  update_bytes : float;
      (** messages priced at the paper's fixed per-message cost *)
  update_wire_bytes : int;
      (** simulated bytes under the sparse delta encoding — see
          {!Ri_p2p.Update} *)
}

val run_update : Config.t -> trial:int -> update_metrics
(** Build a trial, add [update_doc_count] documents on a random topic at
    the origin, and propagate one batch of updates through the network
    (Figure 18's workload).  Zero messages on No-RI/flooding networks,
    which maintain no indices.  When [cfg.fault] is active the wave
    runs through a fault plan (losses, delays, crashed receivers). *)

val run_update_on :
  ?on_event:(Ri_p2p.Update.event -> unit) ->
  ?plan:Ri_p2p.Fault.t ->
  Config.t ->
  setup ->
  update_metrics

type recovery_metrics = {
  r_dip : query_metrics;  (** the query run against the damaged network *)
  r_restored : query_metrics;  (** the same query after heal + recovery *)
  r_clean_found : int;  (** the paired fault-free baseline's result count *)
  r_dip_recall : float;  (** [r_dip.found / r_clean_found] *)
  r_restored_recall : float;
      (** [r_restored.found / r_clean_found] — the acceptance target is
          a return to [1.0] once anti-entropy quiesces *)
  r_cut_size : int;  (** minority side of the partition (0 without one) *)
  r_recovered : int;  (** crash victims brought back *)
  r_ae_rounds : int;  (** anti-entropy rounds until a repair-free round *)
  r_ae_repairs : int;  (** total link repairs across those rounds *)
  r_recovery_messages : int;
      (** update messages spent on rejoin announcements + anti-entropy *)
  r_stats : Ri_p2p.Fault.stats;
}

val run_recovery : Config.t -> trial:int -> recovery_metrics
(** One damage → dip → heal → reconverge cycle.  Builds the converged
    network under [cfg.fault] (partition and/or crashes), persists each
    odd-numbered victim's pre-drift rows, drifts content through the
    faulty waves, and measures the {e dip} query.  Then heals the
    partition, enters quiesced mode (loss/delay/flap off, so
    reconvergence measures the repair machinery alone), recovers every
    victim ({!Ri_p2p.Churn.recover} — odd victims replay their stale
    image, even ones rejoin amnesiac), runs
    {!Ri_p2p.Update.anti_entropy} to a repair-free round (capped at 64),
    and measures the {e restored} query.  Recall for both queries is
    against the same clean baseline as {!run_query_faulty}.
    @raise Invalid_argument when [cfg.fault] is inert or the config does
    not search with an RI. *)
