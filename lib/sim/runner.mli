(** Repeat-until-confident trial driver.

    "The simulator iterates over different network topologies and
    document result locations, and outputs the average number of
    messages necessary to perform the operation plus a confidence
    interval.  All results were computed with at least a 95% confidence
    interval of having a relative error of 10% or less" (Section 8.2).

    Trials are independently seeded, so they run as waves on a domain
    pool: the first wave is [min_trials] trials, later waves are small
    fixed-size batches, and the CI stopping rule is evaluated only at
    wave boundaries, with observations folded in trial-index order.
    Wave shape never depends on the pool width, which makes parallel
    and sequential runs bit-identical for the same spec. *)

type spec = {
  min_trials : int;
  max_trials : int;
  target_rel_error : float;  (** CI half-width over mean, e.g. 0.1 *)
}

val default_spec : spec
(** 5 to 30 trials, 10% target relative error. *)

val spec_of_env : unit -> spec
(** [default_spec], with [max_trials] overridden by the [RI_TRIALS]
    environment variable when set (useful to trade precision for bench
    wall-clock). *)

val run : ?pool:Ri_util.Pool.t -> spec -> (trial:int -> float) -> Ri_util.Stats.summary
(** Call the trial function with [trial = 0, 1, ...] in waves until the
    95% CI is within the target relative error (and [min_trials]
    reached) or [max_trials] have run; summarize the observations.
    [pool] defaults to {!Ri_util.Pool.global}, whose width follows
    [RI_JOBS]; the trial function must be safe to call from multiple
    domains when the pool is wider than 1 (trial functions built on
    {!Trial} are). *)

val mean : ?pool:Ri_util.Pool.t -> spec -> (trial:int -> float) -> float
