open Ri_util

type distribution =
  | Uniform
  | Biased of { doc_share : float; node_share : float }

let eighty_twenty = Biased { doc_share = 0.8; node_share = 0.2 }

type t = {
  matches : int array;
  summaries : Summary.t array;
  total_matches : int;
}

let distribute rng ~universe ~n ~query_topics ~results ~distribution
    ?(background_per_node = 2.0) ?(topics_per_background_doc = 2) () =
  if n <= 0 then invalid_arg "Placement.distribute: n must be positive";
  if results < 0 then invalid_arg "Placement.distribute: negative results";
  if query_topics = [] then
    invalid_arg "Placement.distribute: empty query";
  List.iter (Topic.check universe) query_topics;
  let c = Topic.count universe in
  let matches = Array.make n 0 in
  (* Place the query results. *)
  (match distribution with
  | Uniform ->
      for _ = 1 to results do
        let v = Prng.int rng n in
        matches.(v) <- matches.(v) + 1
      done
  | Biased { doc_share; node_share } ->
      if doc_share <= 0. || doc_share >= 1. || node_share <= 0. || node_share >= 1.
      then invalid_arg "Placement.distribute: bias shares must be in (0, 1)";
      let loaded_count = max 1 (int_of_float (Float.round (node_share *. float_of_int n))) in
      let loaded_count = min loaded_count (n - 1) in
      let perm = Array.init n Fun.id in
      Prng.shuffle_in_place rng perm;
      let loaded = Array.sub perm 0 loaded_count in
      let unloaded = Array.sub perm loaded_count (n - loaded_count) in
      for _ = 1 to results do
        let v =
          if Prng.bernoulli rng doc_share then Prng.pick rng loaded
          else Prng.pick rng unloaded
        in
        matches.(v) <- matches.(v) + 1
      done);
  (* Per-node topic counts, starting from the matching documents. *)
  let counts = Array.init n (fun _ -> Array.make c 0) in
  let totals = Array.make n 0 in
  for v = 0 to n - 1 do
    totals.(v) <- matches.(v);
    List.iter
      (fun topic -> counts.(v).(topic) <- counts.(v).(topic) + matches.(v))
      query_topics
  done;
  (* Background documents: each carries [topics_per_background_doc]
     distinct topics but never all the query topics at once.  With a
     single-topic query the background simply avoids that topic; with a
     wider query one random query topic is knocked out of the set. *)
  let tpb = max 1 (min topics_per_background_doc c) in
  let query_arr = Array.of_list query_topics in
  let add_background rng v =
    let chosen = Sampling.choose_distinct rng ~k:tpb ~n:c in
    let forbidden = query_arr.(Prng.int rng (Array.length query_arr)) in
    let row = counts.(v) in
    let contributed = ref false in
    Array.iter
      (fun topic ->
        if topic <> forbidden then begin
          row.(topic) <- row.(topic) + 1;
          contributed := true
        end)
      chosen;
    (* A document whose every topic was forbidden would be topic-less;
       park it on a deterministic substitute instead so totals stay
       meaningful. *)
    if not !contributed then begin
      let substitute = (forbidden + 1) mod c in
      row.(substitute) <- row.(substitute) + 1
    end;
    totals.(v) <- totals.(v) + 1
  in
  if background_per_node < 0. then
    invalid_arg "Placement.distribute: negative background_per_node";
  let whole = int_of_float background_per_node in
  let frac = background_per_node -. float_of_int whole in
  let background_for rng v =
    for _ = 1 to whole do
      add_background rng v
    done;
    if frac > 0. && Prng.bernoulli rng frac then add_background rng v
  in
  (* The background pass is the O(n) bulk of content generation, and
     each node's draws are independent of every other node's — only the
     shared stream serializes it.  Above the threshold the nodes are cut
     into fixed-size shards, each fed its own stream split off the
     parent in shard order; shard boundaries and stream derivation
     depend only on [n], so the result is identical at every pool width
     (though not to the single-stream layout below the threshold, which
     is why figure-scale runs keep the legacy stream bit-for-bit). *)
  let shard_min = Env.int ~min:1 "RI_PLACE_SHARD_MIN" 32768 in
  if n < shard_min || Pool.in_job () then
    for v = 0 to n - 1 do
      background_for rng v
    done
  else begin
    let shard = 4096 in
    let shards = (n + shard - 1) / shard in
    let rngs = Array.init shards (fun _ -> Prng.split rng) in
    Pool.iter ~chunk:1 ~label:"placement" (Pool.global ()) ~n:shards (fun s ->
        let rng = rngs.(s) in
        for v = s * shard to min n (s * shard + shard) - 1 do
          background_for rng v
        done)
  end;
  let summaries =
    if n < shard_min || Pool.in_job () then
      Array.init n (fun v ->
          Summary.of_counts ~total:totals.(v) ~by_topic:counts.(v))
    else
      Pool.map_chunked ~chunk:1024 ~label:"placement" (Pool.global ()) ~n
        (fun v -> Summary.of_counts ~total:totals.(v) ~by_topic:counts.(v))
  in
  { matches; summaries; total_matches = results }

let node_summary t v = t.summaries.(v)

let matches_at t v = t.matches.(v)
