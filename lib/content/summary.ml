open Ri_util

type t = { total : float; by_topic : float array }

let zero ~topics = { total = 0.; by_topic = Vecf.zeros topics }

let make ~total ~by_topic =
  if total < 0. || Array.exists (fun x -> x < 0.) by_topic then
    invalid_arg "Summary.make: negative count";
  { total; by_topic = Array.copy by_topic }

let of_counts ~total ~by_topic =
  make ~total:(float_of_int total) ~by_topic:(Array.map float_of_int by_topic)

let topics t = Array.length t.by_topic

let is_zero t = t.total = 0. && Array.for_all (fun x -> x = 0.) t.by_topic

let check_width a b name =
  if topics a <> topics b then
    invalid_arg (Printf.sprintf "Summary.%s: topic width mismatch" name)

let add a b =
  check_width a b "add";
  {
    total = a.total +. b.total;
    by_topic = Vecf.map2 ( +. ) a.by_topic b.by_topic;
  }

let sub a b =
  check_width a b "sub";
  {
    total = Float.max 0. (a.total -. b.total);
    by_topic = Vecf.map2 (fun x y -> Float.max 0. (x -. y)) a.by_topic b.by_topic;
  }

let scale t k =
  if k < 0. then invalid_arg "Summary.scale: negative factor";
  { total = t.total *. k; by_topic = Vecf.scale t.by_topic k }

let sum l ~topics = List.fold_left add (zero ~topics) l

let get t i =
  if i < 0 || i >= topics t then invalid_arg "Summary.get: topic out of range";
  t.by_topic.(i)

let selectivity t i =
  let v = get t i in
  if t.total <= 0. then 0. else v /. t.total

let as_vector t = Array.append [| t.total |] t.by_topic

(* Both metrics treat the summary as the vector [total; by_topic...]
   but walk the fields directly: update waves evaluate them per
   delivered message, and materializing the appended vector twice per
   call dominates their cost. *)
let max_rel_diff a b =
  check_width a b "max_rel_diff";
  let worst = ref 0. in
  let slot old_ new_ =
    let denom = Float.max (Float.abs old_) 1. in
    let d = Float.abs (new_ -. old_) /. denom in
    if d > !worst then worst := d
  in
  slot a.total b.total;
  for i = 0 to Array.length a.by_topic - 1 do
    slot a.by_topic.(i) b.by_topic.(i)
  done;
  !worst

let euclidean_distance a b =
  check_width a b "euclidean_distance";
  let acc = ref 0. in
  let slot x y =
    let d = x -. y in
    acc := !acc +. (d *. d)
  in
  slot a.total b.total;
  for i = 0 to Array.length a.by_topic - 1 do
    slot a.by_topic.(i) b.by_topic.(i)
  done;
  sqrt !acc

let approx_equal ?eps a b =
  topics a = topics b && Vecf.approx_equal ?eps (as_vector a) (as_vector b)

let pp ppf t =
  Format.fprintf ppf "@[<h>{total=%.2f; [%s]}@]" t.total
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") t.by_topic)))
