open Ri_util

type query = { topics : Topic.id list; stop : int }

let query ~topics ~stop =
  if topics = [] then invalid_arg "Workload.query: empty topic list";
  if List.exists (fun t -> t < 0) topics then
    invalid_arg "Workload.query: negative topic id";
  if stop <= 0 then invalid_arg "Workload.query: stop must be positive";
  { topics = List.sort_uniq compare topics; stop }

let single t ~stop = query ~topics:[ t ] ~stop

let random_single rng universe ~stop =
  single (Prng.int rng (Topic.count universe)) ~stop

let random_conjunction rng universe ~arity ~stop =
  let c = Topic.count universe in
  if arity <= 0 || arity > c then
    invalid_arg "Workload.random_conjunction: bad arity";
  let chosen = Sampling.choose_distinct rng ~k:arity ~n:c in
  query ~topics:(Array.to_list chosen) ~stop

module Zipf = struct
  type t = {
    universe : Topic.t;
    exponent : float;
    shift_every : int;
    cdf : float array;  (* cumulative rank probabilities, last entry 1. *)
    mutable draws : int;
  }

  let create ?(exponent = 1.0) ?(shift_every = 0) universe =
    if Float.is_nan exponent || exponent < 0. then
      invalid_arg "Workload.Zipf.create: exponent must be >= 0";
    if shift_every < 0 then
      invalid_arg "Workload.Zipf.create: shift_every must be >= 0";
    let n = Topic.count universe in
    let cdf = Array.make n 0. in
    let total = ref 0. in
    for r = 0 to n - 1 do
      total := !total +. (1. /. Float.pow (float_of_int (r + 1)) exponent);
      cdf.(r) <- !total
    done;
    for r = 0 to n - 1 do
      cdf.(r) <- cdf.(r) /. !total
    done;
    (* Guard against float fuzz at the top of the table: the last slot
       must catch every draw. *)
    cdf.(n - 1) <- 1.;
    { universe; exponent; shift_every; cdf; draws = 0 }

  let pmf t =
    Array.mapi
      (fun r c -> if r = 0 then c else c -. t.cdf.(r - 1))
      t.cdf

  let draws t = t.draws

  let shift t = if t.shift_every = 0 then 0 else t.draws / t.shift_every

  let topic_of_rank t rank =
    (rank + shift t) mod Topic.count t.universe

  let draw t rng =
    let u = Prng.unit_float rng in
    (* First rank whose cumulative probability covers [u]. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    let topic = topic_of_rank t !lo in
    t.draws <- t.draws + 1;
    topic

  let query t rng ~stop = single (draw t rng) ~stop
end

let poisson_next rng ~rate =
  if Float.is_nan rate || rate <= 0. then
    invalid_arg "Workload.poisson_next: rate must be positive";
  (* Inverse-CDF exponential inter-arrival; [1. -. u] keeps the log
     argument in (0, 1] so the gap is always finite and positive. *)
  -.Float.log (1. -. Prng.unit_float rng) /. rate

let pp universe ppf q =
  Format.fprintf ppf "@[<h>%s (stop=%d)@]"
    (String.concat " AND " (List.map (Topic.name universe) q.topics))
    q.stop
