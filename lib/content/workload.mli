(** Queries and query workloads.

    "Users submit queries to any node along with a stop condition (e.g.,
    the desired number of results)" (Section 3.1).  A query is a
    conjunction of subject topics plus that stop condition. *)

type query = {
  topics : Topic.id list;  (** conjunction of subject topics, non-empty *)
  stop : int;  (** desired number of results, [StopCondition] *)
}

val query : topics:Topic.id list -> stop:int -> query
(** @raise Invalid_argument on an empty topic list, a negative topic id
    or a non-positive stop condition. *)

val single : Topic.id -> stop:int -> query

val random_single : Ri_util.Prng.t -> Topic.t -> stop:int -> query
(** Query on one uniformly chosen topic. *)

val random_conjunction :
  Ri_util.Prng.t -> Topic.t -> arity:int -> stop:int -> query
(** Query on [arity] distinct uniformly chosen topics. *)

(** Skewed topic popularity for open-loop traffic.

    Real query streams are not uniform: a few topics draw most of the
    load.  A generator ranks the universe's topics by popularity with
    Zipfian weights [1 / rank^exponent] and draws topics from a seeded
    stream, so a workload is reproducible from its PRNG alone.  With
    [shift_every > 0] the rank-to-topic mapping rotates by one slot
    every that many draws — a drifting hot set for staleness
    experiments, while the rank {e distribution} stays fixed. *)
module Zipf : sig
  type t
  (** A popularity distribution plus its draw counter (for shifting).
      The PRNG is passed per draw, not captured, so one distribution
      can serve several independently seeded streams. *)

  val create : ?exponent:float -> ?shift_every:int -> Topic.t -> t
  (** [create universe] ranks all topics.  [exponent] (default [1.0])
      is the Zipf skew; [0.] degenerates to uniform.  [shift_every]
      (default [0]) rotates the rank-to-topic mapping every N draws;
      [0] never shifts.
      @raise Invalid_argument on a negative or NaN exponent or a
      negative [shift_every]. *)

  val draw : t -> Ri_util.Prng.t -> Topic.id
  (** Draw one topic by popularity rank (binary search over the
      cumulative table) and advance the shift counter. *)

  val query : t -> Ri_util.Prng.t -> stop:int -> query
  (** A single-topic query on a popularity-drawn topic. *)

  val pmf : t -> float array
  (** Probability of each {e rank} (not topic id), for distribution
      checks. *)

  val topic_of_rank : t -> int -> Topic.id
  (** The topic currently occupying a popularity rank (identity until
      the mapping has shifted). *)

  val draws : t -> int
  (** Topics drawn so far. *)
end

val poisson_next : Ri_util.Prng.t -> rate:float -> float
(** One exponential inter-arrival gap (seconds) of a Poisson process
    with [rate] events per second — the open-loop arrival clock.
    @raise Invalid_argument on a non-positive or NaN rate. *)

val pp : Topic.t -> Format.formatter -> query -> unit
