(* Benchmark harness.

   Part 1 reproduces every table and figure of the paper's evaluation
   section (Figures 13-20 plus the flooding comparison) and prints each
   as a table shaped like the published chart, with the paper's
   qualitative finding quoted above it for comparison.

   Part 2 times the building blocks with Bechamel: one Test.make per
   figure (a single trial of that figure's base configuration) and a set
   of micro-benchmarks for the core operations.

   Both parts also land in a machine-readable JSON file so runs can be
   diffed (per-figure wall-clock seconds, per-micro ns/run).

   Environment knobs:
     RI_NODES       network size for part 1 (default 10000; paper uses 60000)
     RI_TRIALS      max trials per data point (default 30; the 95%/10% CI
                    rule usually stops earlier)
     RI_JOBS        trial-level parallelism (see Ri_util.Pool)
     RI_MICRO       set to 0 to skip the Bechamel + tail-latency sections
     RI_QUANTILE_REPS
                    timed reps per micro in the tail-latency pass
                    (default 200)
     RI_SCALE_NODES comma-separated sizes for an additional scale sweep
                    (e.g. 2000,10000; default off — the 100k point takes
                    minutes)
     RI_BENCH_JSON  output path for the JSON results
                    (default BENCH_results.json; empty disables) *)

open Ri_util
open Ri_sim

let nodes = Env.int "RI_NODES" 10000

let spec = Runner.spec_of_env ()

let base = Config.scaled Config.base ~num_nodes:nodes

let json_path = Env.string "RI_BENCH_JSON" "BENCH_results.json"

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's figures.                                        *)

let figure_seconds : (string * float) list ref = ref []

(* Main-domain minor words per figure: with RI_JOBS > 1 the pool domains
   allocate on their own counters, so run jobs=1 when the absolute
   numbers matter; the relative movement between runs is meaningful
   either way. *)
let figure_minor_words : (string * float) list ref = ref []

let section_seconds : (string * float) list ref = ref []

let run_section name entries =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      let w0 = Gc.minor_words () in
      let report = e.Ri_experiments.Registry.run ~base ~spec in
      let dt = Unix.gettimeofday () -. t0 in
      figure_seconds := (e.Ri_experiments.Registry.id, dt) :: !figure_seconds;
      figure_minor_words :=
        (e.Ri_experiments.Registry.id, Gc.minor_words () -. w0)
        :: !figure_minor_words;
      Ri_experiments.Report.print report;
      Printf.printf "(%.1fs)\n\n%!" dt)
    entries;
  section_seconds :=
    (name, Unix.gettimeofday () -. t0) :: !section_seconds

let run_figures () =
  Printf.printf
    "=====================================================================\n\
     Routing Indices for Peer-to-Peer Systems - evaluation reproduction\n\
     NumNodes=%d  QR=%d  trials<=%d  target CI rel-error<=%.0f%%  jobs=%d\n\
     (paper scale is NumNodes=60000; shapes, not absolute counts, carry)\n\
     =====================================================================\n\n"
    base.Config.num_nodes base.Config.query_results spec.Runner.max_trials
    (100. *. spec.Runner.target_rel_error)
    (Pool.jobs (Pool.global ()));
  run_section "figures" Ri_experiments.Registry.all;
  Printf.printf
    "---------------------------------------------------------------------\n\
     Extensions the paper sketches but does not evaluate (ablations)\n\
     ---------------------------------------------------------------------\n\n";
  run_section "extensions" Ri_experiments.Registry.extensions;
  Printf.printf "%s\n%s\n\n%!" (Telemetry.cache_line ()) (Telemetry.pool_line ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timings.                                           *)

open Bechamel

(* The raw ns clock from bechamel's stubs, grabbed before [open
   Toolkit] shadows the name with its same-named MEASURE instance. *)
module Clock = Monotonic_clock

open Toolkit

(* One trial of each figure's base configuration, at a fixed small scale
   so a run is milliseconds, not seconds. *)
let micro_nodes = 2000

let micro_base = Config.scaled { Config.base with Config.seed = 7 } ~num_nodes:micro_nodes

(* Rotating over 8 trials exercises the setup cache the way a runner
   wave does, but across the whole micro section those templates add up
   (9 tests x 8 converged networks, several MB each): that much live
   major heap taxes every later measurement with marking work.  Each
   test therefore starts from an empty cache and a compact heap — the
   one clear is amortised over a full Bechamel quota. *)
let fresh_cache counter =
  if !counter = 0 then begin
    Setup_cache.clear ();
    Gc.compact ()
  end;
  incr counter

(* Each micro is a (name, thunk) pair: the same thunk feeds Bechamel's
   OLS fit (mean ns/run) and the tail-latency pass (p50/p95/p99), so
   both numbers describe the identical code path.  Builders return
   fresh closures, so each pass starts from its own rotation counter
   and a cleared cache. *)
let trial_micro name cfg =
  let counter = ref 0 in
  ( name,
    fun () ->
      fresh_cache counter;
      ignore (Trial.run_query cfg ~trial:(!counter mod 8)) )

let update_trial_micro name cfg =
  let counter = ref 0 in
  ( name,
    fun () ->
      fresh_cache counter;
      ignore (Trial.run_update cfg ~trial:(!counter mod 8)) )

let figure_micros () =
  [
    (* fig13: scheme comparison - one ERI query trial. *)
    trial_micro "fig13-eri-query"
      (Config.with_search micro_base (Config.Ri (Config.eri micro_base)));
    (* fig14: requested results - a 100-result CRI query trial. *)
    trial_micro "fig14-stop100-cri"
      (Config.with_search
         { micro_base with Config.stop_condition = 100 }
         (Config.Ri Config.cri));
    (* fig15: compression - an 80%-compressed ERI query trial. *)
    trial_micro "fig15-compressed"
      (Config.with_search
         { micro_base with Config.compression_ratio = 0.8 }
         (Config.Ri (Config.eri micro_base)));
    (* fig16: cycles - ERI query on a tree with extra links. *)
    trial_micro "fig16-tree-cycles"
      (Config.with_search
         { micro_base with Config.topology = Config.Tree_with_cycles { extra_links = 33 } }
         (Config.Ri (Config.eri micro_base)));
    (* fig17: topology - ERI query on a power-law overlay. *)
    trial_micro "fig17-powerlaw"
      (Config.with_search
         (Config.with_topology micro_base Config.Power_law_graph)
         (Config.Ri (Config.eri micro_base)));
    (* fig18: update cost - one CRI update batch. *)
    update_trial_micro "fig18-cri-update"
      (Config.with_search micro_base (Config.Ri Config.cri));
    (* fig19: update cost under cycles - ERI update on tree+cycles. *)
    update_trial_micro "fig19-eri-update-cycles"
      (Config.with_search
         { micro_base with Config.topology = Config.Tree_with_cycles { extra_links = 33 } }
         (Config.Ri (Config.eri micro_base)));
    (* fig20: the byte-cost study combines query and update trials; the
       No-RI query side is its distinct ingredient. *)
    trial_micro "fig20-no-ri-query" (Config.with_search micro_base Config.No_ri);
    (* flooding comparison. *)
    trial_micro "flood-query"
      (Config.with_search micro_base (Config.Flooding { ttl = None }));
  ]

(* Micro-benchmarks of the core operations. *)
let core_micros () =
  let open Ri_content in
  let open Ri_core in
  let width = 30 in
  let summary =
    Summary.make ~total:1000.
      ~by_topic:(Array.init width (fun i -> float_of_int ((i * 37) mod 97)))
  in
  let big_ri =
    let t = Scheme.create Scheme.Cri_kind ~width ~local:summary in
    for peer = 0 to 99 do
      Scheme.set_row t ~peer
        (Scheme.Vector (Summary.scale summary (1. /. float_of_int (peer + 1))))
    done;
    t
  in
  let setup = Trial.build ~purpose:Trial.For_query micro_base ~trial:3 in
  let upd_setup = Trial.build ~purpose:Trial.For_update micro_base ~trial:5 in
  (* The boxed/in-place pair does the same add + clamped-sub + scale
     arithmetic over a (1 + width) row; boxed allocates three fresh
     summaries per run, in-place writes a flat-store row and allocates
     nothing — the core trade the SoA rewrite is about. *)
  let row = Array.init (width + 1) (fun i -> float_of_int ((i * 19) mod 89)) in
  let flat = Array.make (4 * (width + 1)) 100. in
  let boxed_row = Summary.make ~total:row.(0) ~by_topic:(Array.sub row 1 width) in
  let boxed_acc = Summary.scale summary 2. in
  [
    ( "core-estimator-goodness",
      fun () -> ignore (Estimator.goodness summary [ 3; 17 ]) );
    ( "core-summary-boxed",
      fun () ->
        ignore
          (Summary.scale (Summary.sub (Summary.add boxed_acc boxed_row) boxed_row) 1.)
    );
    ( "core-summary-inplace",
      fun () ->
        Vecf.add_slice ~dst:flat ~dst_pos:0 row ~src_pos:0 ~len:(width + 1);
        Vecf.sub_clamp_slice ~dst:flat ~dst_pos:0 row ~src_pos:0
          ~len:(width + 1);
        Vecf.scale_slice flat ~pos:0 ~len:(width + 1) 1. );
    ( "update-delta-wave",
      fun () -> ignore (Trial.run_update_on micro_base upd_setup) );
    (* One open-loop traffic trial on the discrete-event engine: ~40
       Poisson arrivals interleaved through mailboxes with service and
       link latency — the per-event scheduler cost under load. *)
    ( "traffic-engine-trial",
      let traffic_cfg =
        Config.with_search micro_base (Config.Ri (Config.eri micro_base))
      in
      let opts =
        {
          Ri_experiments.Traffic.default_opts with
          Ri_experiments.Traffic.o_qps = [ 2000. ];
          o_duration = 0.02;
          o_service_rate = 20_000.;
          o_link_latency = 0.05;
          o_trials = 1;
        }
      in
      fun () ->
        ignore
          (Ri_experiments.Traffic.simulate traffic_cfg ~opts ~qps:2000.
             ~trial:3) );
    (* The identical trial with the observatory timeline recording
       live: every gated capture site takes its one load-and-branch and
       then actually records, flushes and clears.  The committed
       baseline entry for this name is the OFF-path time of the same
       trial, so the regression gate bounds the on-vs-off overhead at
       its threshold instead of merely tracking drift. *)
    ( "traffic-observatory-on-vs-off",
      let traffic_cfg =
        Config.with_search micro_base (Config.Ri (Config.eri micro_base))
      in
      let opts =
        {
          Ri_experiments.Traffic.default_opts with
          Ri_experiments.Traffic.o_qps = [ 2000. ];
          o_duration = 0.02;
          o_service_rate = 20_000.;
          o_link_latency = 0.05;
          o_trials = 1;
        }
      in
      fun () ->
        Ri_obs.Observatory.start ();
        ignore
          (Ri_experiments.Traffic.simulate traffic_cfg ~opts ~qps:2000.
             ~trial:3);
        Ri_obs.Observatory.stop ();
        Ri_obs.Observatory.clear () );
    ("core-export-all-100-peers", fun () -> ignore (Scheme.export_all big_ri));
    ( "core-rank-100-peers",
      fun () -> ignore (Scheme.rank big_ri ~query:[ 3 ] ~exclude:[]) );
    ( "core-query-prebuilt-net",
      fun () ->
        ignore
          (Ri_p2p.Query.run setup.Trial.network ~origin:setup.Trial.origin
             ~query:setup.Trial.query ~forwarding:Ri_p2p.Query.Ri_guided) );
  ]

let run_bechamel micros =
  Printf.printf
    "=====================================================================\n\
     Bechamel timings (one Test.make per figure at %d nodes, plus core ops)\n\
     =====================================================================\n\n%!"
    micro_nodes;
  let tests =
    List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) micros
  in
  let test = Test.make_grouped ~name:"ri" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances test in
  match List.map (fun instance -> Analyze.all ols instance raw) instances with
  | [] -> []
  | clock_results :: _ ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> rows := (name, est) :: !rows
          | _ -> ())
        clock_results;
      let rows = List.sort compare !rows in
      Printf.printf "%-36s %16s\n" "benchmark" "time/run";
      Printf.printf "%s\n" (String.make 53 '-');
      List.iter
        (fun (name, ns) ->
          let pretty =
            if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Printf.printf "%-36s %16s\n" name pretty)
        rows;
      print_newline ();
      rows

(* Tail-latency pass: Bechamel's OLS fit gives the mean cost per run;
   the p95/p99 columns need each repetition timed individually.  A
   short warmup settles caches and the minor heap, then every timed rep
   lands in a quantile sketch (1% relative error) — the same structure
   the simulator's live telemetry uses, so the BENCH JSON and /metrics
   agree on what a quantile means.  RI_QUANTILE_REPS sets the rep count
   (default 200); the p99 values feed the RI_BENCH_P99 regression
   gate. *)
let quantile_reps = Env.int ~min:10 "RI_QUANTILE_REPS" 200

let run_quantiles micros =
  Printf.printf
    "Tail latency (%d timed reps per micro, DDSketch alpha %.0f%%)\n\n"
    quantile_reps
    (100. *. Ri_obs.Sketch.default_alpha);
  let sample (name, fn) =
    for _ = 1 to 10 do
      fn ()
    done;
    let sk = Ri_obs.Sketch.create () in
    for _ = 1 to quantile_reps do
      let t0 = Clock.now () in
      fn ();
      let t1 = Clock.now () in
      Ri_obs.Sketch.add sk (Int64.to_float (Int64.sub t1 t0))
    done;
    (name, sk)
  in
  let rows = List.map sample micros in
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  Printf.printf "%-36s %12s %12s %12s\n" "benchmark" "p50" "p95" "p99";
  Printf.printf "%s\n" (String.make 75 '-');
  List.iter
    (fun (name, sk) ->
      let q p = Ri_obs.Sketch.quantile sk p in
      Printf.printf "%-36s %12s %12s %12s\n" name
        (pretty (q 0.5)) (pretty (q 0.95)) (pretty (q 0.99)))
    rows;
  print_newline ();
  rows

(* Minor words allocated per run of the hot operations, measured by
   hand around a fixed repetition count (Bechamel's allocation probes
   disagree across OCaml versions; [Gc.minor_words] does not). *)
let run_minor_words () =
  let per_run name reps f =
    f ();
    let w0 = Gc.minor_words () in
    for _ = 1 to reps do
      f ()
    done;
    (name, (Gc.minor_words () -. w0) /. float_of_int reps)
  in
  let setup = Trial.build ~purpose:Trial.For_query micro_base ~trial:3 in
  let upd = Trial.build ~purpose:Trial.For_update micro_base ~trial:5 in
  let rows =
    [
      per_run "core-query-prebuilt-net" 200 (fun () ->
          ignore
            (Ri_p2p.Query.run setup.Trial.network ~origin:setup.Trial.origin
               ~query:setup.Trial.query ~forwarding:Ri_p2p.Query.Ri_guided));
      per_run "update-delta-wave" 50 (fun () ->
          ignore (Trial.run_update_on micro_base upd));
      per_run "core-export-all-100-peers" 1000 (fun () ->
          ignore
            (Ri_core.Scheme.export_all
               (Ri_p2p.Network.ri setup.Trial.network setup.Trial.origin)));
    ]
  in
  Printf.printf "%-36s %16s\n" "benchmark" "minor words/run";
  Printf.printf "%s\n" (String.make 53 '-');
  List.iter (fun (name, w) -> Printf.printf "%-36s %16.1f\n" name w) rows;
  print_newline ();
  rows

(* Optional scale sweep (RI_SCALE_NODES=2000,10000,...): the fig_scale
   experiment's points land in the JSON next to the micros. *)
let run_scale () =
  match Env.string "RI_SCALE_NODES" "" with
  | "" -> None
  | s ->
      let sizes =
        List.filter_map int_of_string_opt (String.split_on_char ',' s)
      in
      if sizes = [] then None
      else begin
        let points = Ri_experiments.Fig_scale.sweep ~sizes ~base ~spec () in
        Ri_experiments.Report.print
          (Ri_experiments.Fig_scale.report_of points);
        print_newline ();
        Some points
      end

(* ------------------------------------------------------------------ *)
(* JSON results file.                                                  *)

(* Tiny hand-rolled emitter: the only strings are our own benchmark ids
   (alphanumerics and dashes), so escaping is a non-issue. *)
let write_json ~figures ~figure_words ~sections ~cache ~micro ~minor_words
    ~quantiles ~scale =
  if json_path <> "" then begin
    let buf = Buffer.create 4096 in
    let entry fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let map name pairs emit_one =
      entry "  \"%s\": {\n" name;
      let n = List.length pairs in
      List.iteri
        (fun i kv ->
          emit_one kv;
          entry "%s\n" (if i = n - 1 then "" else ","))
        pairs;
      entry "  },\n"
    in
    entry "{\n";
    entry "  \"unix_time\": %.0f,\n" (Unix.time ());
    (* Provenance stamp so a results file can be traced back to the tree
       and machine that produced it (consumed by `risim report`). *)
    let git_commit =
      try
        let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        match (Unix.close_process_in ic, line) with
        | Unix.WEXITED 0, l when l <> "" -> l
        | _ -> "unknown"
      with _ -> "unknown"
    in
    let tm = Unix.gmtime (Unix.time ()) in
    entry "  \"meta\": {\n";
    entry "    \"git_commit\": \"%s\",\n" (Ri_util.Json.escape git_commit);
    entry "    \"timestamp_utc\": \"%04d-%02d-%02dT%02d:%02d:%02dZ\",\n"
      (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
    entry "    \"hostname\": \"%s\",\n"
      (Ri_util.Json.escape (Unix.gethostname ()));
    entry "    \"ri_jobs\": \"%s\",\n"
      (Ri_util.Json.escape
         (match Sys.getenv_opt "RI_JOBS" with Some v -> v | None -> ""));
    entry "    \"jobs_resolved\": %d\n" (Pool.jobs (Pool.global ()));
    entry "  },\n";
    entry "  \"config\": {\n";
    entry "    \"nodes\": %d,\n" nodes;
    entry "    \"max_trials\": %d,\n" spec.Runner.max_trials;
    entry "    \"target_rel_error\": %g,\n" spec.Runner.target_rel_error;
    entry "    \"jobs\": %d,\n" (Pool.jobs (Pool.global ()));
    entry "    \"obs_enabled\": %b\n" (Ri_obs.Metrics.enabled ());
    entry "  },\n";
    map "figures_wall_clock_s" figures (fun (id, s) ->
        entry "    \"%s\": %.3f" id s);
    map "figures_minor_words" figure_words (fun (id, w) ->
        entry "    \"%s\": %.0f" id w);
    map "sections_wall_clock_s" sections (fun (name, s) ->
        entry "    \"%s\": %.3f" name s);
    entry "  \"total_figures_s\": %.3f,\n"
      (List.fold_left (fun acc (_, s) -> acc +. s) 0. sections);
    (* Per-phase pipeline timings only exist when metric recording is on
       (RI_OBS=1): with it off the bench measures the undisturbed path. *)
    (match Ri_obs.Phase.totals () with
    | [] -> ()
    | phases ->
        map "phase_seconds" phases (fun (name, count, total) ->
            entry "    \"%s\": {\"samples\": %d, \"total_s\": %.3f}" name count
              total));
    let c = cache in
    entry "  \"setup_cache\": {\n";
    entry "    \"enabled\": %b,\n" (Setup_cache.enabled ());
    entry "    \"graph_hits\": %d,\n" c.Setup_cache.graph_hits;
    entry "    \"graph_misses\": %d,\n" c.Setup_cache.graph_misses;
    entry "    \"content_hits\": %d,\n" c.Setup_cache.content_hits;
    entry "    \"content_misses\": %d,\n" c.Setup_cache.content_misses;
    entry "    \"network_hits\": %d,\n" c.Setup_cache.network_hits;
    entry "    \"network_misses\": %d,\n" c.Setup_cache.network_misses;
    entry "    \"networks_generated\": %d,\n" c.Setup_cache.network_generated;
    entry "    \"networks_from_snapshot\": %d\n" c.Setup_cache.network_snapshot;
    entry "  },\n";
    (* Process-level memory at the end of the run: resident set now and
       the kernel's high-water mark (null where procfs is unavailable). *)
    let mem_field = function
      | Some mb -> Printf.sprintf "%.1f" mb
      | None -> "null"
    in
    entry "  \"memory\": {\n";
    entry "    \"rss_mb\": %s,\n" (mem_field (Rss.resident_mb ()));
    entry "    \"peak_rss_mb\": %s,\n" (mem_field (Rss.peak_mb ()));
    entry "    \"top_heap_mb\": %.1f\n"
      (float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. 8. /. 1e6);
    entry "  },\n";
    let pool = Pool.global () in
    let p = Pool.stats pool in
    entry "  \"pool\": {\n";
    entry "    \"jobs\": %d,\n" (Pool.jobs pool);
    entry "    \"waves\": %d,\n" p.Pool.waves;
    entry "    \"items\": %d,\n" p.Pool.items;
    entry "    \"max_wave\": %d,\n" p.Pool.max_wave;
    entry "    \"busy_domains_avg\": %.2f,\n"
      (if p.Pool.waves = 0 then 0.
       else float_of_int p.Pool.busy_domains /. float_of_int p.Pool.waves);
    entry "    \"submit_wait_s\": %.3f\n" p.Pool.submit_wait_s;
    entry "  },\n";
    (match scale with
    | None -> ()
    | Some points ->
        entry "  \"scale\": %s,\n" (Ri_experiments.Fig_scale.json_of points));
    (match minor_words with
    | [] -> ()
    | words ->
        map "micro_minor_words_per_run" words (fun (name, w) ->
            entry "    \"%s\": %.1f" name w));
    (* Per-micro tail latency; the p99 values are what RI_BENCH_P99=1
       gates in bench/regress. *)
    (match quantiles with
    | [] -> ()
    | rows ->
        map "micro_quantiles_ns" rows (fun (name, sk) ->
            let q p = Ri_obs.Sketch.quantile sk p in
            entry
              "    \"%s\": {\"count\": %d, \"p50\": %.1f, \"p95\": %.1f, \
               \"p99\": %.1f}"
              name (Ri_obs.Sketch.count sk) (q 0.5) (q 0.95) (q 0.99)));
    entry "  \"micro_ns_per_run\": {\n";
    let n = List.length micro in
    List.iteri
      (fun i (name, ns) ->
        entry "    \"%s\": %.1f%s\n" name ns (if i = n - 1 then "" else ","))
      micro;
    entry "  }\n";
    entry "}\n";
    let oc = open_out json_path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "results written to %s\n%!" json_path
  end

let () =
  run_figures ();
  (* The figure phase leaves the setup caches holding up to their full
     word budgets of live templates.  That much live major heap taxes
     every allocation in the micro section with marking work it never
     sees in isolation, so snapshot the hit counters, drop the caches
     and start Bechamel from a compact heap.  The handful of micro
     setups repopulate what they need. *)
  let cache = Setup_cache.stats () in
  Setup_cache.clear ();
  Gc.compact ();
  let with_micro = Env.int ~min:0 "RI_MICRO" 1 <> 0 in
  let micro =
    if with_micro then run_bechamel (figure_micros () @ core_micros ()) else []
  in
  (* Fresh closures for the tail pass: each micro restarts its trial
     rotation from a cleared cache, exactly like the Bechamel pass. *)
  let quantiles =
    if with_micro then run_quantiles (figure_micros () @ core_micros ())
    else []
  in
  let minor_words = if with_micro then run_minor_words () else [] in
  let scale = run_scale () in
  write_json
    ~figures:(List.rev !figure_seconds)
    ~figure_words:(List.rev !figure_minor_words)
    ~sections:(List.rev !section_seconds)
    ~cache ~micro ~minor_words ~quantiles ~scale
