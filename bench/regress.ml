(* Bench regression gate.

   Compares the microbenchmark ns/run figures of a fresh
   BENCH_results.json against a committed baseline and exits nonzero
   when any micro slowed down by more than the threshold
   (RI_BENCH_THRESHOLD percent, default 15).  RI_BENCH_P99=1
   additionally gates the p99 tail values of micro_quantiles_ns at the
   same threshold.  Wired into CI and `make bench-check`; the
   comparison itself lives in Ri_experiments.Regress so it is
   unit-testable.

   Usage: regress.exe [BASELINE [RESULTS]]
     BASELINE  defaults to BENCH_baseline.json (missing -> warn, exit 0,
               so the gate is a no-op until a baseline is committed)
     RESULTS   defaults to BENCH_results.json (missing -> error) *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let () =
  let baseline_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_baseline.json"
  in
  let results_path =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_results.json"
  in
  if not (Sys.file_exists baseline_path) then begin
    Printf.printf
      "bench-regress: no baseline at %s — nothing to gate against.\n\
       Commit one with: cp BENCH_results.json %s\n"
      baseline_path baseline_path;
    exit 0
  end;
  if not (Sys.file_exists results_path) then begin
    Printf.eprintf
      "bench-regress: no results at %s — run the bench first (make bench).\n"
      results_path;
    exit 2
  end;
  let threshold =
    Ri_util.Env.float "RI_BENCH_THRESHOLD"
      Ri_experiments.Regress.default_threshold
  in
  let gate_p99 = Ri_util.Env.bool "RI_BENCH_P99" false in
  match
    Ri_experiments.Regress.compare ~threshold ~gate_p99
      ~baseline:(read_file baseline_path)
      ~results:(read_file results_path) ()
  with
  | Error e ->
      Printf.eprintf "bench-regress: %s\n" e;
      exit 2
  | Ok outcome ->
      print_string (Ri_experiments.Regress.render outcome);
      if Ri_experiments.Regress.any_regressed outcome then exit 1
