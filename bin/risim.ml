(* risim — command-line front end for the Routing Indices simulator.

   Subcommands:
     list               enumerate the paper's experiments
     params             print the active (Figure 12) configuration
     run EXPERIMENT..   reproduce one or more figures
     all                reproduce every figure
     query              run a single query trial and print its metrics
     update             run a single update trial and print its cost
     scale              sweep network sizes, report throughput + memory
     traffic            open-loop QPS sweep on the discrete-event engine *)

open Cmdliner
open Ri_sim

(* ------------------------------------------------------------------ *)
(* Shared options.                                                     *)

let nodes_t =
  let doc =
    "Network size (NumNodes).  The paper uses 60000; smaller sizes keep \
     wall-clock short and preserve the qualitative shapes."
  in
  Arg.(value & opt int 10000 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let seed_t =
  let doc = "Master random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let trials_t =
  let doc = "Maximum trials per data point (the 95%/10% CI rule may stop earlier)." in
  Arg.(value & opt int 30 & info [ "trials" ] ~docv:"T" ~doc)

let rel_error_t =
  let doc = "Target relative error of the 95% confidence interval." in
  Arg.(value & opt float 0.1 & info [ "rel-error" ] ~docv:"E" ~doc)

let topology_t =
  let topo =
    Arg.enum
      [
        ("tree", Config.Tree);
        ("tree-cycles", Config.Tree_with_cycles { extra_links = 10 });
        ("powerlaw", Config.Power_law_graph);
      ]
  in
  let doc = "Overlay topology: $(b,tree), $(b,tree-cycles) or $(b,powerlaw)." in
  Arg.(value & opt topo Config.Tree & info [ "topology" ] ~docv:"TOPO" ~doc)

let search_names =
  [ ("cri", `Cri); ("hri", `Hri); ("eri", `Eri); ("no-ri", `No_ri); ("flood", `Flood) ]

let search_t =
  let doc = "Search mechanism: $(b,cri), $(b,hri), $(b,eri), $(b,no-ri) or $(b,flood)." in
  Arg.(value & opt (enum search_names) `Eri & info [ "search" ] ~docv:"MECH" ~doc)

let base_config nodes seed =
  let cfg = Config.scaled Config.base ~num_nodes:nodes in
  { cfg with Config.seed }

let search_of cfg = function
  | `Cri -> Config.Ri Config.cri
  | `Hri -> Config.Ri (Config.hri cfg)
  | `Eri -> Config.Ri (Config.eri cfg)
  | `No_ri -> Config.No_ri
  | `Flood -> Config.Flooding { ttl = None }

let spec_of trials rel_error =
  {
    Runner.min_trials = min 5 trials;
    max_trials = trials;
    target_rel_error = rel_error;
  }

(* ------------------------------------------------------------------ *)
(* Fault environment (query subcommand).                               *)

(* Fault rates are validated at parse time — [--fault-loss 1.5] is
   refused with a message and a nonzero exit before any simulation
   starts, instead of surfacing later as a config-validation failure
   halfway into a batch.  The range check is [Ri_util.Env.check_float],
   the same policy the environment knobs apply. *)
let prob_conv ~what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s must be a number, got %S" what s))
    | Some v -> (
        match Ri_util.Env.check_float ~min:0. ~max:1. ~what v with
        | Ok v -> Ok v
        | Error msg -> Error (`Msg msg))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let prob_arg name ~docv ~doc =
  Arg.(value & opt (prob_conv ~what:("--" ^ name)) 0. & info [ name ] ~docv ~doc)

(* Same policy for general float flags with a custom range (the traffic
   plane's rates and latencies): refused at parse time with a message
   naming the flag, before any network is built. *)
let float_conv ?min ?max ~what () =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s must be a number, got %S" what s))
    | Some v -> (
        match Ri_util.Env.check_float ?min ?max ~what v with
        | Ok v -> Ok v
        | Error msg -> Error (`Msg msg))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let fault_loss_t =
  prob_arg "fault-loss" ~docv:"P"
    ~doc:
      "Probability that an update message is lost in transit.  Loss only \
       bites when updates actually flow, so pair it with $(b,--fault-drift)."

let fault_crash_t =
  prob_arg "fault-crash" ~docv:"F"
    ~doc:
      "Fraction of nodes crash-stopped before the trial (no goodbye \
       message; neighbors discover the death when a forward times out)."

let fault_delay_t =
  prob_arg "fault-delay" ~docv:"P"
    ~doc:
      "Probability that an update message is delayed (applied whole \
       update waves late) instead of arriving in order."

let fault_drift_t =
  prob_arg "fault-drift" ~docv:"F"
    ~doc:
      "Fraction of the query's results relocated before it runs, each \
       move announced by a corrective update wave subject to the other \
       fault rates — the staleness source."

let fault_partition_t =
  prob_arg "fault-partition" ~docv:"F"
    ~doc:
      "Sever a connected cut of roughly $(docv) of the nodes from the \
       rest: update waves and queries cannot cross until the cut heals \
       ($(b,--fault-heal-waves), or the trial's recovery phase)."

let fault_heal_waves_t =
  let doc =
    "Heal the partition automatically after $(docv) update waves have \
     run against it (default: never — the recovery experiments heal \
     explicitly)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-heal-waves" ] ~docv:"W" ~doc)

let fault_seed_t =
  let doc =
    "Derive the fault plan's PRNG from $(docv) instead of the master \
     $(b,--seed): the same kills, losses and partition shape replay \
     against differently seeded networks."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

(* Any active rate turns on the full robustness machinery with the
   fig_faults defaults: two retries with exponential backoff, and rows
   that miss more than one update demoted to random ranking. *)
let fault_spec_of ?(partition = 0.) ?heal_after ~loss ~crash ~delay ~drift () =
  if loss = 0. && crash = 0. && delay = 0. && drift = 0. && partition = 0.
  then Ri_p2p.Fault.none
  else
    {
      Ri_p2p.Fault.none with
      Ri_p2p.Fault.update_loss = loss;
      update_delay = delay;
      delay_waves = 2;
      crash;
      drift;
      partition;
      heal_after;
      stale_after = Some 1;
      retries = 2;
      backoff = 1;
    }

let jobs_t =
  let doc =
    "Domains used to run trials in parallel (0 = the RI_JOBS environment \
     variable, or all cores minus one).  Results are bit-identical at \
     any width; use $(b,--jobs)=1 to force the sequential path."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"J" ~doc)

let apply_jobs jobs = if jobs > 0 then Ri_util.Pool.set_global_jobs jobs

(* ------------------------------------------------------------------ *)
(* Observability options (shared by run/all/query/update).             *)

let metrics_t =
  let doc =
    "Write metrics (message counters, per-phase timings, setup-cache hit \
     rates, pool utilization) to $(docv) in Prometheus text format; bare \
     $(b,--metrics) (or $(docv)=$(b,-)) prints them to stdout.  Implies \
     metric recording for this run (as does $(b,RI_OBS)=1)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_t =
  let doc =
    "Record every query hop, backtrack, stop condition and update hop, and \
     write the trace to $(docv).  Trace timestamps are deterministic logical \
     ticks: the same seed produces byte-identical traces at any \
     $(b,--jobs) width."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_t =
  let doc =
    "Trace file format: $(b,jsonl) (one event per line) or $(b,chrome) \
     (Chrome trace_event JSON for about://tracing or Perfetto)."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let decisions_t =
  let doc =
    "Record per-hop routing-decision provenance (candidate goodness \
     vectors, oracle-best counterfactuals, staleness and update-wave \
     lineage) and write it to $(docv) as JSONL.  Like $(b,--trace), the \
     output is byte-identical at any $(b,--jobs) width.  Feed the file \
     to $(b,risim report), or use $(b,risim explain) for an annotated \
     single-trial replay."
  in
  Arg.(value & opt (some string) None & info [ "decisions" ] ~docv:"FILE" ~doc)

let spans_t =
  let doc =
    "Record causal spans — a root span per query or update wave \
     parenting per-hop, retry, fallback and per-round children — and \
     write them to $(docv).  Span ids and timestamps are deterministic \
     logical ticks, so the output is byte-identical at any $(b,--jobs) \
     width."
  in
  Arg.(value & opt (some string) None & info [ "spans" ] ~docv:"FILE" ~doc)

let span_format_t =
  let doc =
    "Span file format: $(b,jsonl) (one span per line), $(b,chrome) \
     (Chrome trace_event JSON with flow arrows for Perfetto) or \
     $(b,otlp) (OTLP/HTTP-shaped resourceSpans JSON)."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome); ("otlp", `Otlp) ]) `Jsonl
    & info [ "span-format" ] ~docv:"FORMAT" ~doc)

let serve_obs_t =
  let doc =
    "Serve live observability over HTTP on 127.0.0.1:$(docv) while the \
     run executes: $(b,/metrics) (Prometheus text, counters + quantile \
     summaries), $(b,/progress) (JSON phase / trial counts / sketch \
     snapshots / ETA) and $(b,/healthz).  Implies metric recording."
  in
  Arg.(value & opt (some int) None & info [ "serve-obs" ] ~docv:"PORT" ~doc)

(* Atomic replace so a concurrent scrape of the file never reads a
   half-written exposition. *)
let write_metrics_file file =
  let text = Telemetry.render_metrics () in
  if file = "-" then print_string text
  else begin
    let tmp = file ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc text;
    close_out oc;
    Sys.rename tmp file
  end

(* RI_OBS_FLUSH_SEC=N flushes the --metrics file every N seconds from a
   helper domain, so a long sweep's metrics are scrapeable mid-run even
   without --serve-obs.  Sleeping in short steps keeps shutdown prompt. *)
let start_flusher metrics =
  let period = Ri_util.Env.float ~min:0.01 "RI_OBS_FLUSH_SEC" 0. in
  match metrics with
  | Some file when file <> "-" && period > 0. ->
      let stop = Atomic.make false in
      let dom =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let slept = ref 0. in
              while (not (Atomic.get stop)) && !slept < period do
                Unix.sleepf 0.05;
                slept := !slept +. 0.05
              done;
              if not (Atomic.get stop) then
                try write_metrics_file file with Sys_error _ -> ()
            done)
      in
      Some (stop, dom)
  | _ -> None

let stop_flusher = function
  | None -> ()
  | Some (stop, dom) ->
      Atomic.set stop true;
      Domain.join dom

(* Enable recording before the run, export files after.  Metrics go out
   with the cache/pool gauges refreshed so one file carries the whole
   picture.  The HTTP server and the periodic flusher are torn down even
   when the run raises. *)
let with_obs ?(serve = None) ?(spans = None) ?(span_fmt = `Jsonl)
    ?(timeline = None) metrics trace fmt decisions f =
  if metrics <> None || serve <> None then Ri_obs.Metrics.set_enabled true;
  if trace <> None then Ri_obs.Trace.start ();
  if decisions <> None then Ri_obs.Decision.start ();
  if spans <> None then Ri_obs.Span.start ();
  if timeline <> None then Ri_obs.Observatory.start ();
  let server =
    Option.map
      (fun port ->
        let s = Ri_obs.Serve.start ~port ~metrics:Telemetry.render_metrics () in
        Printf.printf
          "obs endpoint: http://127.0.0.1:%d (/metrics /progress /traffic /healthz)\n%!"
          (Ri_obs.Serve.port s);
        s)
      serve
  in
  let flusher = start_flusher metrics in
  let result =
    Fun.protect
      ~finally:(fun () ->
        stop_flusher flusher;
        Option.iter Ri_obs.Serve.stop server)
      f
  in
  (match trace with
  | None -> ()
  | Some file ->
      Ri_obs.Trace.stop ();
      (match fmt with
      | `Jsonl -> Ri_obs.Trace.export_jsonl file
      | `Chrome -> Ri_obs.Trace.export_chrome file);
      Printf.printf "trace written to %s\n" file);
  (match decisions with
  | None -> ()
  | Some file ->
      Ri_obs.Decision.stop ();
      Ri_obs.Decision.export_jsonl file;
      Printf.printf "decisions written to %s\n" file);
  (match spans with
  | None -> ()
  | Some file ->
      Ri_obs.Span.stop ();
      (match span_fmt with
      | `Jsonl -> Ri_obs.Span.export_jsonl file
      | `Chrome -> Ri_obs.Span.export_chrome file
      | `Otlp -> Ri_obs.Span.export_otlp file);
      Printf.printf "spans written to %s\n" file);
  (match timeline with
  | None -> ()
  | Some file ->
      Ri_obs.Observatory.stop ();
      Ri_obs.Observatory.export_jsonl file;
      Printf.printf "timeline written to %s\n" file);
  (match metrics with
  | None -> ()
  | Some file ->
      write_metrics_file file;
      if file <> "-" then Printf.printf "metrics written to %s\n" file);
  result

(* Printed next to the cache/pool summary lines; empty unless the run
   recorded metrics. *)
let print_gc_table () =
  match Telemetry.gc_lines () with
  | [] -> ()
  | lines -> List.iter print_endline lines

(* ------------------------------------------------------------------ *)
(* Subcommands.                                                        *)

let list_cmd =
  let run () =
    Printf.printf "Paper figures:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-13s %s\n" e.Ri_experiments.Registry.id
          e.Ri_experiments.Registry.title)
      Ri_experiments.Registry.all;
    Printf.printf "Extensions / ablations:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-13s %s\n" e.Ri_experiments.Registry.id
          e.Ri_experiments.Registry.title)
      Ri_experiments.Registry.extensions;
    Printf.printf "Simulator scale (run via `risim scale'):\n";
    List.iter
      (fun e ->
        Printf.printf "  %-13s %s\n" e.Ri_experiments.Registry.id
          e.Ri_experiments.Registry.title)
      Ri_experiments.Registry.scale
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Enumerate the paper's experiments and the ablations")
    Term.(const run $ const ())

let params_cmd =
  let run nodes seed =
    Format.printf "%a@." Config.pp (base_config nodes seed)
  in
  Cmd.v
    (Cmd.info "params" ~doc:"Print the active simulation parameters (Figure 12)")
    Term.(const run $ nodes_t $ seed_t)

let run_experiments ?csv_dir ids nodes seed trials rel_error =
  let base = base_config nodes seed in
  let spec = spec_of trials rel_error in
  Printf.printf "# NumNodes=%d QR=%d seed=%d trials<=%d rel-error<=%.0f%%\n\n"
    base.Config.num_nodes base.Config.query_results seed trials
    (100. *. rel_error);
  let failures =
    List.filter_map
      (fun id ->
        match Ri_experiments.Registry.find id with
        | None -> Some (id, "unknown experiment (try `risim list')")
        | Some e -> (
            try
              Ri_obs.Serve.Progress.set_label id;
              let t0 = Unix.gettimeofday () in
              let report = e.Ri_experiments.Registry.run ~base ~spec in
              Ri_experiments.Report.print report;
              Printf.printf "(%.1fs)\n\n" (Unix.gettimeofday () -. t0);
              (match csv_dir with
              | None -> ()
              | Some dir ->
                  let path = Filename.concat dir (id ^ ".csv") in
                  let oc = open_out path in
                  output_string oc (Ri_experiments.Report.to_csv report);
                  close_out oc;
                  Printf.printf "wrote %s\n\n" path);
              None
            with exn ->
              (* Keep going — later experiments still run — but report
                 the failure and make the whole invocation exit nonzero
                 so CI cannot mistake a crashed sweep for a green one. *)
              let bt = Printexc.get_backtrace () in
              Printf.eprintf "experiment %s raised: %s\n%s%!" id
                (Printexc.to_string exn) bt;
              Some (id, Printexc.to_string exn)))
      ids
  in
  (* Surface the run's execution telemetry: what the setup cache saved
     and how wide the trial pool actually ran. *)
  Printf.printf "%s\n%s\n" (Telemetry.cache_line ()) (Telemetry.pool_line ());
  print_gc_table ();
  match failures with
  | [] -> `Ok ()
  | failed ->
      `Error
        ( false,
          String.concat "; "
            (List.map (fun (id, msg) -> id ^ ": " ^ msg) failed) )

let csv_dir_t =
  let doc = "Also write each experiment's table as $(docv)/<id>.csv." in
  Arg.(value & opt (some dir) None & info [ "csv" ] ~docv:"DIR" ~doc)

let run_cmd =
  let ids_t =
    let doc = "Experiment id(s), e.g. fig13 (see `risim list')." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run ids nodes seed trials rel_error csv_dir jobs metrics trace fmt
      decisions spans span_fmt serve =
    apply_jobs jobs;
    with_obs ~serve ~spans ~span_fmt metrics trace fmt decisions (fun () ->
        run_experiments ?csv_dir ids nodes seed trials rel_error)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Reproduce one or more of the paper's figures")
    Term.(
      ret
        (const run $ ids_t $ nodes_t $ seed_t $ trials_t $ rel_error_t
       $ csv_dir_t $ jobs_t $ metrics_t $ trace_t $ trace_format_t
       $ decisions_t $ spans_t $ span_format_t $ serve_obs_t))

let all_cmd =
  let with_extensions_t =
    Arg.(value & flag & info [ "extensions" ] ~doc:"Also run the ablations.")
  in
  let run nodes seed trials rel_error with_extensions jobs metrics trace fmt
      decisions spans span_fmt serve =
    apply_jobs jobs;
    let ids =
      Ri_experiments.Registry.ids
      @ if with_extensions then Ri_experiments.Registry.extension_ids else []
    in
    with_obs ~serve ~spans ~span_fmt metrics trace fmt decisions (fun () ->
        run_experiments ids nodes seed trials rel_error)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every figure of the evaluation section")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ trials_t $ rel_error_t
       $ with_extensions_t $ jobs_t $ metrics_t $ trace_t $ trace_format_t
       $ decisions_t $ spans_t $ span_format_t $ serve_obs_t))

let print_query_metrics cfg ~nodes ~trial (m : Trial.query_metrics) =
  Printf.printf
    "search=%s topology=%s nodes=%d trial=%d\n\
     messages=%d (forwards=%d returns=%d results=%d)\n\
     found=%d satisfied=%b nodes_visited=%d bytes=%.0f\n"
    (Config.search_name cfg.Config.search)
    (Config.topology_name cfg.Config.topology)
    nodes trial m.Trial.messages m.Trial.forwards m.Trial.returns
    m.Trial.results m.Trial.found m.Trial.satisfied m.Trial.nodes_visited
    m.Trial.bytes

let query_cmd =
  let run nodes seed topology search trial loss crash delay drift partition
      heal_after fault_seed metrics trace fmt decisions spans span_fmt serve =
    let cfg = base_config nodes seed in
    let cfg = Config.with_topology cfg topology in
    let cfg = Config.with_search cfg (search_of cfg search) in
    let fault = fault_spec_of ~partition ?heal_after ~loss ~crash ~delay ~drift () in
    let cfg = { cfg with Config.fault; fault_seed } in
    match Config.validate cfg with
    | Error msg -> `Error (false, msg)
    | Ok () when not (Ri_p2p.Fault.active fault) ->
        let m =
          with_obs ~serve ~spans ~span_fmt metrics trace fmt decisions
            (fun () -> Trial.run_query cfg ~trial)
        in
        print_query_metrics cfg ~nodes ~trial m;
        print_gc_table ();
        `Ok ()
    | Ok () ->
        let m =
          with_obs ~serve ~spans ~span_fmt metrics trace fmt decisions
            (fun () -> Trial.run_query_faulty cfg ~trial)
        in
        print_query_metrics cfg ~nodes ~trial m.Trial.f_query;
        let st = m.Trial.f_stats in
        Printf.printf
          "recall=%.2f (clean_found=%d) drift_messages=%d repair_messages=%d\n\
           faults: crashes=%d drops=%d dead_drops=%d delays=%d timeouts=%d \
           retries=%d fallbacks=%d repairs=%d partition_drops=%d \
           recoveries=%d\n"
          m.Trial.f_recall m.Trial.f_clean_found m.Trial.f_drift_messages
          m.Trial.f_repair_messages st.Ri_p2p.Fault.crashes
          st.Ri_p2p.Fault.update_drops st.Ri_p2p.Fault.update_dead
          st.Ri_p2p.Fault.update_delays st.Ri_p2p.Fault.timeouts
          st.Ri_p2p.Fault.retries_used st.Ri_p2p.Fault.fallbacks
          st.Ri_p2p.Fault.repairs st.Ri_p2p.Fault.partition_drops
          st.Ri_p2p.Fault.recoveries;
        print_gc_table ();
        `Ok ()
  in
  let trial_t =
    Arg.(value & opt int 0 & info [ "trial" ] ~docv:"I" ~doc:"Trial index.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a single query trial and print its metrics")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ topology_t $ search_t $ trial_t
       $ fault_loss_t $ fault_crash_t $ fault_delay_t $ fault_drift_t
       $ fault_partition_t $ fault_heal_waves_t $ fault_seed_t
       $ metrics_t $ trace_t $ trace_format_t $ decisions_t $ spans_t
       $ span_format_t $ serve_obs_t))

let topology_cmd =
  let run nodes seed topology =
    let cfg = Config.with_topology (base_config nodes seed) topology in
    let rng = Ri_util.Prng.create seed in
    let graph =
      match cfg.Config.topology with
      | Config.Tree ->
          Ri_topology.Tree_gen.random_labels rng ~n:nodes ~fanout:cfg.Config.fanout
      | Config.Tree_with_cycles { extra_links } ->
          Ri_topology.Cycle_gen.tree_with_cycles rng ~n:nodes
            ~fanout:cfg.Config.fanout ~extra_links
      | Config.Power_law_graph ->
          Ri_topology.Power_law.generate rng ~n:nodes
            ~exponent:cfg.Config.outdegree_exponent ()
    in
    let open Ri_topology in
    Printf.printf
      "topology=%s nodes=%d edges=%d\n\
       connected=%b cyclomatic=%d mean_degree=%.2f max_degree=%d\n\
       avg_path_length=%.2f power_law_exponent_estimate=%.2f\n"
      (Config.topology_name cfg.Config.topology)
      (Graph.n graph) (Graph.edge_count graph) (Graph.is_connected graph)
      (Metrics.cyclomatic_number graph)
      (Metrics.mean_degree graph) (Metrics.max_degree graph)
      (Metrics.average_path_length ~samples:16 rng graph)
      (Metrics.estimated_power_law_exponent graph);
    Printf.printf "degree histogram (degree: nodes):";
    List.iter
      (fun (d, c) -> Printf.printf " %d:%d" d c)
      (Metrics.degree_histogram graph);
    print_newline ()
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate an overlay and print its shape statistics")
    Term.(const run $ nodes_t $ seed_t $ topology_t)

let update_cmd =
  let run nodes seed topology search trial metrics trace fmt decisions spans
      span_fmt serve =
    let cfg = base_config nodes seed in
    let cfg = Config.with_topology cfg topology in
    let cfg = Config.with_search cfg (search_of cfg search) in
    match Config.validate cfg with
    | Error msg -> `Error (false, msg)
    | Ok () ->
        let m =
          with_obs ~serve ~spans ~span_fmt metrics trace fmt decisions
            (fun () -> Trial.run_update cfg ~trial)
        in
        Printf.printf
          "search=%s topology=%s nodes=%d trial=%d\n\
           update_messages=%d bytes=%.0f wire_bytes=%d\n"
          (Config.search_name cfg.Config.search)
          (Config.topology_name cfg.Config.topology)
          nodes trial m.Trial.update_messages m.Trial.update_bytes
          m.Trial.update_wire_bytes;
        print_gc_table ();
        `Ok ()
  in
  let trial_t =
    Arg.(value & opt int 0 & info [ "trial" ] ~docv:"I" ~doc:"Trial index.")
  in
  Cmd.v
    (Cmd.info "update" ~doc:"Run a single update trial and print its cost")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ topology_t $ search_t $ trial_t
       $ metrics_t $ trace_t $ trace_format_t $ decisions_t $ spans_t
       $ span_format_t $ serve_obs_t))

let scale_cmd =
  let sizes_t =
    let doc =
      "Comma-separated network sizes to sweep.  Defaults to \
       2000,10000,50000,100000 capped at $(b,--nodes); pass explicit \
       sizes to override the cap."
    in
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "sizes" ] ~docv:"N,N,.." ~doc)
  in
  let json_t =
    let doc = "Also write the sweep's points as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let big_t =
    let doc =
      "Sweep the million-node plane (100000, 250000, 500000, 1000000 \
       nodes) instead of the default sizes.  A $(b,--nodes) that \
       reaches into the plane trims the sweep to the sizes it covers."
    in
    Arg.(value & flag & info [ "big" ] ~doc)
  in
  let compress_t =
    let doc =
      "Also measure the quantized (bit-packed) rowstore at $(docv) bits \
       per cell and report the accuracy/size tradeoff against the exact \
       store."
    in
    Arg.(
      value
      & opt ~vopt:(Some 8) (some int) None
      & info [ "compress" ] ~docv:"BITS" ~doc)
  in
  let snapshot_t =
    let doc =
      "Time a snapshot save/load round trip per size; files land in \
       $(docv) as scale_<nodes>.risnap."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"DIR" ~doc)
  in
  let par_compare_t =
    let doc =
      "Additionally time a cache-cold converged build on the process \
       pool and on one core (the intra-trial parallelism speedup)."
    in
    Arg.(value & flag & info [ "par-compare" ] ~doc)
  in
  let run nodes seed trials rel_error sizes json big compress snapshot
      par_compare jobs metrics trace fmt decisions spans span_fmt serve =
    apply_jobs jobs;
    let base = base_config nodes seed in
    let spec = spec_of trials rel_error in
    let sizes =
      match (sizes, big) with
      | Some _, _ -> sizes
      | None, true -> (
          (* A --nodes below the plane's smallest size is the shared
             default, not a cap on a sweep it cannot reach. *)
          match
            List.filter (fun s -> s <= nodes) Ri_experiments.Fig_scale.big_sizes
          with
          | [] -> Some Ri_experiments.Fig_scale.big_sizes
          | s -> Some s)
      | None, false -> None
    in
    let opts =
      {
        Ri_experiments.Fig_scale.o_compress = compress;
        o_snapshot = snapshot;
        o_par_compare = par_compare;
      }
    in
    let swept =
      with_obs ~serve ~spans ~span_fmt metrics trace fmt decisions (fun () ->
          try Ok (Ri_experiments.Fig_scale.sweep ?sizes ~opts ~base ~spec ())
          with Invalid_argument msg -> Error msg)
    in
    match swept with
    | Error msg -> `Error (false, msg)
    | Ok points ->
        Ri_experiments.Report.print
          (Ri_experiments.Fig_scale.report_of points);
        if compress <> None then
          Ri_experiments.Report.print
            (Ri_experiments.Fig_scale.compress_report_of points);
        Printf.printf "%s\n%s\n" (Telemetry.cache_line ())
          (Telemetry.pool_line ());
        print_gc_table ();
        (match json with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            Printf.fprintf oc "%s\n"
              (Ri_experiments.Fig_scale.json_of points);
            close_out oc;
            Printf.printf "json written to %s\n" file);
        (* A sweep that measures zero throughput means the harness broke
           (division guarded to 0., not the network being slow) — make
           CI's scale-smoke step fail loudly. *)
        if
          List.exists
            (fun p -> p.Ri_experiments.Fig_scale.p_queries_per_s <= 0.)
            points
        then `Error (false, "scale sweep measured zero queries/sec")
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Sweep network sizes and report build times, queries/sec, \
          update-waves/sec, wire bytes, RI bytes per node, heap and RSS; \
          optionally compressed-store, snapshot and parallel-speedup \
          measurements")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ trials_t $ rel_error_t $ sizes_t
       $ json_t $ big_t $ compress_t $ snapshot_t $ par_compare_t $ jobs_t
       $ metrics_t $ trace_t $ trace_format_t $ decisions_t $ spans_t
       $ span_format_t $ serve_obs_t))

let traffic_cmd =
  let module T = Ri_experiments.Traffic in
  let d = T.default_opts in
  let qps_t =
    let doc =
      "Comma-separated offered arrival rates (queries/sec) to sweep, \
       each > 0.  The report marks the first rate whose drain overruns \
       the arrival window — the saturation knee."
    in
    Arg.(
      value
      & opt (list (float_conv ~min:1e-9 ~what:"--qps" ())) d.T.o_qps
      & info [ "qps" ] ~docv:"Q,Q,.." ~doc)
  in
  let duration_t =
    let doc = "Open-loop arrival window in seconds (> 0)." in
    Arg.(
      value
      & opt (float_conv ~min:1e-9 ~what:"--duration" ()) d.T.o_duration
      & info [ "duration" ] ~docv:"S" ~doc)
  in
  let service_rate_t =
    let doc = "Per-node service capacity in messages/sec (> 0)." in
    Arg.(
      value
      & opt (float_conv ~min:1e-9 ~what:"--service-rate" ()) d.T.o_service_rate
      & info [ "service-rate" ] ~docv:"R" ~doc)
  in
  let link_latency_t =
    let doc = "Per-hop propagation delay in milliseconds (>= 0)." in
    Arg.(
      value
      & opt (float_conv ~min:0. ~what:"--link-latency" ()) d.T.o_link_latency
      & info [ "link-latency" ] ~docv:"MS" ~doc)
  in
  let update_rate_t =
    let doc =
      "Interleave update waves at this Poisson rate (waves/sec, >= 0); \
       they ride the same mailboxes as the queries."
    in
    Arg.(
      value
      & opt (float_conv ~min:0. ~what:"--update-rate" ()) d.T.o_update_rate
      & info [ "update-rate" ] ~docv:"W" ~doc)
  in
  let zipf_t =
    let doc = "Topic-popularity skew exponent (0 = uniform)." in
    Arg.(
      value
      & opt (float_conv ~min:0. ~what:"--zipf" ()) d.T.o_zipf
      & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let shift_every_t =
    let doc =
      "Rotate the Zipf hot set by one topic every $(docv) draws \
       (0 = popularity never shifts)."
    in
    Arg.(value & opt int d.T.o_shift_every & info [ "shift-every" ] ~docv:"N" ~doc)
  in
  let trials_t =
    let doc = "Trials per QPS point (independent networks, merged sketches)." in
    Arg.(value & opt int d.T.o_trials & info [ "trials" ] ~docv:"T" ~doc)
  in
  let snapshot_t =
    let doc =
      "Load the converged network from this $(b,.risnap) file (saved by \
       $(b,risim scale --snapshot) at trial 0) instead of building it; \
       requires $(b,--trials) 1 and a matching configuration."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let json_t =
    let doc = "Also write the sweep's points and knee as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let hotspots_t =
    let doc =
      "Report the top $(docv) nodes per swept point by accumulated \
       queue-wait (with busy time, utilization, peak depth and \
       critical-hop counts); 0 hides the table."
    in
    Arg.(value & opt int d.T.o_hotspots & info [ "hotspots" ] ~docv:"K" ~doc)
  in
  let timeline_bins_t =
    let doc =
      "Number of logical-time bins in the $(b,--timeline) export (>= 1)."
    in
    Arg.(
      value
      & opt int d.T.o_timeline_bins
      & info [ "timeline-bins" ] ~docv:"N" ~doc)
  in
  let timeline_t =
    let doc =
      "Record the per-trial logical-time timeline — arrivals, \
       completions, aggregate mailbox backlog per bin — and write it to \
       $(docv) as JSONL.  Like $(b,--trace), timestamps are logical, so \
       the file is byte-identical at any $(b,--jobs) width."
    in
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE" ~doc)
  in
  let run nodes seed topology search qps duration service_rate link_latency
      update_rate zipf shift_every trials snapshot json hotspots timeline_bins
      timeline jobs metrics trace fmt decisions spans span_fmt serve =
    apply_jobs jobs;
    let cfg = base_config nodes seed in
    let cfg = Config.with_topology cfg topology in
    let cfg = Config.with_search cfg (search_of cfg search) in
    match Config.validate cfg with
    | Error msg -> `Error (false, msg)
    | Ok () -> (
        let opts =
          {
            T.o_qps = qps;
            o_duration = duration;
            o_service_rate = service_rate;
            o_link_latency = link_latency;
            o_update_rate = update_rate;
            o_zipf = zipf;
            o_shift_every = shift_every;
            o_trials = trials;
            o_snapshot = snapshot;
            o_hotspots = hotspots;
            o_timeline_bins = timeline_bins;
          }
        in
        let swept =
          with_obs ~serve ~spans ~span_fmt ~timeline metrics trace fmt
            decisions (fun () ->
              try Ok (T.sweep ~opts cfg ())
              with Invalid_argument msg | Sys_error msg -> Error msg)
        in
        match swept with
        | Error msg -> `Error (false, msg)
        | Ok points ->
            Ri_experiments.Report.print (T.report_of points);
            if opts.T.o_hotspots > 0 then
              Ri_experiments.Report.print (T.hotspots_report_of points);
            (match T.knee_of points with
            | Some q -> Printf.printf "saturation knee: ~%g QPS offered\n" q
            | None ->
                Printf.printf
                  "saturation knee: not reached within the sweep\n");
            Printf.printf "%s\n%s\n" (Telemetry.cache_line ())
              (Telemetry.pool_line ());
            print_gc_table ();
            (match json with
            | None -> ()
            | Some file ->
                let oc = open_out file in
                Printf.fprintf oc "%s\n" (T.json_of ~opts points);
                close_out oc;
                Printf.printf "json written to %s\n" file);
            (* Zero completions at any offered rate means the engine
               never drained a query — a harness bug, not a slow
               network; fail CI's traffic-smoke step loudly. *)
            if List.exists (fun p -> p.T.q_completed = 0) points then
              `Error (false, "traffic sweep completed zero queries")
            else `Ok ())
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Open-loop traffic sweep on the discrete-event engine: Poisson \
          arrivals over Zipf topics, thousands of in-flight queries \
          through per-node mailboxes and link latency; reports \
          p50/p95/p99 latency, goodput, queue depths and the saturation \
          knee")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ topology_t $ search_t $ qps_t
       $ duration_t $ service_rate_t $ link_latency_t $ update_rate_t $ zipf_t
       $ shift_every_t $ trials_t $ snapshot_t $ json_t $ hotspots_t
       $ timeline_bins_t $ timeline_t $ jobs_t $ metrics_t $ trace_t
       $ trace_format_t $ decisions_t $ spans_t $ span_format_t $ serve_obs_t))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_or_print ~what out text =
  match out with
  | None -> print_string text
  | Some file ->
      let oc = open_out file in
      output_string oc text;
      close_out oc;
      Printf.printf "%s written to %s\n" what file

let explain_cmd =
  let trial_t =
    Arg.(value & opt int 0 & info [ "trial" ] ~docv:"I" ~doc:"Trial index.")
  in
  let out_t =
    let doc = "Write the explanation to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let jsonl_t =
    let doc = "Also export the raw decision records to $(docv) as JSONL." in
    Arg.(value & opt (some string) None & info [ "decisions" ] ~docv:"FILE" ~doc)
  in
  let run nodes seed topology search trial loss crash delay drift out jsonl =
    let cfg = base_config nodes seed in
    let cfg = Config.with_topology cfg topology in
    let cfg = Config.with_search cfg (search_of cfg search) in
    let fault = fault_spec_of ~loss ~crash ~delay ~drift () in
    let cfg = { cfg with Config.fault } in
    match Config.validate cfg with
    | Error msg -> `Error (false, msg)
    | Ok () -> (
        match cfg.Config.search with
        | Config.Flooding _ ->
            `Error
              ( false,
                "flooding makes no per-neighbor routing decisions — nothing \
                 to explain (pick --search cri/hri/eri/no-ri)" )
        | Config.Ri _ | Config.No_ri ->
            (* Replay exactly the trial the figures would run, with the
               provenance recorder on for just this data point. *)
            Ri_obs.Decision.clear ();
            Ri_obs.Decision.start ();
            Ri_obs.Decision.next_unit ();
            (if Ri_p2p.Fault.active fault then
               ignore (Trial.run_query_faulty cfg ~trial)
             else ignore (Trial.run_query cfg ~trial));
            Ri_obs.Decision.stop ();
            let groups = Ri_obs.Decision.records () in
            write_or_print ~what:"explanation" out
              (Ri_experiments.Explain.render groups);
            (match jsonl with
            | None -> ()
            | Some file ->
                Ri_obs.Decision.export_jsonl file;
                Printf.printf "decisions written to %s\n" file);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay one query trial with provenance on and print an annotated \
          hop tree: per-decision candidate goodness vs oracle ground truth, \
          regret, staleness and update-wave lineage")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ topology_t $ search_t $ trial_t
       $ fault_loss_t $ fault_crash_t $ fault_delay_t $ fault_drift_t $ out_t
       $ jsonl_t))

let report_cmd =
  let bench_t =
    let doc =
      "BENCH_results.json to summarize (defaults to ./BENCH_results.json \
       when present)."
    in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"FILE" ~doc)
  in
  let baseline_t =
    let doc =
      "Committed bench baseline; adds the regression-gate table (threshold \
       from $(b,RI_BENCH_THRESHOLD), default 15%)."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let decisions_file_t =
    let doc = "Decision JSONL from $(b,--decisions); adds routing-quality tables." in
    Arg.(value & opt (some string) None & info [ "decisions" ] ~docv:"FILE" ~doc)
  in
  let metrics_file_t =
    let doc = "Prometheus dump from $(b,--metrics); adds the metric table." in
    Arg.(
      value & opt (some string) None & info [ "metrics-file" ] ~docv:"FILE" ~doc)
  in
  let traffic_file_t =
    let doc =
      "Sweep JSON from $(b,risim traffic --json); adds the knee chart, \
       the latency-decomposition stacked bars and the hotspot table.  \
       Parsed strictly: malformed rows fail the report with the \
       offending point named."
    in
    Arg.(value & opt (some string) None & info [ "traffic" ] ~docv:"FILE" ~doc)
  in
  let timeline_file_t =
    let doc =
      "Timeline JSONL from $(b,risim traffic --timeline); adds the \
       logical-time bin table (arrivals, completions, backlog depth)."
    in
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE" ~doc)
  in
  let out_t =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let html_t =
    Arg.(
      value & flag
      & info [ "html" ] ~doc:"Render a self-contained HTML page instead of Markdown.")
  in
  let run bench baseline decisions metrics_file traffic timeline out html =
    let module D = Ri_experiments.Dashboard in
    let tables = ref [] in
    let errors = ref [] in
    let add ts = tables := !tables @ ts in
    let with_input label path f =
      if not (Sys.file_exists path) then
        errors := Printf.sprintf "%s: %s does not exist" label path :: !errors
      else f (read_file path)
    in
    let bench =
      match bench with
      | Some _ -> bench
      | None ->
          if Sys.file_exists "BENCH_results.json" then
            Some "BENCH_results.json"
          else None
    in
    (match bench with
    | None -> ()
    | Some path ->
        with_input "--bench" path (fun text ->
            match Ri_util.Json.parse text with
            | Error e -> errors := Printf.sprintf "%s: %s" path e :: !errors
            | Ok j -> (
                add (D.of_bench j);
                match baseline with
                | None -> ()
                | Some bpath ->
                    with_input "--baseline" bpath (fun btext ->
                        match Ri_util.Json.parse btext with
                        | Error e ->
                            errors :=
                              Printf.sprintf "%s: %s" bpath e :: !errors
                        | Ok b -> (
                            let threshold =
                              Ri_util.Env.float "RI_BENCH_THRESHOLD"
                                Ri_experiments.Regress.default_threshold
                            in
                            match
                              Ri_experiments.Regress.compare_values ~threshold
                                ~gate_p99:(Ri_util.Env.bool "RI_BENCH_P99" false)
                                ~baseline:b ~results:j
                            with
                            | Error e -> errors := e :: !errors
                            | Ok o -> add [ D.of_regression o ])))));
    (match baseline with
    | Some _ when bench = None ->
        errors := "--baseline given without a --bench results file" :: !errors
    | _ -> ());
    (match decisions with
    | None -> ()
    | Some path ->
        with_input "--decisions" path (fun text ->
            match D.of_decisions text with
            | Some t -> add [ t ]
            | None ->
                errors :=
                  Printf.sprintf "%s: no decision records" path :: !errors));
    (match metrics_file with
    | None -> ()
    | Some path ->
        with_input "--metrics-file" path (fun text ->
            match D.of_metrics text with
            | Some t -> add [ t ]
            | None ->
                errors := Printf.sprintf "%s: no metrics" path :: !errors));
    (match traffic with
    | None -> ()
    | Some path ->
        with_input "--traffic" path (fun text ->
            match Ri_util.Json.parse text with
            | Error e -> errors := Printf.sprintf "%s: %s" path e :: !errors
            | Ok j -> (
                match D.of_traffic j with
                | Ok ts -> add ts
                | Error e ->
                    errors := Printf.sprintf "%s: %s" path e :: !errors)));
    (match timeline with
    | None -> ()
    | Some path ->
        with_input "--timeline" path (fun text ->
            match D.of_timeline text with
            | Ok t -> add [ t ]
            | Error e ->
                errors := Printf.sprintf "%s: %s" path e :: !errors));
    let title = "risim observability report" in
    let text =
      if html then D.render_html ~title !tables
      else D.render_markdown ~title !tables
    in
    write_or_print ~what:"report" out text;
    match List.rev !errors with
    | [] -> `Ok ()
    | es -> `Error (false, String.concat "; " es)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate run artifacts (bench results, decision provenance, \
          metrics, traffic sweeps and timelines) into a Markdown or HTML \
          dashboard, optionally with the bench regression gate against a \
          committed baseline")
    Term.(
      ret
        (const run $ bench_t $ baseline_t $ decisions_file_t $ metrics_file_t
       $ traffic_file_t $ timeline_file_t $ out_t $ html_t))

let chaos_cmd =
  let nodes_t =
    let doc = "Network size per schedule (kept small: every schedule builds \
               two networks — the chaotic one and its fault-free twin)." in
    Arg.(value & opt int 200 & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let schedules_t =
    let doc = "Number of seeded fault schedules to replay." in
    Arg.(value & opt int 50 & info [ "schedules" ] ~docv:"S" ~doc)
  in
  let steps_t =
    let doc = "Fault-injection steps per schedule." in
    Arg.(value & opt int 8 & info [ "steps" ] ~docv:"K" ~doc)
  in
  let schedule_t =
    let doc =
      "Replay a single schedule id (from a reported violation) instead of \
       the whole range."
    in
    Arg.(value & opt (some int) None & info [ "schedule" ] ~docv:"ID" ~doc)
  in
  let json_t =
    let doc = "Write the outcome (violations with replay coordinates) to \
               $(docv) as JSON." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let sabotage_t =
    let doc =
      "Self-test: deliberately corrupt one reconciled row after the \
       repairs finish, proving the fixpoint invariant catches a broken \
       reconciler (the run then $(i,must) report violations)."
    in
    Arg.(value & flag & info [ "sabotage" ] ~doc)
  in
  let run nodes seed schedules steps schedule json sabotage =
    let module C = Ri_experiments.Chaos in
    match
      try
        Ok (C.run ~sabotage ?only:schedule ~nodes ~schedules ~steps ~seed ())
      with Invalid_argument msg -> Error msg
    with
    | Error msg -> `Error (false, msg)
    | Ok o ->
        (match json with
        | Some path ->
            let oc = open_out path in
            output_string oc (C.to_json o);
            output_char oc '\n';
            close_out oc
        | None -> ());
        Printf.printf "chaos: %d schedules, %d steps, %d queries, %d violations\n"
          o.C.c_schedules o.C.c_steps o.C.c_queries
          (List.length o.C.c_violations);
        List.iter
          (fun v ->
            Printf.printf
              "VIOLATION invariant=%s seed=%d schedule=%d step=%d: %s\n"
              v.C.v_invariant v.C.v_seed v.C.v_schedule v.C.v_step v.C.v_detail)
          o.C.c_violations;
        if o.C.c_violations = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf
                "%d invariant violation(s); replay one with --schedule ID \
                 --seed %d"
                (List.length o.C.c_violations) seed )
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay deterministic fault schedules (crashes, recoveries, \
          partitions, content moves) against small tree networks and check \
          the recovery plane's invariants: exact reconvergence to the \
          fault-free fixpoint, no routing across an active cut, no \
          resurrection of dead nodes' rows, no post-recovery recall loss.  \
          Violations are replayable from their (seed, schedule) pair")
    Term.(
      ret
        (const run $ nodes_t $ seed_t $ schedules_t $ steps_t $ schedule_t
       $ json_t $ sabotage_t))

let json_verify_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSON file to validate.")
  in
  let jsonl_t =
    let doc =
      "Treat the file as JSONL: validate each non-empty line as a \
       standalone strict-JSON document (timeline, trace and decision \
       exports), reporting the first offending line."
    in
    Arg.(value & flag & info [ "jsonl" ] ~doc)
  in
  let run file jsonl =
    if not (Sys.file_exists file) then
      `Error (false, file ^ ": no such file")
    else if jsonl then begin
      let bad = ref None in
      let count = ref 0 in
      String.split_on_char '\n' (read_file file)
      |> List.iteri (fun i line ->
             if !bad = None && String.trim line <> "" then begin
               incr count;
               match Ri_util.Json.parse line with
               | Ok _ -> ()
               | Error e ->
                   bad := Some (Printf.sprintf "%s: line %d: %s" file (i + 1) e)
             end);
      match !bad with
      | Some e -> `Error (false, e)
      | None ->
          Printf.printf "%s: %d valid JSONL records\n" file !count;
          `Ok ()
    end
    else
      match Ri_util.Json.parse (read_file file) with
      | Ok _ ->
          Printf.printf "%s: valid JSON\n" file;
          `Ok ()
      | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
  in
  Cmd.v
    (Cmd.info "json-verify"
       ~doc:
         "Validate a file against the simulator's strict RFC 8259 JSON \
          parser — what CI runs over the /progress endpoint's output and \
          exported artifacts; $(b,--jsonl) validates line-delimited \
          exports record by record")
    Term.(ret (const run $ file_t $ jsonl_t))

let () =
  Printexc.record_backtrace true;
  let doc = "Routing Indices for Peer-to-Peer Systems - simulator" in
  let info = Cmd.info "risim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            params_cmd;
            run_cmd;
            all_cmd;
            query_cmd;
            update_cmd;
            topology_cmd;
            scale_cmd;
            traffic_cmd;
            explain_cmd;
            report_cmd;
            chaos_cmd;
            json_verify_cmd;
          ]))
