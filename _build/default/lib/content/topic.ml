type id = int

type t = { names : string array }

let make ?names c =
  if c <= 0 then invalid_arg "Topic.make: need a positive topic count";
  let names =
    match names with
    | None -> Array.init c (Printf.sprintf "t%d")
    | Some l ->
        if List.length l <> c then
          invalid_arg "Topic.make: name list length mismatch";
        Array.of_list l
  in
  { names }

let of_names l = make ~names:l (List.length l)

let count t = Array.length t.names

let check t id =
  if id < 0 || id >= count t then invalid_arg "Topic: id out of range"

let name t id =
  check t id;
  t.names.(id)

let find t n = Array.find_index (String.equal n) t.names

let all t = List.init (count t) Fun.id

let paper_example = of_names [ "databases"; "networks"; "theory"; "languages" ]
