(** Topic universe.

    In the paper's simplified content model, "documents are on zero or
    more topics, and queries request documents on particular topics"
    (Section 4).  A universe fixes the number of topics of interest [c]
    and gives them stable names; topics are referenced by dense integer
    ids so count vectors can be plain arrays. *)

type id = int
(** Topic identifier, in [\[0, count u)]. *)

type t
(** A topic universe. *)

val make : ?names:string list -> int -> t
(** [make c] is a universe of [c] topics named ["t0" .. "t(c-1)"], or
    with the given [names] (whose length must then be [c]).
    @raise Invalid_argument if [c <= 0] or the name list has the wrong
    length. *)

val of_names : string list -> t
(** Universe with exactly these topic names. *)

val count : t -> int

val name : t -> id -> string
(** @raise Invalid_argument on an out-of-range id. *)

val find : t -> string -> id option
(** Look a topic up by name. *)

val check : t -> id -> unit
(** @raise Invalid_argument if the id is out of range. *)

val all : t -> id list

val paper_example : t
(** The four-topic universe of the paper's running example:
    databases, networks, theory, languages. *)
