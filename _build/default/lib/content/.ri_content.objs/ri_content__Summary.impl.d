lib/content/summary.ml: Array Float Format List Printf Ri_util String Vecf
