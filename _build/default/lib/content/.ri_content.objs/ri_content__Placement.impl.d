lib/content/placement.ml: Array Float Fun List Prng Ri_util Sampling Summary Topic
