lib/content/local_index.ml: Array Document Hashtbl List Summary Topic
