lib/content/document.mli: Format Topic
