lib/content/placement.mli: Ri_util Summary Topic
