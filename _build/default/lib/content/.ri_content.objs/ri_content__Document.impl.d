lib/content/document.ml: Format Int List Option Printf String Topic
