lib/content/taxonomy.mli: Compression Format Summary Topic
