lib/content/topic.mli:
