lib/content/taxonomy.ml: Array Compression Format List String Topic
