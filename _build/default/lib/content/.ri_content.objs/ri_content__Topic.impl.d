lib/content/topic.ml: Array Fun List Printf String
