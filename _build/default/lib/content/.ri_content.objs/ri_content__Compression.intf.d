lib/content/compression.mli: Ri_util Summary Topic
