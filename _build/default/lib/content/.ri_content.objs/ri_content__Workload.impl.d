lib/content/workload.ml: Array Format List Prng Ri_util Sampling String Topic
