lib/content/summary.mli: Format Topic
