lib/content/compression.ml: Array Float List Prng Ri_util Summary
