lib/content/local_index.mli: Document Summary Topic
