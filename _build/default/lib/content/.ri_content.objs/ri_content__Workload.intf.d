lib/content/workload.mli: Format Ri_util Topic
