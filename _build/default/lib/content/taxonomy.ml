type t = {
  leaves : Topic.t;
  categories : Topic.t;
  assignment : int array;  (* leaf id -> category id *)
}

let of_groups groups =
  if groups = [] then invalid_arg "Taxonomy.of_groups: no groups";
  List.iter
    (fun (_, subs) ->
      if subs = [] then invalid_arg "Taxonomy.of_groups: empty group")
    groups;
  let category_names = List.map fst groups in
  let leaf_names = List.concat_map snd groups in
  let distinct = List.sort_uniq compare leaf_names in
  if List.length distinct <> List.length leaf_names then
    invalid_arg "Taxonomy.of_groups: duplicated sub-topic";
  let assignment =
    List.concat
      (List.mapi (fun cat (_, subs) -> List.map (fun _ -> cat) subs) groups)
  in
  {
    leaves = Topic.of_names leaf_names;
    categories = Topic.of_names category_names;
    assignment = Array.of_list assignment;
  }

let leaves t = t.leaves

let categories t = t.categories

let category_of t leaf =
  Topic.check t.leaves leaf;
  t.assignment.(leaf)

let leaves_of t cat =
  Topic.check t.categories cat;
  List.filter (fun leaf -> t.assignment.(leaf) = cat) (Topic.all t.leaves)

let compression ?(mode = Compression.Overcount) t =
  Compression.grouped ~assignment:t.assignment ~mode

let summarize t s = Compression.project_summary (compression t) s

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun cat ->
      Format.fprintf ppf "%s <- %s@ " (Topic.name t.categories cat)
        (String.concat ", "
           (List.map (Topic.name t.leaves) (leaves_of t cat))))
    (Topic.all t.categories);
  Format.fprintf ppf "@]"
