open Ri_util

type query = { topics : Topic.id list; stop : int }

let query ~topics ~stop =
  if topics = [] then invalid_arg "Workload.query: empty topic list";
  if List.exists (fun t -> t < 0) topics then
    invalid_arg "Workload.query: negative topic id";
  if stop <= 0 then invalid_arg "Workload.query: stop must be positive";
  { topics = List.sort_uniq compare topics; stop }

let single t ~stop = query ~topics:[ t ] ~stop

let random_single rng universe ~stop =
  single (Prng.int rng (Topic.count universe)) ~stop

let random_conjunction rng universe ~arity ~stop =
  let c = Topic.count universe in
  if arity <= 0 || arity > c then
    invalid_arg "Workload.random_conjunction: bad arity";
  let chosen = Sampling.choose_distinct rng ~k:arity ~n:c in
  query ~topics:(Array.to_list chosen) ~stop

let pp universe ppf q =
  Format.fprintf ppf "@[<h>%s (stop=%d)@]"
    (String.concat " AND " (List.map (Topic.name universe) q.topics))
    q.stop
