(** Document-result placement.

    Appendix A: "For simplicity, we assume that all queries have the same
    number of results (QR)" — 3125 in the base configuration, 5.2% of
    60000 nodes, the fraction of Gnutella nodes observed to hold an
    answer for a typical query.  Parameter D places those results either
    {e uniformly} or with an {e 80/20 bias} ("assigns uniformly 80% of
    the document results to 20% of the nodes, and the remaining 20% of
    the documents to the remaining 80% of the nodes").

    Besides the query results, nodes hold background documents on other
    topics so routing indices have realistic non-zero entries
    everywhere.  Background documents never match the query (they are
    drawn avoiding at least one query topic), keeping the ground-truth
    result count exact. *)

type distribution =
  | Uniform
  | Biased of { doc_share : float; node_share : float }
      (** [doc_share] of the results on [node_share] of the nodes *)

val eighty_twenty : distribution
(** [Biased { doc_share = 0.8; node_share = 0.2 }], the paper's base
    document distribution. *)

type t = {
  matches : int array;  (** per node, documents matching the query *)
  summaries : Summary.t array;  (** per node, local-index summary *)
  total_matches : int;  (** [QR], the sum of [matches] *)
}

val distribute :
  Ri_util.Prng.t ->
  universe:Topic.t ->
  n:int ->
  query_topics:Topic.id list ->
  results:int ->
  distribution:distribution ->
  ?background_per_node:float ->
  ?topics_per_background_doc:int ->
  unit ->
  t
(** [distribute rng ~universe ~n ~query_topics ~results ~distribution ()]
    places [results] matching documents (each carrying exactly the query
    topics) over [n] nodes according to [distribution], and adds an
    average of [background_per_node] (default [2.0]) non-matching
    documents per node, each on [topics_per_background_doc] (default [2])
    topics.  @raise Invalid_argument on a non-positive [n], negative
    [results], an empty or out-of-range query, or a [Biased] distribution
    with shares outside (0, 1). *)

val node_summary : t -> int -> Summary.t

val matches_at : t -> int -> int
