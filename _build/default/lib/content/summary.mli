(** Count-vector summaries of document collections.

    A summary is one row of a compound routing index (Figure 3 of the
    paper): the number of documents in some collection, total and per
    topic.  Summaries are also what nodes exchange when creating and
    maintaining RIs — "node A aggregates its RI and sends it to D"
    (Section 4.2) — so they support the vector arithmetic those
    algorithms need.  Counts are floats because exponentially aggregated
    RIs store regular-tree-discounted values (Section 6.2). *)

type t = {
  total : float;  (** number of documents in the collection *)
  by_topic : float array;  (** per-topic document counts *)
}

val zero : topics:int -> t

val make : total:float -> by_topic:float array -> t
(** @raise Invalid_argument if [total] or any count is negative. *)

val of_counts : total:int -> by_topic:int array -> t

val topics : t -> int
(** Width of the topic vector. *)

val is_zero : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** Differences are clamped at zero: a summary can never report negative
    documents (undercounting summaries are legitimate, negative ones are
    not). *)

val scale : t -> float -> t

val sum : t list -> topics:int -> t

val get : t -> Topic.id -> float

val selectivity : t -> Topic.id -> float
(** [get s i /. total s], the fraction of the collection on topic [i];
    [0.] for an empty collection. *)

val max_rel_diff : t -> t -> float
(** Largest relative change across total and per-topic entries, the
    "significant enough" test behind the paper's [minUpdate] knob. *)

val euclidean_distance : t -> t -> float
(** Straight-line distance over (total, per-topic) vectors; the paper
    suggests this as an alternative update-significance criterion for
    exponential RIs (Section 6.2). *)

val approx_equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
