(** Documents.

    A document carries a set of topics (possibly empty — "documents are
    on zero or more topics", Section 4) and an opaque title for the
    example applications.  Equality and hashing are by id. *)

type t = private {
  id : int;
  title : string;
  topics : Topic.id list;  (** sorted, duplicate-free *)
}

val make : id:int -> ?title:string -> topics:Topic.id list -> unit -> t
(** Topics are sorted and deduplicated.  [title] defaults to
    ["doc<id>"].  @raise Invalid_argument on a negative id or topic. *)

val has_topic : t -> Topic.id -> bool

val matches : t -> Topic.id list -> bool
(** [matches d q] is [true] when [d] carries {e every} topic in [q]
    (queries are conjunctions of subject topics, Section 4).  The empty
    query matches every document. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
