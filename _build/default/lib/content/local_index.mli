(** Per-node document database with a local index.

    "Each node has a local document database that can be accessed through
    a local index.  The local index receives content queries ... and
    returns pointers to the documents with the requested content"
    (Section 3).  The index maintains per-topic counts incrementally, so
    {!summary} — the [Summary()] function of the RI creation algorithm,
    Figure 6 — is O(topics). *)

type t

val create : Topic.t -> t

val universe : t -> Topic.t

val add : t -> Document.t -> unit
(** @raise Invalid_argument if a document with the same id is already
    stored or the document mentions a topic outside this universe. *)

val remove : t -> int -> Document.t option
(** Remove by document id; [None] if absent. *)

val mem : t -> int -> bool

val size : t -> int
(** Number of stored documents. *)

val find : t -> int -> Document.t option

val search : t -> Topic.id list -> Document.t list
(** All documents matching the conjunctive topic query, in id order. *)

val count_matching : t -> Topic.id list -> int
(** [List.length (search t q)] without building the list. *)

val summary : t -> Summary.t
(** Total and per-topic counts of the stored documents.  A document on
    [k] topics contributes 1 to the total and 1 to each of its [k] topic
    counts, mirroring the paper's Figure 3 convention. *)

val documents : t -> Document.t list
(** All documents, in id order. *)
