type t = {
  universe : Topic.t;
  docs : (int, Document.t) Hashtbl.t;
  counts : int array;  (* per-topic document counts *)
  mutable total : int;
}

let create universe =
  {
    universe;
    docs = Hashtbl.create 16;
    counts = Array.make (Topic.count universe) 0;
    total = 0;
  }

let universe t = t.universe

let add t (d : Document.t) =
  if Hashtbl.mem t.docs d.id then
    invalid_arg "Local_index.add: duplicate document id";
  List.iter (Topic.check t.universe) d.topics;
  Hashtbl.add t.docs d.id d;
  List.iter (fun topic -> t.counts.(topic) <- t.counts.(topic) + 1) d.topics;
  t.total <- t.total + 1

let remove t id =
  match Hashtbl.find_opt t.docs id with
  | None -> None
  | Some d ->
      Hashtbl.remove t.docs id;
      List.iter (fun topic -> t.counts.(topic) <- t.counts.(topic) - 1) d.topics;
      t.total <- t.total - 1;
      Some d

let mem t id = Hashtbl.mem t.docs id

let size t = t.total

let find t id = Hashtbl.find_opt t.docs id

let documents t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.docs []
  |> List.sort Document.compare

let search t q =
  List.iter (Topic.check t.universe) q;
  Hashtbl.fold
    (fun _ d acc -> if Document.matches d q then d :: acc else acc)
    t.docs []
  |> List.sort Document.compare

let count_matching t q =
  List.iter (Topic.check t.universe) q;
  Hashtbl.fold
    (fun _ d acc -> if Document.matches d q then acc + 1 else acc)
    t.docs 0

let summary t = Summary.of_counts ~total:t.total ~by_topic:t.counts
