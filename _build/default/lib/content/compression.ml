open Ri_util

type error_kind = Overcount | Undercount | Mixed

type t =
  | Exact
  | Buckets of { buckets : int; mode : error_kind }
  | Grouped of { assignment : int array; groups : int; mode : error_kind }

let exact = Exact

let grouped ~assignment ~mode =
  if Array.length assignment = 0 then
    invalid_arg "Compression.grouped: empty assignment";
  if Array.exists (fun g -> g < 0) assignment then
    invalid_arg "Compression.grouped: negative group";
  let groups = 1 + Array.fold_left max 0 assignment in
  Grouped { assignment = Array.copy assignment; groups; mode }

let of_ratio ~topics ~ratio ~mode =
  if ratio < 0. || ratio >= 1. then
    invalid_arg "Compression.of_ratio: ratio must be in [0, 1)";
  if topics <= 0 then invalid_arg "Compression.of_ratio: bad topic count";
  if ratio = 0. then Exact
  else
    let buckets =
      max 1 (int_of_float (Float.round (float_of_int topics *. (1. -. ratio))))
    in
    if buckets >= topics then Exact else Buckets { buckets; mode }

let ratio ~topics = function
  | Exact -> 0.
  | Buckets { buckets; _ } ->
      1. -. (float_of_int buckets /. float_of_int topics)
  | Grouped { groups; _ } -> 1. -. (float_of_int groups /. float_of_int topics)

let width ~topics = function
  | Exact -> topics
  | Buckets { buckets; _ } -> buckets
  | Grouped { groups; _ } -> groups

let project_topic t topic =
  match t with
  | Exact -> topic
  | Buckets { buckets; _ } -> topic mod buckets
  | Grouped { assignment; _ } ->
      if topic < 0 || topic >= Array.length assignment then
        invalid_arg "Compression.project_topic: topic out of range";
      assignment.(topic)

let consolidate_groups ~groups ~assign ~mode (s : Summary.t) =
  let members = Array.make groups [] in
  Array.iteri
    (fun topic v ->
      let b = assign topic in
      members.(b) <- v :: members.(b))
    s.Summary.by_topic;
  let consolidate vs =
    match (vs, mode) with
    | [], _ -> 0.
    | _, Overcount -> List.fold_left ( +. ) 0. vs
    | v :: rest, Undercount -> List.fold_left Float.min v rest
    | _, Mixed -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
  in
  Summary.make ~total:s.Summary.total ~by_topic:(Array.map consolidate members)

let project_summary t (s : Summary.t) =
  match t with
  | Exact -> s
  | Buckets { buckets; mode } ->
      consolidate_groups ~groups:buckets ~assign:(fun topic -> topic mod buckets)
        ~mode s
  | Grouped { assignment; groups; mode } ->
      consolidate_groups ~groups ~assign:(fun topic -> assignment.(topic)) ~mode s

let perturb rng ~relative_stddev ~kind (s : Summary.t) =
  let shape e =
    match kind with
    | Overcount -> Float.abs e
    | Undercount -> -.Float.abs e
    | Mixed -> e
  in
  let by_topic =
    Array.map
      (fun x ->
        if x = 0. then 0.
        else
          let e = shape (Prng.gaussian rng ~mean:0. ~stddev:(relative_stddev *. x)) in
          Float.max 0. (x +. e))
      s.by_topic
  in
  let largest = Array.fold_left Float.max 0. by_topic in
  let total =
    let e =
      if s.total = 0. then 0.
      else shape (Prng.gaussian rng ~mean:0. ~stddev:(relative_stddev *. s.total))
    in
    Float.max largest (Float.max 0. (s.total +. e))
  in
  Summary.make ~total ~by_topic
