(** Topic taxonomies — semantic index summarization.

    Section 4 of the paper: "a summarization that groups several
    subtopics into a single topic (e.g., 'indices', 'recovery', and
    'SQL' into 'databases') may introduce overcounts ... a query for
    documents on 'SQL' will be converted into a query for documents on
    'databases', making us believe that there are many documents on
    'SQL' whereas in reality there may be few or even none."

    A taxonomy maps a fine-grained leaf universe (the sub-topics local
    indices classify by) onto a coarse category universe (what the
    routing indices carry).  {!compression} plugs the roll-up into the
    RI machinery as a {!Compression.Grouped} projection, so leaf queries
    are converted to category queries exactly as the paper describes —
    overcounts and all. *)

type t

val of_groups : (string * string list) list -> t
(** [of_groups [("databases", ["indices"; "recovery"; "SQL"]); ...]]
    builds both universes: one category per group, one leaf per listed
    sub-topic.  Category and leaf ids follow list order.
    @raise Invalid_argument on an empty group list, an empty group, or
    a duplicated sub-topic name. *)

val leaves : t -> Topic.t
(** The fine-grained universe documents are tagged with. *)

val categories : t -> Topic.t
(** The coarse universe routing indices carry. *)

val category_of : t -> Topic.id -> Topic.id
(** Category holding a leaf topic.
    @raise Invalid_argument on an out-of-range leaf. *)

val leaves_of : t -> Topic.id -> Topic.id list
(** Leaf topics of a category, in id order. *)

val summarize : t -> Summary.t -> Summary.t
(** Roll a leaf-level summary up to category level (sums member counts,
    the overcounting consolidation of the paper's example). *)

val compression : ?mode:Compression.error_kind -> t -> Compression.t
(** The taxonomy as an index-compression policy for
    {!Ri_p2p.Network.create} (default [mode] = [Overcount]: counts in a
    category are the sums of its sub-topics). *)

val pp : Format.formatter -> t -> unit
