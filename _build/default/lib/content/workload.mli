(** Queries and query workloads.

    "Users submit queries to any node along with a stop condition (e.g.,
    the desired number of results)" (Section 3.1).  A query is a
    conjunction of subject topics plus that stop condition. *)

type query = {
  topics : Topic.id list;  (** conjunction of subject topics, non-empty *)
  stop : int;  (** desired number of results, [StopCondition] *)
}

val query : topics:Topic.id list -> stop:int -> query
(** @raise Invalid_argument on an empty topic list, a negative topic id
    or a non-positive stop condition. *)

val single : Topic.id -> stop:int -> query

val random_single : Ri_util.Prng.t -> Topic.t -> stop:int -> query
(** Query on one uniformly chosen topic. *)

val random_conjunction :
  Ri_util.Prng.t -> Topic.t -> arity:int -> stop:int -> query
(** Query on [arity] distinct uniformly chosen topics. *)

val pp : Topic.t -> Format.formatter -> query -> unit
