type t = { id : int; title : string; topics : Topic.id list }

let make ~id ?title ~topics () =
  if id < 0 then invalid_arg "Document.make: negative id";
  if List.exists (fun t -> t < 0) topics then
    invalid_arg "Document.make: negative topic id";
  let topics = List.sort_uniq compare topics in
  let title = Option.value title ~default:(Printf.sprintf "doc%d" id) in
  { id; title; topics }

let has_topic d t = List.mem t d.topics

let matches d q = List.for_all (has_topic d) q

let compare a b = Int.compare a.id b.id

let pp ppf d =
  Format.fprintf ppf "#%d %S [%s]" d.id d.title
    (String.concat "," (List.map string_of_int d.topics))
