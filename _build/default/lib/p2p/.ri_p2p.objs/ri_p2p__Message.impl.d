lib/p2p/message.ml: Format
