lib/p2p/query.mli: Message Network Ri_content Ri_util
