lib/p2p/network.mli: Ri_content Ri_core Ri_topology Ri_util
