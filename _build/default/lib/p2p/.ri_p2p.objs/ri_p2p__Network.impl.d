lib/p2p/network.ml: Array Compression List Local_index Placement Prng Queue Ri_content Ri_core Ri_topology Ri_util Scheme Summary Topic
