lib/p2p/query.ml: Array Hashtbl List Message Network Option Prng Queue Ri_content Ri_core Ri_util Scheme Seq
