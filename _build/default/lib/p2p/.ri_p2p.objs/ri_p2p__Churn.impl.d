lib/p2p/churn.ml: Array List Message Network Queue Ri_core Scheme Update
