lib/p2p/update.mli: Message Network Ri_content Ri_core
