lib/p2p/churn.mli: Message Network
