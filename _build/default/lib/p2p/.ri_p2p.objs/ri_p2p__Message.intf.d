lib/p2p/message.mli: Format
