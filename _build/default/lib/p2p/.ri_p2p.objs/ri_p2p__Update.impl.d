lib/p2p/update.ml: Hashtbl List Message Network Queue Ri_content Ri_core Scheme
