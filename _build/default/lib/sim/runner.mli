(** Repeat-until-confident trial driver.

    "The simulator iterates over different network topologies and
    document result locations, and outputs the average number of
    messages necessary to perform the operation plus a confidence
    interval.  All results were computed with at least a 95% confidence
    interval of having a relative error of 10% or less" (Section 8.2). *)

type spec = {
  min_trials : int;
  max_trials : int;
  target_rel_error : float;  (** CI half-width over mean, e.g. 0.1 *)
}

val default_spec : spec
(** 5 to 30 trials, 10% target relative error. *)

val spec_of_env : unit -> spec
(** [default_spec], with [max_trials] overridden by the [RI_TRIALS]
    environment variable when set (useful to trade precision for bench
    wall-clock). *)

val run : spec -> (trial:int -> float) -> Ri_util.Stats.summary
(** Call the trial function with [trial = 0, 1, ...] until the 95% CI is
    within the target relative error (and [min_trials] reached) or
    [max_trials] have run; summarize the observations. *)

val mean : spec -> (trial:int -> float) -> float
