open Ri_util

type spec = { min_trials : int; max_trials : int; target_rel_error : float }

let default_spec = { min_trials = 5; max_trials = 30; target_rel_error = 0.1 }

let spec_of_env () =
  match Sys.getenv_opt "RI_TRIALS" with
  | None -> default_spec
  | Some s -> (
      match int_of_string_opt s with
      | Some m when m >= 1 ->
          { default_spec with max_trials = m; min_trials = min default_spec.min_trials m }
      | _ -> default_spec)

let run spec f =
  if spec.min_trials < 1 || spec.max_trials < spec.min_trials then
    invalid_arg "Runner.run: bad trial bounds";
  let acc = Stats.Acc.create () in
  let rec go trial =
    if trial >= spec.max_trials then ()
    else begin
      Stats.Acc.add acc (f ~trial);
      if
        Stats.Acc.count acc >= spec.min_trials
        && Stats.converged ~target:spec.target_rel_error
             ~min_obs:spec.min_trials acc
      then ()
      else go (trial + 1)
    end
  in
  go 0;
  Stats.summarize acc

let mean spec f = (run spec f).Stats.mean
