lib/sim/config.ml: Compression Float Format Message Network Placement Printf Ri_content Ri_core Ri_p2p Scheme
