lib/sim/trial.mli: Config Ri_content Ri_p2p Ri_util
