lib/sim/trial.ml: Array Config Cycle_gen Float Message Network Placement Power_law Prng Query Ri_content Ri_p2p Ri_topology Ri_util Summary Topic Tree_gen Update Workload
