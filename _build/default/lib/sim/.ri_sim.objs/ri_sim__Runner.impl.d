lib/sim/runner.ml: Ri_util Stats Sys
