lib/sim/config.mli: Format Ri_content Ri_core Ri_p2p
