lib/sim/runner.mli: Ri_util
