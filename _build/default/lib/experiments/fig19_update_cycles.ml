(** Figure 19 — "Updates and Cycle Policy".

    ERI update cost as links are added to a tree, under both cycle
    policies, propagating "all updates that may change the current index
    value by more than 1%".  The paper: "the number of messages
    increases as we add more links, but in both cases the increase is
    modest (although the increase is more rapid when cycles are
    ignored)". *)

open Ri_sim

let id = "fig19"

let title = "ERI update cost vs. added links and cycle policy"

let paper_claim =
  "ERI update cost rises only modestly with added links; the no-op \
   (ignore) policy rises faster than detect-and-recover."

let added_links = [ 1; 10; 100; 1000; 10000 ]

let policies =
  [ ("No-op", Ri_p2p.Network.No_op); ("Detect", Ri_p2p.Network.Detect_recover) ]

let run ~base ~spec =
  let base = Config.with_search base (Config.Ri (Config.eri base)) in
  let rows =
    List.map
      (fun extra ->
        (* Link counts are quoted at the paper's 60000-node scale and
           translated to the configured size, preserving cycle density. *)
        let extra_links = Config.scaled_links base ~paper_links:extra in
        Report.cell_number ~decimals:0 (float_of_int extra)
        :: List.map
             (fun (_, policy) ->
               let cfg =
                 {
                   base with
                   Config.topology = Config.Tree_with_cycles { extra_links };
                   cycle_policy = policy;
                 }
               in
               Report.cell_mean (Common.update_messages cfg ~spec))
             policies)
      added_links
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Added Links (60k scale)" :: List.map fst policies)
    ~rows
