(** Figure 16 — "Effect of Cycles" on query cost.

    Random links are added to a tree; ERI queries run under the
    detect-and-recover and under the no-op (ignore) cycle policies.  The
    paper: messages increase with added links — mildly under detect,
    significantly under ignore — and then {e drop} once many links exist
    because the added connectivity shortens routes. *)

open Ri_sim

let id = "fig16"

let title = "Effect of cycles on ERI query cost"

let paper_claim =
  "Added links first increase message counts (slightly under \
   detect-and-recover, markedly under no-op/ignore), then a large number \
   of links shortens routes and the counts drop."

let added_links = [ 0; 1; 10; 100; 1000 ]

let policies =
  [ ("Detect", Ri_p2p.Network.Detect_recover); ("Ignore", Ri_p2p.Network.No_op) ]

let run ~base ~spec =
  let base = Config.with_search base (Config.Ri (Config.eri base)) in
  let rows =
    List.map
      (fun extra ->
        (* Link counts are quoted at the paper's 60000-node scale and
           translated to the configured size, preserving cycle density. *)
        let extra_links = Config.scaled_links base ~paper_links:extra in
        Report.cell_number ~decimals:0 (float_of_int extra)
        :: List.map
             (fun (_, policy) ->
               let cfg =
                 {
                   base with
                   Config.topology = Config.Tree_with_cycles { extra_links };
                   cycle_policy = policy;
                 }
               in
               Report.cell_mean (Common.query_messages cfg ~spec))
             policies)
      added_links
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Added Links (60k scale)" :: List.map fst policies)
    ~rows
