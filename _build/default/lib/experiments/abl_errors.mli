(** Ablation — undercount, mixed and Gaussian index-error models.

    See the implementation's header comment for the experiment's design
    and the paper passage it reproduces. *)

val id : string
(** Registry handle. *)

val title : string

val paper_claim : string
(** The published qualitative finding this experiment checks. *)

val run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t
(** Execute the sweep against the given base configuration, each data
    point run to the spec's confidence target. *)
