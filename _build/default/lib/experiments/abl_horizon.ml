(** Ablation — the hop-count RI's horizon, a "key design variable".

    A short horizon means cheap updates but blind routing ("we do not
    have information beyond the horizon"); a long one converges on
    compound-RI behaviour at compound-RI update cost. *)

open Ri_sim

let id = "abl-horizon"

let title = "HRI horizon sweep (query vs. update cost)"

let paper_claim =
  "The horizon trades query quality against update reach: the base \
   configuration uses H = 5."

let horizons = [ 1; 2; 3; 5; 8 ]

let run ~base ~spec =
  let rows =
    List.map
      (fun horizon ->
        let cfg = { base with Config.horizon } in
        let cfg = Config.with_search cfg (Config.Ri (Config.hri cfg)) in
        [
          Report.cell_number ~decimals:0 (float_of_int horizon);
          Report.cell_mean (Common.query_messages cfg ~spec);
          Report.cell_mean (Common.update_messages cfg ~spec);
        ])
      horizons
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Horizon"; "Query msgs"; "Update msgs" ]
    ~rows
