(** Figure 13 — "Comparison of CRI, HRI, and ERI".

    Query cost for each routing-index kind and for the No-RI baseline,
    under a uniform and under an 80/20 document distribution.  The
    paper: RIs roughly halve the message count versus No-RI; CRI is
    best, then ERI, then HRI; an 80/20 bias barely helps RIs but hurts
    No-RI. *)

open Ri_sim
open Ri_content

let id = "fig13"

let title = "Comparison of CRI, HRI, and ERI (messages per query)"

let paper_claim =
  "RIs halve the No-RI message count; CRI < ERI < HRI < No-RI.  An 80/20 \
   document distribution changes RI cost little but degrades No-RI."

let distributions =
  [ ("uniform", Placement.Uniform); ("80/20", Placement.eighty_twenty) ]

let run ~base ~spec =
  let rows =
    List.map
      (fun (name, search) ->
        let cfg = Config.with_search base search in
        Report.cell_text name
        :: List.map
             (fun (_, dist) ->
               Report.cell_mean
                 (Common.query_messages { cfg with Config.distribution = dist } ~spec))
             distributions)
      (Common.all_searches base)
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Routing Index" :: List.map fst distributions)
    ~rows
