lib/experiments/abl_errors.mli: Report Ri_sim
