lib/experiments/fig15_compression.ml: Common Config List Printf Report Ri_sim
