lib/experiments/common.mli: Ri_sim Ri_util
