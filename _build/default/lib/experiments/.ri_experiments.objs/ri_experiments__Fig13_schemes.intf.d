lib/experiments/fig13_schemes.mli: Report Ri_sim
