lib/experiments/fig19_update_cycles.mli: Report Ri_sim
