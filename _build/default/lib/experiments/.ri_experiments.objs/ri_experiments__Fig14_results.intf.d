lib/experiments/fig14_results.mli: Report Ri_sim
