lib/experiments/fig13_schemes.ml: Common Config List Placement Report Ri_content Ri_sim
