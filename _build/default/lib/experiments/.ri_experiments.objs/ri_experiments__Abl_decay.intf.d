lib/experiments/abl_decay.mli: Report Ri_sim
