lib/experiments/fig20_crossover.ml: Common Config List Report Ri_p2p Ri_sim Ri_util
