lib/experiments/abl_decay.ml: Common Config List Report Ri_core Ri_sim Scheme
