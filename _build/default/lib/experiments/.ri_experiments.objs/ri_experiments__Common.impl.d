lib/experiments/common.ml: Config Ri_sim Runner Trial
