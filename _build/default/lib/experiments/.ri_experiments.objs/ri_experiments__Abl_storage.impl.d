lib/experiments/abl_storage.ml: Config Report Ri_core Ri_sim Scheme
