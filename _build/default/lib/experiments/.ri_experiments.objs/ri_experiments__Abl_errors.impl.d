lib/experiments/abl_errors.ml: Common Compression Config List Printf Report Ri_content Ri_sim Trial
