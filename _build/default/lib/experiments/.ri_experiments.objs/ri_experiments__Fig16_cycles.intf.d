lib/experiments/fig16_cycles.mli: Report Ri_sim
