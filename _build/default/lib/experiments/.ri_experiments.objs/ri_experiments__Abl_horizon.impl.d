lib/experiments/abl_horizon.ml: Common Config List Report Ri_sim
