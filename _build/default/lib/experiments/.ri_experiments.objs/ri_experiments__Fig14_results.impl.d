lib/experiments/fig14_results.ml: Common Config List Report Ri_sim
