lib/experiments/report.mli: Ri_util
