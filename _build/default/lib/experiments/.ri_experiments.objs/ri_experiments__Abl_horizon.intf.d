lib/experiments/abl_horizon.mli: Report Ri_sim
