lib/experiments/flooding.ml: Common Config Report Ri_sim Ri_util
