lib/experiments/fig15_compression.mli: Report Ri_sim
