lib/experiments/fig17_topology.ml: Common Config List Report Ri_sim
