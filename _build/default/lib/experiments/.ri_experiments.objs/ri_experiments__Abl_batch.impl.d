lib/experiments/abl_batch.ml: Array Config Float Message Network Report Ri_content Ri_p2p Ri_sim Ri_util Runner Summary Trial Update
