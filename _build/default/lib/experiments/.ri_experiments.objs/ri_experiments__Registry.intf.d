lib/experiments/registry.mli: Report Ri_sim
