lib/experiments/abl_batch.mli: Report Ri_sim
