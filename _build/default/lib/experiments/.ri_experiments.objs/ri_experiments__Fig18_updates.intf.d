lib/experiments/fig18_updates.mli: Report Ri_sim
