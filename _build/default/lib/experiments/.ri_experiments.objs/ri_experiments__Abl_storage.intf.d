lib/experiments/abl_storage.mli: Report Ri_sim
