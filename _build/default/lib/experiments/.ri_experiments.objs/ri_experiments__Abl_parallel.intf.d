lib/experiments/abl_parallel.mli: Report Ri_sim
