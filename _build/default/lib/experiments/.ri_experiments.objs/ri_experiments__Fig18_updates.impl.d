lib/experiments/fig18_updates.ml: Common Config List Report Ri_sim
