lib/experiments/abl_hybrid.mli: Report Ri_sim
