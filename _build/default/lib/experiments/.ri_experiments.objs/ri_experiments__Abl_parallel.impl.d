lib/experiments/abl_parallel.ml: Common Config List Printf Report Ri_sim Ri_util Runner Trial
