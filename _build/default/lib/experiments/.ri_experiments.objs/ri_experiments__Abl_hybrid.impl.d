lib/experiments/abl_hybrid.ml: Common Config List Report Ri_core Ri_sim Scheme
