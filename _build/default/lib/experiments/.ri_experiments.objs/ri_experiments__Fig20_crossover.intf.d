lib/experiments/fig20_crossover.mli: Report Ri_sim
