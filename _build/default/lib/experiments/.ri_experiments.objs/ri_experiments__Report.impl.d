lib/experiments/report.ml: Buffer List Printf Ri_util Stats String Text_table
