lib/experiments/fig19_update_cycles.ml: Common Config List Report Ri_p2p Ri_sim
