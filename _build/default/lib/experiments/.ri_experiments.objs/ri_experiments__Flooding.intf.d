lib/experiments/flooding.mli: Report Ri_sim
