lib/experiments/fig17_topology.mli: Report Ri_sim
