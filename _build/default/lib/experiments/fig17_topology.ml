(** Figure 17 — "Network topology" and query cost.

    Each search mechanism on the three topologies.  The paper's
    surprise: "RIs perform better in a power-law network than in a tree
    network" — queries gravitate to the few highly connected nodes and
    collect many results there, and power-law graphs have shorter paths
    — while both factors {e hinder} No-RI, which stumbles around
    looking for the rare well-connected nodes. *)

open Ri_sim

let id = "fig17"

let title = "Query cost per network topology"

let paper_claim =
  "RIs do better on a power-law network than on a tree (high-degree hubs \
   + shorter paths), while No-RI does worse there."

let topologies =
  [
    ("Tree", Config.Tree);
    ("Tree+Cycle", Config.Tree_with_cycles { extra_links = 10 });
    ("Powerlaw", Config.Power_law_graph);
  ]

let run ~base ~spec =
  let rows =
    List.map
      (fun (name, search) ->
        let cfg = Config.with_search base search in
        Report.cell_text name
        :: List.map
             (fun (_, topology) ->
               Report.cell_mean
                 (Common.query_messages (Config.with_topology cfg topology) ~spec))
             topologies)
      (Common.all_searches base)
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Routing Index" :: List.map fst topologies)
    ~rows
