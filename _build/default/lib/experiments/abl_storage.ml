(** Ablation — the storage analysis of Section 4.1.

    "If s is the counter size in bytes, c is the number of categories,
    N the number of nodes, and b the branching factor, then a
    centralized index would require [s x (c+1) x N] bytes, while each
    node of a distributed system would need [s x (c+1) x b] bytes.
    Thus, the total for the entire distributed system is
    [s x (c+1) x b x N] bytes.  Although the RIs require more storage
    space overall than a centralized index, the cost of the storage
    space is shared among the network nodes."

    This table evaluates those formulas for the active configuration and
    all four schemes, at a 2-byte counter (the size the paper assumes in
    its Figure 20 hash-table arithmetic). *)

open Ri_sim
open Ri_core

let id = "abl-storage"

let title = "Index storage: centralized vs. per-node routing indices"

let paper_claim =
  "Section 4.1: RIs need more total storage than one central index, but \
   each node only pays for its neighbors; per-node cost is tiny and \
   tunable via summarization."

let counter_bytes = 2.

let run ~base ~spec =
  ignore spec;
  let n = float_of_int base.Config.num_nodes in
  let width = base.Config.topics in
  (* Mean branching: a tree with fanout F has (N-1) links, so the mean
     degree is just under 2; use the paper's b = fanout + 1 interior
     figure as the representative neighbor count. *)
  let neighbors = base.Config.fanout + 1 in
  let centralized = counter_bytes *. float_of_int (1 + width) *. n in
  let row kind_name kind =
    let per_node =
      counter_bytes
      *. float_of_int (Scheme.storage_entries kind ~width ~neighbors)
    in
    [
      Report.cell_text kind_name;
      Report.cell_number ~decimals:0 per_node;
      Report.cell_number ~decimals:1 (per_node *. n /. 1e6);
      Report.cell_number ~decimals:1 (per_node *. n /. centralized);
    ]
  in
  let rows =
    [
      [
        Report.cell_text "centralized (Napster-style)";
        Report.cell_text "-";
        Report.cell_number ~decimals:1 (centralized /. 1e6);
        Report.cell_number ~decimals:1 1.0;
      ];
      row "CRI" Config.cri;
      row "HRI" (Config.hri base);
      row "Hybrid" (Config.hybrid base);
      row "ERI" (Config.eri base);
    ]
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Index"; "Bytes/node"; "Total MB"; "x centralized" ]
    ~rows
