(** Figure 18 — "Updates and Network Topology".

    Messages to propagate one batch of updates, per RI kind and
    topology.  The paper: "the cost of CRI is much higher when compared
    with HRI and ERI ... the result of CRI propagating the update to all
    nodes, while HRI and ERI only propagate the update to a subset",
    and "network topology has little impact on the update performance". *)

open Ri_sim

let id = "fig18"

let title = "Update cost per RI kind and topology"

let paper_claim =
  "CRI updates reach every node and cost vastly more than HRI/ERI \
   updates, which stay in a bounded neighborhood; topology matters \
   little."

let topologies =
  [
    ("Tree", Config.Tree);
    ("Tree+Cycle", Config.Tree_with_cycles { extra_links = 10 });
    ("Powerlaw", Config.Power_law_graph);
  ]

let run ~base ~spec =
  let rows =
    List.map
      (fun (name, search) ->
        let cfg = Config.with_search base search in
        Report.cell_text name
        :: List.map
             (fun (_, topology) ->
               Report.cell_mean
                 (Common.update_messages (Config.with_topology cfg topology) ~spec))
             topologies)
      (Common.ri_searches base)
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Routing Index" :: List.map fst topologies)
    ~rows
