(** Experiment reports.

    Each experiment renders its measurements as a table whose rows and
    columns mirror the corresponding figure of the paper, plus the
    paper's own finding as a note so bench output can be eyeballed
    against the publication directly.  Numeric cells keep their raw
    values alongside the formatted strings so tests can assert on
    shapes without reparsing. *)

type cell = { text : string; value : float option }

val cell_text : string -> cell

val cell_mean : Ri_util.Stats.summary -> cell
(** Mean with its 95% CI, e.g. ["218.0 ±14.2"]. *)

val cell_number : ?decimals:int -> float -> cell

type t = {
  id : string;
  title : string;
  paper_claim : string;  (** the published qualitative result *)
  header : string list;
  rows : cell list list;
}

val make :
  id:string ->
  title:string ->
  paper_claim:string ->
  header:string list ->
  rows:cell list list ->
  t

val value_at : t -> row:int -> col:int -> float option
(** Numeric value of a body cell (0-indexed), if any. *)

val print : t -> unit
(** Render to stdout: heading, claim, aligned table. *)

val to_string : t -> string

val to_csv : t -> string
(** Header row plus one line per body row; numeric cells emit their raw
    value, text cells are quoted when they contain a comma or quote. *)
