(** Ablation — the hybrid CRI-HRI of Section 6.2.

    The paper notes that a hybrid overcomes the hop-count RI's blindness
    beyond the horizon "but it still does not solve the storage and
    transmission cost problem".  This ablation quantifies both halves of
    that sentence: query cost (the hybrid should route like a CRI),
    update cost (it should pay like one too), and the per-row size. *)

open Ri_sim
open Ri_core

let id = "abl-hybrid"

let title = "Hybrid CRI-HRI vs. the paper's three schemes"

let paper_claim =
  "Section 6.2: a hybrid CRI-HRI overcomes the horizon blindness (query \
   cost near CRI's) but not the storage and transmission cost problem \
   (update cost and row size near CRI's)."

let row_entries base kind =
  let width = base.Config.topics in
  Scheme.payload_entries (Scheme.payload_zero kind ~width)

let run ~base ~spec =
  (* A deliberately short horizon: the paper's H = 5 sees most of a tree
     whose depth is log_F(NumNodes), hiding exactly the blindness the
     hybrid exists to fix. *)
  let base = { base with Config.horizon = 2 } in
  let schemes =
    [
      ("CRI", Config.cri);
      ("HRI (H=2)", Config.hri base);
      ("Hybrid (H=2)", Config.hybrid base);
      ("ERI", Config.eri base);
    ]
  in
  let rows =
    List.map
      (fun (name, kind) ->
        let cfg = Config.with_search base (Config.Ri kind) in
        [
          Report.cell_text name;
          Report.cell_mean (Common.query_messages cfg ~spec);
          Report.cell_mean (Common.update_messages cfg ~spec);
          Report.cell_number ~decimals:0 (float_of_int (row_entries base kind));
        ])
      schemes
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Routing Index"; "Query msgs"; "Update msgs"; "Row entries" ]
    ~rows
