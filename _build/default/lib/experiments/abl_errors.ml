(** Ablation — undercounts and mixed errors.

    Figure 15 shows the overcount scenario; the paper adds: "We
    conducted additional experiments for undercounts and mixed errors
    as well as for other error models.  Those experiments had similar
    results to the one presented here and are omitted for brevity."
    This ablation runs them: bucket consolidation by minimum
    (undercounts) and by mean (mixed), plus the Gaussian error model of
    Appendix A, all against the ERI at two compression levels. *)

open Ri_sim
open Ri_content

let id = "abl-errors"

let title = "Error models beyond overcounts (ERI query cost)"

let paper_claim =
  "\"Those experiments had similar results\": undercounts and mixed \
   errors degrade performance about as modestly as overcounts do."

let bucket_modes =
  [
    ("overcount (sum)", Compression.Overcount);
    ("undercount (min)", Compression.Undercount);
    ("mixed (mean)", Compression.Mixed);
  ]

let ratios = [ 0.5; 0.8 ]

let gaussian_query base ~spec ~relative_stddev ~kind =
  let cfg = Config.with_search base (Config.Ri (Config.eri base)) in
  Ri_sim.Runner.run spec (fun ~trial ->
      let m = Trial.run_query_perturbed cfg ~relative_stddev ~kind ~trial in
      float_of_int m.Trial.messages)

let run ~base ~spec =
  let eri = Config.Ri (Config.eri base) in
  let bucket_rows =
    List.concat_map
      (fun (label, mode) ->
        List.map
          (fun ratio ->
            let cfg =
              Config.with_search
                {
                  base with
                  Config.compression_ratio = ratio;
                  compression_mode = mode;
                }
                eri
            in
            [
              Report.cell_text
                (Printf.sprintf "%s @ %.0f%%" label (100. *. ratio));
              Report.cell_mean (Common.query_messages cfg ~spec);
            ])
          ratios)
      bucket_modes
  in
  let gaussian_rows =
    List.map
      (fun (label, kind) ->
        [
          Report.cell_text (Printf.sprintf "gaussian %s (sd 20%%)" label);
          Report.cell_mean (gaussian_query base ~spec ~relative_stddev:0.2 ~kind);
        ])
      [
        ("over", Compression.Overcount);
        ("under", Compression.Undercount);
        ("mixed", Compression.Mixed);
      ]
  in
  let baseline =
    [
      Report.cell_text "exact (0%)";
      Report.cell_mean (Common.query_messages (Config.with_search base eri) ~spec);
    ]
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Error model"; "Query msgs" ]
    ~rows:((baseline :: bucket_rows) @ gaussian_rows)
