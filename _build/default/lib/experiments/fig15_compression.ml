(** Figure 15 — "Effect of Overcounts".

    Query cost as the index hash table is consolidated into fewer and
    fewer buckets (summing the merged categories, which overcounts).
    The paper: "even though there is a loss of performance because of
    overcounts, this loss is modest even in the case of significant
    reductions on the size of the index", and compressed RIs still beat
    No-RI handily. *)

open Ri_sim

let id = "fig15"

let title = "Effect of overcounts (index compression)"

let paper_claim =
  "Overcounts from index compression degrade RI performance only \
   modestly; even at 83% compression RIs beat No-RI."

let ratios = [ 0.0; 0.50; 0.67; 0.75; 0.80; 0.83 ]

let label_of_ratio r = Printf.sprintf "%.0f%%" (100. *. r)

let run ~base ~spec =
  let rows =
    List.map
      (fun (name, search) ->
        let cfg = Config.with_search base search in
        Report.cell_text name
        :: List.map
             (fun ratio ->
               Report.cell_mean
                 (Common.query_messages
                    { cfg with Config.compression_ratio = ratio }
                    ~spec))
             ratios)
      (Common.all_searches base)
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Routing Index" :: List.map label_of_ratio ratios)
    ~rows
