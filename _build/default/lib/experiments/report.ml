open Ri_util

type cell = { text : string; value : float option }

let cell_text text = { text; value = None }

let cell_mean (s : Stats.summary) =
  {
    text = Printf.sprintf "%.1f ±%.1f" s.Stats.mean s.Stats.ci95;
    value = Some s.Stats.mean;
  }

let cell_number ?(decimals = 1) v =
  { text = Printf.sprintf "%.*f" decimals v; value = Some v }

type t = {
  id : string;
  title : string;
  paper_claim : string;
  header : string list;
  rows : cell list list;
}

let make ~id ~title ~paper_claim ~header ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Report.make: row width mismatch")
    rows;
  { id; title; paper_claim; header; rows }

let value_at t ~row ~col =
  match List.nth_opt t.rows row with
  | None -> None
  | Some r -> ( match List.nth_opt r col with None -> None | Some c -> c.value)

let to_string t =
  let table = Text_table.create ~header:t.header () in
  List.iter (fun row -> Text_table.add_row table (List.map (fun c -> c.text) row)) t.rows;
  Printf.sprintf "== %s: %s ==\npaper: %s\n%s" t.id t.title t.paper_claim
    (Text_table.render table)

let print t =
  print_string (to_string t);
  print_newline ()

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.header));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      let cells =
        List.map
          (fun c ->
            match c.value with
            | Some v -> Printf.sprintf "%g" v
            | None -> csv_escape c.text)
          row
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf
