(** Ablation — the exponential RI's assumed fanout (decay), a "key
    design variable".

    The ERI discounts hop-[j] documents by [1/A^(j-1)]; the paper sets
    [A] to the tree's true branching factor 4.  A mismatched decay
    either under-discounts distance (small [A]: updates travel far,
    routing chases remote documents) or over-discounts it (large [A]:
    myopic routing, very local updates). *)

open Ri_sim
open Ri_core

let id = "abl-decay"

let title = "ERI decay sweep (assumed fanout A; true tree fanout is 4)"

let paper_claim =
  "The base configuration matches the decay to the topology (A = F = 4); \
   mismatches shift the query/update balance."

let decays = [ 2.; 4.; 8.; 16. ]

let run ~base ~spec =
  let rows =
    List.map
      (fun decay ->
        let cfg =
          Config.with_search
            { base with Config.eri_decay = decay }
            (Config.Ri (Scheme.Eri_kind { fanout = decay }))
        in
        [
          Report.cell_number ~decimals:0 decay;
          Report.cell_mean (Common.query_messages cfg ~spec);
          Report.cell_mean (Common.update_messages cfg ~spec);
        ])
      decays
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Decay A"; "Query msgs"; "Update msgs" ]
    ~rows
