(** Figure 20 — "Updates per minute": when do RIs pay off?

    Total bytes per minute for an ERI system and a No-RI system, at the
    observed Gnutella query load of 1032 queries/minute, 70-byte query
    messages and 3500-byte update messages, as the update rate grows.
    The paper: "The crossover point is 36 updates per minute.  That is,
    as long as there are fewer than 36 updates per minute, using an RI
    pays off." *)

open Ri_sim

let id = "fig20"

let title = "Bytes per minute vs. update rate (ERI vs. No-RI)"

let paper_claim =
  "ERI traffic grows with the update rate while No-RI stays flat; the \
   paper's crossover is 36 updates/min at 1032 queries/min (70 B \
   queries, 3500 B updates)."

let queries_per_minute = 1032.

let update_rates = [ 1.; 10.; 19.; 28.; 37.; 46. ]

let run ~base ~spec =
  let bytes = Ri_p2p.Message.gnutella_bytes in
  let eri_cfg =
    Config.with_search { base with Config.bytes } (Config.Ri (Config.eri base))
  in
  let nori_cfg = Config.with_search { base with Config.bytes } Config.No_ri in
  let eri_query = Common.query_messages eri_cfg ~spec in
  let nori_query = Common.query_messages nori_cfg ~spec in
  let eri_update = Common.update_messages eri_cfg ~spec in
  let qb = float_of_int bytes.Ri_p2p.Message.query_bytes in
  let ub = float_of_int bytes.Ri_p2p.Message.update_bytes in
  let query_traffic mean = queries_per_minute *. mean.Ri_util.Stats.mean *. qb in
  let eri_bytes u = query_traffic eri_query +. (u *. eri_update.Ri_util.Stats.mean *. ub) in
  let nori_bytes _ = query_traffic nori_query in
  let crossover =
    let saving = query_traffic nori_query -. query_traffic eri_query in
    let per_update = eri_update.Ri_util.Stats.mean *. ub in
    if per_update <= 0. then infinity else saving /. per_update
  in
  let mb v = v /. 1_000_000. in
  let rows =
    List.map
      (fun u ->
        [
          Report.cell_number ~decimals:0 u;
          Report.cell_number ~decimals:2 (mb (eri_bytes u));
          Report.cell_number ~decimals:2 (mb (nori_bytes u));
        ])
      update_rates
    @ [
        [
          Report.cell_text "crossover (upd/min)";
          Report.cell_number ~decimals:1 crossover;
          Report.cell_text "-";
        ];
      ]
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Updates/min"; "ERI MB/min"; "No-RI MB/min" ]
    ~rows
