(** Ablation — sequential vs. parallel query forwarding (Section 3.1).

    "Queries can be forwarded to the best neighbors in parallel or
    sequentially ... A parallel approach yields better response time,
    but generates higher traffic and may waste resources."  The paper
    evaluates only the sequential variant; this ablation quantifies the
    trade-off it set aside.  Response time is proxied by forwarding
    rounds (parallel) or total messages on the critical path
    (sequential, where every message is serial by construction). *)

open Ri_sim

let id = "abl-parallel"

let title = "Sequential vs. parallel forwarding (ERI)"

let paper_claim =
  "Section 3.1: parallel forwarding improves response time at the price \
   of more messages."

let branches = [ 1; 2; 3 ]

let run ~base ~spec =
  let cfg = Config.with_search base (Config.Ri (Config.eri base)) in
  let sequential_msgs = Common.query_messages cfg ~spec in
  let seq_row =
    [
      Report.cell_text "sequential (paper)";
      Report.cell_mean sequential_msgs;
      (* Serial forwarding: the response path is the message chain. *)
      Report.cell_mean sequential_msgs;
      Report.cell_number 100.;
    ]
  in
  let par_rows =
    List.map
      (fun branch ->
        let msgs = Ri_util.Stats.Acc.create () in
        let rounds = Ri_util.Stats.Acc.create () in
        let satisfied = ref 0 in
        let trials = max spec.Runner.min_trials (spec.Runner.max_trials / 2) in
        for trial = 0 to trials - 1 do
          let m = Trial.run_query_parallel cfg ~branch ~trial in
          Ri_util.Stats.Acc.add msgs (float_of_int m.Trial.par_messages);
          Ri_util.Stats.Acc.add rounds (float_of_int m.Trial.par_rounds);
          if m.Trial.par_satisfied then incr satisfied
        done;
        [
          Report.cell_text (Printf.sprintf "parallel, branch %d" branch);
          Report.cell_mean (Ri_util.Stats.summarize msgs);
          Report.cell_mean (Ri_util.Stats.summarize rounds);
          Report.cell_number ~decimals:0
            (100. *. float_of_int !satisfied /. float_of_int trials);
        ])
      branches
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Forwarding"; "Messages"; "Response (rounds)"; "Hit %" ]
    ~rows:(seq_row :: par_rows)
