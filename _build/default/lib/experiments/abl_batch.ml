(** Ablation — batching updates (Section 4.3).

    "We may delay exporting an update for a short time so we can batch
    several updates, thus trading RI freshness for a reduced update
    cost."  Ten successive document arrivals at one node, propagated
    eagerly (ten waves) versus deferred through an {!Ri_p2p.Update.Batcher}
    (one wave). *)

open Ri_content
open Ri_p2p
open Ri_sim

let id = "abl-batch"

let title = "Eager vs. batched update propagation (ERI, 10 changes)"

let paper_claim =
  "Section 4.3: batching several updates into one export cuts update \
   cost, trading index freshness for traffic."

let changes = 10

(* Successive local summaries at the origin: each step adds one tenth of
   the batch the standard update trial would apply at once. *)
let grow_summary (s : Summary.t) ~topic ~docs =
  let by_topic = Array.copy s.Summary.by_topic in
  by_topic.(topic) <- by_topic.(topic) +. docs;
  Summary.make ~total:(s.Summary.total +. docs) ~by_topic

let run_once (cfg : Config.t) ~batched ~trial =
  let setup = Trial.build ~purpose:Trial.For_update cfg ~trial in
  let net = setup.Trial.network in
  let origin = setup.Trial.origin in
  let topic = 0 in
  let step =
    (* The same total volume as Trial.run_update's batch, in ten parts. *)
    let total = ref 0. in
    for v = 0 to Network.size net - 1 do
      total := !total +. Summary.get (Network.raw_local_summary net v) topic
    done;
    Float.max 1. (cfg.Config.update_fraction *. !total /. float_of_int changes)
  in
  let counters = Message.create () in
  let current = ref (Network.raw_local_summary net origin) in
  if batched then begin
    let batcher = Update.Batcher.create net ~origin in
    for _ = 1 to changes do
      current := grow_summary !current ~topic ~docs:step;
      Update.Batcher.note_local_change batcher !current
    done;
    Update.Batcher.flush batcher ~counters
  end
  else
    for _ = 1 to changes do
      current := grow_summary !current ~topic ~docs:step;
      Update.local_change net ~origin ~summary:!current ~counters
    done;
  float_of_int counters.Message.update_messages

let run ~base ~spec =
  let cfg = Config.with_search base (Config.Ri (Config.eri base)) in
  let eager = Runner.run spec (fun ~trial -> run_once cfg ~batched:false ~trial) in
  let batched = Runner.run spec (fun ~trial -> run_once cfg ~batched:true ~trial) in
  let saving =
    if eager.Ri_util.Stats.mean > 0. then
      100. *. (1. -. (batched.Ri_util.Stats.mean /. eager.Ri_util.Stats.mean))
    else 0.
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Strategy"; "Update msgs" ]
    ~rows:
      [
        [ Report.cell_text "eager (10 waves)"; Report.cell_mean eager ];
        [ Report.cell_text "batched (1 wave)"; Report.cell_mean batched ];
        [
          Report.cell_text "saving";
          Report.cell_number ~decimals:0 saving;
        ];
      ]
