(** Section 8.2, flooding comparison (no figure in the paper: "RIs
    reduce the number of messages by two orders of magnitude (graph not
    shown)").

    An ERI-routed query against a Gnutella-style flood, on the base
    configuration, plus a TTL-7 flood for reference (Gnutella's default
    TTL).  Floods find every result in the region they explore; RIs stop
    at the requested result count — the paper argues that is what users
    want anyway ("users rarely examine more than the first 10 top
    results"). *)

open Ri_sim

let id = "flood"

let title = "Routing indices vs. flooding"

let paper_claim =
  "RIs reduce query messages by roughly two orders of magnitude \
   compared with flooding."

let run ~base ~spec =
  let eri_cfg = Config.with_search base (Config.Ri (Config.eri base)) in
  let flood_cfg = Config.with_search base (Config.Flooding { ttl = None }) in
  let flood7_cfg = Config.with_search base (Config.Flooding { ttl = Some 7 }) in
  let eri = Common.query_messages eri_cfg ~spec in
  let flood = Common.query_messages flood_cfg ~spec in
  let flood7 = Common.query_messages flood7_cfg ~spec in
  let ratio a b = if b = 0. then nan else a /. b in
  let rows =
    [
      [ Report.cell_text "ERI"; Report.cell_mean eri; Report.cell_number 1.0 ];
      [
        Report.cell_text "Flooding (no TTL)";
        Report.cell_mean flood;
        Report.cell_number (ratio flood.Ri_util.Stats.mean eri.Ri_util.Stats.mean);
      ];
      [
        Report.cell_text "Flooding (TTL=7)";
        Report.cell_mean flood7;
        Report.cell_number (ratio flood7.Ri_util.Stats.mean eri.Ri_util.Stats.mean);
      ];
    ]
  in
  Report.make ~id ~title ~paper_claim
    ~header:[ "Mechanism"; "Messages"; "x vs ERI" ]
    ~rows
