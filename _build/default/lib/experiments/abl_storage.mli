(** Ablation — the storage analysis of Section 4.1 (centralized index
    vs. per-node routing indices), evaluated analytically for the active
    configuration. *)

val id : string

val title : string

val paper_claim : string

val run : base:Ri_sim.Config.t -> spec:Ri_sim.Runner.spec -> Report.t
