(** Figure 14 — "Number of Results".

    Messages per query as the requested result count (the stop
    condition) grows from 10 to 100.  The paper plots CRI and ERI ("the
    performance of HRI is indistinguishable from ERI, so it is omitted")
    and highlights "the linear shape of the increase, showing that all
    RIs, as well as No-RI, scale well on this parameter". *)

open Ri_sim

let id = "fig14"

let title = "Messages vs. requested results"

let paper_claim =
  "Messages grow linearly with the number of requested results; ERI stays \
   within a small factor of CRI (HRI is indistinguishable from ERI)."

let requested = [ 10; 20; 40; 60; 80; 100 ]

let searches base =
  [
    ("CRI", Config.Ri Config.cri);
    ("ERI", Config.Ri (Config.eri base));
    ("No-RI", Config.No_ri);
  ]

let run ~base ~spec =
  let rows =
    List.map
      (fun stop ->
        Report.cell_number ~decimals:0 (float_of_int stop)
        :: List.map
             (fun (_, search) ->
               let cfg =
                 Config.with_search { base with Config.stop_condition = stop } search
               in
               Report.cell_mean (Common.query_messages cfg ~spec))
             (searches base))
      requested
  in
  Report.make ~id ~title ~paper_claim
    ~header:("Requested Results" :: List.map fst (searches base))
    ~rows
