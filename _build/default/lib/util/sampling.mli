(** Random sampling helpers used by topology generation and document
    placement. *)

val choose_distinct : Prng.t -> k:int -> n:int -> int array
(** [choose_distinct g ~k ~n] draws [k] distinct integers uniformly from
    [\[0, n)], in random order (partial Fisher-Yates on an index table for
    large draws, rejection for sparse ones).
    @raise Invalid_argument if [k < 0] or [k > n]. *)

val weighted_index : Prng.t -> float array -> int
(** [weighted_index g w] picks index [i] with probability
    [w.(i) / sum w].  Weights must be non-negative with a positive sum.
    @raise Invalid_argument otherwise. *)

val discrete_power_law : Prng.t -> exponent:float -> max_value:int -> int
(** [discrete_power_law g ~exponent ~max_value] samples
    [k] in [\[1, max_value\]] with [P(k) ∝ k^exponent] exactly
    ([exponent] is negative for the usual decaying laws, e.g. the
    paper's -2.2088), by inversion on the cumulative weights.  Each call
    rebuilds the CDF (O(max_value)); bulk callers should prefer
    {!power_law_degrees}, which builds it once. *)

val power_law_degrees :
  Prng.t -> n:int -> exponent:float -> max_degree:int -> int array
(** Degree sequence of [n] samples of {!discrete_power_law}, adjusted so
    the total is even (one extra half-edge is added to a random node when
    the sum is odd), as needed by a configuration-model pairing. *)
