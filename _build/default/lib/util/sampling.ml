let choose_distinct g ~k ~n =
  if k < 0 || k > n then invalid_arg "Sampling.choose_distinct";
  if k = 0 then [||]
  else if k * 3 < n then begin
    (* Sparse draw: rejection with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = Prng.int g n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
  else begin
    (* Dense draw: partial Fisher-Yates over the full index table. *)
    let idx = Array.init n Fun.id in
    for i = 0 to k - 1 do
      let j = i + Prng.int g (n - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    Array.sub idx 0 k
  end

let weighted_index g w =
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then invalid_arg "Sampling.weighted_index: zero total";
  let target = Prng.unit_float g *. total in
  let n = Array.length w in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else go (i + 1) acc
  in
  let i = go 0 0. in
  if w.(i) < 0. then invalid_arg "Sampling.weighted_index: negative weight";
  i

(* Cumulative weights of P(k) ∝ k^exponent over [1, max_value]; slot
   [k-1] holds Σ_{j<=k} j^exponent. *)
let power_law_cdf ~exponent ~max_value =
  let cdf = Array.make max_value 0. in
  let acc = ref 0. in
  for k = 1 to max_value do
    acc := !acc +. (float_of_int k ** exponent);
    cdf.(k - 1) <- !acc
  done;
  cdf

let sample_power_law_cdf g cdf =
  let max_value = Array.length cdf in
  let target = Prng.unit_float g *. cdf.(max_value - 1) in
  (* Smallest k with cdf.(k-1) > target. *)
  let rec bsearch lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) > target then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 (max_value - 1)

let discrete_power_law g ~exponent ~max_value =
  if max_value < 1 then invalid_arg "Sampling.discrete_power_law";
  if max_value = 1 then 1
  else sample_power_law_cdf g (power_law_cdf ~exponent ~max_value)

let power_law_degrees g ~n ~exponent ~max_degree =
  let cdf = power_law_cdf ~exponent ~max_value:(max 1 max_degree) in
  let d = Array.init n (fun _ -> sample_power_law_cdf g cdf) in
  let total = Array.fold_left ( + ) 0 d in
  if total land 1 = 1 then begin
    let i = Prng.int g n in
    d.(i) <- d.(i) + 1
  end;
  d
