(** Plain-text table rendering for the benchmark harness.

    Every experiment prints its results as an aligned table whose rows and
    columns mirror the corresponding figure in the paper, so that the
    bench output can be compared against the published charts directly. *)

type align = Left | Right

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table.  [aligns] defaults to [Left] for
    the first column and [Right] for the rest (label + numbers). *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** Insert a horizontal rule at this point. *)

val render : t -> string
(** The full table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Format a numeric cell; defaults to one decimal place, with thousands
    left unseparated so the output stays machine-parsable. *)

val cell_int : int -> string
