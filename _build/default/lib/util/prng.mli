(** Deterministic pseudo-random number generator.

    The simulator must be reproducible across runs and independent of the
    OCaml runtime's global [Random] state, so every stochastic component
    (topology generation, document placement, query origin selection, ...)
    draws from an explicit {!t} value.

    The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl sequence and finalised with a
    variant of the MurmurHash3 mixer.  It is fast, has a full 2^64 period,
    and passes BigCrush when used as here. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g].  Streams of
    the parent and child are statistically independent; use one split per
    subsystem so adding draws to one subsystem does not perturb others. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate by the Box-Muller transform. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
