module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n

  let mean t = if t.n = 0 then nan else t.mean

  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)

  let std_error t =
    if t.n = 0 then infinity else stddev t /. sqrt (float_of_int t.n)

  let min t = t.min

  let max t = t.max
end

(* 97.5th percentiles of Student's t for df = 1..30; beyond that the
   Cornish-Fisher style expansion around the normal quantile is accurate to
   well under 0.1%. *)
let t_table =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_quantile_975 df =
  if df <= 0 then infinity
  else if df <= 30 then t_table.(df - 1)
  else
    let z = 1.959964 in
    let d = float_of_int df in
    z
    +. ((z ** 3.) +. z) /. (4. *. d)
    +. ((5. *. (z ** 5.)) +. (16. *. (z ** 3.)) +. (3. *. z))
       /. (96. *. d *. d)

let ci_halfwidth a =
  let n = Acc.count a in
  if n < 2 then infinity else t_quantile_975 (n - 1) *. Acc.std_error a

let relative_error a =
  let m = Acc.mean a in
  let hw = ci_halfwidth a in
  if Float.is_nan m then infinity
  else if m = 0. then if hw = 0. then 0. else infinity
  else hw /. Float.abs m

let converged ?(target = 0.1) ?(min_obs = 5) a =
  Acc.count a >= min_obs
  &&
  let m = Acc.mean a in
  (m = 0. && Acc.variance a = 0.) || relative_error a <= target

type summary = {
  mean : float;
  ci95 : float;
  stddev : float;
  n : int;
  min : float;
  max : float;
}

let summarize a =
  {
    mean = Acc.mean a;
    ci95 = (if Acc.count a < 2 then 0. else ci_halfwidth a);
    stddev = Acc.stddev a;
    n = Acc.count a;
    min = Acc.min a;
    max = Acc.max a;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%.1f ±%.1f (n=%d)" s.mean s.ci95 s.n
