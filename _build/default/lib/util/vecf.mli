(** Small dense float-vector helpers.

    Routing-index rows are per-topic document counts; these operations are
    the arithmetic backbone of aggregation ({!add_into}, {!scale}) and of
    the "significant enough to propagate" tests ({!max_rel_diff},
    {!euclidean_distance}) of Sections 4-6 of the paper. *)

val zeros : int -> float array

val copy : float array -> float array

val add_into : dst:float array -> float array -> unit
(** [add_into ~dst v] adds [v] elementwise into [dst].
    @raise Invalid_argument on length mismatch. *)

val sub_into : dst:float array -> float array -> unit

val scale : float array -> float -> float array
(** Fresh vector [v *. k]. *)

val scale_into : float array -> float -> unit

val sum : float array -> float

val map2 : (float -> float -> float) -> float array -> float array -> float array

val euclidean_distance : float array -> float array -> float

val max_rel_diff : float array -> float array -> float
(** [max_rel_diff old new_] is the largest elementwise relative change
    [|new - old| / max(|old|, 1)], the criterion the paper's [minUpdate]
    parameter thresholds ("updates that may change the current index value
    by more than 1%").  The [max(.,1)] floor makes changes to empty
    entries count absolutely, so a count appearing from zero always
    registers. *)

val approx_equal : ?eps:float -> float array -> float array -> bool
