type align = Left | Right

type line = Row of string list | Rule

type t = {
  header : string list;
  aligns : align list;
  mutable lines : line list;  (* reversed *)
  width : int;
}

let create ?aligns ~header () =
  let width = List.length header in
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> width then
          invalid_arg "Text_table.create: aligns/header width mismatch";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  { header; aligns; lines = []; width }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg "Text_table.add_row: wrong number of cells";
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let rows =
    List.filter_map (function Row r -> Some r | Rule -> None)
      (List.rev t.lines)
  in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_cells cells =
    let parts =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        cells
    in
    String.concat "  " parts
  in
  let rule_line =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_cells t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule_line;
  Buffer.add_char buf '\n';
  List.iter
    (fun line ->
      (match line with
      | Row r -> Buffer.add_string buf (render_cells r)
      | Rule -> Buffer.add_string buf rule_line);
      Buffer.add_char buf '\n')
    (List.rev t.lines);
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 1) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let cell_int = string_of_int
