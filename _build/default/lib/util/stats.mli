(** Online statistics and confidence intervals.

    The paper's simulator repeats each experiment over freshly generated
    topologies and document placements "with at least a 95% confidence
    interval of having a relative error of 10% or less" (Section 8.2).
    {!Acc} provides the numerically stable accumulator, and
    {!ci_halfwidth} / {!converged} implement that stopping rule using the
    Student-t distribution. *)

module Acc : sig
  type t
  (** Welford accumulator: single pass, numerically stable mean and
      variance. *)

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** Mean of the observations so far; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float

  val std_error : t -> float
  (** Standard error of the mean, [stddev/sqrt n]. *)

  val min : t -> float
  (** Smallest observation; [infinity] when empty. *)

  val max : t -> float
  (** Largest observation; [neg_infinity] when empty. *)
end

val t_quantile_975 : int -> float
(** [t_quantile_975 df] is the 97.5th percentile of Student's t
    distribution with [df] degrees of freedom (so a two-sided 95%
    interval).  Exact table values for small [df], asymptotic expansion
    beyond. *)

val ci_halfwidth : Acc.t -> float
(** Half-width of the 95% confidence interval for the mean.  [infinity]
    with fewer than two observations. *)

val relative_error : Acc.t -> float
(** [ci_halfwidth a /. |mean a|]; [infinity] when the mean is zero or not
    enough observations have been seen. *)

val converged : ?target:float -> ?min_obs:int -> Acc.t -> bool
(** [converged a] is [true] once the 95% CI half-width is within
    [target] (default [0.1], the paper's 10%) of the mean, with at least
    [min_obs] (default [5]) observations.  A mean of exactly [0.] with
    zero variance also counts as converged. *)

type summary = {
  mean : float;
  ci95 : float;  (** half-width of the 95% confidence interval *)
  stddev : float;
  n : int;  (** number of observations *)
  min : float;
  max : float;
}

val summarize : Acc.t -> summary

val pp_summary : Format.formatter -> summary -> unit
(** Renders as ["mean ±ci (n=..)"]. *)
