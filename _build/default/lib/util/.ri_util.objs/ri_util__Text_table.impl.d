lib/util/text_table.ml: Array Buffer Float List Printf String
