lib/util/sampling.ml: Array Fun Hashtbl Prng
