lib/util/vecf.mli:
