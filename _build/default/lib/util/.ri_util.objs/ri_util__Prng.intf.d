lib/util/prng.mli:
