lib/util/sampling.mli: Prng
