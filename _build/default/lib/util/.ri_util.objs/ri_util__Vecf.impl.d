lib/util/vecf.ml: Array Float Printf
