type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* David Stafford's "Mix13" 64-bit finaliser, as used by SplitMix64. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = bits64 g }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) land mask in
    if v >= mask - (mask mod bound) then go () else v mod bound
  in
  go ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits scaled to [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  v *. 0x1p-53

let float g bound = unit_float g *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g p = unit_float g < p

let gaussian g ~mean ~stddev =
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float g in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
