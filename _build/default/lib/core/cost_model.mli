(** The regular-tree cost model (Section 6.1).

    "The construction of this model assumes that document results are
    uniformly distributed across the network and that the network is a
    regular tree with fanout F. ... it takes one message for a client to
    find all documents at the root of the tree (zero hops), 1 + F
    messages to get all documents at zero or one hops, 1 + F + F²
    ... and so on."

    Documents found at hop [j] through a neighbor therefore cost [F^(j-1)]
    messages each batch, and both the hop-count goodness formula and the
    exponential RI's aggregation discount hop-[j] counts by [1/F^(j-1)]. *)

type t

val make : fanout:float -> t
(** @raise Invalid_argument unless [fanout > 1]. *)

val fanout : t -> float

val discount : t -> hop:int -> float
(** [discount m ~hop] is [1 /. fanout^(hop-1)] for [hop >= 1]: the
    weight of documents found [hop] forwardings away.
    @raise Invalid_argument if [hop < 1]. *)

val messages_to_horizon : t -> hops:int -> float
(** [1 + F + F² + ... + F^hops]: messages to exhaustively reach
    everything within [hops] of a node in the regular tree. *)

val hop_count_goodness : t -> per_hop_goodness:float array -> float
(** The paper's [goodness_hc]: [Σ_j per_hop.(j-1) / F^(j-1)], where
    [per_hop_goodness.(j-1)] is the estimated result count exactly [j]
    hops away.  Worked example (Section 6.1, F = 3): X with 13 results
    at one hop and 10 at two gives 13 + 10/3 = 16.33; Y with 0 and 31
    gives 10.33, "so we would prefer X over Y". *)
