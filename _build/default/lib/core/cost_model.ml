type t = { fanout : float }

let make ~fanout =
  if not (fanout > 1.) then invalid_arg "Cost_model.make: fanout must be > 1";
  { fanout }

let fanout t = t.fanout

let discount t ~hop =
  if hop < 1 then invalid_arg "Cost_model.discount: hop must be >= 1";
  1. /. (t.fanout ** float_of_int (hop - 1))

let messages_to_horizon t ~hops =
  if hops < 0 then invalid_arg "Cost_model.messages_to_horizon: negative hops";
  let rec go j acc = if j > hops then acc else go (j + 1) (acc +. (t.fanout ** float_of_int j)) in
  go 0 0.

let hop_count_goodness t ~per_hop_goodness =
  let acc = ref 0. in
  Array.iteri
    (fun i g -> acc := !acc +. (g *. discount t ~hop:(i + 1)))
    per_hop_goodness;
  !acc
