open Ri_content

let goodness (s : Summary.t) query =
  if s.total <= 0. then 0.
  else
    List.fold_left
      (fun acc topic -> acc *. (Summary.get s topic /. s.total))
      s.total query

let documents_per_message ~goodness ~messages =
  if messages <= 0. then 0. else goodness /. messages
