open Ri_content

type t = {
  fanout : float;
  width : int;
  mutable local : Summary.t;
  rows : (int, Summary.t) Hashtbl.t;
}

let check_width t s name =
  if Summary.topics s <> t.width then
    invalid_arg (Printf.sprintf "Eri.%s: summary width mismatch" name)

let create ~fanout ~width ~local =
  if not (fanout > 1.) then invalid_arg "Eri.create: fanout must be > 1";
  if width <= 0 then invalid_arg "Eri.create: width must be positive";
  let t = { fanout; width; local; rows = Hashtbl.create 8 } in
  check_width t local "create";
  t

let fanout t = t.fanout

let width t = t.width

let local t = t.local

let set_local t s =
  check_width t s "set_local";
  t.local <- s

let set_row t ~peer s =
  check_width t s "set_row";
  Hashtbl.replace t.rows peer s

let row t ~peer = Hashtbl.find_opt t.rows peer

let remove_row t ~peer = Hashtbl.remove t.rows peer

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.rows [] |> List.sort compare

let minus (a : Summary.t) (b : Summary.t) =
  Summary.make
    ~total:(Float.max 0. (a.total -. b.total))
    ~by_topic:
      (Array.init (Array.length a.by_topic) (fun i ->
           Float.max 0. (a.by_topic.(i) -. b.by_topic.(i))))

let aggregate_rows t =
  Hashtbl.fold (fun _ r acc -> Summary.add acc r) t.rows
    (Summary.zero ~topics:t.width)

let finish t rest = Summary.add t.local (Summary.scale rest (1. /. t.fanout))

let export t ~exclude =
  let rest =
    let agg = aggregate_rows t in
    match exclude with
    | None -> agg
    | Some peer -> (
        match row t ~peer with None -> agg | Some r -> minus agg r)
  in
  finish t rest

let export_all t =
  let agg = aggregate_rows t in
  peers t
  |> List.map (fun p -> (p, finish t (minus agg (Hashtbl.find t.rows p))))

let goodness t ~peer ~query =
  match row t ~peer with
  | None -> 0.
  | Some r -> Estimator.goodness r query
