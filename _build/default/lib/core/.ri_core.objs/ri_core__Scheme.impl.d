lib/core/scheme.ml: Array Compression Cost_model Cri Eri Float Format Hri List Option Ri_content Summary
