lib/core/estimator.mli: Ri_content
