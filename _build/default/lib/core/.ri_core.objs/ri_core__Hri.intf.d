lib/core/hri.mli: Cost_model Ri_content
