lib/core/cost_model.mli:
