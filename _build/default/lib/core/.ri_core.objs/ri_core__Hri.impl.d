lib/core/hri.ml: Array Cost_model Estimator Float Hashtbl List Printf Ri_content Summary
