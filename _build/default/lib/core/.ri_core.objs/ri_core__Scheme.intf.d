lib/core/scheme.mli: Format Ri_content Ri_util
