lib/core/cost_model.ml: Array
