lib/core/estimator.ml: List Ri_content Summary
