lib/core/eri.mli: Ri_content
