lib/core/eri.ml: Array Estimator Float Hashtbl List Printf Ri_content Summary
