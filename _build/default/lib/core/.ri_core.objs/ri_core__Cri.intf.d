lib/core/cri.mli: Ri_content
