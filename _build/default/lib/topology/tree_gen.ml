open Ri_util

let regular ~n ~fanout =
  if n <= 0 then invalid_arg "Tree_gen.regular: n must be positive";
  if fanout <= 0 then invalid_arg "Tree_gen.regular: fanout must be positive";
  let edges = List.init (n - 1) (fun i -> (i / fanout, i + 1)) in
  Graph.of_edges ~n edges

let random_labels g ~n ~fanout =
  if n <= 0 then invalid_arg "Tree_gen.random_labels: n must be positive";
  if fanout <= 0 then
    invalid_arg "Tree_gen.random_labels: fanout must be positive";
  let perm = Array.init n Fun.id in
  Prng.shuffle_in_place g perm;
  let edges =
    List.init (n - 1) (fun i -> (perm.(i / fanout), perm.(i + 1)))
  in
  Graph.of_edges ~n edges

let random_attachment g ~n ~max_children =
  if n <= 0 then invalid_arg "Tree_gen.random_attachment: n must be positive";
  if max_children <= 0 then
    invalid_arg "Tree_gen.random_attachment: max_children must be positive";
  let children = Array.make n 0 in
  (* Nodes that can still accept a child, as a swappable pool. *)
  let pool = Array.make n 0 in
  let pool_len = ref 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    let slot = Prng.int g !pool_len in
    let parent = pool.(slot) in
    edges := (parent, v) :: !edges;
    children.(parent) <- children.(parent) + 1;
    if children.(parent) >= max_children then begin
      (* Remove saturated parent from the pool. *)
      pool.(slot) <- pool.(!pool_len - 1);
      decr pool_len
    end;
    pool.(!pool_len) <- v;
    incr pool_len
  done;
  Graph.of_edges ~n !edges
