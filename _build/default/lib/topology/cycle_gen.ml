open Ri_util

let add_random_links g base ~extra =
  if extra < 0 then invalid_arg "Cycle_gen.add_random_links: negative extra";
  let n = Graph.n base in
  let capacity = (n * (n - 1) / 2) - Graph.edge_count base in
  if extra > capacity then
    invalid_arg "Cycle_gen.add_random_links: not enough absent pairs";
  let b = Graph.Builder.create ~n in
  List.iter (fun (u, v) -> ignore (Graph.Builder.add_edge b u v)) (Graph.edges base);
  let added = ref 0 in
  while !added < extra do
    let u = Prng.int g n and v = Prng.int g n in
    if u <> v && Graph.Builder.add_edge b u v then incr added
  done;
  Graph.Builder.to_graph b

let tree_with_cycles g ~n ~fanout ~extra_links =
  let tree = Tree_gen.random_labels g ~n ~fanout in
  add_random_links g tree ~extra:extra_links
