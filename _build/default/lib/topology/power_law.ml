open Ri_util

let generate g ~n ~exponent ?max_degree ?(min_degree = 1) () =
  if n < 2 then invalid_arg "Power_law.generate: need at least two nodes";
  if exponent >= 0. then
    invalid_arg "Power_law.generate: exponent must be negative";
  let max_degree =
    match max_degree with
    | Some d -> min d (n - 1)
    | None ->
        (* Hub degree grows sublinearly with network size, as in the
           Internet AS graphs the exponent is fitted to; a linear cap
           would make small networks unrealistically hub-centric (a
           2-hop ball around a hub covering most of the overlay). *)
        max min_degree (min (n - 1) (int_of_float (float_of_int n ** 0.45)))
  in
  let credits =
    Sampling.power_law_degrees g ~n ~exponent ~max_degree
    |> Array.map (max min_degree)
  in
  let b = Graph.Builder.create ~n in
  (* Pool of nodes with remaining credits; each node appears once and is
     dropped when its credits hit zero.  Pairing attempts that hit a
     duplicate edge or self-pair burn one try; after [max_tries] stalls we
     stop wiring credits (PLOD discards leftover credits the same way). *)
  let pool = Array.init n Fun.id in
  let pool_len = ref n in
  let drop slot =
    pool.(slot) <- pool.(!pool_len - 1);
    decr pool_len
  in
  let stalls = ref 0 in
  let max_stalls = 50 * n in
  while !pool_len >= 2 && !stalls < max_stalls do
    let si = Prng.int g !pool_len in
    let sj = Prng.int g !pool_len in
    if si = sj then incr stalls
    else begin
      let u = pool.(si) and v = pool.(sj) in
      if Graph.Builder.add_edge b u v then begin
        credits.(u) <- credits.(u) - 1;
        credits.(v) <- credits.(v) - 1;
        (* Drop the higher slot first so the lower slot stays valid. *)
        let hi = max si sj and lo = min si sj in
        let hi_node = pool.(hi) and lo_node = pool.(lo) in
        if credits.(hi_node) <= 0 then drop hi;
        if credits.(lo_node) <= 0 then
          (* [lo] still holds the same node: only the slot at [hi] moved. *)
          drop lo
      end
      else incr stalls
    end
  done;
  let draft = Graph.Builder.to_graph b in
  match Graph.component_representatives draft with
  | [] | [ _ ] -> draft
  | reps ->
      (* Bridge every smaller component to the giant one, each at a
         uniformly random member of the giant component — anchoring at a
         fixed node would graft an artificial mega-hub onto the degree
         distribution. *)
      let members rep =
        let dist = Graph.bfs_distances draft rep in
        let acc = ref [] in
        Array.iteri (fun v d -> if d < max_int then acc := v :: !acc) dist;
        Array.of_list !acc
      in
      let components = List.map (fun rep -> (rep, members rep)) reps in
      let _, giant =
        List.fold_left
          (fun ((_, best) as acc) ((_, m) as c) ->
            if Array.length m > Array.length best then c else acc)
          (List.hd components) (List.tl components)
      in
      let b = Graph.Builder.create ~n in
      List.iter
        (fun (u, v) -> ignore (Graph.Builder.add_edge b u v))
        (Graph.edges draft);
      List.iter
        (fun (rep, m) ->
          if m != giant then begin
            let anchor = Prng.pick g giant in
            ignore (Graph.Builder.add_edge b anchor rep)
          end)
        components;
      Graph.Builder.to_graph b
