(** Graph diagnostics.

    Used by the tests (checking that generated topologies have the shape
    the paper assumes) and by the experiment reports (e.g. the average
    path length argument behind Figure 17's power-law result). *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, how_many_nodes)] pairs, sorted by degree, zero-count
    degrees omitted. *)

val mean_degree : Graph.t -> float

val max_degree : Graph.t -> int

val estimated_power_law_exponent : Graph.t -> float
(** Least-squares slope of [log count] against [log degree] over the
    degree histogram (degrees with nonzero counts).  For a power-law
    graph this estimates the out-degree exponent [o]; expect a clearly
    negative value.  [nan] when fewer than two distinct degrees exist. *)

val average_path_length : ?samples:int -> Ri_util.Prng.t -> Graph.t -> float
(** Mean hop distance between reachable node pairs, estimated from BFS
    runs out of [samples] (default 32) random sources.  Exact when
    [samples >= n]. *)

val eccentricity : Graph.t -> int -> int
(** Longest hop distance from the given node to any reachable node. *)

val cyclomatic_number : Graph.t -> int
(** [m - n + c]: the number of independent cycles.  Zero exactly when the
    graph is a forest. *)

val is_tree : Graph.t -> bool
