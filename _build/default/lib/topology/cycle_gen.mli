(** Tree-plus-cycles topologies.

    The paper's second topology "starts with a tree and adds extra
    vertices [links] at random (creating cycles)" (Section 8.1); the base
    configuration adds [EL = 10] such links (Figure 12), and Figures 16
    and 19 sweep the number of added links up to 10000. *)

val add_random_links : Ri_util.Prng.t -> Graph.t -> extra:int -> Graph.t
(** [add_random_links g base ~extra] returns [base] plus [extra] new
    edges between uniformly chosen distinct non-adjacent node pairs.
    Every added link closes a cycle when [base] is connected.
    @raise Invalid_argument if the requested number of links cannot fit
    ([extra] exceeds the number of absent node pairs). *)

val tree_with_cycles :
  Ri_util.Prng.t -> n:int -> fanout:int -> extra_links:int -> Graph.t
(** Randomly labelled regular tree plus [extra_links] random links: the
    paper's "tree + cycles" topology. *)
