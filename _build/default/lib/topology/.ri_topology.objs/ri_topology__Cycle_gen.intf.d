lib/topology/cycle_gen.mli: Graph Ri_util
