lib/topology/power_law.ml: Array Fun Graph List Prng Ri_util Sampling
