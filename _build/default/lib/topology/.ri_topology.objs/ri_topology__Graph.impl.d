lib/topology/graph.ml: Array Fun Hashtbl List Queue
