lib/topology/metrics.mli: Graph Ri_util
