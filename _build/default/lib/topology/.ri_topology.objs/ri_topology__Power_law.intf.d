lib/topology/power_law.mli: Graph Ri_util
