lib/topology/cycle_gen.ml: Graph List Prng Ri_util Tree_gen
