lib/topology/tree_gen.ml: Array Fun Graph List Prng Ri_util
