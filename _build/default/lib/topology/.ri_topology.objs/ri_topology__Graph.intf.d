lib/topology/graph.mli:
