lib/topology/tree_gen.mli: Graph Ri_util
