lib/topology/metrics.ml: Array Float Fun Graph Hashtbl List Option Ri_util Sampling
