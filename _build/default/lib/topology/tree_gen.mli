(** Tree topologies.

    The paper's base topology is "a tree ... with branching factor 4"
    (Figure 12): a regular tree where every internal node has [F]
    children.  {!regular} builds exactly that shape; {!random_labels}
    additionally permutes the node identities so that document placement
    and query-origin choices are not correlated with construction
    order. *)

val regular : n:int -> fanout:int -> Graph.t
(** [regular ~n ~fanout] is the complete-by-levels tree on [n] nodes:
    node 0 is the root, node [i]'s parent is [(i - 1) / fanout].
    @raise Invalid_argument if [n <= 0] or [fanout <= 0]. *)

val random_labels : Ri_util.Prng.t -> n:int -> fanout:int -> Graph.t
(** Same shape as {!regular}, with node ids shuffled uniformly. *)

val random_attachment : Ri_util.Prng.t -> n:int -> max_children:int -> Graph.t
(** Random recursive tree with bounded branching: each new node attaches
    to a uniformly chosen existing node that still has fewer than
    [max_children] children.  A rougher, less regular tree shape for
    robustness experiments. *)
