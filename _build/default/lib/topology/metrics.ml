open Ri_util

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  Graph.iter_nodes
    (fun v ->
      let d = Graph.degree g v in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    g;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_degree g = 2. *. float_of_int (Graph.edge_count g) /. float_of_int (Graph.n g)

let max_degree g =
  let best = ref 0 in
  Graph.iter_nodes (fun v -> best := max !best (Graph.degree g v)) g;
  !best

let estimated_power_law_exponent g =
  let pts =
    degree_histogram g
    |> List.filter (fun (d, c) -> d > 0 && c > 0)
    |> List.map (fun (d, c) -> (log (float_of_int d), log (float_of_int c)))
  in
  match pts with
  | [] | [ _ ] -> nan
  | _ ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then nan
      else ((n *. sxy) -. (sx *. sy)) /. denom

let average_path_length ?(samples = 32) rng g =
  let n = Graph.n g in
  let srcs =
    if samples >= n then Array.init n Fun.id
    else Sampling.choose_distinct rng ~k:samples ~n
  in
  let total = ref 0. and pairs = ref 0 in
  Array.iter
    (fun src ->
      let dist = Graph.bfs_distances g src in
      Array.iteri
        (fun v d ->
          if v <> src && d < max_int then begin
            total := !total +. float_of_int d;
            incr pairs
          end)
        dist)
    srcs;
  if !pairs = 0 then nan else !total /. float_of_int !pairs

let eccentricity g v =
  let dist = Graph.bfs_distances g v in
  Array.fold_left
    (fun acc d -> if d < max_int && d > acc then d else acc)
    0 dist

let cyclomatic_number g =
  let c = List.length (Graph.component_representatives g) in
  Graph.edge_count g - Graph.n g + c

let is_tree g = cyclomatic_number g = 0 && Graph.is_connected g
