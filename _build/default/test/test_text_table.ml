(* Table rendering used by the bench harness. *)

open Ri_util

let test_render_alignment () =
  let t = Text_table.create ~header:[ "name"; "value" ] () in
  Text_table.add_row t [ "a"; "1" ];
  Text_table.add_row t [ "longer"; "23" ];
  let out = Text_table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check int) "rule matches header width" (String.length header)
        (String.length rule)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool) "right-aligned number column" true
    (Astring.String.is_infix ~affix:"    23" out
    || Astring.String.is_infix ~affix:" 23" out)

let test_row_width_check () =
  let t = Text_table.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Text_table.add_row: wrong number of cells") (fun () ->
      Text_table.add_row t [ "only-one" ])

let test_aligns_validation () =
  Alcotest.check_raises "aligns mismatch"
    (Invalid_argument "Text_table.create: aligns/header width mismatch")
    (fun () ->
      ignore (Text_table.create ~aligns:[ Text_table.Left ] ~header:[ "a"; "b" ] ()))

let test_rule_insertion () =
  let t = Text_table.create ~header:[ "x" ] () in
  Text_table.add_row t [ "1" ];
  Text_table.add_rule t;
  Text_table.add_row t [ "2" ];
  let lines =
    Text_table.render t |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "5 lines: header, rule, row, rule, row" 5
    (List.length lines)

let test_cells () =
  Alcotest.(check string) "float" "3.1" (Text_table.cell_float 3.14);
  Alcotest.(check string) "decimals" "3.142" (Text_table.cell_float ~decimals:3 3.1416);
  Alcotest.(check string) "nan" "-" (Text_table.cell_float Float.nan);
  Alcotest.(check string) "int" "42" (Text_table.cell_int 42)

let suite =
  ( "text_table",
    [
      Alcotest.test_case "render alignment" `Quick test_render_alignment;
      Alcotest.test_case "row width check" `Quick test_row_width_check;
      Alcotest.test_case "aligns validation" `Quick test_aligns_validation;
      Alcotest.test_case "rule insertion" `Quick test_rule_insertion;
      Alcotest.test_case "cell formatting" `Quick test_cells;
    ] )
