(* The regular-tree cost model of Section 6.1. *)

open Ri_core

let m = Cost_model.make ~fanout:3.

let test_validation () =
  Alcotest.check_raises "fanout 1" (Invalid_argument "Cost_model.make: fanout must be > 1")
    (fun () -> ignore (Cost_model.make ~fanout:1.));
  Alcotest.(check (float 1e-9)) "fanout accessor" 3. (Cost_model.fanout m)

let test_discount () =
  Alcotest.(check (float 1e-9)) "hop 1" 1. (Cost_model.discount m ~hop:1);
  Alcotest.(check (float 1e-9)) "hop 2" (1. /. 3.) (Cost_model.discount m ~hop:2);
  Alcotest.(check (float 1e-9)) "hop 3" (1. /. 9.) (Cost_model.discount m ~hop:3);
  Alcotest.check_raises "hop 0" (Invalid_argument "Cost_model.discount: hop must be >= 1")
    (fun () -> ignore (Cost_model.discount m ~hop:0))

let test_messages_to_horizon () =
  (* "1 message for the root, 1 + F for one hop, 1 + F + F² for two". *)
  Alcotest.(check (float 1e-9)) "zero hops" 1. (Cost_model.messages_to_horizon m ~hops:0);
  Alcotest.(check (float 1e-9)) "one hop" 4. (Cost_model.messages_to_horizon m ~hops:1);
  Alcotest.(check (float 1e-9)) "two hops" 13. (Cost_model.messages_to_horizon m ~hops:2)

let test_paper_goodness_example () =
  (* Section 6.1, F = 3: X has 13 DB results at one hop and 10 at two:
     13 + 10/3 = 16.33; Y has 0 and 31: 31/3 = 10.33; "so we would
     prefer X over Y". *)
  let x = Cost_model.hop_count_goodness m ~per_hop_goodness:[| 13.; 10. |] in
  let y = Cost_model.hop_count_goodness m ~per_hop_goodness:[| 0.; 31. |] in
  Alcotest.(check (float 0.01)) "X" 16.33 x;
  Alcotest.(check (float 0.01)) "Y" 10.33 y;
  Alcotest.(check bool) "prefer X" true (x > y)

let test_goodness_empty () =
  Alcotest.(check (float 1e-9)) "no hops" 0.
    (Cost_model.hop_count_goodness m ~per_hop_goodness:[||])

let prop_goodness_bounded_by_undiscounted_sum =
  QCheck.Test.make ~name:"discounted goodness <= plain sum" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 8) (float_range 0. 100.))
    (fun per_hop ->
      Cost_model.hop_count_goodness m ~per_hop_goodness:per_hop
      <= Array.fold_left ( +. ) 0. per_hop +. 1e-9)

let prop_closer_documents_worth_more =
  QCheck.Test.make ~name:"moving documents a hop closer raises goodness"
    ~count:200
    QCheck.(pair (float_range 1. 100.) (int_range 0 5))
    (fun (docs, hop) ->
      let far = Array.make 8 0. and near = Array.make 8 0. in
      far.(hop + 1) <- docs;
      near.(hop) <- docs;
      Cost_model.hop_count_goodness m ~per_hop_goodness:near
      > Cost_model.hop_count_goodness m ~per_hop_goodness:far)

let suite =
  ( "cost_model",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "discount" `Quick test_discount;
      Alcotest.test_case "messages to horizon" `Quick test_messages_to_horizon;
      Alcotest.test_case "paper example (16.33 / 10.33)" `Quick test_paper_goodness_example;
      Alcotest.test_case "empty" `Quick test_goodness_empty;
      QCheck_alcotest.to_alcotest prop_goodness_bounded_by_undiscounted_sum;
      QCheck_alcotest.to_alcotest prop_closer_documents_worth_more;
    ] )
