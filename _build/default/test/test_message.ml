(* Message counters and byte-cost accounting. *)

open Ri_p2p

let test_counters () =
  let c = Message.create () in
  Alcotest.(check int) "empty" 0 (Message.total_messages c);
  c.Message.query_forwards <- 3;
  c.Message.query_returns <- 2;
  c.Message.result_messages <- 1;
  c.Message.update_messages <- 7;
  Alcotest.(check int) "query messages" 6 (Message.query_messages c);
  Alcotest.(check int) "total" 13 (Message.total_messages c);
  Message.reset c;
  Alcotest.(check int) "reset" 0 (Message.total_messages c)

let test_add () =
  let a = Message.create () and b = Message.create () in
  a.Message.query_forwards <- 1;
  b.Message.query_forwards <- 2;
  b.Message.update_messages <- 5;
  Message.add a b;
  Alcotest.(check int) "forwards" 3 a.Message.query_forwards;
  Alcotest.(check int) "updates" 5 a.Message.update_messages;
  (* The source is unchanged. *)
  Alcotest.(check int) "source intact" 2 b.Message.query_forwards

let test_paper_byte_costs () =
  (* Figure 12: queries 250 B, updates 1000 B. *)
  Alcotest.(check int) "query size" 250
    Message.paper_base_bytes.Message.query_bytes;
  Alcotest.(check int) "update size" 1000
    Message.paper_base_bytes.Message.update_bytes;
  (* Figure 20: 70 B queries, 3500 B updates (1750 2-byte buckets). *)
  Alcotest.(check int) "gnutella query" 70
    Message.gnutella_bytes.Message.query_bytes;
  Alcotest.(check int) "gnutella update" 3500
    Message.gnutella_bytes.Message.update_bytes

let test_bytes_of () =
  let c = Message.create () in
  c.Message.query_forwards <- 2;
  c.Message.query_returns <- 1;
  c.Message.result_messages <- 3;
  c.Message.update_messages <- 4;
  (* 3 query msgs x 250 + 3 results x 250 + 4 updates x 1000. *)
  Alcotest.(check (float 1e-9)) "priced" 5500.
    (Message.bytes_of Message.paper_base_bytes c);
  Alcotest.(check (float 1e-9)) "empty is free" 0.
    (Message.bytes_of Message.paper_base_bytes (Message.create ()))

let test_pp () =
  let c = Message.create () in
  c.Message.query_forwards <- 9;
  let s = Format.asprintf "%a" Message.pp c in
  Alcotest.(check bool) "mentions forwards" true
    (Astring.String.is_infix ~affix:"forwards=9" s)

let suite =
  ( "message",
    [
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "add" `Quick test_add;
      Alcotest.test_case "paper byte costs" `Quick test_paper_byte_costs;
      Alcotest.test_case "bytes_of" `Quick test_bytes_of;
      Alcotest.test_case "pp" `Quick test_pp;
    ] )
