(* Query processing: the Figure 7 algorithm, the No-RI baseline and
   flooding, on hand-built networks with known answers. *)

open Ri_util
open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let universe = Topic.make 2

(* A network whose ground truth we control: node [v] holds
   [matches.(v)] documents answering the (single-topic) query, and the
   summaries reflect exactly that. *)
let net_of ?scheme ?cycle_policy ?mode ~edges ~matches () =
  let n = Array.length matches in
  let graph = Graph.of_edges ~n edges in
  let content =
    {
      Network.summary =
        (fun v -> Summary.of_counts ~total:matches.(v) ~by_topic:[| matches.(v); 0 |]);
      count_matching = (fun v _ -> matches.(v));
    }
  in
  Network.create ~graph ~content ?scheme ?cycle_policy ?mode ()

let query stop = Workload.query ~topics:[ 0 ] ~stop

(* Figure 2/3 overlay (A..J = 0..9), documents on the D-I-J side. *)
let paper_edges =
  [ (0, 1); (0, 2); (0, 3); (1, 4); (1, 5); (2, 6); (6, 7); (3, 8); (3, 9) ]

let test_ri_query_follows_goodness () =
  (* A's best path for this query is D (45 docs); D's best child is I. *)
  let matches = [| 1; 0; 0; 45; 0; 0; 0; 0; 25; 8 |] in
  let net = net_of ~scheme:Scheme.Cri_kind ~edges:paper_edges ~matches () in
  let o = Query.run net ~origin:0 ~query:(query 50) ~forwarding:Query.Ri_guided in
  Alcotest.(check bool) "satisfied" true o.Query.satisfied;
  Alcotest.(check int) "found = 1 + 45 + 25" 71 o.Query.found;
  (* Route: A -> D -> I, two forwards, no returns needed. *)
  Alcotest.(check int) "forwards" 2 o.Query.counters.Message.query_forwards;
  Alcotest.(check int) "returns" 0 o.Query.counters.Message.query_returns;
  Alcotest.(check int) "result messages from A, D, I" 3
    o.Query.counters.Message.result_messages;
  Alcotest.(check int) "visited" 3 o.Query.nodes_visited

let test_ri_query_backtracks () =
  (* I alone cannot satisfy; the query returns to D and continues to J
     ("it returns the query to D which forwards it to its best next
     neighbor J", Section 4.1). *)
  let matches = [| 0; 0; 0; 0; 0; 0; 0; 0; 25; 8 |] in
  let net = net_of ~scheme:Scheme.Cri_kind ~edges:paper_edges ~matches () in
  let o = Query.run net ~origin:0 ~query:(query 30) ~forwarding:Query.Ri_guided in
  Alcotest.(check bool) "satisfied" true o.Query.satisfied;
  Alcotest.(check int) "found" 33 o.Query.found;
  (* A->D, D->I, I returns, D->J. *)
  Alcotest.(check int) "forwards" 3 o.Query.counters.Message.query_forwards;
  Alcotest.(check int) "returns" 1 o.Query.counters.Message.query_returns

let test_unsatisfiable_query_visits_everything () =
  let matches = Array.make 10 0 in
  let net = net_of ~scheme:Scheme.Cri_kind ~edges:paper_edges ~matches () in
  let o = Query.run net ~origin:0 ~query:(query 5) ~forwarding:Query.Ri_guided in
  Alcotest.(check bool) "unsatisfied" false o.Query.satisfied;
  Alcotest.(check int) "found nothing" 0 o.Query.found;
  Alcotest.(check int) "visited all" 10 o.Query.nodes_visited;
  (* Every edge crossed forward once and returned once, except that the
     origin does not return to anyone. *)
  Alcotest.(check int) "forwards = edges" 9 o.Query.counters.Message.query_forwards;
  Alcotest.(check int) "returns = edges" 9 o.Query.counters.Message.query_returns

let test_stop_at_origin () =
  let matches = [| 10; 0; 0 |] in
  let net = net_of ~scheme:Scheme.Cri_kind ~edges:[ (0, 1); (1, 2) ] ~matches () in
  let o = Query.run net ~origin:0 ~query:(query 10) ~forwarding:Query.Ri_guided in
  Alcotest.(check bool) "satisfied locally" true o.Query.satisfied;
  Alcotest.(check int) "no forwards" 0 o.Query.counters.Message.query_forwards;
  Alcotest.(check int) "one result message" 1 o.Query.counters.Message.result_messages

let test_random_walk_terminates_and_finds_all () =
  let matches = [| 0; 3; 0; 2; 0; 1; 0; 4; 0; 1 |] in
  let net = net_of ~edges:paper_edges ~matches () in
  let rng = Prng.create 5 in
  let o =
    Query.run ~rng net ~origin:0 ~query:(query 11) ~forwarding:Query.Random_walk
  in
  Alcotest.(check bool) "satisfied" true o.Query.satisfied;
  Alcotest.(check int) "found everything" 11 o.Query.found

let test_ri_guided_needs_ri () =
  let net = net_of ~edges:[ (0, 1) ] ~matches:[| 0; 0 |] () in
  Alcotest.check_raises "needs RI"
    (Invalid_argument "Query.run: Ri_guided needs a network with routing indices")
    (fun () ->
      ignore (Query.run net ~origin:0 ~query:(query 1) ~forwarding:Query.Ri_guided))

let test_origin_range () =
  let net = net_of ~edges:[ (0, 1) ] ~matches:[| 0; 0 |] () in
  Alcotest.check_raises "origin" (Invalid_argument "Query.run: origin out of range")
    (fun () ->
      ignore (Query.run net ~origin:7 ~query:(query 1) ~forwarding:Query.Random_walk))

let test_detect_policy_bounces_revisits () =
  (* Diamond 0-1, 0-2, 1-3, 2-3 plus a tail 3-4 holding the documents.
     Rooted at 0, node 3 is reachable through both 1 and 2; after
     exhausting the first path the query crosses the second parent and
     bounces off the visited node. *)
  let matches = [| 0; 0; 0; 0; 9 |] in
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  let net =
    net_of ~scheme:Scheme.Cri_kind ~cycle_policy:Network.Detect_recover
      ~mode:(Network.Rooted 0) ~edges ~matches ()
  in
  let o = Query.run net ~origin:0 ~query:(query 20) ~forwarding:Query.Ri_guided in
  Alcotest.(check int) "found the tail docs once" 9 o.Query.found;
  Alcotest.(check bool) "revisit cost appears" true
    (o.Query.counters.Message.query_forwards > o.Query.nodes_visited - 1)

let test_results_counted_once_under_noop () =
  let matches = [| 0; 0; 0; 7; 0 |] in
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  let net =
    net_of ~scheme:Scheme.Cri_kind ~cycle_policy:Network.No_op
      ~mode:(Network.Rooted 0) ~edges ~matches ()
  in
  let o = Query.run net ~origin:0 ~query:(query 20) ~forwarding:Query.Ri_guided in
  Alcotest.(check int) "7 docs counted once despite revisits" 7 o.Query.found

let test_flood_counts () =
  (* Flooding the Figure 3 tree: one forward per link = 9 messages, the
     paper's own count for this network. *)
  let matches = Array.make 10 0 in
  matches.(8) <- 5;
  let net = net_of ~edges:paper_edges ~matches () in
  let o = Query.flood net ~origin:0 ~query:(query 50) () in
  Alcotest.(check int) "forwards = 9" 9 o.Query.counters.Message.query_forwards;
  Alcotest.(check int) "everything explored" 10 o.Query.nodes_visited;
  Alcotest.(check int) "all results found" 5 o.Query.found

let test_flood_counts_duplicates_on_cycles () =
  (* On a triangle, the two non-origin nodes forward to each other:
     those duplicate deliveries are dropped but still cost messages. *)
  let net = net_of ~edges:[ (0, 1); (0, 2); (1, 2) ] ~matches:[| 0; 0; 0 |] () in
  let o = Query.flood net ~origin:0 ~query:(query 1) () in
  Alcotest.(check int) "2 + 2 duplicates" 4 o.Query.counters.Message.query_forwards;
  Alcotest.(check int) "three nodes processed" 3 o.Query.nodes_visited

let test_flood_ttl () =
  (* Path 0-1-2-3: TTL 1 reaches only node 1. *)
  let matches = [| 0; 2; 0; 7 |] in
  let net = net_of ~edges:[ (0, 1); (1, 2); (2, 3) ] ~matches () in
  let o = Query.flood net ~origin:0 ~query:(query 9) ~ttl:1 () in
  Alcotest.(check int) "only near result" 2 o.Query.found;
  Alcotest.(check int) "two nodes" 2 o.Query.nodes_visited;
  Alcotest.(check bool) "not satisfied" false o.Query.satisfied

let test_flood_ignores_stop_condition () =
  let matches = [| 5; 5; 5 |] in
  let net = net_of ~edges:[ (0, 1); (1, 2) ] ~matches () in
  let o = Query.flood net ~origin:0 ~query:(query 1) () in
  Alcotest.(check int) "collects everything anyway" 15 o.Query.found

let prop_ri_and_random_find_same_results_when_exhaustive =
  QCheck.Test.make
    ~name:"exhaustive RI and random searches find every result" ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 30))
    (fun (n, docs) ->
      let rng = Prng.create (n + (docs * 131)) in
      let graph = Tree_gen.random_labels rng ~n ~fanout:3 in
      let matches = Array.make n 0 in
      for _ = 1 to docs do
        let v = Prng.int rng n in
        matches.(v) <- matches.(v) + 1
      done;
      let content =
        {
          Network.summary =
            (fun v ->
              Summary.of_counts ~total:matches.(v) ~by_topic:[| matches.(v); 0 |]);
          count_matching = (fun v _ -> matches.(v));
        }
      in
      let net = Network.create ~graph ~content ~scheme:Scheme.Cri_kind () in
      let q = Workload.query ~topics:[ 0 ] ~stop:(docs + 1) in
      let ri = Query.run net ~origin:0 ~query:q ~forwarding:Query.Ri_guided in
      let rand = Query.run ~rng net ~origin:0 ~query:q ~forwarding:Query.Random_walk in
      ri.Query.found = docs && rand.Query.found = docs)

let prop_query_messages_bounded =
  QCheck.Test.make ~name:"query traffic is bounded by twice the links" ~count:40
    QCheck.(int_range 2 60)
    (fun n ->
      let rng = Prng.create n in
      let graph = Tree_gen.random_labels rng ~n ~fanout:4 in
      let matches = Array.make n 0 in
      let content =
        {
          Network.summary = (fun _ -> Summary.zero ~topics:2);
          count_matching = (fun v _ -> matches.(v));
        }
      in
      let net = Network.create ~graph ~content ~scheme:Scheme.Cri_kind () in
      let q = Workload.query ~topics:[ 0 ] ~stop:1 in
      let o = Query.run net ~origin:(n / 2) ~query:q ~forwarding:Query.Ri_guided in
      o.Query.counters.Message.query_forwards <= 2 * (n - 1)
      && o.Query.counters.Message.query_returns
         <= o.Query.counters.Message.query_forwards)

let suite =
  ( "query",
    [
      Alcotest.test_case "RI query follows goodness" `Quick test_ri_query_follows_goodness;
      Alcotest.test_case "RI query backtracks" `Quick test_ri_query_backtracks;
      Alcotest.test_case "unsatisfiable visits everything" `Quick test_unsatisfiable_query_visits_everything;
      Alcotest.test_case "stop at origin" `Quick test_stop_at_origin;
      Alcotest.test_case "random walk exhaustive" `Quick test_random_walk_terminates_and_finds_all;
      Alcotest.test_case "RI-guided needs RI" `Quick test_ri_guided_needs_ri;
      Alcotest.test_case "origin range" `Quick test_origin_range;
      Alcotest.test_case "detect bounces revisits" `Quick test_detect_policy_bounces_revisits;
      Alcotest.test_case "results counted once (no-op)" `Quick test_results_counted_once_under_noop;
      Alcotest.test_case "flood counts (paper: 9 messages)" `Quick test_flood_counts;
      Alcotest.test_case "flood duplicate costs" `Quick test_flood_counts_duplicates_on_cycles;
      Alcotest.test_case "flood TTL" `Quick test_flood_ttl;
      Alcotest.test_case "flood ignores stop" `Quick test_flood_ignores_stop_condition;
      QCheck_alcotest.to_alcotest prop_ri_and_random_find_same_results_when_exhaustive;
      QCheck_alcotest.to_alcotest prop_query_messages_bounded;
    ] )
