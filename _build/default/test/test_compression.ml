(* Approximate indices: bucket consolidation and the Gaussian error
   model of Section 8.2 / Appendix A. *)

open Ri_util
open Ri_content

let test_of_ratio_bucket_counts () =
  (* The paper's compression levels on the 30-topic base universe. *)
  let buckets ratio =
    match Compression.of_ratio ~topics:30 ~ratio ~mode:Compression.Overcount with
    | Compression.Exact -> 30
    | Compression.Buckets { buckets; _ } -> buckets
    | Compression.Grouped { groups; _ } -> groups
  in
  Alcotest.(check int) "0%" 30 (buckets 0.0);
  Alcotest.(check int) "50%" 15 (buckets 0.50);
  Alcotest.(check int) "67%" 10 (buckets 0.67);
  Alcotest.(check int) "75%" 8 (buckets 0.75);
  Alcotest.(check int) "80%" 6 (buckets 0.80);
  Alcotest.(check int) "83%" 5 (buckets 0.83)

let test_of_ratio_validation () =
  Alcotest.check_raises "ratio 1"
    (Invalid_argument "Compression.of_ratio: ratio must be in [0, 1)")
    (fun () ->
      ignore
        (Compression.of_ratio ~topics:4 ~ratio:1.0 ~mode:Compression.Overcount))

let test_ratio_and_width () =
  let c = Compression.of_ratio ~topics:30 ~ratio:0.5 ~mode:Compression.Overcount in
  Alcotest.(check (float 1e-9)) "achieved ratio" 0.5 (Compression.ratio ~topics:30 c);
  Alcotest.(check int) "width" 15 (Compression.width ~topics:30 c);
  Alcotest.(check int) "exact width" 30 (Compression.width ~topics:30 Compression.exact);
  Alcotest.(check (float 1e-9)) "exact ratio" 0. (Compression.ratio ~topics:30 Compression.exact)

let test_project_topic () =
  let c = Compression.Buckets { buckets = 3; mode = Compression.Overcount } in
  Alcotest.(check int) "t0" 0 (Compression.project_topic c 0);
  Alcotest.(check int) "t4 -> bucket 1" 1 (Compression.project_topic c 4);
  Alcotest.(check int) "exact identity" 7
    (Compression.project_topic Compression.exact 7)

(* The paper's example: 3 "database" documents and 2 "network" ones hash
   to the same bucket; the consolidated bucket reads 5 (overcount). *)
let db_net_summary = Summary.make ~total:5. ~by_topic:[| 3.; 2. |]

let test_overcount_mode () =
  let c = Compression.Buckets { buckets = 1; mode = Compression.Overcount } in
  let p = Compression.project_summary c db_net_summary in
  Alcotest.(check int) "width 1" 1 (Summary.topics p);
  Alcotest.(check (float 1e-9)) "bucket sums to 5" 5. (Summary.get p 0);
  Alcotest.(check (float 1e-9)) "total preserved" 5. p.Summary.total

let test_undercount_mode () =
  let c = Compression.Buckets { buckets = 1; mode = Compression.Undercount } in
  let p = Compression.project_summary c db_net_summary in
  Alcotest.(check (float 1e-9)) "bucket takes min" 2. (Summary.get p 0)

let test_mixed_mode () =
  let c = Compression.Buckets { buckets = 1; mode = Compression.Mixed } in
  let p = Compression.project_summary c db_net_summary in
  Alcotest.(check (float 1e-9)) "bucket averages" 2.5 (Summary.get p 0)

let test_empty_bucket () =
  (* 2 buckets over 3 topics: bucket 1 holds only topic 1. *)
  let c = Compression.Buckets { buckets = 2; mode = Compression.Overcount } in
  let s = Summary.make ~total:6. ~by_topic:[| 1.; 2.; 3. |] in
  let p = Compression.project_summary c s in
  Alcotest.(check (float 1e-9)) "bucket0 = t0+t2" 4. (Summary.get p 0);
  Alcotest.(check (float 1e-9)) "bucket1 = t1" 2. (Summary.get p 1)

let test_exact_is_identity () =
  let p = Compression.project_summary Compression.exact db_net_summary in
  Alcotest.(check bool) "identity" true (Summary.approx_equal p db_net_summary)

let test_perturb_kinds () =
  let s = Summary.make ~total:100. ~by_topic:[| 40.; 60. |] in
  let rng = Prng.create 1 in
  for _ = 1 to 50 do
    let over =
      Compression.perturb rng ~relative_stddev:0.2 ~kind:Compression.Overcount s
    in
    Alcotest.(check bool) "overcount raises entries" true
      (Summary.get over 0 >= 40. && Summary.get over 1 >= 60.);
    let under =
      Compression.perturb rng ~relative_stddev:0.2 ~kind:Compression.Undercount s
    in
    Alcotest.(check bool) "undercount lowers entries" true
      (Summary.get under 0 <= 40. && Summary.get under 1 <= 60.);
    Alcotest.(check bool) "entries stay non-negative" true
      (Array.for_all (fun x -> x >= 0.) under.Summary.by_topic)
  done

let test_perturb_zero_entries_stay_zero () =
  let s = Summary.make ~total:10. ~by_topic:[| 0.; 10. |] in
  let rng = Prng.create 2 in
  let p = Compression.perturb rng ~relative_stddev:0.5 ~kind:Compression.Mixed s in
  Alcotest.(check (float 1e-9)) "zero entry untouched" 0. (Summary.get p 0)

let test_perturb_total_covers_entries () =
  let s = Summary.make ~total:10. ~by_topic:[| 10. |] in
  let rng = Prng.create 3 in
  for _ = 1 to 50 do
    let p =
      Compression.perturb rng ~relative_stddev:0.5 ~kind:Compression.Mixed s
    in
    Alcotest.(check bool) "total >= max entry" true
      (p.Summary.total >= Summary.get p 0)
  done

let prop_overcount_never_underreads =
  (* For any summary and any query topic, the bucket a topic lands in
     reads at least the topic's true count under sum consolidation —
     exactly why the paper calls these overcounts. *)
  QCheck.Test.make ~name:"sum-consolidation only overcounts" ~count:200
    QCheck.(
      pair (int_range 1 6)
        (array_of_size Gen.(return 12) (float_range 0. 100.)))
    (fun (buckets, counts) ->
      let c = Compression.Buckets { buckets; mode = Compression.Overcount } in
      let s = Summary.make ~total:(Ri_util.Vecf.sum counts) ~by_topic:counts in
      let p = Compression.project_summary c s in
      List.for_all
        (fun t -> Summary.get p (Compression.project_topic c t) >= counts.(t) -. 1e-9)
        (List.init 12 Fun.id))

let suite =
  ( "compression",
    [
      Alcotest.test_case "ratio -> bucket counts" `Quick test_of_ratio_bucket_counts;
      Alcotest.test_case "ratio validation" `Quick test_of_ratio_validation;
      Alcotest.test_case "ratio and width" `Quick test_ratio_and_width;
      Alcotest.test_case "project topic" `Quick test_project_topic;
      Alcotest.test_case "overcount mode" `Quick test_overcount_mode;
      Alcotest.test_case "undercount mode" `Quick test_undercount_mode;
      Alcotest.test_case "mixed mode" `Quick test_mixed_mode;
      Alcotest.test_case "empty bucket" `Quick test_empty_bucket;
      Alcotest.test_case "exact identity" `Quick test_exact_is_identity;
      Alcotest.test_case "perturb kinds" `Quick test_perturb_kinds;
      Alcotest.test_case "perturb zero entries" `Quick test_perturb_zero_entries_stay_zero;
      Alcotest.test_case "perturb total consistency" `Quick test_perturb_total_covers_entries;
      QCheck_alcotest.to_alcotest prop_overcount_never_underreads;
    ] )
