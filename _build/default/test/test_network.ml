(* Network construction: converged and rooted RI states, content
   plumbing, compression projection. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let universe = Topic.paper_example

(* The paper's running example as actual document databases:
   A=0, B=1, C=2, D=3, I=4, J=5 with links A-B, A-C, A-D, D-I, D-J.
   Locals match Figure 4/5: A (300: 30/80/0/10), B (100: 20/0/10/30),
   C (1000: 0/300/0/50), D (200: 100/0/100/150), I (50: 25/0/15/50),
   J (50: 15/0/25/25). *)
let locals =
  [|
    (300, [| 30; 80; 0; 10 |]);
    (100, [| 20; 0; 10; 30 |]);
    (1000, [| 0; 300; 0; 50 |]);
    (200, [| 100; 0; 100; 150 |]);
    (50, [| 25; 0; 15; 50 |]);
    (50, [| 15; 0; 25; 25 |]);
  |]

let paper_graph () =
  Graph.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (3, 4); (3, 5) ]

let paper_content () =
  {
    Network.summary =
      (fun v ->
        let total, by_topic = locals.(v) in
        Summary.of_counts ~total ~by_topic);
    count_matching = (fun _ _ -> 0);
  }

let make ?scheme ?compression ?cycle_policy ?mode () =
  Network.create ~graph:(paper_graph ()) ~content:(paper_content ()) ?scheme
    ?compression ?cycle_policy ?mode ()

let get_row net v peer =
  match Scheme.row (Network.ri net v) ~peer with
  | Some (Scheme.Vector s) -> s
  | Some (Scheme.Hop_vector _) -> Alcotest.fail "unexpected hop vector"
  | None -> Alcotest.fail (Printf.sprintf "missing row %d at %d" peer v)

let check_row msg net v peer (total, by_topic) =
  let r = get_row net v peer in
  Alcotest.(check bool) msg true
    (Summary.approx_equal ~eps:1e-6 r (Summary.of_counts ~total ~by_topic))

let test_figure4_converged_cri () =
  let net = make ~scheme:Scheme.Cri_kind () in
  (* Figure 5(b): D's row for A is the aggregate (1400, 50, 380, 10, 90);
     A's rows for B and C are their local summaries; D's rows for I and
     J likewise. *)
  check_row "D's row for A" net 3 0 (1400, [| 50; 380; 10; 90 |]);
  check_row "A's row for B" net 0 1 (100, [| 20; 0; 10; 30 |]);
  check_row "A's row for C" net 0 2 (1000, [| 0; 300; 0; 50 |]);
  check_row "A's row for D" net 0 3 (300, [| 140; 0; 140; 225 |]);
  check_row "D's row for I" net 3 4 (50, [| 25; 0; 15; 50 |]);
  (* I's row for D per the aggregation rule: D's local plus the rows for
     A and J — 200 + 1400 + 50 documents. *)
  check_row "I's row for D" net 4 3 (1650, [| 165; 380; 135; 265 |])

let test_structure_accessors () =
  let net = make ~scheme:Scheme.Cri_kind () in
  Alcotest.(check int) "size" 6 (Network.size net);
  Alcotest.(check int) "degree of A" 3 (Network.degree net 0);
  Alcotest.(check bool) "link present" true (Network.has_link net 0 3);
  Alcotest.(check bool) "link absent" false (Network.has_link net 1 2);
  Alcotest.(check bool) "has RI" true (Network.has_ri net);
  Alcotest.(check int) "one pass" 1 (Network.converged_iterations net)

let test_no_ri_network () =
  let net = make () in
  Alcotest.(check bool) "no RI" false (Network.has_ri net);
  Alcotest.check_raises "ri accessor" (Invalid_argument "Network.ri: No-RI network")
    (fun () -> ignore (Network.ri net 0));
  Alcotest.(check (list Alcotest.reject)) "no exports" []
    (List.map (fun _ -> assert false) (Network.outgoing_exports net 0))

let test_rooted_matches_converged_on_tree () =
  (* On a tree, the rooted construction restricted to the directions a
     query can take equals the converged rows. *)
  let conv = make ~scheme:Scheme.Cri_kind () in
  let rooted = make ~scheme:Scheme.Cri_kind ~mode:(Network.Rooted 0) () in
  List.iter
    (fun (v, peer) ->
      Alcotest.(check bool)
        (Printf.sprintf "row %d->%d" v peer)
        true
        (Summary.approx_equal ~eps:1e-6 (get_row conv v peer)
           (get_row rooted v peer)))
    [ (0, 1); (0, 2); (0, 3); (3, 4); (3, 5) ];
  (* And the rooted RI holds no upstream rows. *)
  Alcotest.(check bool) "no row back to the origin" true
    (Scheme.row (Network.ri rooted 3) ~peer:0 = None)

let test_rooted_origin_validation () =
  Alcotest.check_raises "origin range"
    (Invalid_argument "Network.create: rooted origin out of range") (fun () ->
      ignore (make ~scheme:Scheme.Cri_kind ~mode:(Network.Rooted 17) ()))

let test_cri_noop_cycles_rejected () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let content =
    { Network.summary = (fun _ -> Summary.of_counts ~total:1 ~by_topic:[| 1 |]);
      count_matching = (fun _ _ -> 0) }
  in
  Alcotest.check_raises "cri noop cyclic"
    (Invalid_argument
       "Network.create: a compound RI under the no-op cycle policy does not \
        terminate on a cyclic network (paper, Section 7)") (fun () ->
      ignore
        (Network.create ~graph:g ~content ~scheme:Scheme.Cri_kind
           ~cycle_policy:Network.No_op ()))

let test_cyclic_rows_exist_on_all_links () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let content =
    { Network.summary = (fun v -> Summary.of_counts ~total:(v + 1) ~by_topic:[| v + 1 |]);
      count_matching = (fun _ _ -> 0) }
  in
  let net = Network.create ~graph:g ~content ~scheme:(Scheme.Eri_kind { fanout = 4. }) () in
  for v = 0 to 3 do
    Array.iter
      (fun u ->
        Alcotest.(check bool)
          (Printf.sprintf "row %d at %d" u v)
          true
          (Scheme.row (Network.ri net v) ~peer:u <> None))
      (Network.neighbors net v)
  done

let test_compression_projection () =
  let compression =
    Compression.Buckets { buckets = 2; mode = Compression.Overcount }
  in
  let net = make ~scheme:Scheme.Cri_kind ~compression () in
  (* A's local summary in bucket space: buckets {t0,t2} and {t1,t3}. *)
  let s = Network.local_summary net 0 in
  Alcotest.(check int) "projected width" 2 (Summary.topics s);
  Alcotest.(check (float 1e-9)) "bucket 0 = db+theory" 30. (Summary.get s 0);
  Alcotest.(check (float 1e-9)) "bucket 1 = net+lang" 90. (Summary.get s 1);
  Alcotest.(check (list int)) "query projection" [ 0; 1 ]
    (Network.project_query net [ 0; 1; 2 ]);
  (* The raw summary stays unprojected. *)
  Alcotest.(check int) "raw width" 4 (Summary.topics (Network.raw_local_summary net 0))

let test_set_local_summary () =
  let net = make ~scheme:Scheme.Cri_kind () in
  Network.set_local_summary net 4 (Summary.of_counts ~total:60 ~by_topic:[| 25; 0; 15; 60 |]);
  let s = Network.local_summary net 4 in
  Alcotest.(check (float 1e-9)) "updated" 60. s.Summary.total;
  Network.refresh_local net 4;
  Alcotest.(check (float 1e-9)) "refresh re-reads content" 50.
    (Network.local_summary net 4).Summary.total

let test_link_mutation () =
  let net = make ~scheme:Scheme.Cri_kind () in
  Network.add_link net 1 2;
  Alcotest.(check bool) "added" true (Network.has_link net 1 2);
  Alcotest.check_raises "duplicate" (Invalid_argument "Network.add_link: link exists")
    (fun () -> Network.add_link net 1 2);
  Network.remove_link net 1 2;
  Alcotest.(check bool) "removed" false (Network.has_link net 1 2);
  Alcotest.check_raises "missing"
    (Invalid_argument "Network.remove_link: link not present") (fun () ->
      Network.remove_link net 1 2)

let test_export_to () =
  let net = make ~scheme:Scheme.Cri_kind () in
  match Network.export_to net 0 ~peer:3 with
  | Scheme.Vector e ->
      Alcotest.(check (float 1e-9)) "figure 5 vector" 1400. e.Summary.total
  | Scheme.Hop_vector _ -> Alcotest.fail "expected vector"

let suite =
  ( "network",
    [
      Alcotest.test_case "figure 4/5 converged CRI" `Quick test_figure4_converged_cri;
      Alcotest.test_case "structure accessors" `Quick test_structure_accessors;
      Alcotest.test_case "no-RI network" `Quick test_no_ri_network;
      Alcotest.test_case "rooted = converged on trees" `Quick test_rooted_matches_converged_on_tree;
      Alcotest.test_case "rooted origin validation" `Quick test_rooted_origin_validation;
      Alcotest.test_case "CRI no-op cycles rejected" `Quick test_cri_noop_cycles_rejected;
      Alcotest.test_case "cyclic rows on all links" `Quick test_cyclic_rows_exist_on_all_links;
      Alcotest.test_case "compression projection" `Quick test_compression_projection;
      Alcotest.test_case "set local summary" `Quick test_set_local_summary;
      Alcotest.test_case "link mutation" `Quick test_link_mutation;
      Alcotest.test_case "export_to" `Quick test_export_to;
    ] )
