(* Update propagation: the Figure 6 update phase, significance
   thresholds, scheme-dependent reach. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

(* A path network 0-1-2-...-(n-1): update reach is easy to read off. *)
let path_net ?(n = 12) ?(per_node = 100) ?(min_update = 0.01) ?update_distance_floor
    scheme =
  let graph = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let content =
    {
      Network.summary =
        (fun _ -> Summary.of_counts ~total:per_node ~by_topic:[| per_node |]);
      count_matching = (fun _ _ -> 0);
    }
  in
  Network.create ~graph ~content ~scheme ~min_update ?update_distance_floor ()

let bump net origin docs =
  let counters = Message.create () in
  let base = Network.raw_local_summary net origin in
  let summary =
    Summary.make
      ~total:(base.Summary.total +. docs)
      ~by_topic:[| Summary.get base 0 +. docs |]
  in
  Update.local_change net ~origin ~summary ~counters;
  counters

let test_cri_update_reaches_everyone () =
  let net = path_net ~n:12 Scheme.Cri_kind in
  let counters = bump net 0 50. in
  (* One message per link, 11 links, no decay to stop it. *)
  Alcotest.(check int) "messages" 11 counters.Message.update_messages

let test_cri_update_from_middle () =
  let net = path_net ~n:12 Scheme.Cri_kind in
  let counters = bump net 6 50. in
  Alcotest.(check int) "both directions" 11 counters.Message.update_messages

let test_eri_update_decays () =
  (* Fanout 4: a 64-document change is worth 64/4^d after d hops and
     falls under the 1-document distance floor within a few hops, well
     before the end of the path. *)
  let net = path_net ~n:12 (Scheme.Eri_kind { fanout = 4. }) in
  let counters = bump net 0 64. in
  Alcotest.(check bool) "bounded reach" true
    (counters.Message.update_messages >= 3
    && counters.Message.update_messages <= 6)

let test_hri_update_stops_at_horizon () =
  let net = path_net ~n:12 (Scheme.Hri_kind { horizon = 3; fanout = 4. }) in
  let counters = bump net 0 5000. in
  (* The change rides the hop columns for [horizon] hops; the node at
     the horizon still exports once more (the message that turns out to
     carry no change), after which the wave is dead: horizon + 1. *)
  Alcotest.(check int) "horizon bound" 4 counters.Message.update_messages

let test_insignificant_update_travels_one_hop () =
  (* A change below minUpdate at the first receiver stops there: the
     origin always tells its neighbors, but they do not re-export. *)
  let net = path_net ~n:12 ~per_node:100000 ~min_update:0.05 Scheme.Cri_kind in
  let counters = bump net 0 30. in
  Alcotest.(check int) "one hop only" 1 counters.Message.update_messages

let test_distance_floor_stops_small_changes () =
  let net =
    path_net ~n:12 ~per_node:2 ~min_update:0.0001 ~update_distance_floor:10.
      Scheme.Cri_kind
  in
  let counters = bump net 0 5. in
  (* 5 documents moves entries by 5 < 10: dropped at the first hop. *)
  Alcotest.(check int) "floored" 1 counters.Message.update_messages

let test_update_applies_rows () =
  let net = path_net ~n:4 Scheme.Cri_kind in
  ignore (bump net 0 50.);
  (* Node 3's row for node 2 now includes the 50 extra documents:
     3 x 100 + 50. *)
  match Scheme.row (Network.ri net 3) ~peer:2 with
  | Some (Scheme.Vector s) ->
      Alcotest.(check (float 1e-6)) "row updated" 350. s.Summary.total
  | _ -> Alcotest.fail "missing row"

let test_no_ri_update_is_free () =
  let graph = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let content =
    {
      Network.summary = (fun _ -> Summary.zero ~topics:1);
      count_matching = (fun _ _ -> 0);
    }
  in
  let net = Network.create ~graph ~content () in
  let counters = Message.create () in
  Update.local_change net ~origin:0
    ~summary:(Summary.of_counts ~total:5 ~by_topic:[| 5 |])
    ~counters;
  Alcotest.(check int) "no index, no traffic" 0 counters.Message.update_messages

let test_propagate_matches_local_change_on_tree () =
  let net_a = path_net ~n:8 Scheme.Cri_kind in
  let net_b = path_net ~n:8 Scheme.Cri_kind in
  let c_a = bump net_a 2 40. in
  (* Same change via the lower-level propagate after a manual install. *)
  let c_b = Message.create () in
  Network.set_local_summary net_b 2 (Summary.of_counts ~total:140 ~by_topic:[| 140 |]);
  Update.propagate net_b ~origin:2 ~counters:c_b;
  Alcotest.(check int) "same message count"
    c_a.Message.update_messages c_b.Message.update_messages

let test_wave_budget_caps_runaway () =
  (* A dense overlay whose mean degree far exceeds the fanout: deltas
     amplify and only the budget stops the no-op wave. *)
  let n = 16 in
  let edges =
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None)
                   (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let graph = Graph.of_edges ~n edges in
  let content =
    {
      Network.summary = (fun _ -> Summary.of_counts ~total:100 ~by_topic:[| 100 |]);
      count_matching = (fun _ _ -> 0);
    }
  in
  let net =
    Network.create ~graph ~content ~scheme:(Scheme.Eri_kind { fanout = 2. })
      ~cycle_policy:Network.No_op ()
  in
  let counters = Message.create () in
  let seeds =
    Update.seeds_for_change net ~at:0 ~except:[] ~mutate:(fun () ->
        Network.set_local_summary net 0
          (Summary.of_counts ~total:100000 ~by_topic:[| 100000 |]))
  in
  Update.wave net ~seeds ~already_reached:[ 0 ] ~counters ~max_messages:500;
  Alcotest.(check bool) "stopped by budget" true
    (counters.Message.update_messages <= 500)

let test_trial_update_counts () =
  (* End-to-end through the simulator plumbing on a small tree. *)
  let cfg =
    Ri_sim.Config.scaled
      (Ri_sim.Config.with_search Ri_sim.Config.base
         (Ri_sim.Config.Ri Ri_sim.Config.cri))
      ~num_nodes:200
  in
  let m = Ri_sim.Trial.run_update cfg ~trial:0 in
  (* CRI floods the tree: one message per link. *)
  Alcotest.(check int) "tree flood" 199 m.Ri_sim.Trial.update_messages;
  Alcotest.(check (float 1.)) "bytes priced" (199. *. 1000.)
    m.Ri_sim.Trial.update_bytes

let suite =
  ( "update",
    [
      Alcotest.test_case "CRI reaches everyone" `Quick test_cri_update_reaches_everyone;
      Alcotest.test_case "CRI from the middle" `Quick test_cri_update_from_middle;
      Alcotest.test_case "ERI decays" `Quick test_eri_update_decays;
      Alcotest.test_case "HRI horizon bound" `Quick test_hri_update_stops_at_horizon;
      Alcotest.test_case "minUpdate threshold" `Quick test_insignificant_update_travels_one_hop;
      Alcotest.test_case "distance floor" `Quick test_distance_floor_stops_small_changes;
      Alcotest.test_case "rows actually updated" `Quick test_update_applies_rows;
      Alcotest.test_case "No-RI updates are free" `Quick test_no_ri_update_is_free;
      Alcotest.test_case "propagate = local_change on trees" `Quick test_propagate_matches_local_change_on_tree;
      Alcotest.test_case "wave budget" `Quick test_wave_budget_caps_runaway;
      Alcotest.test_case "trial update plumbing" `Quick test_trial_update_counts;
    ] )
