(* Float-vector helpers behind summary arithmetic. *)

open Ri_util

let arr = Alcotest.(array (float 1e-9))

let test_basic_ops () =
  let a = [| 1.; 2.; 3. |] in
  let dst = Vecf.copy a in
  Vecf.add_into ~dst [| 1.; 1.; 1. |];
  Alcotest.check arr "add" [| 2.; 3.; 4. |] dst;
  Vecf.sub_into ~dst [| 2.; 3.; 4. |];
  Alcotest.check arr "sub" [| 0.; 0.; 0. |] dst;
  Alcotest.check arr "scale" [| 2.; 4.; 6. |] (Vecf.scale a 2.);
  Alcotest.(check (float 1e-9)) "sum" 6. (Vecf.sum a);
  Alcotest.check arr "zeros" [| 0.; 0. |] (Vecf.zeros 2);
  Alcotest.check arr "map2" [| 2.; 4.; 6. |] (Vecf.map2 ( +. ) a a)

let test_scale_into () =
  let a = [| 1.; 2. |] in
  Vecf.scale_into a 3.;
  Alcotest.check arr "scale_into" [| 3.; 6. |] a

let test_length_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vecf.add_into: length mismatch") (fun () ->
      Vecf.add_into ~dst:[| 1. |] [| 1.; 2. |])

let test_euclidean () =
  Alcotest.(check (float 1e-9)) "3-4-5" 5.
    (Vecf.euclidean_distance [| 0.; 0. |] [| 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "self" 0.
    (Vecf.euclidean_distance [| 1.; 2. |] [| 1.; 2. |])

let test_max_rel_diff () =
  (* Entry 100 -> 103 is a 3% change; entry 0.5 -> 0.9 uses the floor of
     1 in the denominator, so a 40% change. *)
  Alcotest.(check (float 1e-9)) "relative" 0.03
    (Vecf.max_rel_diff [| 100. |] [| 103. |]);
  Alcotest.(check (float 1e-9)) "floored" 0.4
    (Vecf.max_rel_diff [| 0.5 |] [| 0.9 |]);
  Alcotest.(check (float 1e-9)) "picks worst" 0.5
    (Vecf.max_rel_diff [| 100.; 2. |] [| 103.; 3. |])

let test_approx_equal () =
  Alcotest.(check bool) "close" true
    (Vecf.approx_equal [| 1.; 2. |] [| 1. +. 1e-12; 2. |]);
  Alcotest.(check bool) "far" false (Vecf.approx_equal [| 1. |] [| 2. |]);
  Alcotest.(check bool) "length differs" false
    (Vecf.approx_equal [| 1. |] [| 1.; 1. |])

let vec_gen = QCheck.(array_of_size Gen.(int_range 1 20) (float_range (-1e3) 1e3))

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance is symmetric" ~count:200
    QCheck.(pair vec_gen vec_gen)
    (fun (a, b) ->
      QCheck.assume (Array.length a = Array.length b);
      Float.abs (Vecf.euclidean_distance a b -. Vecf.euclidean_distance b a)
      < 1e-9)

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"add then sub restores" ~count:200 vec_gen (fun a ->
      let dst = Vecf.copy a in
      Vecf.add_into ~dst a;
      Vecf.sub_into ~dst a;
      Vecf.approx_equal ~eps:1e-6 dst a)

let prop_rel_diff_zero_on_self =
  QCheck.Test.make ~name:"rel diff of a vector with itself is 0" ~count:200
    vec_gen (fun a -> Vecf.max_rel_diff a a = 0.)

let suite =
  ( "vecf",
    [
      Alcotest.test_case "basic ops" `Quick test_basic_ops;
      Alcotest.test_case "scale_into" `Quick test_scale_into;
      Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
      Alcotest.test_case "euclidean" `Quick test_euclidean;
      Alcotest.test_case "max_rel_diff" `Quick test_max_rel_diff;
      Alcotest.test_case "approx_equal" `Quick test_approx_equal;
      QCheck_alcotest.to_alcotest prop_distance_symmetric;
      QCheck_alcotest.to_alcotest prop_add_sub_roundtrip;
      QCheck_alcotest.to_alcotest prop_rel_diff_zero_on_self;
    ] )
