test/test_experiments.ml: Alcotest Astring Config List Option Printf Registry Report Ri_experiments Ri_sim Runner
