test/test_vecf.ml: Alcotest Array Float Gen QCheck QCheck_alcotest Ri_util Vecf
