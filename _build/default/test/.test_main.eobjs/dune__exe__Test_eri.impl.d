test/test_eri.ml: Alcotest Array Eri List Printf Ri_content Ri_core Summary
