test/test_paper_examples.ml: Alcotest Array Churn Float Graph Message Network Ri_content Ri_core Ri_p2p Ri_topology Scheme Summary
