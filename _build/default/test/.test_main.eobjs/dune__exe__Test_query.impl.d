test/test_query.ml: Alcotest Array Graph Message Network Prng QCheck QCheck_alcotest Query Ri_content Ri_core Ri_p2p Ri_topology Ri_util Scheme Summary Topic Tree_gen Workload
