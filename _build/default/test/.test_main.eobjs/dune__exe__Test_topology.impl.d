test/test_topology.ml: Alcotest Cycle_gen Graph Metrics Power_law Prng Ri_topology Ri_util Tree_gen
