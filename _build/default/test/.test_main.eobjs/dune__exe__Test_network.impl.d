test/test_network.ml: Alcotest Array Compression Graph List Network Printf Ri_content Ri_core Ri_p2p Ri_topology Scheme Summary Topic
