test/test_main.mli:
