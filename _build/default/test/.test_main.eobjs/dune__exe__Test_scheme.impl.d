test/test_scheme.ml: Alcotest Array Compression Gen List QCheck QCheck_alcotest Ri_content Ri_core Ri_util Scheme Summary
