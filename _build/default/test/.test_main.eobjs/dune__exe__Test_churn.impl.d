test/test_churn.ml: Alcotest Array Churn Graph Message Network Printf Query Ri_content Ri_core Ri_p2p Ri_topology Scheme Summary Workload
