test/test_stats.ml: Alcotest Astring Float Format Gen List Prng QCheck QCheck_alcotest Ri_util Stats
