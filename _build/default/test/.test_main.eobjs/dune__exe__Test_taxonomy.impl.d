test/test_taxonomy.ml: Alcotest Array Astring Compression Document Format Graph List Local_index Message Network Query Ri_content Ri_core Ri_p2p Ri_topology Scheme Summary Taxonomy Topic Workload
