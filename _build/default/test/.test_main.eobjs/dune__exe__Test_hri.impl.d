test/test_hri.ml: Alcotest Array Cost_model Hri List Printf Ri_content Ri_core Summary
