test/test_prng.ml: Alcotest Array Float Fun List Prng Ri_util Stats
