test/test_compression.ml: Alcotest Array Compression Fun Gen List Prng QCheck QCheck_alcotest Ri_content Ri_util Summary
