test/test_text_table.ml: Alcotest Astring Float List Ri_util String Text_table
