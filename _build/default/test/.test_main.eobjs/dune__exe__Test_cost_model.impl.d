test/test_cost_model.ml: Alcotest Array Cost_model Gen QCheck QCheck_alcotest Ri_core
