test/test_sim.ml: Alcotest Config List Prng Ri_p2p Ri_sim Ri_util Runner Stats Trial
