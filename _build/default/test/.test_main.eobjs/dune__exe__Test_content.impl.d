test/test_content.ml: Alcotest Document Gen List Local_index Option QCheck QCheck_alcotest Ri_content Summary Topic
