test/test_sampling.ml: Alcotest Array Float Fun List Prng Ri_util Sampling
