test/test_extensions.ml: Alcotest Array Churn Compression Cost_model Graph Hri List Message Network Query Ri_content Ri_core Ri_p2p Ri_sim Ri_topology Scheme Summary Update Workload
