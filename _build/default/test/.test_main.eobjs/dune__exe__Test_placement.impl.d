test/test_placement.ml: Alcotest Array Float Placement Printf Prng QCheck QCheck_alcotest Ri_content Ri_util Summary Topic
