test/test_cri.ml: Alcotest Cri Float Gen List Printf QCheck QCheck_alcotest Ri_content Ri_core Summary
