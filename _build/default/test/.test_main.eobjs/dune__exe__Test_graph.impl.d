test/test_graph.ml: Alcotest Array Graph List QCheck QCheck_alcotest Ri_topology Ri_util Tree_gen
