test/test_estimator.ml: Alcotest Array Estimator Format QCheck QCheck_alcotest Ri_content Ri_core Summary
