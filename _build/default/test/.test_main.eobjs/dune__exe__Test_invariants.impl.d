test/test_invariants.ml: Array Churn Float Graph List Message Network Prng QCheck QCheck_alcotest Query Queue Ri_content Ri_core Ri_p2p Ri_topology Ri_util Scheme Summary Tree_gen Update Workload
