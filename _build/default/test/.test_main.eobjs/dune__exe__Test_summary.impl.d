test/test_summary.ml: Alcotest Array Format QCheck QCheck_alcotest Ri_content Summary
