test/test_update.ml: Alcotest Fun Graph List Message Network Ri_content Ri_core Ri_p2p Ri_sim Ri_topology Scheme Summary Update
