test/test_message.ml: Alcotest Astring Format Message Ri_p2p
