(* Sampling helpers: distinct draws, weighted choice, discrete power
   law. *)

open Ri_util

let test_choose_distinct_basic () =
  let g = Prng.create 1 in
  let a = Sampling.choose_distinct g ~k:10 ~n:100 in
  Alcotest.(check int) "size" 10 (Array.length a);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let distinct = Array.to_list sorted |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 10 (List.length distinct);
  Array.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 100)) a

let test_choose_distinct_full () =
  let g = Prng.create 2 in
  let a = Sampling.choose_distinct g ~k:50 ~n:50 in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation of 0..49" true
    (sorted = Array.init 50 Fun.id)

let test_choose_distinct_dense_path () =
  (* k close to n exercises the Fisher-Yates branch. *)
  let g = Prng.create 3 in
  let a = Sampling.choose_distinct g ~k:40 ~n:50 in
  let distinct = Array.to_list a |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 40 (List.length distinct)

let test_choose_distinct_errors () =
  let g = Prng.create 4 in
  Alcotest.check_raises "k > n" (Invalid_argument "Sampling.choose_distinct")
    (fun () -> ignore (Sampling.choose_distinct g ~k:5 ~n:3));
  Alcotest.check_raises "negative k" (Invalid_argument "Sampling.choose_distinct")
    (fun () -> ignore (Sampling.choose_distinct g ~k:(-1) ~n:3));
  Alcotest.(check int) "k = 0" 0
    (Array.length (Sampling.choose_distinct g ~k:0 ~n:3))

let test_weighted_index () =
  let g = Prng.create 5 in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Sampling.weighted_index g w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  let p0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "ratio near 1/4" true (Float.abs (p0 -. 0.25) < 0.02)

let test_weighted_index_errors () =
  let g = Prng.create 6 in
  Alcotest.check_raises "zero total"
    (Invalid_argument "Sampling.weighted_index: zero total") (fun () ->
      ignore (Sampling.weighted_index g [| 0.; 0. |]))

let test_power_law_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 5_000 do
    let k = Sampling.discrete_power_law g ~exponent:(-2.2) ~max_value:100 in
    Alcotest.(check bool) "in [1, 100]" true (k >= 1 && k <= 100)
  done

let test_power_law_decay () =
  let g = Prng.create 8 in
  let counts = Array.make 101 0 in
  for _ = 1 to 50_000 do
    let k = Sampling.discrete_power_law g ~exponent:(-2.2) ~max_value:100 in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "P(1) > P(2) > P(4)" true
    (counts.(1) > counts.(2) && counts.(2) > counts.(4));
  (* Check the 1-vs-2 ratio against 2^2.2 ≈ 4.59. *)
  let ratio = float_of_int counts.(1) /. float_of_int counts.(2) in
  Alcotest.(check bool) "ratio near 2^2.2" true (Float.abs (ratio -. 4.59) < 0.6)

let test_power_law_degenerate () =
  let g = Prng.create 9 in
  Alcotest.(check int) "max 1 forces 1" 1
    (Sampling.discrete_power_law g ~exponent:(-2.) ~max_value:1)

let test_degree_sequence_even () =
  let g = Prng.create 10 in
  for _ = 1 to 20 do
    let d = Sampling.power_law_degrees g ~n:101 ~exponent:(-2.2) ~max_degree:20 in
    let total = Array.fold_left ( + ) 0 d in
    Alcotest.(check int) "even total" 0 (total land 1)
  done

let suite =
  ( "sampling",
    [
      Alcotest.test_case "choose_distinct basic" `Quick test_choose_distinct_basic;
      Alcotest.test_case "choose_distinct full draw" `Quick test_choose_distinct_full;
      Alcotest.test_case "choose_distinct dense" `Quick test_choose_distinct_dense_path;
      Alcotest.test_case "choose_distinct errors" `Quick test_choose_distinct_errors;
      Alcotest.test_case "weighted_index" `Quick test_weighted_index;
      Alcotest.test_case "weighted_index errors" `Quick test_weighted_index_errors;
      Alcotest.test_case "power law bounds" `Quick test_power_law_bounds;
      Alcotest.test_case "power law decay" `Quick test_power_law_decay;
      Alcotest.test_case "power law degenerate" `Quick test_power_law_degenerate;
      Alcotest.test_case "degree sequence even" `Quick test_degree_sequence_even;
    ] )
