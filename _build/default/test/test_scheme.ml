(* The scheme-polymorphic RI wrapper and payload utilities. *)

open Ri_content
open Ri_core

let s total by = Summary.make ~total ~by_topic:by

let kinds =
  [
    Scheme.Cri_kind;
    Scheme.Hri_kind { horizon = 3; fanout = 4. };
    Scheme.Eri_kind { fanout = 4. };
    Scheme.Hybrid_kind { horizon = 3; fanout = 4. };
  ]

let test_kind_roundtrip () =
  List.iter
    (fun k ->
      let t = Scheme.create k ~width:2 ~local:(Summary.zero ~topics:2) in
      Alcotest.(check bool) "kind preserved" true (Scheme.kind t = k);
      Alcotest.(check int) "width" 2 (Scheme.width t))
    kinds

let test_kind_names () =
  Alcotest.(check string) "cri" "CRI" (Scheme.kind_name Scheme.Cri_kind);
  Alcotest.(check string) "hri" "HRI"
    (Scheme.kind_name (Scheme.Hri_kind { horizon = 5; fanout = 4. }));
  Alcotest.(check string) "eri" "ERI"
    (Scheme.kind_name (Scheme.Eri_kind { fanout = 4. }));
  Alcotest.(check string) "hybrid" "HYB"
    (Scheme.kind_name (Scheme.Hybrid_kind { horizon = 5; fanout = 4. }))

let test_shape_mismatch () =
  let cri = Scheme.create Scheme.Cri_kind ~width:2 ~local:(Summary.zero ~topics:2) in
  Alcotest.check_raises "hop vector into CRI"
    (Invalid_argument "Scheme.set_row: payload shape does not match the scheme")
    (fun () ->
      Scheme.set_row cri ~peer:1 (Scheme.Hop_vector [| Summary.zero ~topics:2 |]));
  let hri =
    Scheme.create (Scheme.Hri_kind { horizon = 2; fanout = 4. }) ~width:2
      ~local:(Summary.zero ~topics:2)
  in
  Alcotest.check_raises "vector into HRI"
    (Invalid_argument "Scheme.set_row: payload shape does not match the scheme")
    (fun () -> Scheme.set_row hri ~peer:1 (Scheme.Vector (Summary.zero ~topics:2)))

let test_rank_orders_by_goodness () =
  let t = Scheme.create Scheme.Cri_kind ~width:1 ~local:(Summary.zero ~topics:1) in
  Scheme.set_row t ~peer:1 (Scheme.Vector (s 10. [| 2. |]));
  Scheme.set_row t ~peer:2 (Scheme.Vector (s 10. [| 9. |]));
  Scheme.set_row t ~peer:3 (Scheme.Vector (s 10. [| 5. |]));
  let ranked = Scheme.rank t ~query:[ 0 ] ~exclude:[] in
  Alcotest.(check (list int)) "descending goodness" [ 2; 3; 1 ]
    (List.map fst ranked);
  let without_two = Scheme.rank t ~query:[ 0 ] ~exclude:[ 2 ] in
  Alcotest.(check (list int)) "exclusion respected" [ 3; 1 ]
    (List.map fst without_two)

let test_rank_tie_break_deterministic () =
  let t = Scheme.create Scheme.Cri_kind ~width:1 ~local:(Summary.zero ~topics:1) in
  Scheme.set_row t ~peer:5 (Scheme.Vector (s 10. [| 3. |]));
  Scheme.set_row t ~peer:1 (Scheme.Vector (s 10. [| 3. |]));
  let ranked = Scheme.rank t ~query:[ 0 ] ~exclude:[] in
  Alcotest.(check (list int)) "smaller id first on ties" [ 1; 5 ]
    (List.map fst ranked)

let test_payload_zero () =
  Alcotest.(check int) "vector entries" 4
    (Scheme.payload_entries (Scheme.payload_zero Scheme.Cri_kind ~width:3));
  Alcotest.(check int) "hop entries" 12
    (Scheme.payload_entries
       (Scheme.payload_zero (Scheme.Hri_kind { horizon = 3; fanout = 4. }) ~width:3))

let test_payload_diffs () =
  let a = Scheme.Vector (s 100. [| 50. |]) in
  let b = Scheme.Vector (s 102. [| 50. |]) in
  Alcotest.(check (float 1e-9)) "rel" 0.02 (Scheme.payload_rel_diff a b);
  Alcotest.(check (float 1e-9)) "distance" 2. (Scheme.payload_distance a b);
  let h1 = Scheme.Hop_vector [| s 1. [| 1. |]; s 2. [| 2. |] |] in
  let h2 = Scheme.Hop_vector [| s 1. [| 1. |]; s 2. [| 5. |] |] in
  Alcotest.(check (float 1e-9)) "hop distance" 3. (Scheme.payload_distance h1 h2);
  Alcotest.(check (float 1e-9)) "shape mismatch rel" infinity
    (Scheme.payload_rel_diff a h1);
  Alcotest.(check (float 1e-9)) "shape mismatch distance" infinity
    (Scheme.payload_distance a h1);
  Alcotest.(check (float 1e-9)) "hop length mismatch" infinity
    (Scheme.payload_distance h1 (Scheme.Hop_vector [| s 1. [| 1. |] |]))

let test_payload_total () =
  Alcotest.(check (float 1e-9)) "vector" 100.
    (Scheme.payload_total (Scheme.Vector (s 100. [| 1. |])));
  Alcotest.(check (float 1e-9)) "hops summed" 3.
    (Scheme.payload_total (Scheme.Hop_vector [| s 1. [| 1. |]; s 2. [| 2. |] |]))

let test_unified_export_matches_underlying () =
  (* The wrapper's CRI export equals Figure 5's vector. *)
  let t =
    Scheme.create Scheme.Cri_kind ~width:4
      ~local:(s 300. [| 30.; 80.; 0.; 10. |])
  in
  Scheme.set_row t ~peer:1 (Scheme.Vector (s 100. [| 20.; 0.; 10.; 30. |]));
  Scheme.set_row t ~peer:2 (Scheme.Vector (s 1000. [| 0.; 300.; 0.; 50. |]));
  match Scheme.export t ~exclude:None with
  | Scheme.Vector e ->
      Alcotest.(check (float 1e-9)) "total" 1400. e.Summary.total;
      Alcotest.(check (float 1e-9)) "networks" 380. (Summary.get e 1)
  | Scheme.Hop_vector _ -> Alcotest.fail "expected a vector"

let test_perturb_preserves_shape () =
  let rng = Ri_util.Prng.create 4 in
  let h = Scheme.Hop_vector [| s 10. [| 10. |]; s 20. [| 20. |] |] in
  match
    Scheme.payload_perturb rng ~relative_stddev:0.1 ~kind:Compression.Overcount h
  with
  | Scheme.Hop_vector r ->
      Alcotest.(check int) "length" 2 (Array.length r);
      Alcotest.(check bool) "overcounted" true (Summary.get r.(0) 0 >= 10.)
  | Scheme.Vector _ -> Alcotest.fail "shape changed"

let prop_export_all_agrees_with_export =
  QCheck.Test.make ~name:"export_all agrees with per-peer export (all kinds)"
    ~count:60
    QCheck.(pair (int_range 0 3) (list_of_size Gen.(int_range 1 6) (float_range 0. 50.)))
    (fun (kind_ix, vals) ->
      let kind = List.nth kinds kind_ix in
      let width = 2 in
      let t = Scheme.create kind ~width ~local:(s 3. [| 1.; 2. |]) in
      List.iteri
        (fun i v ->
          let payload =
            match kind with
            | Scheme.Hri_kind { horizon; _ } ->
                Scheme.Hop_vector
                  (Array.init horizon (fun h ->
                       s (v +. float_of_int h) [| v; float_of_int h |]))
            | Scheme.Hybrid_kind { horizon; _ } ->
                Scheme.Hop_vector
                  (Array.init (horizon + 1) (fun h ->
                       s (v +. float_of_int h) [| v; float_of_int h |]))
            | Scheme.Cri_kind | Scheme.Eri_kind _ ->
                Scheme.Vector (s v [| v /. 2.; v /. 2. |])
          in
          Scheme.set_row t ~peer:i payload)
        vals;
      List.for_all
        (fun (peer, batch) ->
          Scheme.payload_distance batch (Scheme.export t ~exclude:(Some peer))
          < 1e-6)
        (Scheme.export_all t))

let suite =
  ( "scheme",
    [
      Alcotest.test_case "kind roundtrip" `Quick test_kind_roundtrip;
      Alcotest.test_case "kind names" `Quick test_kind_names;
      Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
      Alcotest.test_case "rank by goodness" `Quick test_rank_orders_by_goodness;
      Alcotest.test_case "rank tie break" `Quick test_rank_tie_break_deterministic;
      Alcotest.test_case "payload zero" `Quick test_payload_zero;
      Alcotest.test_case "payload diffs" `Quick test_payload_diffs;
      Alcotest.test_case "payload total" `Quick test_payload_total;
      Alcotest.test_case "unified export" `Quick test_unified_export_matches_underlying;
      Alcotest.test_case "perturb shape" `Quick test_perturb_preserves_shape;
      QCheck_alcotest.to_alcotest prop_export_all_agrees_with_export;
    ] )
