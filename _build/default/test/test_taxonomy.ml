(* Topic taxonomies: the paper's semantic-summarization example. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

(* Section 4's example: indices, recovery and SQL roll up into
   databases; a couple more categories to keep things honest. *)
let tax =
  Taxonomy.of_groups
    [
      ("databases", [ "indices"; "recovery"; "SQL" ]);
      ("networks", [ "routing"; "multicast" ]);
      ("theory", [ "complexity" ]);
    ]

let leaf name =
  match Topic.find (Taxonomy.leaves tax) name with
  | Some id -> id
  | None -> Alcotest.fail ("unknown leaf " ^ name)

let cat name =
  match Topic.find (Taxonomy.categories tax) name with
  | Some id -> id
  | None -> Alcotest.fail ("unknown category " ^ name)

let test_structure () =
  Alcotest.(check int) "6 leaves" 6 (Topic.count (Taxonomy.leaves tax));
  Alcotest.(check int) "3 categories" 3 (Topic.count (Taxonomy.categories tax));
  Alcotest.(check int) "SQL -> databases" (cat "databases")
    (Taxonomy.category_of tax (leaf "SQL"));
  Alcotest.(check int) "multicast -> networks" (cat "networks")
    (Taxonomy.category_of tax (leaf "multicast"));
  Alcotest.(check (list int)) "databases' leaves"
    [ leaf "indices"; leaf "recovery"; leaf "SQL" ]
    (Taxonomy.leaves_of tax (cat "databases"))

let test_validation () =
  Alcotest.check_raises "duplicate sub-topic"
    (Invalid_argument "Taxonomy.of_groups: duplicated sub-topic") (fun () ->
      ignore (Taxonomy.of_groups [ ("a", [ "x" ]); ("b", [ "x" ]) ]));
  Alcotest.check_raises "empty group"
    (Invalid_argument "Taxonomy.of_groups: empty group") (fun () ->
      ignore (Taxonomy.of_groups [ ("a", []) ]))

let test_summarize_overcounts () =
  (* 3 documents on indices, 1 on recovery, 0 on SQL: the databases
     category reads 4; a query for "SQL" converted to "databases"
     believes there are 4 SQL documents where there are none — the
     paper's overcount. *)
  let s =
    Summary.of_counts ~total:4
      ~by_topic:
        (Array.of_list
           (List.map
              (fun name ->
                match name with
                | "indices" -> 3
                | "recovery" -> 1
                | _ -> 0)
              [ "indices"; "recovery"; "SQL"; "routing"; "multicast"; "complexity" ]))
  in
  let rolled = Taxonomy.summarize tax s in
  Alcotest.(check int) "category width" 3 (Summary.topics rolled);
  Alcotest.(check (float 1e-9)) "databases bucket" 4.
    (Summary.get rolled (cat "databases"));
  Alcotest.(check (float 1e-9)) "sql reads the bucket" 4.
    (Summary.get rolled
       (Compression.project_topic (Taxonomy.compression tax) (leaf "SQL")))

let test_taxonomy_in_a_network () =
  (* Three libraries classify by sub-topic; the RIs carry categories.
     A query for "SQL" still routes to the node holding SQL documents —
     via the databases category. *)
  let universe = Taxonomy.leaves tax in
  let indices =
    Array.init 3 (fun v ->
        let idx = Local_index.create universe in
        let add i topics = Local_index.add idx (Document.make ~id:i ~topics ()) in
        (match v with
        | 1 ->
            (* The SQL-rich library. *)
            for i = 0 to 9 do
              add i [ leaf "SQL" ]
            done
        | 2 ->
            for i = 0 to 9 do
              add i [ leaf "routing" ]
            done
        | _ -> add 0 [ leaf "complexity" ]);
        idx)
  in
  let graph = Graph.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  let net =
    Network.create ~graph
      ~content:(Network.content_of_local_indices indices)
      ~scheme:Scheme.Cri_kind
      ~compression:(Taxonomy.compression tax) ()
  in
  let q = Workload.query ~topics:[ leaf "SQL" ] ~stop:10 in
  let o = Query.run net ~origin:0 ~query:q ~forwarding:Query.Ri_guided in
  Alcotest.(check int) "found the SQL documents" 10 o.Query.found;
  (* Straight to node 1: one forward. *)
  Alcotest.(check int) "routed directly" 1 o.Query.counters.Message.query_forwards

let test_undercount_mode () =
  let s =
    Summary.make ~total:4. ~by_topic:[| 3.; 1.; 0.; 0.; 0.; 0. |]
  in
  let rolled =
    Compression.project_summary
      (Taxonomy.compression ~mode:Compression.Undercount tax)
      s
  in
  Alcotest.(check (float 1e-9)) "min consolidation" 0.
    (Summary.get rolled (cat "databases"))

let test_pp () =
  let out = Format.asprintf "%a" Taxonomy.pp tax in
  Alcotest.(check bool) "mentions roll-up" true
    (Astring.String.is_infix ~affix:"databases <- indices, recovery, SQL" out)

let suite =
  ( "taxonomy",
    [
      Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "summarize overcounts" `Quick test_summarize_overcounts;
      Alcotest.test_case "taxonomy-compressed network" `Quick test_taxonomy_in_a_network;
      Alcotest.test_case "undercount mode" `Quick test_undercount_mode;
      Alcotest.test_case "pretty print" `Quick test_pp;
    ] )
